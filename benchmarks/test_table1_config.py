"""Bench: verify the Table 1 configuration and its derived air times.

Table 1 is the paper's 802.11 DSSS parameter set; this bench checks
every entry against the repo defaults and pins the frame air times and
the resulting isolated-pair handshake duration they imply.
"""

from repro.dessim import microseconds
from repro.experiments import format_table1, table1_entries
from repro.mac import DSSS_MAC
from repro.phy import DSSS_PHY, FrameType


def test_table1_parameters(benchmark):
    entries = benchmark.pedantic(table1_entries, rounds=1, iterations=1)
    print("\n" + format_table1(entries))
    mismatched = [e.name for e in entries if not e.matches]
    assert not mismatched, f"Table 1 mismatch: {mismatched}"


def test_table1_derived_times(benchmark):
    def derived():
        return {
            ftype: DSSS_PHY.frame_airtime_ns(ftype) for ftype in FrameType
        }

    airtimes = benchmark.pedantic(derived, rounds=1, iterations=1)
    assert airtimes[FrameType.RTS] == microseconds(272)
    assert airtimes[FrameType.CTS] == microseconds(248)
    assert airtimes[FrameType.ACK] == microseconds(248)
    assert airtimes[FrameType.DATA] == microseconds(6032)

    # The full four-way handshake on an isolated pair: DIFS + all four
    # frames + 3 SIFS + 4 propagation delays = 6884 us (pinned by the
    # MAC integration tests as the actually-simulated value).
    handshake = (
        DSSS_MAC.difs_ns
        + sum(airtimes.values())
        + 3 * DSSS_MAC.sifs_ns
        + 4 * DSSS_PHY.propagation_delay_ns
    )
    assert handshake == microseconds(6884)
