"""Bench: the Section-4 collision-ratio statistic.

The paper (figure omitted for space): "the DRTS-DCTS and DRTS-OCTS
schemes have higher collision occurrences than ORTS-OCTS ... because
both schemes are more aggressive in achieving spatial reuse and do not
force all the neighbors around the sending and receiving nodes to defer"
and "the collision ratio is still rather high" for large N.
"""

from repro.experiments import CollisionCell, format_collision_table
from repro.metrics import summarize

from .conftest import mean_metric


def test_collision_ratio(benchmark, sim_grid):
    config, cells = sim_grid

    def summarize_grid():
        return [
            CollisionCell(
                n=c.n,
                scheme=c.scheme,
                beamwidth_deg=c.beamwidth_deg,
                collision_ratio=summarize(c.metric("inner_collision_ratio")),
            )
            for c in cells
        ]

    table = benchmark.pedantic(summarize_grid, rounds=1, iterations=1)
    print("\nSection 4 statistic: collision ratio (ACK timeouts / data-stage handshakes)")
    print(format_collision_table(table))

    for cell in table:
        assert 0.0 <= cell.collision_ratio.mean <= 1.0

    # Directional schemes pay for spatial reuse with more collisions,
    # at every density and beamwidth in the grid.
    for n in config.n_values:
        for beamwidth in config.beamwidths_deg:
            orts = mean_metric(cells, n, "ORTS-OCTS", beamwidth, "inner_collision_ratio")
            drts = mean_metric(cells, n, "DRTS-DCTS", beamwidth, "inner_collision_ratio")
            assert drts > orts, (
                f"N={n} {beamwidth}dg: DRTS-DCTS ratio {drts:.3f} should "
                f"exceed ORTS-OCTS {orts:.3f}"
            )
