"""Bench: ablations of the analytical model's design choices.

1. Fixed p vs per-point optimisation (Fig. 5 plots the optimum).
2. The DRTS-OCTS T_fail lower bound (Section 2.3 charges the omni CTS
   with a later failure-detection time; the optimistic bound inflates
   throughput by ~20%).
"""

from repro.experiments import (
    format_area3_span_table,
    format_fixed_p_table,
    format_tfail_table,
    run_area3_span_ablation,
    run_fixed_p_ablation,
    run_tfail_ablation,
)


def test_fixed_p_vs_optimised(benchmark):
    rows = benchmark.pedantic(
        run_fixed_p_ablation, rounds=1, iterations=1,
        kwargs={"n_neighbors": 5.0, "beamwidth_deg": 30.0},
    )
    print("\nAblation: fixed p vs optimised p (N=5, theta=30dg)")
    print(format_fixed_p_table(rows))

    for row in rows:
        # The optimum dominates every fixed choice.
        for value in row.fixed.values():
            assert row.optimised >= value - 1e-9
        # p = 0.1 is already past the optimum for every scheme here —
        # the paper's point that collision avoidance keeps p small.
        assert row.fixed[0.1] < row.optimised


def test_area3_span_bracket(benchmark):
    rows = benchmark.pedantic(run_area3_span_ablation, rounds=1, iterations=1)
    print("\nAblation: DRTS-DCTS Area-III span theta' (paper: theta; bound: 2*theta)")
    print(format_area3_span_table(rows))

    for row in rows:
        # The conservative span can only hurt throughput.
        assert row.upper_span <= row.paper_span + 1e-9
        # The paper's simplification is mild: the bracket stays narrow
        # at narrow beamwidths where DRTS-DCTS makes its case.
        if row.beamwidth_deg <= 30.0:
            assert abs(row.bracket_width) < 0.25


def test_tfail_lower_bound(benchmark):
    rows = benchmark.pedantic(run_tfail_ablation, rounds=1, iterations=1)
    print("\nAblation: DRTS-OCTS T_fail lower bound (paper vs optimistic)")
    print(format_tfail_table(rows))

    for row in rows:
        # The paper's conservative bound costs throughput; were failures
        # detected as early as in DRTS-DCTS, DRTS-OCTS would look
        # substantially better.
        assert row.early_bound > row.paper_bound
        assert 0.05 < row.relative_change < 0.60
