"""Shared configuration for the benchmark harness.

The simulation grid is expensive, so it is computed once per pytest
session and shared by the Fig. 6 / Fig. 7 / collision-ratio / fairness
benches (they are different summaries of the same runs — exactly as in
the paper, where one simulation campaign produced every Section-4
number).

Defaults are laptop-sized; scale up toward the paper's campaign with
the same ``REPRO_*`` variables used by :mod:`repro.experiments.config`:
``REPRO_TOPOLOGIES=50 REPRO_SIM_SECONDS=10 REPRO_N_VALUES=3,5,8
REPRO_BEAMWIDTHS_DEG=30,90,150 pytest benchmarks/ --benchmark-only``.
"""

import os

import pytest

from repro.dessim import seconds
from repro.experiments import SimStudyConfig, SimStudyRunner


def _env_int(name, default):
    raw = os.environ.get(name)
    return default if raw is None else int(raw)


def _env_float(name, default):
    raw = os.environ.get(name)
    return default if raw is None else float(raw)


def _env_tuple(name, default, cast):
    raw = os.environ.get(name)
    if raw is None:
        return default
    return tuple(cast(p.strip()) for p in raw.split(",") if p.strip())


def bench_config() -> SimStudyConfig:
    """Bench-sized study configuration (env-overridable)."""
    capture_raw = os.environ.get("REPRO_CAPTURE", "none").strip().lower()
    capture = None if capture_raw in ("", "none", "off") else float(capture_raw)
    return SimStudyConfig(
        n_values=_env_tuple("REPRO_N_VALUES", (3, 8), int),
        beamwidths_deg=_env_tuple("REPRO_BEAMWIDTHS_DEG", (30.0, 150.0), float),
        topologies=_env_int("REPRO_TOPOLOGIES", 2),
        sim_time_ns=seconds(_env_float("REPRO_SIM_SECONDS", 1.0)),
        retry_limit=_env_int("REPRO_RETRY_LIMIT", 7),
        capture_threshold=capture,
    )


@pytest.fixture(scope="session")
def sim_grid():
    """The shared simulation campaign: (config, cells)."""
    config = bench_config()
    runner = SimStudyRunner(config)
    return config, runner.run_grid()


def cell_lookup(cells, n, scheme, beamwidth_deg):
    """Find one grid cell; raises if the grid was narrowed by env vars."""
    for cell in cells:
        if (
            cell.n == n
            and cell.scheme == scheme
            and cell.beamwidth_deg == beamwidth_deg
        ):
            return cell
    raise KeyError(f"cell (N={n}, {scheme}, {beamwidth_deg}dg) not in grid")


def mean_metric(cells, n, scheme, beamwidth_deg, metric):
    values = cell_lookup(cells, n, scheme, beamwidth_deg).metric(metric)
    return sum(values) / len(values)
