#!/usr/bin/env python
"""Perf-gate entry point: run the telemetry bench suite from the repo root.

Thin wrapper around :mod:`repro.obs.bench` so CI (and developers) have a
stable path that does not depend on ``-m`` module resolution:

    PYTHONPATH=src python benchmarks/telemetry_harness.py \
        --out BENCH_telemetry.json --check benchmarks/baselines/bench_baseline.json

Regenerate the committed baseline after an *intentional* perf change:

    PYTHONPATH=src python benchmarks/telemetry_harness.py \
        --write-baseline benchmarks/baselines/bench_baseline.json

See docs/reproducing.md ("Reading the perf gate") for how scores are
normalized against the host-speed calibration loop.
"""

import sys

from repro.obs.bench import main

if __name__ == "__main__":
    sys.exit(main())
