"""Benches: scheduling overhead of the dispatch layer.

The dispatch subsystem wraps every cell compute in lease acquisition,
an event append, and a release — all filesystem operations.  These
benches measure that wrapper against a stub worker whose compute cost
is ~zero, so the numbers are pure scheduler overhead per cell.  The
acceptance intuition: a real cell costs hundreds of milliseconds to
minutes, so per-cell scheduling in the hundreds of microseconds is
noise.  (Functional benches only — the perf gate's committed baseline
covers the simulation hot paths, not this layer.)
"""

from repro.dessim import seconds
from repro.experiments import CampaignStore, SimStudyConfig, run_cell_spec
from repro.experiments.dispatch import EventLog, ShardRunner, WorkQueue
from repro.experiments.dispatch.shard import grid_specs


def bench_config():
    return SimStudyConfig(
        n_values=(3,),
        beamwidths_deg=(30.0, 90.0),
        schemes=("ORTS-OCTS", "DRTS-DCTS"),
        topologies=1,
        sim_time_ns=seconds(0.05),
    )


def test_lease_acquire_release_cycle(benchmark, tmp_path):
    """One full claim/release round trip on a pending cell."""
    store = CampaignStore(tmp_path / "camp", bench_config())
    queue = WorkQueue(store, shard="bench")

    def cycle():
        lease = queue.try_acquire("bench-key")
        queue.release("bench-key")
        return lease

    assert benchmark(cycle) is not None


def test_event_append(benchmark, tmp_path):
    """One cell-completed line: a single O_APPEND write."""
    log = EventLog(tmp_path / "events.jsonl", shard="bench")
    result = benchmark(
        log.emit, "cell-completed", key="n3-ORTS-OCTS-bw30", attempt=0
    )
    assert result["shard"] == "bench"


def test_shard_loop_overhead_per_grid(benchmark, tmp_path):
    """A full ShardRunner pass over a 4-cell grid with a stub worker.

    Covers the whole per-cell wrapper — completed-scan, lease, event,
    first-writer-wins save, release — plus the final completion sweep.
    Artifacts are removed between rounds so every round does the full
    amount of scheduling work.
    """
    config = bench_config()
    specs = grid_specs(config)
    cells = {spec.key: run_cell_spec(spec) for spec in specs}

    def stub_worker(spec):
        return cells[spec.key]

    directory = tmp_path / "camp"
    CampaignStore(directory, config)

    def sweep():
        for path in directory.glob("cell-*.json"):
            path.unlink()
        report = ShardRunner(
            directory,
            config,
            shard_id="bench",
            worker=stub_worker,
            telemetry=False,
        ).run()
        return report

    report = benchmark(sweep)
    assert report.computed == len(specs)
