"""Bench: the three-fidelity ladder (closed form vs slot-sim).

Runs the analytical model's world honestly (fixed node draw, persistent
interference, checkpointed failure detection) and compares it with the
closed forms.  The reproduction claim being tested: the paper's
*qualitative* Fig. 5 conclusions survive the removal of the model's
independence assumptions, even though absolute throughput drops and the
truncated-geometric T_fail turns out optimistic.
"""

import math

from repro.core import PAPER_PARAMETERS, SCHEME_FACTORIES
from repro.slotsim import SlotModelConfig, SlotModelEngine

SCHEMES = ("ORTS-OCTS", "DRTS-DCTS", "DRTS-OCTS")
P = 0.02
SLOTS = 30_000


def run_ladder():
    rows = []
    for scheme in SCHEMES:
        for theta_deg in (30.0, 150.0):
            params = PAPER_PARAMETERS.with_neighbors(3.0).with_beamwidth(
                math.radians(theta_deg)
            )
            engine = SlotModelEngine(
                SlotModelConfig(params=params, scheme=scheme, p=P, seed=5)
            )
            measured = engine.run(SLOTS)
            analytical_scheme = SCHEME_FACTORIES[scheme](params)
            rows.append(
                {
                    "scheme": scheme,
                    "theta": theta_deg,
                    "analytical": analytical_scheme.throughput(P),
                    "slot_sim": measured.throughput_per_node,
                    "t_fail_model": analytical_scheme.t_fail(P),
                    "t_fail_measured": measured.mean_fail_duration,
                }
            )
    return rows


def test_model_fidelity_ladder(benchmark):
    rows = benchmark.pedantic(run_ladder, rounds=1, iterations=1)

    print("\nModel-fidelity ladder (N=3, p=0.02): closed form vs slot-sim")
    print(
        "scheme      theta  Th(formula)  Th(slot-sim)   Tfail(formula)  Tfail(measured)"
    )
    for row in rows:
        print(
            f"{row['scheme']:10s}  {row['theta']:4.0f}  {row['analytical']:11.4f}  "
            f"{row['slot_sim']:12.4f}  {row['t_fail_model']:14.2f}  "
            f"{row['t_fail_measured']:15.2f}"
        )

    by_key = {(r["scheme"], r["theta"]): r for r in rows}

    # 1. The closed form is an upper bound everywhere (independence
    #    assumptions only ever flatter the protocol).
    for row in rows:
        assert row["slot_sim"] < row["analytical"]

    # 2. The Fig. 5 ordering at narrow beamwidth survives.
    assert (
        by_key[("DRTS-DCTS", 30.0)]["slot_sim"]
        > by_key[("ORTS-OCTS", 30.0)]["slot_sim"]
    )
    assert (
        by_key[("DRTS-OCTS", 30.0)]["slot_sim"]
        > by_key[("ORTS-OCTS", 30.0)]["slot_sim"]
    )

    # 3. DRTS-DCTS still degrades with beamwidth.
    assert (
        by_key[("DRTS-DCTS", 30.0)]["slot_sim"]
        > by_key[("DRTS-DCTS", 150.0)]["slot_sim"]
    )

    # 4. The model's T_fail is optimistic for the directional schemes:
    #    real failures are detected at checkpoints, never earlier.
    for scheme in ("DRTS-DCTS", "DRTS-OCTS"):
        row = by_key[(scheme, 30.0)]
        if row["t_fail_measured"] > 0:
            assert row["t_fail_measured"] > row["t_fail_model"]
