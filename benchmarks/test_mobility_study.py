"""Bench: mobility / stale-bearing extension study.

The paper's Section 5 proposes further research on directional
collision avoidance; the binding constraint it assumes away is the
neighbor protocol's location accuracy.  This bench sweeps the neighbor
table's refresh interval for a saturated sender whose receiver wanders
at 25 m/s.
"""

from repro.dessim import seconds
from repro.experiments import format_mobility_table, run_mobility_study


def test_mobility_staleness(benchmark):
    points = benchmark.pedantic(
        run_mobility_study, rounds=1, iterations=1,
        kwargs={
            "refresh_seconds": (0.0, 1.0, 3.0),
            "sim_time_ns": seconds(4),
        },
    )
    print("\nExtension: 15-degree beams vs neighbor-table staleness (25 m/s)")
    print(format_mobility_table(points))

    def ratio(scheme, refresh):
        for pt in points:
            if pt.scheme == scheme and pt.refresh_s == refresh:
                return pt.delivery_ratio
        raise KeyError((scheme, refresh))

    # Omni transmission is bearing-free: staleness is irrelevant.
    assert ratio("ORTS-OCTS", 0.0) == ratio("ORTS-OCTS", 3.0)

    # With a perfect oracle the beamed scheme keeps up...
    assert ratio("DRTS-DCTS", 0.0) > 0.9
    # ...and degrades monotonically as bearings go stale.
    assert (
        ratio("DRTS-DCTS", 0.0)
        >= ratio("DRTS-DCTS", 1.0)
        >= ratio("DRTS-DCTS", 3.0)
    )
    assert ratio("DRTS-DCTS", 3.0) < ratio("DRTS-DCTS", 0.0)
