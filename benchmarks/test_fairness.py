"""Bench: the Section-4 fairness discussion, quantified.

The paper (results omitted for space) makes three claims about BEB
starvation under saturation:

1. the winner monopolizes the channel while others starve,
2. "when N is larger, the fairness problem is less severe",
3. "it is much more unfair when transmission beamwidth is wider".

Claims 2-3 are about tendencies with huge topology-to-topology
variance; this bench prints the full table and asserts only the robust
parts: fairness indices are valid, and starvation is visible (the index
drops well below 1) for saturated directional cells at small N.
"""

from repro.experiments import FairnessCell, format_fairness_table
from repro.metrics import summarize

from .conftest import mean_metric


def test_fairness(benchmark, sim_grid):
    config, cells = sim_grid

    def summarize_grid():
        return [
            FairnessCell(
                n=c.n,
                scheme=c.scheme,
                beamwidth_deg=c.beamwidth_deg,
                jain=summarize(c.metric("inner_fairness")),
            )
            for c in cells
        ]

    table = benchmark.pedantic(summarize_grid, rounds=1, iterations=1)
    print("\nSection 4 discussion: Jain fairness of inner-node throughputs")
    print(format_fairness_table(table))

    for cell in table:
        assert 0.0 < cell.jain.mean <= 1.0

    # Starvation exists: somewhere in the saturated grid the index
    # falls clearly below perfect fairness.
    assert min(cell.jain.minimum for cell in table) < 0.95
