"""Benches: extension studies beyond the paper's evaluation.

1. The Nasipuri et al. scheme (omni RTS/CTS + directional DATA/ACK),
   described in the paper's Section 1 but not simulated there.
2. A below-saturation load sweep (the paper only evaluates saturation).
3. The retry-limit sensitivity of the BEB-starvation mechanism the
   paper's Section 4 discusses.
"""

import math
import random

from repro.dessim import seconds
from repro.experiments import (
    format_load_sweep_table,
    format_scheme_comparison,
    run_load_sweep,
    run_scheme_comparison,
)
from repro.mac import MacParameters
from repro.net import NetworkSimulation, TopologyConfig, generate_ring_topology


def test_nasipuri_scheme_comparison(benchmark):
    rows = benchmark.pedantic(
        run_scheme_comparison, rounds=1, iterations=1,
        kwargs={"n": 8, "topologies": 2, "sim_time_ns": seconds(1)},
    )
    print("\nExtension: all four schemes, N=8, theta=30dg")
    print(format_scheme_comparison(rows))

    by_name = {row.scheme: row for row in rows}
    assert set(by_name) == {
        "ORTS-OCTS",
        "DRTS-DCTS",
        "DRTS-OCTS",
        "ORTS-OCTS-DDATA",
        "DORTS-OCTS",
    }
    # All schemes carry traffic.
    for row in rows:
        assert row.throughput_bps > 0
    # The paper's winner still wins with the fourth contender present.
    assert (
        by_name["DRTS-DCTS"].throughput_bps
        > by_name["ORTS-OCTS"].throughput_bps
    )


def test_load_sweep(benchmark):
    points = benchmark.pedantic(
        run_load_sweep, rounds=1, iterations=1,
        kwargs={
            "n": 3,
            "rates_pps": (2.0, 10.0, 40.0),
            "sim_time_ns": seconds(2),
        },
    )
    print("\nExtension: offered-load sweep, N=3, theta=30dg")
    print(format_load_sweep_table(points))

    for scheme in ("ORTS-OCTS", "DRTS-DCTS"):
        mine = [p for p in points if p.scheme == scheme]
        # At light load (2 pps/node ~= 0.07 Mbps) everything arrives
        # with near one-handshake delay.
        light = mine[0]
        assert light.delivery_ratio > 0.9
        assert light.mean_delay_s < 0.05
        # Delay grows with load.
        delays = [p.mean_delay_s for p in mine]
        assert delays[0] < delays[-1]


def test_retry_limit_sensitivity(benchmark):
    """BEB starvation: longer retry limits amplify winner-takes-all."""
    topo = generate_ring_topology(TopologyConfig(n=3), random.Random(123))

    def run_pair():
        out = {}
        for retry_limit in (7, 1000):
            result = NetworkSimulation(
                topo,
                "DRTS-DCTS",
                math.radians(30),
                seed=1,
                mac_params=MacParameters(retry_limit=retry_limit),
            ).run(seconds(2))
            out[retry_limit] = result
        return out

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print("\nExtension: retry-limit sensitivity (DRTS-DCTS, N=3, 30dg)")
    for retry_limit, result in results.items():
        print(
            f"  retry={retry_limit:4d}: thr={result.inner_throughput_bps / 1e6:.3f} Mbps "
            f"fairness={result.inner_fairness:.3f} "
            f"collisions={result.inner_collision_ratio:.3f}"
        )
    # With (effectively) no drops, losers camp at CW_max: fewer collisions.
    assert (
        results[1000].inner_collision_ratio
        <= results[7].inner_collision_ratio + 0.05
    )
