"""Benches: telemetry overhead on the instrumented hot paths.

Three timings of the same saturated network cell — no registry (the
pre-telemetry construction), a disabled registry (null instruments),
and a full registry — plus the slotsim equivalent.  The acceptance
criterion for the telemetry subsystem is that the disabled-path
overhead stays in the noise (≤2%); compare the benchmark medians, and
see the perf-gate job for the regression-enforced version.
"""

import math
import random

from repro.core import PAPER_PARAMETERS
from repro.dessim import seconds
from repro.net import NetworkSimulation, TopologyConfig, generate_ring_topology
from repro.obs import MetricsRegistry
from repro.slotsim import SlotModelConfig, SlotModelEngine

SIM_SECONDS = 0.5


def _topology():
    return generate_ring_topology(TopologyConfig(n=3), random.Random(7))


def _run_cell(metrics):
    net = NetworkSimulation(_topology(), "ORTS-OCTS", math.pi, seed=5, metrics=metrics)
    result = net.run(seconds(SIM_SECONDS))
    assert result.duration_ns > 0
    return result.inner_packets_delivered


def test_network_cell_no_registry(benchmark):
    """Pre-telemetry construction: metrics=None everywhere."""
    benchmark(_run_cell, None)


def test_network_cell_disabled_registry(benchmark):
    """Null instruments resolved at construction; inc() is a no-op."""
    benchmark(_run_cell, MetricsRegistry(enabled=False))


def test_network_cell_enabled_registry(benchmark):
    """Full harvest + per-transmission counters."""
    benchmark(lambda: _run_cell(MetricsRegistry()))


def test_slotsim_disabled_vs_missing_registry(benchmark):
    """Slot loop with a disabled registry (harvest skipped entirely)."""
    config = SlotModelConfig(
        params=PAPER_PARAMETERS.with_neighbors(3.0), p=0.05, seed=9
    )

    def run():
        return SlotModelEngine(config, metrics=MetricsRegistry(enabled=False)).run(
            5_000
        ).initiations

    assert benchmark(run) > 0
