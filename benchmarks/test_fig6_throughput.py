"""Bench: regenerate Fig. 6 (simulated throughput comparison).

Runs the shared simulation campaign (N x scheme x beamwidth grid of
saturated ring topologies) and prints the paper-style table: mean
inner-node throughput with the min-max range over topologies.

Shape assertions target the paper's headline finding where it is
statistically robust at bench scale: in dense networks (N = 8) the
all-directional DRTS-DCTS clearly outperforms omni-directional IEEE
802.11.  (At N = 3 the schemes are within noise of each other at bench
replicate counts; the paper itself needed 50 topologies.)
"""

from repro.experiments import Fig6Cell, format_fig6_table
from repro.metrics import summarize

from .conftest import mean_metric


def test_fig6_throughput(benchmark, sim_grid):
    config, cells = sim_grid

    def summarize_grid():
        return [
            Fig6Cell(
                n=c.n,
                scheme=c.scheme,
                beamwidth_deg=c.beamwidth_deg,
                throughput_bps=summarize(c.metric("inner_throughput_bps")),
            )
            for c in cells
        ]

    table = benchmark.pedantic(summarize_grid, rounds=1, iterations=1)
    print("\nFig. 6: simulated saturation throughput")
    print(format_fig6_table(table))

    # Curve shapes per density, like the paper's figure.
    from repro.report import line_chart

    for n in sorted(config.n_values):
        series = {}
        for scheme in config.schemes:
            pts = [
                (c.beamwidth_deg, c.throughput_bps.mean / 1e6)
                for c in table
                if c.n == n and c.scheme == scheme
            ]
            if len(pts) >= 2:
                series[scheme] = sorted(pts)
        if series:
            print()
            print(
                line_chart(
                    series,
                    title=f"Fig. 6 shape (N = {n})",
                    x_label="beamwidth (deg)",
                    y_label="throughput (Mbps)",
                    height=12,
                )
            )

    # Every cell produced live traffic.
    for cell in table:
        assert cell.throughput_bps.mean > 0

    if 8 in config.n_values:
        narrow = min(config.beamwidths_deg)
        drts = mean_metric(cells, 8, "DRTS-DCTS", narrow, "inner_throughput_bps")
        orts = mean_metric(cells, 8, "ORTS-OCTS", narrow, "inner_throughput_bps")
        # The paper's headline: aggressive spatial reuse wins in dense
        # networks — by a clear margin, not a whisker.
        assert drts > 1.3 * orts, (
            f"DRTS-DCTS ({drts / 1e6:.3f} Mbps) should clearly beat "
            f"ORTS-OCTS ({orts / 1e6:.3f} Mbps) at N=8"
        )
