"""Benches: raw performance of the simulation substrates.

Unlike the figure-regeneration benches (single-shot pedantic runs),
these are honest multi-round micro-benchmarks of the hot paths: the
event kernel, the radio/channel pair, and a saturated network second.
They exist so performance regressions in the substrate show up as
benchmark deltas rather than as mysteriously slower campaigns.
"""

import math
import random

from repro.dessim import Simulator, seconds
from repro.net import NetworkSimulation, TopologyConfig, generate_ring_topology
from repro.slotsim import SlotModelConfig, SlotModelEngine
from repro.core import PAPER_PARAMETERS


def test_event_kernel_throughput(benchmark):
    """Schedule-and-run 20k chained events."""

    def run():
        sim = Simulator()
        count = 0

        def tick(n):
            nonlocal count
            count += 1
            if n > 0:
                sim.schedule(10, tick, n - 1)

        for _ in range(20):
            sim.schedule(0, tick, 999)
        sim.run()
        return count

    assert benchmark(run) == 20_000


def test_timer_churn(benchmark):
    """Start/cancel cycles on a pool of timers (the MAC's hot pattern)."""
    from repro.dessim import Timer

    def run():
        sim = Simulator()
        fired = 0

        def on_fire():
            nonlocal fired
            fired += 1

        timers = [Timer(sim, f"t{i}", on_fire) for i in range(50)]
        for round_no in range(100):
            for timer in timers:
                timer.start(100 + round_no)
            for timer in timers[::2]:
                timer.cancel()
        sim.run()
        return fired

    # Every round's restart supersedes the previous round, so only the
    # final round's 25 surviving (odd-indexed) timers ever fire.
    assert benchmark(run) == 25


def test_saturated_network_second(benchmark):
    """One simulated second of the paper's N=3 saturated network."""
    topology = generate_ring_topology(TopologyConfig(n=3), random.Random(50))

    def run():
        net = NetworkSimulation(topology, "ORTS-OCTS", math.pi, seed=1)
        return net.run(seconds(1)).inner_packets_delivered

    delivered = benchmark(run)
    assert delivered > 0


def test_slotsim_throughput(benchmark):
    """10k slots of the abstract model world."""
    config = SlotModelConfig(
        params=PAPER_PARAMETERS.with_neighbors(3.0), p=0.02, seed=3
    )

    def run():
        return SlotModelEngine(config).run(10_000).initiations

    assert benchmark(run) > 0


def test_slotsim_high_load_churn(benchmark):
    """5k slots at saturation-level p: many concurrent handshakes.

    Guards the completion sweep in ``SlotModelEngine._advance`` — the
    old per-handshake ``list.remove`` made this regime O(active^2) per
    slot, so a regression shows up here first.
    """
    config = SlotModelConfig(
        params=PAPER_PARAMETERS.with_neighbors(8.0), p=0.25, seed=7
    )

    def run():
        return SlotModelEngine(config).run(5_000).initiations

    assert benchmark(run) > 1_000
