"""Benches: raw performance of the simulation substrates.

Unlike the figure-regeneration benches (single-shot pedantic runs),
these are honest multi-round micro-benchmarks of the hot paths: the
event kernel, the radio/channel pair, and a saturated network second.
They exist so performance regressions in the substrate show up as
benchmark deltas rather than as mysteriously slower campaigns.
"""

import math
import random

from repro.dessim import Simulator, seconds
from repro.net import NetworkSimulation, TopologyConfig, generate_ring_topology
from repro.slotsim import SlotModelConfig, SlotModelEngine
from repro.core import PAPER_PARAMETERS


def test_event_kernel_throughput(benchmark):
    """Schedule-and-run 20k chained events."""

    def run():
        sim = Simulator()
        count = 0

        def tick(n):
            nonlocal count
            count += 1
            if n > 0:
                sim.schedule(10, tick, n - 1)

        for _ in range(20):
            sim.schedule(0, tick, 999)
        sim.run()
        return count

    assert benchmark(run) == 20_000


def test_timer_churn(benchmark):
    """Start/cancel cycles on a pool of timers (the MAC's hot pattern)."""
    from repro.dessim import Timer

    def run():
        sim = Simulator()
        fired = 0

        def on_fire():
            nonlocal fired
            fired += 1

        timers = [Timer(sim, f"t{i}", on_fire) for i in range(50)]
        for round_no in range(100):
            for timer in timers:
                timer.start(100 + round_no)
            for timer in timers[::2]:
                timer.cancel()
        sim.run()
        return fired

    # Every round's restart supersedes the previous round, so only the
    # final round's 25 surviving (odd-indexed) timers ever fire.
    assert benchmark(run) == 25


def test_saturated_network_second(benchmark):
    """One simulated second of the paper's N=3 saturated network."""
    topology = generate_ring_topology(TopologyConfig(n=3), random.Random(50))

    def run():
        net = NetworkSimulation(topology, "ORTS-OCTS", math.pi, seed=1)
        return net.run(seconds(1)).inner_packets_delivered

    delivered = benchmark(run)
    assert delivered > 0


def test_large_topology_transmit_scan(benchmark):
    """0.2 simulated seconds of a ~200-node directional cell.

    The regime the channel's :class:`~repro.phy.LinkCache` was built
    for: with 200 nodes and 60-degree beams, every transmit resolves
    audibility through the sector index instead of an O(N) trig sweep.
    A regression in the cache hot path (row lookups, sector binning,
    the transmit loop) shows up here before anywhere else.
    """
    from repro.dessim.rng import RngRegistry

    topology = generate_ring_topology(
        TopologyConfig(n=8, rings=5), RngRegistry(7).stream("placement")
    )

    def run():
        net = NetworkSimulation(topology, "DRTS-OCTS", math.pi / 3, seed=1)
        return net.run(seconds(0.2)).inner_packets_delivered

    assert benchmark(run) > 0


def test_mobility_churn_invalidation(benchmark):
    """Saturated ring with wandering nodes: link-cache invalidation.

    Half the nodes move every simulated millisecond, so each step bumps
    a position epoch and forces lazy row rebuilds.  Guards the
    invalidation/rebuild cost the static benches never exercise.
    """
    from repro.dessim.rng import RngRegistry
    from repro.dessim.units import MILLISECOND
    from repro.mac.config import DSSS_MAC
    from repro.mac.dcf import DcfMac
    from repro.mac.neighbors import SnapshotNeighborTable
    from repro.mac.policy import POLICIES
    from repro.net.mobility import RandomWaypointMobility
    from repro.phy.channel import Channel
    from repro.phy.propagation import Position, UnitDiskPropagation
    from repro.phy.radio import Radio
    from repro.traffic.cbr import SaturatedCbrSource

    def run():
        sim = Simulator()
        channel = Channel(sim, propagation=UnitDiskPropagation(range_m=250.0))
        rng = RngRegistry(13)
        n = 12
        radios = {
            nid: Radio(
                sim,
                nid,
                Position(
                    150.0 * math.cos(2 * math.pi * nid / n),
                    150.0 * math.sin(2 * math.pi * nid / n),
                ),
                channel,
            )
            for nid in range(n)
        }
        macs = {
            nid: DcfMac(
                sim,
                radios[nid],
                DSSS_MAC,
                SnapshotNeighborTable(channel, nid, 10 * MILLISECOND, sim=sim),
                POLICIES["DRTS-OCTS"],
                beamwidth=math.pi / 3,
                rng=rng.stream(f"mac{nid}"),
            )
            for nid in range(n)
        }
        for nid in range(0, n, 2):
            RandomWaypointMobility(
                sim,
                radios[nid],
                rng.stream(f"waypoints{nid}"),
                speed_mps=50.0,
                bounds=(-250.0, -250.0, 250.0, 250.0),
                step_ns=MILLISECOND,
            ).start()
        for nid in range(n):
            SaturatedCbrSource(
                sim, macs[nid], [(nid + 1) % n], rng.stream(f"traffic{nid}")
            ).start()
        sim.run(until=seconds(0.2))
        assert channel.cache is not None and channel.cache.move_seq > n
        return sim.events_processed

    assert benchmark(run) > 1_000


def test_multihop_medium_relay_plane(benchmark):
    """0.2 simulated seconds of routed flows over a connected cell.

    The full multi-hop stack — greedy geographic routing, per-node
    forwarding agents, flow sources — on the directional MAC.  Guards
    the relay plane (queue handling, payload plumbing, delivery
    listeners), which the single-hop benches never touch.
    """
    from repro.dessim.rng import RngRegistry
    from repro.net import (
        MultihopNetworkSimulation,
        generate_connected_ring_topology,
    )

    topology = generate_connected_ring_topology(
        TopologyConfig(n=5, rings=2), RngRegistry(2).stream("placement")
    )

    def run():
        net = MultihopNetworkSimulation(
            topology, "DRTS-OCTS", math.pi / 2, seed=1
        )
        return net.run(seconds(0.2)).packets_delivered_e2e

    assert benchmark(run) > 0


def test_slotsim_throughput(benchmark):
    """10k slots of the abstract model world."""
    config = SlotModelConfig(
        params=PAPER_PARAMETERS.with_neighbors(3.0), p=0.02, seed=3
    )

    def run():
        return SlotModelEngine(config).run(10_000).initiations

    assert benchmark(run) > 0


def test_slotsim_high_load_churn(benchmark):
    """5k slots at saturation-level p: many concurrent handshakes.

    Guards the completion sweep in ``SlotModelEngine._advance`` — the
    old per-handshake ``list.remove`` made this regime O(active^2) per
    slot, so a regression shows up here first.
    """
    config = SlotModelConfig(
        params=PAPER_PARAMETERS.with_neighbors(8.0), p=0.25, seed=7
    )

    def run():
        return SlotModelEngine(config).run(5_000).initiations

    assert benchmark(run) > 1_000
