"""Bench: regenerate Fig. 7 (simulated average delay comparison).

Same campaign as Fig. 6, summarizing mean MAC service delay.  The
paper: "with a more aggressive way of channel access to achieve spatial
reuse, the DRTS-DCTS scheme also enjoys on average less delay than the
other two schemes, especially when N is large."
"""

from repro.experiments import Fig7Cell, format_fig7_table
from repro.metrics import summarize

from .conftest import mean_metric


def test_fig7_delay(benchmark, sim_grid):
    config, cells = sim_grid

    def summarize_grid():
        return [
            Fig7Cell(
                n=c.n,
                scheme=c.scheme,
                beamwidth_deg=c.beamwidth_deg,
                delay_s=summarize(c.metric("inner_mean_delay_s")),
            )
            for c in cells
        ]

    table = benchmark.pedantic(summarize_grid, rounds=1, iterations=1)
    print("\nFig. 7: simulated mean MAC service delay")
    print(format_fig7_table(table))

    # Tail behaviour (not in the paper, useful context): pooled delay
    # percentiles per cell for the narrowest beamwidth.
    from repro.metrics import delay_percentiles

    narrow = min(config.beamwidths_deg)
    print("delay percentiles (pooled over replicates, narrowest beam):")
    for cell in cells:
        if cell.beamwidth_deg != narrow:
            continue
        pooled = {}
        for index, result in enumerate(cell.results):
            for node_id in result.inner_ids:
                pooled[(index, node_id)] = result.stats[node_id]
        tails = delay_percentiles(pooled, quantiles=(0.5, 0.9, 0.99))
        if tails:
            print(
                f"  N={cell.n} {cell.scheme:10s} "
                f"p50={tails[0.5] * 1e3:7.1f}ms  "
                f"p90={tails[0.9] * 1e3:7.1f}ms  "
                f"p99={tails[0.99] * 1e3:7.1f}ms"
            )

    for cell in table:
        assert 0.0 < cell.delay_s.mean < 10.0  # sane seconds range

    if 8 in config.n_values:
        narrow = min(config.beamwidths_deg)
        drts = mean_metric(cells, 8, "DRTS-DCTS", narrow, "inner_mean_delay_s")
        orts = mean_metric(cells, 8, "ORTS-OCTS", narrow, "inner_mean_delay_s")
        assert drts < orts, (
            f"DRTS-DCTS delay ({drts * 1e3:.1f} ms) should undercut "
            f"ORTS-OCTS ({orts * 1e3:.1f} ms) at N=8"
        )

    # Delay advantage also holds at every configured density for the
    # narrowest beam (the paper's "less time in waiting").
    narrow = min(config.beamwidths_deg)
    for n in config.n_values:
        drts = mean_metric(cells, n, "DRTS-DCTS", narrow, "inner_mean_delay_s")
        orts = mean_metric(cells, n, "ORTS-OCTS", narrow, "inner_mean_delay_s")
        assert drts < 1.5 * orts  # never catastrophically worse
