"""Bench: the analytical baseline ladder (extension study).

CSMA -> busy tone -> RTS/CTS -> directional beams, swept over data
length within the paper's model.  Asserts the two classic crossovers
that frame the paper's contribution.
"""

from repro.experiments import format_baseline_table, run_baseline_ladder


def test_baseline_ladder(benchmark):
    rows = benchmark.pedantic(
        run_baseline_ladder, rounds=1, iterations=1,
        kwargs={"n_neighbors": 5.0, "beamwidth_deg": 30.0},
    )
    print("\nBaseline ladder (N=5, theta=30dg), max throughput vs data length")
    print(format_baseline_table(rows))

    by_length = {row.l_data: row.throughput for row in rows}

    # Crossover 1: with short data, zero-overhead coordination (busy
    # tone) beats the handshake; with long data the handshake wins.
    assert by_length[10.0]["BTMA-ideal"] > by_length[10.0]["ORTS-OCTS"]
    assert by_length[100.0]["ORTS-OCTS"] > by_length[100.0]["BTMA-ideal"]

    # CSMA collapses as data grows (the hidden-terminal disaster).
    assert by_length[200.0]["NP-CSMA"] < 0.1 * by_length[200.0]["ORTS-OCTS"]

    # Crossover 2 (the paper's point): narrow-beam spatial reuse tops
    # the ladder at the paper's operating point (data 20x control).
    for l_data in (50.0, 100.0):
        assert rows[[r.l_data for r in rows].index(l_data)].winner() == "DRTS-DCTS"

    # Crossover 3 (a finding of this ladder): with *very* long data the
    # unprotected directional handshake becomes fragile and the fully
    # protected omni handshake retakes the lead at theta = 30 degrees.
    assert rows[[r.l_data for r in rows].index(200.0)].winner() == "ORTS-OCTS"
