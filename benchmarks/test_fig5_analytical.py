"""Bench: regenerate Fig. 5 (analytical max throughput vs beamwidth).

Prints the three curves for each simulated density and asserts the
paper's qualitative findings:

* DRTS-DCTS is the best of the three at narrow beamwidths,
* its advantage decays as the beamwidth widens (dropping below
  ORTS-OCTS at wide beams),
* DRTS-OCTS beats ORTS-OCTS but only modestly next to narrow-beam
  DRTS-DCTS,
* ORTS-OCTS is flat in beamwidth by construction.
"""

import math

from repro.experiments import format_fig5_table, run_fig5
from repro.report import line_chart


def fig5_all_densities():
    return {n: run_fig5(n_neighbors=float(n)) for n in (3, 5, 8)}


def test_fig5_curves(benchmark):
    per_density = benchmark.pedantic(fig5_all_densities, rounds=1, iterations=1)

    for n, rows in per_density.items():
        print(f"\nFig. 5 (N = {n}): max throughput vs beamwidth")
        print(format_fig5_table(rows))
        schemes = sorted(rows[0].throughput)
        print()
        print(
            line_chart(
                {
                    s: [(r.beamwidth_deg, r.throughput[s]) for r in rows]
                    for s in schemes
                },
                title=f"Fig. 5 shape (N = {n})",
                x_label="beamwidth (deg)",
                y_label="max throughput",
            )
        )

        by_deg = {round(row.beamwidth_deg): row.throughput for row in rows}

        # ORTS-OCTS ignores beamwidth: the curve is flat.
        orts = [row.throughput["ORTS-OCTS"] for row in rows]
        assert max(orts) - min(orts) < 1e-3 * max(orts)

        # DRTS-DCTS wins at the narrowest beamwidth...
        narrow = by_deg[15]
        assert narrow["DRTS-DCTS"] > narrow["DRTS-OCTS"] > narrow["ORTS-OCTS"]

        # ...and decays monotonically up to 150 degrees.  (Beyond that
        # the paper's own Area II/III expressions degenerate —
        # tan(theta/2) diverges at 180 degrees — and the clamped areas
        # produce a small end-of-range kink; see DESIGN.md.)
        dcts = [
            row.throughput["DRTS-DCTS"]
            for row in rows
            if row.beamwidth_deg <= 150.0 + 1e-9
        ]
        assert all(a >= b - 1e-4 for a, b in zip(dcts, dcts[1:]))

        # At 180 degrees the all-directional scheme has lost its edge.
        wide = by_deg[180]
        assert wide["DRTS-DCTS"] < wide["ORTS-OCTS"]

        # DRTS-OCTS beats ORTS-OCTS at narrow beamwidths (marginally,
        # next to DRTS-DCTS); in our model it crosses below the flat
        # ORTS-OCTS line for wide beams (documented in EXPERIMENTS.md).
        for deg in (15, 30, 45):
            assert by_deg[deg]["DRTS-OCTS"] > by_deg[deg]["ORTS-OCTS"]
