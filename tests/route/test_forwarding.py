"""Tests for the relay plane (ForwardingAgent + FlowPayload)."""

import math

import pytest

from repro.dessim import RngRegistry, Simulator, seconds
from repro.mac import DSSS_MAC, DcfMac, NeighborTable, POLICIES, Packet
from repro.phy import Channel, Position, Radio, UnitDiskPropagation
from repro.route import FlowPayload, ForwardingAgent, GreedyGeographicRouter


class ChainNetwork:
    """A chain of DcfMac nodes, each with a ForwardingAgent."""

    def __init__(self, positions, *, max_queue=50, ttl=32, router=None):
        self.sim = Simulator()
        self.channel = Channel(
            self.sim, propagation=UnitDiskPropagation(range_m=300.0)
        )
        rng = RngRegistry(11)
        self.macs: dict[int, DcfMac] = {}
        self.radios: dict[int, Radio] = {}
        tables: dict[int, NeighborTable] = {}
        for node_id, (x, y) in sorted(positions.items()):
            radio = Radio(self.sim, node_id, Position(x, y), self.channel)
            self.radios[node_id] = radio
            tables[node_id] = NeighborTable(self.channel, node_id)
            self.macs[node_id] = DcfMac(
                self.sim,
                radio,
                DSSS_MAC,
                tables[node_id],
                POLICIES["ORTS-OCTS"],
                beamwidth=math.pi,
                rng=rng.stream(f"mac-{node_id}"),
            )
        self.router = router if router is not None else GreedyGeographicRouter(tables)
        self.agents = {
            node_id: ForwardingAgent(
                self.sim, mac, self.router, max_queue=max_queue, ttl=ttl
            )
            for node_id, mac in sorted(self.macs.items())
        }
        self.deliveries: list[tuple[FlowPayload, int, int]] = []
        for agent in self.agents.values():
            agent.delivery_listeners.append(
                lambda payload, delay, hops: self.deliveries.append(
                    (payload, delay, hops)
                )
            )

    def originate(self, src, dst, *, seq=0, size=1460):
        return self.agents[src].originate(
            FlowPayload(
                flow_id=f"{src}->{dst}",
                src=src,
                dst=dst,
                seq=seq,
                created_ns=self.sim.now,
            ),
            size,
        )


#: 0 - 1 - 2, each hop 250 m: ends are out of each other's range.
CHAIN3 = {0: (0, 0), 1: (250, 0), 2: (500, 0)}


class TestFlowPayload:
    def test_rejects_self_flow(self):
        with pytest.raises(ValueError):
            FlowPayload(flow_id="0->0", src=0, dst=0, seq=0, created_ns=0)

    def test_rejects_negative_times_and_hops(self):
        with pytest.raises(ValueError):
            FlowPayload(flow_id="0->1", src=0, dst=1, seq=0, created_ns=-1)
        with pytest.raises(ValueError):
            FlowPayload(
                flow_id="0->1", src=0, dst=1, seq=0, created_ns=0, hop_count=-1
            )


class TestEndToEndRelay:
    def test_two_hop_delivery(self):
        net = ChainNetwork(CHAIN3)
        assert net.originate(0, 2) is True
        net.sim.run(until=seconds(1))
        assert len(net.deliveries) == 1
        payload, delay_ns, hops = net.deliveries[0]
        assert payload.dst == 2
        assert hops == 2
        assert delay_ns > 0

    def test_stats_accounting_along_the_path(self):
        net = ChainNetwork(CHAIN3)
        net.originate(0, 2)
        net.sim.run(until=seconds(1))
        assert net.agents[0].stats.originated == 1
        assert net.agents[1].stats.forwarded == 1
        assert net.agents[2].stats.delivered == 1
        for agent in net.agents.values():
            assert agent.stats.dropped_total == 0

    def test_direct_neighbor_is_single_hop(self):
        net = ChainNetwork(CHAIN3)
        net.originate(0, 1)
        net.sim.run(until=seconds(1))
        (_, _, hops) = net.deliveries[0]
        assert hops == 1

    def test_origin_src_must_match_node(self):
        net = ChainNetwork(CHAIN3)
        with pytest.raises(ValueError):
            net.agents[0].originate(
                FlowPayload(flow_id="1->2", src=1, dst=2, seq=0, created_ns=0),
                1460,
            )


class TestDrops:
    def test_dead_end_counted_at_origin(self):
        # Destination west of 0; the only neighbor is east: greedy has
        # no progress to offer and the packet dies at the origin.
        net = ChainNetwork({0: (0, 0), 1: (250, 0), 9: (-1000, 0)})
        assert net.originate(0, 9) is False
        assert net.agents[0].stats.dropped_dead_end == 1
        assert net.agents[0].stats.originated == 1

    def test_dead_end_counted_in_transit(self):
        # 0 -> 9 makes one hop of progress to 1, which is then stuck:
        # the drop is accounted at the relay, not the origin.
        net = ChainNetwork({0: (0, 0), 1: (250, 0), 9: (2000, 0)})
        assert net.originate(0, 9) is True
        net.sim.run(until=seconds(1))
        assert net.agents[1].stats.dropped_dead_end == 1
        assert net.agents[1].stats.forwarded == 0

    def test_queue_full_counted(self):
        net = ChainNetwork(CHAIN3, max_queue=1)
        # First originate goes straight into the MAC (queue stays empty),
        # second fills the relay queue, the rest must drop.
        accepted = [net.originate(0, 2, seq=i) for i in range(5)]
        assert accepted == [True, True, False, False, False]
        assert net.agents[0].stats.dropped_queue_full == 3

    def test_ttl_drop_on_forwarding_loop(self):
        class PingPongRouter:
            """Pathological router: 0 and 1 bounce packets forever."""

            def next_hop(self, current, dst):
                return 1 if current == 0 else 0

        net = ChainNetwork(
            {0: (0, 0), 1: (250, 0), 2: (500, 0)},
            router=PingPongRouter(),
            ttl=4,
        )
        net.originate(0, 2)
        net.sim.run(until=seconds(2))
        assert net.deliveries == []
        dropped = sum(a.stats.dropped_ttl for a in net.agents.values())
        assert dropped == 1  # the bounced packet died at the hop budget

    def test_mac_failure_counted(self):
        # The next hop moves out of range after routing resolved: RTS
        # retries exhaust and the MAC reports a service failure.
        net = ChainNetwork({0: (0, 0), 1: (250, 0)})
        net.originate(0, 1)
        net.radios[1].position = Position(5000.0, 0.0)
        net.sim.run(until=seconds(2))
        assert net.agents[0].stats.dropped_mac == 1


class TestCoexistence:
    def test_plain_mac_traffic_ignored(self):
        """Single-hop packets without FlowPayload don't touch the agent."""
        net = ChainNetwork(CHAIN3)
        net.macs[0].enqueue(Packet(dst=1, size_bytes=512, created_ns=0))
        net.sim.run(until=seconds(1))
        assert net.deliveries == []
        for agent in net.agents.values():
            assert agent.stats.dropped_total == 0
            assert agent.stats.delivered == 0

    def test_one_packet_in_mac_at_a_time(self):
        net = ChainNetwork(CHAIN3)
        for seq in range(5):
            net.originate(0, 2, seq=seq)
        assert net.macs[0].queue_length == 1
        assert net.agents[0].queue_length == 4
        net.sim.run(until=seconds(2))
        assert len(net.deliveries) == 5


class TestAgentValidation:
    def test_rejects_bad_bounds(self):
        net = ChainNetwork(CHAIN3)
        with pytest.raises(ValueError):
            ForwardingAgent(net.sim, net.macs[0], net.router, max_queue=0)
        with pytest.raises(ValueError):
            ForwardingAgent(net.sim, net.macs[0], net.router, ttl=0)
