"""Tests for the forwarding counter bundle."""

from repro.obs import MetricsRegistry
from repro.route import RouteStats


class TestRouteStats:
    def test_dropped_total(self):
        stats = RouteStats(
            dropped_queue_full=1, dropped_dead_end=2, dropped_ttl=3, dropped_mac=4
        )
        assert stats.dropped_total == 10

    def test_reset(self):
        stats = RouteStats(originated=5, forwarded=3, delivered=2, dropped_ttl=1)
        stats.reset()
        assert stats == RouteStats()

    def test_merge(self):
        total = RouteStats(originated=1, dropped_mac=1)
        total.merge(RouteStats(originated=2, forwarded=4, dropped_mac=3))
        assert total.originated == 3
        assert total.forwarded == 4
        assert total.dropped_mac == 4

    def test_publish_harvests_counters(self):
        metrics = MetricsRegistry()
        RouteStats(originated=7, delivered=5, dropped_queue_full=2).publish(metrics)
        RouteStats(originated=1).publish(metrics)  # accumulates
        snapshot = metrics.snapshot()["counters"]
        assert snapshot["route.originated"] == 8
        assert snapshot["route.delivered"] == 5
        assert snapshot["route.dropped_queue_full"] == 2
