"""Tests for the next-hop strategies."""

import pytest

from repro.dessim import Simulator
from repro.mac import NeighborTable
from repro.net import Topology, TopologyConfig
from repro.phy import Channel, Position, Radio, UnitDiskPropagation
from repro.route import GreedyGeographicRouter, StaticShortestPathRouter


def make_tables(positions, range_m=300.0):
    """Real channel + one NeighborTable per node at the given positions."""
    sim = Simulator()
    channel = Channel(sim, propagation=UnitDiskPropagation(range_m=range_m))
    for node_id, (x, y) in positions.items():
        Radio(sim, node_id, Position(x, y), channel)
    return {node_id: NeighborTable(channel, node_id) for node_id in positions}


def make_topology(positions, range_m=300.0):
    """A Topology wrapping explicit positions (ring labels irrelevant)."""
    return Topology(
        config=TopologyConfig(n=2, range_m=range_m),
        positions={nid: Position(x, y) for nid, (x, y) in positions.items()},
        ring_of={nid: 0 for nid in positions},
    )


#: A 4-node chain: 0 - 1 - 2 - 3, each hop 250 m (range 300 m).
CHAIN = {0: (0, 0), 1: (250, 0), 2: (500, 0), 3: (750, 0)}


class TestGreedyGeographicRouter:
    def test_direct_neighbor_wins(self):
        router = GreedyGeographicRouter(make_tables(CHAIN))
        assert router.next_hop(0, 1) == 1

    def test_routes_toward_far_destination(self):
        router = GreedyGeographicRouter(make_tables(CHAIN))
        assert router.next_hop(0, 3) == 1
        assert router.next_hop(1, 3) == 2
        assert router.next_hop(2, 3) == 3

    def test_dead_end_returns_none(self):
        # Destination west of 0; 0's only neighbor sits east (farther
        # from it): a local minimum, so greedy must refuse to forward.
        positions = {0: (0, 0), 1: (250, 0), 9: (-1000, 0)}
        router = GreedyGeographicRouter(make_tables(positions))
        assert router.next_hop(0, 9) is None

    def test_no_backward_progress(self):
        # From 1, destination far west beyond 0: 0 is closer to it, but
        # from 0 nothing is; greedy still hands 0 the packet (progress),
        # and 0 reports the dead end.
        positions = {0: (0, 0), 1: (250, 0), 9: (-2000, 0)}
        router = GreedyGeographicRouter(make_tables(positions))
        assert router.next_hop(1, 9) == 0
        assert router.next_hop(0, 9) is None

    def test_tie_breaks_to_smallest_id(self):
        # 1 and 2 are equidistant from 3; both make equal progress.
        positions = {0: (0, 0), 1: (200, 100), 2: (200, -100), 3: (400, 0)}
        router = GreedyGeographicRouter(make_tables(positions))
        assert router.next_hop(0, 3) == 1

    def test_current_equals_destination_rejected(self):
        router = GreedyGeographicRouter(make_tables(CHAIN))
        with pytest.raises(ValueError):
            router.next_hop(1, 1)


class TestStaticShortestPathRouter:
    def test_chain_next_hops(self):
        router = StaticShortestPathRouter.from_topology(make_topology(CHAIN))
        assert router.next_hop(0, 3) == 1
        assert router.next_hop(1, 3) == 2
        assert router.next_hop(2, 3) == 3
        assert router.next_hop(3, 0) == 2

    def test_hop_count(self):
        router = StaticShortestPathRouter.from_topology(make_topology(CHAIN))
        assert router.hop_count(0, 3) == 3
        assert router.hop_count(0, 1) == 1
        assert router.hop_count(2, 0) == 2

    def test_unreachable_returns_none(self):
        positions = {0: (0, 0), 1: (250, 0), 2: (5000, 0)}
        router = StaticShortestPathRouter.from_topology(make_topology(positions))
        assert router.next_hop(0, 2) is None
        assert router.hop_count(0, 2) is None

    def test_shortest_path_tie_breaks_to_smallest_id(self):
        # Two equal-length paths 0-1-3 and 0-2-3: BFS explores sorted
        # adjacency, so the next hop must be the smaller relay id.
        positions = {0: (0, 0), 1: (200, 100), 2: (200, -100), 3: (400, 0)}
        router = StaticShortestPathRouter.from_topology(make_topology(positions))
        assert router.next_hop(0, 3) == 1

    def test_current_equals_destination_rejected(self):
        router = StaticShortestPathRouter.from_topology(make_topology(CHAIN))
        with pytest.raises(ValueError):
            router.next_hop(2, 2)

    def test_agrees_with_greedy_on_chain(self):
        tables = make_tables(CHAIN)
        greedy = GreedyGeographicRouter(tables)
        static = StaticShortestPathRouter.from_topology(make_topology(CHAIN))
        for src in CHAIN:
            for dst in CHAIN:
                if src == dst:
                    continue
                assert greedy.next_hop(src, dst) == static.next_hop(src, dst)
