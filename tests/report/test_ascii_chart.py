"""Tests for the terminal line-chart renderer."""

import pytest

from repro.report import line_chart


def simple_series():
    return {"up": [(0.0, 0.0), (1.0, 1.0)], "down": [(0.0, 1.0), (1.0, 0.0)]}


class TestLineChart:
    def test_contains_markers_and_legend(self):
        text = line_chart(simple_series())
        assert "o=up" in text
        assert "x=down" in text
        assert "o" in text
        assert "x" in text

    def test_title_and_labels(self):
        text = line_chart(
            simple_series(), title="T", x_label="xs", y_label="ys"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "xs" in text
        assert "ys" in text

    def test_extremes_on_grid_edges(self):
        text = line_chart({"s": [(0.0, 0.0), (10.0, 5.0)]}, width=20, height=6)
        lines = [l for l in text.splitlines() if "|" in l]
        # Max value appears on the top plot row, min on the bottom.
        assert "o" in lines[0]
        assert "o" in lines[-1]

    def test_y_axis_ticks(self):
        text = line_chart({"s": [(0.0, 2.0), (1.0, 8.0)]})
        assert "8" in text
        assert "2" in text

    def test_flat_series_does_not_crash(self):
        text = line_chart({"s": [(0.0, 3.0), (1.0, 3.0)]})
        assert "o" in text

    def test_single_point(self):
        text = line_chart({"s": [(1.0, 1.0)]})
        assert "o" in text

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"s": []})

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ValueError):
            line_chart(simple_series(), width=3)
        with pytest.raises(ValueError):
            line_chart(simple_series(), height=2)

    def test_rejects_too_many_series(self):
        series = {f"s{i}": [(0.0, float(i))] for i in range(9)}
        with pytest.raises(ValueError):
            line_chart(series)

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            line_chart({"s": [(0.0, float("nan"))]})

    def test_deterministic(self):
        assert line_chart(simple_series()) == line_chart(simple_series())
