"""Tests for the ASCII topology map."""

import random

import pytest

from repro.net import TopologyConfig, generate_ring_topology
from repro.report import topology_map


@pytest.fixture(scope="module")
def topology():
    return generate_ring_topology(TopologyConfig(n=3), random.Random(8))


class TestTopologyMap:
    def test_contains_all_ring_markers(self, topology):
        text = topology_map(topology)
        assert "#" in text  # inner
        assert "+" in text  # middle
        assert "." in text  # outer
        assert "o" in text  # origin

    def test_legend(self, topology):
        text = topology_map(topology)
        assert "3 measured" in text
        assert "900 m" in text  # 3 rings x 300 m

    def test_marker_counts_bounded_by_population(self, topology):
        # Grid cells can merge nodes, never invent them.
        text = topology_map(topology, width=121)
        body = text.rsplit("\n", 1)[0]
        assert body.count("#") <= 3
        assert body.count("+") <= 9
        assert body.count(".") <= 15

    def test_rejects_tiny_width(self, topology):
        with pytest.raises(ValueError):
            topology_map(topology, width=10)

    def test_deterministic(self, topology):
        assert topology_map(topology) == topology_map(topology)
