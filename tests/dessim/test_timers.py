"""Tests for restartable timers."""

import pytest

from repro.dessim import SimulationError, Simulator, Timer


class TestTimer:
    def test_fires_after_delay(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, "t", lambda: fired.append(sim.now))
        timer.start(250)
        sim.run()
        assert fired == [250]

    def test_passes_args(self):
        sim = Simulator()
        got = []
        timer = Timer(sim, "t", lambda a, b: got.append((a, b)))
        timer.start(10, "x", 42)
        sim.run()
        assert got == [("x", 42)]

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, "t", lambda: fired.append(True))
        timer.start(100)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_cancel_idempotent(self):
        sim = Simulator()
        timer = Timer(sim, "t", lambda: None)
        timer.cancel()
        timer.start(10)
        timer.cancel()
        timer.cancel()
        sim.run()

    def test_restart_supersedes_previous(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, "t", lambda: fired.append(sim.now))
        timer.start(100)
        timer.start(300)  # re-arm before the first expiry
        sim.run()
        assert fired == [300]

    def test_restart_after_firing(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, "t", lambda: fired.append(sim.now))
        timer.start(50)
        sim.run()
        timer.start(50)
        sim.run()
        assert fired == [50, 100]

    def test_pending_lifecycle(self):
        sim = Simulator()
        timer = Timer(sim, "t", lambda: None)
        assert not timer.pending
        timer.start(100)
        assert timer.pending
        assert timer.expiry == 100
        assert timer.remaining == 100
        sim.run()
        assert not timer.pending
        assert timer.expiry is None
        assert timer.remaining is None

    def test_remaining_counts_down(self):
        sim = Simulator()
        timer = Timer(sim, "t", lambda: None)
        timer.start(100)
        sim.schedule(40, lambda: None)
        sim.step()
        assert timer.remaining == 60

    def test_negative_delay_rejected(self):
        sim = Simulator()
        timer = Timer(sim, "t", lambda: None)
        with pytest.raises(SimulationError):
            timer.start(-5)

    def test_timer_restart_from_own_callback(self):
        sim = Simulator()
        fired = []

        def on_fire():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.start(10)

        timer = Timer(sim, "t", on_fire)
        timer.start(10)
        sim.run()
        assert fired == [10, 20, 30]
