"""Tests for the structured tracer."""

import pytest

from repro.dessim import Tracer


class TestTracer:
    def test_disabled_by_default(self):
        tracer = Tracer()
        tracer.record(10, "mac", 0, "rts-sent")
        assert len(tracer) == 0

    def test_enabled_records(self):
        tracer = Tracer(enabled=True)
        tracer.record(10, "mac", 0, "rts-sent", dst=3)
        assert len(tracer) == 1
        record = next(iter(tracer))
        assert record.time == 10
        assert record.category == "mac"
        assert record.node == 0
        assert record.event == "rts-sent"
        assert record.detail == {"dst": 3}

    def test_filter_by_category(self):
        tracer = Tracer(enabled=True)
        tracer.record(1, "mac", 0, "rts-sent")
        tracer.record(2, "phy", 0, "tx-start")
        assert len(tracer.filter(category="mac")) == 1

    def test_filter_by_node_and_event(self):
        tracer = Tracer(enabled=True)
        tracer.record(1, "mac", 0, "rts-sent")
        tracer.record(2, "mac", 1, "rts-sent")
        tracer.record(3, "mac", 1, "cts-sent")
        assert len(tracer.filter(node=1)) == 2
        assert len(tracer.filter(node=1, event="rts-sent")) == 1

    def test_filter_with_predicate(self):
        tracer = Tracer(enabled=True)
        for t in range(5):
            tracer.record(t, "mac", 0, "tick")
        late = tracer.filter(predicate=lambda r: r.time >= 3)
        assert [r.time for r in late] == [3, 4]

    def test_capacity_bounds_memory(self):
        tracer = Tracer(enabled=True, capacity=3)
        for t in range(10):
            tracer.record(t, "mac", 0, "tick")
        assert len(tracer) == 3
        assert [r.time for r in tracer] == [7, 8, 9]

    def test_unbounded_capacity(self):
        tracer = Tracer(enabled=True, capacity=None)
        for t in range(1000):
            tracer.record(t, "mac", 0, "tick")
        assert len(tracer) == 1000

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_clear(self):
        tracer = Tracer(enabled=True)
        tracer.record(1, "mac", 0, "x")
        tracer.clear()
        assert len(tracer) == 0

    def test_str_rendering(self):
        tracer = Tracer(enabled=True)
        tracer.record(42, "mac", 7, "rts-sent", dst=3)
        text = str(next(iter(tracer)))
        assert "mac.rts-sent" in text
        assert "dst=3" in text


class TestUnits:
    def test_exact_table1_values(self):
        from repro.dessim import microseconds, seconds, to_microseconds, to_seconds

        assert microseconds(20) == 20_000
        assert microseconds(192) == 192_000
        assert microseconds(1) == 1_000
        assert seconds(1) == 1_000_000_000
        assert to_microseconds(20_000) == 20.0
        assert to_seconds(1_500_000_000) == 1.5

    def test_bit_time_at_2mbps_is_exact(self):
        # 1 bit at 2 Mbps = 500 ns exactly; 1460 bytes = 5.84 ms exactly.
        bit_ns = 1_000_000_000 // 2_000_000
        assert bit_ns == 500
        assert 1460 * 8 * bit_ns == 5_840_000
