"""Tests for the discrete-event scheduler."""

import pytest
from hypothesis import given, strategies as st

from repro.dessim import SimulationError, Simulator, make_simulator


class TestScheduling:
    def test_starts_at_zero(self):
        assert Simulator().now == 0

    def test_single_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(100, fired.append, "a")
        sim.run()
        assert fired == ["a"]
        assert sim.now == 100

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(300, order.append, 3)
        sim.schedule(100, order.append, 1)
        sim.schedule(200, order.append, 2)
        sim.run()
        assert order == [1, 2, 3]

    def test_fifo_among_simultaneous_events(self):
        sim = Simulator()
        order = []
        for label in ("first", "second", "third"):
            sim.schedule(50, order.append, label)
        sim.run()
        assert order == ["first", "second", "third"]

    def test_zero_delay_allowed(self):
        sim = Simulator()
        fired = []
        sim.schedule(0, fired.append, True)
        sim.run()
        assert fired == [True]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(50, lambda: None)

    def test_non_integer_time_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_at(1.5, lambda: None)

    @pytest.mark.parametrize("scheduler", ["wheel", "heap"])
    def test_bool_delay_rejected(self, scheduler):
        # bool subclasses int, so the old isinstance check let
        # schedule(True, ...) through; a boolean delay is always an
        # upstream bug and must be rejected explicitly.
        sim = make_simulator(scheduler=scheduler)
        with pytest.raises(SimulationError):
            sim.schedule(True, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_at(False, lambda: None)

    @pytest.mark.parametrize("scheduler", ["wheel", "heap"])
    def test_float_delay_rejected(self, scheduler):
        sim = make_simulator(scheduler=scheduler)
        with pytest.raises(SimulationError):
            sim.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.reschedule(None, 2.5, lambda: None, ())

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SimulationError):
            make_simulator(scheduler="splay-tree")

    def test_events_scheduled_from_callbacks(self):
        sim = Simulator()
        times = []

        def chain(n):
            times.append(sim.now)
            if n > 0:
                sim.schedule(10, chain, n - 1)

        sim.schedule(0, chain, 3)
        sim.run()
        assert times == [0, 10, 20, 30]

    def test_callback_cannot_schedule_into_past(self):
        sim = Simulator()

        def bad():
            sim.schedule_at(sim.now - 1, lambda: None)

        sim.schedule(10, bad)
        with pytest.raises(SimulationError):
            sim.run()


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(100, fired.append, "x")
        sim.cancel(event)
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(100, lambda: None)
        sim.cancel(event)
        sim.cancel(event)
        sim.run()

    def test_cancel_from_callback(self):
        sim = Simulator()
        fired = []
        later = sim.schedule(200, fired.append, "later")
        sim.schedule(100, lambda: sim.cancel(later))
        sim.run()
        assert fired == []

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(10, lambda: None)
        drop = sim.schedule(20, lambda: None)
        sim.cancel(drop)
        assert sim.pending_events == 1
        assert keep is not None


class TestRunUntil:
    def test_clock_advances_to_until(self):
        sim = Simulator()
        sim.run(until=500)
        assert sim.now == 500

    def test_events_beyond_until_stay_queued(self):
        sim = Simulator()
        fired = []
        sim.schedule(100, fired.append, "early")
        sim.schedule(900, fired.append, "late")
        sim.run(until=500)
        assert fired == ["early"]
        assert sim.pending_events == 1
        sim.run()
        assert fired == ["early", "late"]

    def test_event_exactly_at_until_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(500, fired.append, "edge")
        sim.run(until=500)
        assert fired == ["edge"]

    def test_run_until_past_rejected(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=50)

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_step_executes_one_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, fired.append, 1)
        sim.schedule(20, fired.append, 2)
        assert sim.step() is True
        assert fired == [1]

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def nested():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(10, nested)
        sim.run()
        assert len(errors) == 1


class TestInvariants:
    @given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=60))
    def test_clock_is_monotone(self, delays):
        sim = Simulator()
        observed = []
        for delay in delays:
            sim.schedule(delay, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)
        assert len(observed) == len(delays)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1_000),
                st.booleans(),
            ),
            max_size=40,
        )
    )
    def test_exactly_uncancelled_events_fire(self, spec):
        sim = Simulator()
        fired = []
        expected = 0
        for i, (delay, cancel) in enumerate(spec):
            event = sim.schedule(delay, fired.append, i)
            if cancel:
                sim.cancel(event)
            else:
                expected += 1
        sim.run()
        assert len(fired) == expected
        assert sim.events_processed == expected


class TestPendingCounter:
    """pending_events is a live counter, not a heap rescan."""

    def test_tracks_schedule_and_run(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        assert sim.pending_events == 2
        sim.run()
        assert sim.pending_events == 0

    def test_direct_event_cancel_decrements(self):
        sim = Simulator()
        event = sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        event.cancel()  # bypassing Simulator.cancel
        assert sim.pending_events == 1
        event.cancel()  # idempotent: no double decrement
        assert sim.pending_events == 1
        sim.run()
        assert sim.pending_events == 0

    def test_late_cancel_after_fire_is_inert(self):
        sim = Simulator()
        event = sim.schedule(10, lambda: None)
        keeper = sim.schedule(20, lambda: None)
        sim.run(until=15)
        assert sim.pending_events == 1
        event.cancel()  # already fired; must not decrement again
        assert sim.pending_events == 1
        assert keeper is not None

    def test_step_decrements(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        assert sim.step() is True
        assert sim.pending_events == 1

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100),
                st.booleans(),
                st.booleans(),
            ),
            max_size=30,
        ),
        st.sampled_from(["wheel", "heap"]),
    )
    def test_counter_matches_structure_scan(self, spec, scheduler):
        sim = make_simulator(scheduler=scheduler)
        events = []
        for delay, cancel, double_cancel in spec:
            event = sim.schedule(delay, lambda: None)
            if cancel:
                event.cancel()
            if double_cancel:
                event.cancel()
            events.append(event)
        if scheduler == "heap":
            scan = sum(1 for _, _, ev in sim._queue if not ev.cancelled)
        else:
            # A wheel bucket is a bare Event until a second entry
            # arrives at the same timestamp.
            scan = sum(
                1
                for bucket in sim._buckets.values()
                for ev in (bucket if type(bucket) is list else [bucket])
                if not ev.cancelled
            )
        assert sim.pending_events == scan
        sim.run()
        assert sim.pending_events == 0
