"""Tests for deterministic random streams."""

import hashlib

import pytest

from repro.dessim import RngRegistry


class TestRngRegistry:
    def test_same_seed_same_draws(self):
        a = RngRegistry(42).stream("backoff")
        b = RngRegistry(42).stream("backoff")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("backoff")
        b = RngRegistry(2).stream("backoff")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_names_differ(self):
        reg = RngRegistry(7)
        a = reg.stream("topology")
        b = reg.stream("traffic")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_stream_is_cached(self):
        reg = RngRegistry(7)
        assert reg.stream("x") is reg.stream("x")

    def test_new_stream_does_not_perturb_existing(self):
        # Draw interleaved with creating unrelated streams; the sequence
        # must equal an uninterrupted run.
        ref_stream = RngRegistry(9).stream("a")
        ref = [ref_stream.random() for _ in range(4)]
        reg = RngRegistry(9)
        stream = reg.stream("a")
        values = [stream.random(), stream.random()]
        reg.stream("unrelated-1")
        reg.stream("unrelated-2")
        values += [stream.random(), stream.random()]
        assert values == ref

    def test_spawn_children_are_independent(self):
        parent = RngRegistry(3)
        child_a = parent.spawn("topo-0")
        child_b = parent.spawn("topo-1")
        assert child_a.master_seed != child_b.master_seed
        va = child_a.stream("place").random()
        vb = child_b.stream("place").random()
        assert va != vb

    def test_spawn_is_reproducible(self):
        a = RngRegistry(3).spawn("topo-0").stream("place").random()
        b = RngRegistry(3).spawn("topo-0").stream("place").random()
        assert a == b

    def test_rejects_non_integer_seed(self):
        with pytest.raises(TypeError):
            RngRegistry("not-a-seed")  # type: ignore[arg-type]


class TestSeedStability:
    """The (master_seed, name) -> stream mapping is a contract.

    These golden values pin the SHA-256 derivation across Python
    versions and refactors: if any of them changes, every published
    number in EXPERIMENTS.md silently stops being reproducible.
    """

    def test_derivation_matches_sha256_spec(self):
        digest = hashlib.sha256(b"2003:backoff").digest()
        expected = int.from_bytes(digest[:8], "big")
        assert expected == 7550964712488899809
        stream = RngRegistry(2003).stream("backoff")
        import random as random_module

        reference = random_module.Random(expected)
        assert [stream.random() for _ in range(4)] == [
            reference.random() for _ in range(4)
        ]

    def test_golden_first_draws(self):
        registry = RngRegistry(2003)
        assert registry.stream("backoff").random() == pytest.approx(
            0.4232310048443786, abs=0.0
        )
        assert registry.stream("topology").random() == pytest.approx(
            0.9688531161006557, abs=0.0
        )

    def test_golden_spawn_seed(self):
        assert RngRegistry(2003).spawn("rep-0").master_seed == 3141594019869248974

    def test_spawn_namespace_is_separate_from_streams(self):
        # spawn("x") and stream("x") must never collide.
        registry = RngRegistry(8)
        child_draw = RngRegistry(8).spawn("x").stream("x").random()
        stream_draw = registry.stream("x").random()
        assert child_draw != stream_draw


class TestStreamIndependence:
    def test_interleaving_does_not_perturb(self):
        # Draws from stream A are identical whether or not B is drawn
        # from in between — consumers cannot observe each other.
        solo = RngRegistry(4).stream("a")
        expected = [solo.random() for _ in range(6)]
        registry = RngRegistry(4)
        a, b = registry.stream("a"), registry.stream("b")
        observed = []
        for _ in range(6):
            observed.append(a.random())
            b.random()  # interleaved draws on another stream
        assert observed == expected

    def test_registration_order_is_irrelevant(self):
        forward = RngRegistry(4)
        forward.stream("a"), forward.stream("b")
        backward = RngRegistry(4)
        backward.stream("b"), backward.stream("a")
        assert forward.stream("a").random() == backward.stream("a").random()

    def test_streams_are_statistically_distinct(self):
        # Crude independence check: no shared prefix and uncorrelated
        # means over a modest sample.
        registry = RngRegistry(123)
        a = [registry.stream("alpha").random() for _ in range(500)]
        b = [registry.stream("beta").random() for _ in range(500)]
        assert a[:10] != b[:10]
        mean_product = sum(x * y for x, y in zip(a, b)) / 500
        # E[XY] = 0.25 for independent U(0,1); generous tolerance.
        assert abs(mean_product - 0.25) < 0.05
