"""Tests for deterministic random streams."""

import pytest

from repro.dessim import RngRegistry


class TestRngRegistry:
    def test_same_seed_same_draws(self):
        a = RngRegistry(42).stream("backoff")
        b = RngRegistry(42).stream("backoff")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("backoff")
        b = RngRegistry(2).stream("backoff")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_names_differ(self):
        reg = RngRegistry(7)
        a = reg.stream("topology")
        b = reg.stream("traffic")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_stream_is_cached(self):
        reg = RngRegistry(7)
        assert reg.stream("x") is reg.stream("x")

    def test_new_stream_does_not_perturb_existing(self):
        # Draw interleaved with creating unrelated streams; the sequence
        # must equal an uninterrupted run.
        ref_stream = RngRegistry(9).stream("a")
        ref = [ref_stream.random() for _ in range(4)]
        reg = RngRegistry(9)
        stream = reg.stream("a")
        values = [stream.random(), stream.random()]
        reg.stream("unrelated-1")
        reg.stream("unrelated-2")
        values += [stream.random(), stream.random()]
        assert values == ref

    def test_spawn_children_are_independent(self):
        parent = RngRegistry(3)
        child_a = parent.spawn("topo-0")
        child_b = parent.spawn("topo-1")
        assert child_a.master_seed != child_b.master_seed
        va = child_a.stream("place").random()
        vb = child_b.stream("place").random()
        assert va != vb

    def test_spawn_is_reproducible(self):
        a = RngRegistry(3).spawn("topo-0").stream("place").random()
        b = RngRegistry(3).spawn("topo-0").stream("place").random()
        assert a == b

    def test_rejects_non_integer_seed(self):
        with pytest.raises(TypeError):
            RngRegistry("not-a-seed")  # type: ignore[arg-type]
