"""Tests for generator-based processes."""

import pytest

from repro.dessim import SimulationError, Simulator
from repro.dessim.process import Process, spawn


class TestBasicProcesses:
    def test_sleep_sequence(self):
        sim = Simulator()
        log = []

        def proc():
            log.append(sim.now)
            yield 100
            log.append(sim.now)
            yield 250
            log.append(sim.now)

        spawn(sim, proc())
        sim.run()
        assert log == [0, 100, 350]

    def test_completion_flag(self):
        sim = Simulator()

        def proc():
            yield 10

        process = spawn(sim, proc())
        assert process.alive
        sim.run()
        assert not process.alive

    def test_zero_delay(self):
        sim = Simulator()
        log = []

        def proc():
            yield 0
            log.append(sim.now)

        spawn(sim, proc())
        sim.run()
        assert log == [0]

    def test_multiple_processes_interleave(self):
        sim = Simulator()
        log = []

        def proc(name, period):
            for _ in range(3):
                yield period
                log.append((sim.now, name))

        spawn(sim, proc("fast", 10))
        spawn(sim, proc("slow", 25))
        sim.run()
        assert log == [
            (10, "fast"),
            (20, "fast"),
            (25, "slow"),
            (30, "fast"),
            (50, "slow"),
            (75, "slow"),
        ]


class TestJoin:
    def test_wait_for_other_process(self):
        sim = Simulator()
        log = []

        def worker():
            yield 500
            log.append(("worker-done", sim.now))

        def waiter(target):
            yield target
            log.append(("waiter-resumed", sim.now))

        target = spawn(sim, worker())
        spawn(sim, waiter(target))
        sim.run()
        assert log == [("worker-done", 500), ("waiter-resumed", 500)]

    def test_join_already_finished(self):
        sim = Simulator()
        log = []

        def quick():
            yield 10

        def late(target):
            yield 100
            yield target  # already done
            log.append(sim.now)

        target = spawn(sim, quick())
        spawn(sim, late(target))
        sim.run()
        assert log == [100]

    def test_multiple_waiters_released_together(self):
        sim = Simulator()
        log = []

        def worker():
            yield 300

        def waiter(name, target):
            yield target
            log.append((name, sim.now))

        target = spawn(sim, worker())
        spawn(sim, waiter("a", target))
        spawn(sim, waiter("b", target))
        sim.run()
        assert sorted(log) == [("a", 300), ("b", 300)]


class TestCancellation:
    def test_cancel_stops_resumption(self):
        sim = Simulator()
        log = []

        def proc():
            yield 100
            log.append("should-not-happen")

        process = spawn(sim, proc())
        process.cancel()
        sim.run()
        assert log == []
        assert not process.alive
        assert process.cancelled

    def test_cancel_releases_waiters(self):
        sim = Simulator()
        log = []

        def worker():
            yield 1000

        def waiter(target):
            yield target
            log.append(sim.now)

        target = spawn(sim, worker())
        spawn(sim, waiter(target))
        sim.schedule(50, target.cancel)
        sim.run()
        assert log == [50]

    def test_cancel_idempotent(self):
        sim = Simulator()

        def proc():
            yield 10

        process = spawn(sim, proc())
        process.cancel()
        process.cancel()
        sim.run()


class TestBadYields:
    def test_negative_delay_rejected(self):
        sim = Simulator()

        def proc():
            yield -5

        spawn(sim, proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_wrong_type_rejected(self):
        sim = Simulator()

        def proc():
            yield "soon"

        spawn(sim, proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_bool_rejected(self):
        sim = Simulator()

        def proc():
            yield True  # bools are ints; explicitly rejected

        spawn(sim, proc())
        with pytest.raises(SimulationError):
            sim.run()
