"""Wheel-vs-heap bit-exactness: the oracle suite for the calendar queue.

The calendar-queue engine (``scheduler="wheel"``) claims the exact
``(time, seq)`` determinism contract of the original binary heap
(``scheduler="heap"``).  These tests hold it to that claim three ways:

* randomized kernel programs — schedule/cancel/restart/anonymous
  interleavings with heavy equal-timestamp ties, ``run(until)``
  horizons, and ``step()`` interleaves — must produce identical firing
  traces and identical live accounting on both engines;
* a Fig. 6/7-style :class:`~repro.net.NetworkSimulation` cell must
  produce identical results, MacStats, and ChannelStats;
* a campaign run under each scheduler must write byte-identical
  result artifacts (timing sidecars are compared modulo host
  wall-clock fields, which legitimately differ between runs).
"""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dessim import Timer, make_simulator
from repro.dessim.units import seconds


def _run_program(engine: str, seed: int, horizons: bool, steps: int) -> list:
    """Execute a seeded random scheduler workout; return its trace.

    Every decision comes from one seeded RNG consumed in callback
    order, so two engines produce the same trace if and only if they
    fire the same callbacks in the same order at the same times.
    """
    sim = make_simulator(scheduler=engine)
    rng = random.Random(seed)
    trace: list = []
    handles: list = []
    counter = [0]

    def act() -> None:
        roll = rng.random()
        if roll < 0.3:
            tag = counter[0]
            counter[0] += 1
            handles.append(sim.schedule(rng.randrange(0, 25), fire, tag))
        elif roll < 0.45:
            tag = counter[0]
            counter[0] += 1
            sim.schedule_anon(rng.randrange(0, 25), fire, tag)
        elif roll < 0.6 and handles:
            # Cancel anywhere in history: late cancels must be inert.
            handles[rng.randrange(len(handles))].cancel()
        elif roll < 0.8:
            timers[rng.randrange(len(timers))].start(rng.randrange(0, 25))
        elif roll < 0.9:
            timers[rng.randrange(len(timers))].cancel()
        # else: do nothing this turn

    def fire(tag: int) -> None:
        trace.append(("fire", tag, sim.now, sim.pending_events))
        for _ in range(rng.randrange(0, 3)):
            act()

    def timer_fired(index: int) -> None:
        trace.append(("timer", index, sim.now, sim.pending_events))
        for _ in range(rng.randrange(0, 3)):
            act()

    timers = [
        Timer(sim, f"t{i}", lambda i=i: timer_fired(i)) for i in range(4)
    ]
    for timer in timers:
        timer.start(rng.randrange(0, 10))
    for _ in range(20):
        act()

    if steps:
        for _ in range(steps):
            sim.step()
        trace.append(("stepped", sim.now, sim.pending_events))
    if horizons:
        # step() may already have advanced past the first horizon.
        sim.run(until=max(sim.now, 40))
        trace.append(("horizon", sim.now, sim.pending_events))
        for _ in range(5):
            act()
        sim.run(until=max(sim.now, 80))
        trace.append(("horizon", sim.now, sim.pending_events))
    sim.run()
    trace.append(("end", sim.now, sim.events_processed, sim.pending_events))
    assert sim.pending_events == 0
    return trace


class TestKernelPrograms:
    @given(seed=st.integers(0, 10**9))
    @settings(max_examples=60, deadline=None)
    def test_random_interleavings_trace_identical(self, seed):
        assert _run_program("wheel", seed, False, 0) == _run_program(
            "heap", seed, False, 0
        )

    @given(seed=st.integers(0, 10**9))
    @settings(max_examples=40, deadline=None)
    def test_run_until_horizons_trace_identical(self, seed):
        assert _run_program("wheel", seed, True, 0) == _run_program(
            "heap", seed, True, 0
        )

    @given(seed=st.integers(0, 10**9), steps=st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_step_interleaved_trace_identical(self, seed, steps):
        assert _run_program("wheel", seed, True, steps) == _run_program(
            "heap", seed, True, steps
        )

    def test_equal_timestamp_fifo_order(self):
        # All at one timestamp: firing order must be schedule order on
        # both engines, interleaved cancellations notwithstanding.
        for engine in ("wheel", "heap"):
            sim = make_simulator(scheduler=engine)
            order = []
            handles = [
                sim.schedule(5, order.append, i) for i in range(20)
            ]
            for i in range(0, 20, 3):
                handles[i].cancel()
            sim.run()
            assert order == [i for i in range(20) if i % 3 != 0], engine


class TestNetworkEquivalence:
    """A Fig. 6/7-style cell must not care which engine runs it."""

    def _run_cell(self, engine: str, scheme: str):
        from repro.dessim.rng import RngRegistry
        from repro.net import (
            NetworkSimulation,
            TopologyConfig,
            generate_ring_topology,
        )

        placement = RngRegistry(41).stream("placement")
        topology = generate_ring_topology(TopologyConfig(n=5), placement)
        net = NetworkSimulation(
            topology,
            scheme,
            math.pi / 2,
            seed=7,
            scheduler=engine,
        )
        return net.run(seconds(0.05)), net.channel.stats

    def test_fig_cell_stats_identical(self):
        for scheme in ("ORTS-OCTS", "DRTS-OCTS"):
            wheel_result, wheel_channel = self._run_cell("wheel", scheme)
            heap_result, heap_channel = self._run_cell("heap", scheme)
            assert wheel_result.stats == heap_result.stats, scheme
            assert wheel_channel == heap_channel, scheme
            assert (
                wheel_result.inner_throughput_bps
                == heap_result.inner_throughput_bps
            ), scheme
            assert (
                wheel_result.inner_mean_delay_s == heap_result.inner_mean_delay_s
            ), scheme


class TestCampaignArtifacts:
    def test_campaign_artifacts_byte_identical(self, tmp_path, monkeypatch):
        from repro.experiments import SimStudyConfig
        from repro.experiments.campaign import run_campaign

        config = SimStudyConfig(
            n_values=(3,),
            beamwidths_deg=(90.0,),
            schemes=("ORTS-OCTS", "DRTS-OCTS"),
            topologies=1,
            sim_time_ns=seconds(0.05),
        )
        results = {}
        for engine in ("wheel", "heap"):
            monkeypatch.setenv("REPRO_SCHEDULER", engine)
            directory = tmp_path / engine
            results[engine] = run_campaign(
                config, workers=1, directory=directory
            )
        assert results["wheel"] == results["heap"]

        import json

        wheel_files = sorted(
            p for p in (tmp_path / "wheel").rglob("*") if p.is_file()
        )
        heap_files = sorted(
            p for p in (tmp_path / "heap").rglob("*") if p.is_file()
        )
        names = [p.relative_to(tmp_path / "wheel") for p in wheel_files]
        assert names == [p.relative_to(tmp_path / "heap") for p in heap_files]
        assert any(p.name.startswith("cell-") for p in wheel_files), (
            "campaign wrote no cell artifacts"
        )
        def strip_host_timing(record: dict) -> dict:
            # Wall-clock fields legitimately differ between runs, and
            # dessim.wheel.* counters only exist on the wheel engine;
            # everything else — including dessim.events — must match.
            record = dict(record)
            for key in ("wall_seconds", "events_per_sec", "phases"):
                record.pop(key, None)
            if isinstance(record.get("counters"), dict):
                record["counters"] = {
                    name: value
                    for name, value in record["counters"].items()
                    if not name.startswith("dessim.wheel.")
                }
            return record

        for wheel_file, heap_file in zip(wheel_files, heap_files):
            if wheel_file.name == "campaign.json":
                wheel_manifest = json.loads(wheel_file.read_text())
                heap_manifest = json.loads(heap_file.read_text())
                assert strip_host_timing(
                    wheel_manifest.pop("telemetry", {})
                ) == strip_host_timing(heap_manifest.pop("telemetry", {}))
                assert wheel_manifest == heap_manifest
                continue
            if wheel_file.name == "telemetry.jsonl":
                wheel_lines = wheel_file.read_text().splitlines()
                heap_lines = heap_file.read_text().splitlines()
                assert len(wheel_lines) == len(heap_lines)
                for wheel_line, heap_line in zip(wheel_lines, heap_lines):
                    assert strip_host_timing(
                        json.loads(wheel_line)
                    ) == strip_host_timing(json.loads(heap_line))
                continue
            assert wheel_file.read_bytes() == heap_file.read_bytes(), (
                wheel_file.name
            )
