"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_sim_option_parsing(self):
        args = build_parser().parse_args(
            [
                "fig6",
                "--n-values", "3,5",
                "--beamwidths", "30,90",
                "--topologies", "4",
                "--sim-seconds", "0.5",
                "--retry-limit", "9",
                "--capture", "10",
            ]
        )
        assert args.n_values == (3, 5)
        assert args.beamwidths == (30.0, 90.0)
        assert args.topologies == 4
        assert args.capture == 10.0
        assert args.workers is None  # default: fall back to REPRO_WORKERS
        assert args.campaign_dir is None

    def test_campaign_option_parsing(self):
        args = build_parser().parse_args(
            ["fig6", "--workers", "4", "--campaign-dir", "/tmp/camp"]
        )
        assert args.workers == 4
        assert args.campaign_dir == "/tmp/camp"

    def test_multihop_option_parsing(self):
        args = build_parser().parse_args(
            [
                "multihop",
                "--scheme", "drts_octs,orts-octs",
                "--beamwidth", "90,150",
                "--router", "shortest-path",
                "--n-values", "5",
                "--rings", "2",
                "--flow-interval-ms", "20",
            ]
        )
        assert args.scheme == ("drts_octs", "orts-octs")
        assert args.beamwidth == (90.0, 150.0)
        assert args.router == "shortest-path"
        assert args.n_values == (5,)
        assert args.rings == 2
        assert args.flow_interval_ms == 20.0
        assert args.scheme is not None

    def test_multihop_defaults(self):
        args = build_parser().parse_args(["multihop"])
        assert args.scheme is None  # None means all three schemes
        assert args.beamwidth == (30.0, 90.0, 150.0)
        assert args.router == "greedy"

    def test_multihop_rejects_bad_router(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["multihop", "--router", "magic"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "contention window" in out
        assert "NO" not in out  # every parameter matches

    def test_fig5(self, capsys):
        assert main(["fig5", "--n", "3"]) == 0
        out = capsys.readouterr().out
        assert "DRTS-DCTS" in out
        assert "180" in out

    def test_ablation(self, capsys):
        assert main(["ablation"]) == 0
        out = capsys.readouterr().out
        assert "optimised" in out
        assert "T_fail" in out

    def test_validate_agrees(self, capsys):
        code = main(
            [
                "validate",
                "--scheme", "ORTS-OCTS",
                "--p", "0.05",
                "--samples", "20000",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "OK" in out

    def test_fig5_chart(self, capsys):
        assert main(["fig5", "--n", "3", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "o=" in out  # chart legend present

    def test_baselines(self, capsys):
        assert main(["baselines", "--n", "3"]) == 0
        out = capsys.readouterr().out
        assert "BTMA-ideal" in out
        assert "winner" in out

    def test_topology(self, capsys):
        assert main(["topology", "--n", "3", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "measured" in out
        assert "#" in out

    def test_p0_fixed_point(self, capsys):
        assert main(["p0", "--scheme", "ORTS-OCTS", "--p0", "0.05,0.2"]) == 0
        out = capsys.readouterr().out
        assert "idle-prob" in out
        assert out.count("\n") >= 3

    def test_curve(self, capsys):
        assert main(["curve", "--scheme", "ORTS-OCTS", "--points", "40"]) == 0
        out = capsys.readouterr().out
        assert "peak" in out
        assert "o=ORTS-OCTS" in out

    def test_curve_rejects_bad_pmax(self):
        with pytest.raises(SystemExit):
            main(["curve", "--p-max", "1.5"])

    def test_fidelity_tiny(self, capsys):
        assert main(["fidelity", "--slots", "3000", "--p", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "slot-sim" in out
        assert "DRTS-DCTS" in out

    def test_fig6_tiny(self, capsys):
        code = main(
            [
                "fig6",
                "--n-values", "3",
                "--beamwidths", "90",
                "--topologies", "1",
                "--sim-seconds", "0.2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "N = 3" in out
        assert "Mbps" in out

    def test_fig6_campaign_resume(self, tmp_path, capsys):
        argv = [
            "fig6",
            "--n-values", "3",
            "--beamwidths", "90",
            "--topologies", "1",
            "--sim-seconds", "0.2",
            "--campaign-dir", str(tmp_path / "camp"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0  # second run resumes from artifacts
        assert capsys.readouterr().out == first
        assert (tmp_path / "camp" / "campaign.json").exists()

    def test_multihop_tiny(self, capsys):
        code = main(
            [
                "multihop",
                "--scheme", "drts_octs",
                "--beamwidth", "90",
                "--n-values", "5",
                "--rings", "2",
                "--topologies", "1",
                "--sim-seconds", "0.1",
                "--seed", "0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "Multi-hop study" in out
        assert "DRTS-OCTS" in out
        assert "Mbps" in out or "/" in out

    def test_multihop_campaign_resume(self, tmp_path, capsys):
        argv = [
            "multihop",
            "--scheme", "drts_octs",
            "--beamwidth", "90",
            "--n-values", "5",
            "--rings", "2",
            "--topologies", "1",
            "--sim-seconds", "0.1",
            "--seed", "0",
            "--campaign-dir", str(tmp_path / "camp"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0  # resumes from the multihop-kind artifacts
        assert capsys.readouterr().out == first
        assert (tmp_path / "camp" / "campaign.json").exists()

    def test_fig7_tiny(self, capsys):
        code = main(
            [
                "fig7",
                "--n-values", "3",
                "--beamwidths", "90",
                "--topologies", "1",
                "--sim-seconds", "0.2",
            ]
        )
        assert code == 0
        assert "delay" in capsys.readouterr().out

    def test_collision_tiny(self, capsys):
        code = main(
            [
                "collision",
                "--n-values", "3",
                "--beamwidths", "90",
                "--topologies", "1",
                "--sim-seconds", "0.2",
            ]
        )
        assert code == 0
        assert "ACK-timeout" in capsys.readouterr().out

    def test_fairness_tiny(self, capsys):
        code = main(
            [
                "fairness",
                "--n-values", "3",
                "--beamwidths", "90",
                "--topologies", "1",
                "--sim-seconds", "0.2",
            ]
        )
        assert code == 0
        assert "Jain" in capsys.readouterr().out

    def test_profile_network(self, capsys):
        code = main(
            [
                "profile",
                "--kernel", "network",
                "--n", "3",
                "--sim-seconds", "0.05",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "event loop" in out
        assert "events/sec" in out

    def test_profile_network_by_callback(self, tmp_path, capsys):
        report = tmp_path / "profile.json"
        code = main(
            [
                "profile",
                "--kernel", "network",
                "--n", "3",
                "--sim-seconds", "0.05",
                "--by-callback",
                "--json", str(report),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # The per-callback table groups fires by layer and method.
        assert "callback" in out
        assert "mac: " in out
        assert "phy: " in out
        import json

        payload = json.loads(report.read_text())
        callbacks = payload["callbacks"]
        assert any(key.startswith("mac: ") for key in callbacks)
        assert all(
            entry["calls"] > 0 and entry["seconds"] >= 0
            for entry in callbacks.values()
        )
        # The hooked dispatcher must not change what runs: every kernel
        # event is accounted to exactly one callback bucket.
        assert sum(entry["calls"] for entry in callbacks.values()) == int(
            payload["counters"]["dessim.events"]
        )

    def test_profile_by_callback_requires_network_kernel(self):
        with pytest.raises(SystemExit):
            main(["profile", "--kernel", "slotsim", "--by-callback"])

    def test_profile_slotsim_with_json(self, tmp_path, capsys):
        report = tmp_path / "profile.json"
        code = main(
            [
                "profile",
                "--kernel", "slotsim",
                "--slots", "500",
                "--json", str(report),
            ]
        )
        assert code == 0
        assert "slots/sec" in capsys.readouterr().out
        import json

        payload = json.loads(report.read_text())
        assert payload["format"] == "repro-profile-v1"
        assert payload["kernel"] == "slotsim"
        assert "event loop" in payload["phases"]
        assert payload["counters"]["slotsim.slots"] == 500

    def test_profile_slotsim_batch_engine(self, tmp_path, capsys):
        report = tmp_path / "profile.json"
        code = main(
            [
                "profile",
                "--kernel", "slotsim",
                "--engine", "batch",
                "--batch", "3",
                "--slots", "400",
                "--json", str(report),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "slotsim kernel (batch)" in out
        payload = json.loads(report.read_text())
        assert payload["engine"] == "batch"
        # One slot count per replicate-slot: slots * batch.
        assert payload["counters"]["slotsim.slots"] == 1200

    def test_profile_batch_flag_requires_batch_engine(self):
        with pytest.raises(SystemExit):
            main(["profile", "--kernel", "slotsim", "--batch", "2"])

    def test_slotsim_study_tiny(self, capsys):
        code = main(
            [
                "slotsim",
                "--n-values", "3",
                "--beamwidths", "60",
                "--scheme", "orts_octs",
                "--topologies", "1",
                "--slots", "200",
                "--engine", "batch",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "batch engine" in out
        assert "ORTS-OCTS" in out

    def test_slotsim_study_scalar_engine(self, capsys):
        code = main(
            [
                "slotsim",
                "--n-values", "3",
                "--beamwidths", "60",
                "--scheme", "orts-octs",
                "--topologies", "1",
                "--slots", "150",
                "--engine", "scalar",
            ]
        )
        assert code == 0
        assert "scalar engine" in capsys.readouterr().out

    def test_fig5_measured(self, capsys):
        code = main(
            [
                "fig5",
                "--measure",
                "--measure-beamwidths", "60",
                "--slots", "300",
                "--replicates", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "p_opt" in out
        assert "batch" in out

    def test_ablation_includes_engine_check(self, capsys):
        assert main(["ablation"]) == 0
        out = capsys.readouterr().out
        assert "cross-check" in out
        assert "exact" in out
        assert "MISMATCH" not in out

    def test_ablation_skip_engine_check(self, capsys):
        assert main(["ablation", "--skip-engine-check"]) == 0
        assert "cross-check" not in capsys.readouterr().out


class TestDispatchCommands:
    def test_worker_option_parsing(self):
        args = build_parser().parse_args(
            [
                "campaign-worker",
                "--store", "/tmp/camp",
                "--shard-id", "host-a",
                "--lease-seconds", "5",
                "--poll-seconds", "0.1",
                "--attach", "/tmp/other",
                "--attach", "/tmp/more",
                "--no-telemetry",
            ]
        )
        assert args.store == "/tmp/camp"
        assert args.shard_id == "host-a"
        assert args.lease_seconds == 5.0
        assert args.poll_seconds == 0.1
        assert args.attach == ["/tmp/other", "/tmp/more"]
        assert args.no_telemetry is True

    def test_worker_requires_store_and_shard(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign-worker", "--store", "/tmp/c"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign-worker", "--shard-id", "0"])

    def test_watch_option_parsing(self):
        args = build_parser().parse_args(
            [
                "campaign-watch",
                "--store", "/tmp/camp",
                "--once",
                "--interval", "0.5",
                "--timeout", "30",
            ]
        )
        assert args.store == "/tmp/camp"
        assert args.once is True
        assert args.interval == 0.5
        assert args.timeout == 30.0

    def test_worker_completes_store_and_watch_reports(self, tmp_path, capsys):
        from repro.dessim import seconds
        from repro.experiments import CampaignStore, SimStudyConfig

        config = SimStudyConfig(
            n_values=(3,),
            beamwidths_deg=(90.0,),
            schemes=("ORTS-OCTS", "DRTS-DCTS"),
            topologies=1,
            sim_time_ns=seconds(0.1),
        )
        store_dir = tmp_path / "camp"
        CampaignStore(store_dir, config)
        code = main(
            [
                "campaign-worker",
                "--store", str(store_dir),
                "--shard-id", "w0",
                "--no-telemetry",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "shard w0: 2 computed" in out
        assert len(list(store_dir.glob("cell-*.json"))) == 2

        assert main(["campaign-watch", "--store", str(store_dir), "--once"]) == 0
        watch_out = capsys.readouterr().out
        assert "[2/2]" in watch_out
        assert "2/2 cells" in watch_out

    def test_worker_rejects_directory_without_manifest(self, tmp_path):
        with pytest.raises(ValueError, match="manifest"):
            main(
                [
                    "campaign-worker",
                    "--store", str(tmp_path),
                    "--shard-id", "w0",
                ]
            )
