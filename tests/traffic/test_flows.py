"""Tests for the multi-hop flow traffic source."""

import pytest

from repro.dessim import RngRegistry, milliseconds, seconds
from repro.traffic import FlowTrafficSource

from ..route.test_forwarding import CHAIN3, ChainNetwork


def make_source(net, src=0, candidates=(2,), interval_ns=milliseconds(50)):
    return FlowTrafficSource(
        net.sim,
        net.agents[src],
        list(candidates),
        rng=RngRegistry(5).stream(f"flow-{src}"),
        interval_ns=interval_ns,
    )


class TestFlowTrafficSource:
    def test_generates_at_fixed_interval(self):
        net = ChainNetwork(CHAIN3)
        source = make_source(net, interval_ns=milliseconds(50))
        source.start()
        net.sim.run(until=milliseconds(501))
        assert source.packets_generated == 11  # t=0, 50, ..., 500

    def test_destination_drawn_from_candidates(self):
        net = ChainNetwork(CHAIN3)
        source = make_source(net, candidates=(1, 2))
        source.start()
        assert source.dst in (1, 2)
        assert source.flow_id == f"0->{source.dst}"

    def test_end_to_end_packets_arrive(self):
        net = ChainNetwork(CHAIN3)
        source = make_source(net, candidates=(2,))
        source.start()
        net.sim.run(until=seconds(1))
        delivered = [p for p, _, _ in net.deliveries if p.dst == 2]
        assert len(delivered) > 0
        assert all(p.src == 0 for p in delivered)
        # Sequence numbers are the origination order.
        assert [p.seq for p in delivered] == sorted(p.seq for p in delivered)

    def test_same_stream_same_schedule(self):
        """Identical RngRegistry streams give identical flows."""

        def run_once():
            net = ChainNetwork(CHAIN3)
            source = make_source(net, candidates=(1, 2))
            source.start()
            net.sim.run(until=seconds(1))
            return (
                source.dst,
                source.packets_generated,
                [(p.flow_id, p.seq, d, h) for p, d, h in net.deliveries],
            )

        assert run_once() == run_once()

    def test_double_start_rejected(self):
        net = ChainNetwork(CHAIN3)
        source = make_source(net)
        source.start()
        with pytest.raises(RuntimeError):
            source.start()

    def test_rejects_bad_arguments(self):
        net = ChainNetwork(CHAIN3)
        rng = RngRegistry(5).stream("flow-0")
        with pytest.raises(ValueError):
            FlowTrafficSource(net.sim, net.agents[0], [], rng, interval_ns=1000)
        with pytest.raises(ValueError):
            FlowTrafficSource(net.sim, net.agents[0], [0], rng, interval_ns=1000)
        with pytest.raises(ValueError):
            FlowTrafficSource(net.sim, net.agents[0], [2], rng, interval_ns=0)
        with pytest.raises(ValueError):
            FlowTrafficSource(
                net.sim, net.agents[0], [2], rng, interval_ns=1000, packet_bytes=0
            )
