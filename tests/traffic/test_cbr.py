"""Tests for traffic sources."""

import random

import pytest

from repro.dessim import RngRegistry, Simulator, milliseconds, seconds
from repro.mac import DSSS_MAC, DcfMac, NeighborTable
from repro.phy import Channel, Position, Radio
from repro.traffic import CbrSource, SaturatedCbrSource


def make_pair():
    sim = Simulator()
    channel = Channel(sim)
    macs = {}
    for node_id, x in ((0, 0.0), (1, 200.0)):
        radio = Radio(sim, node_id, Position(x, 0.0), channel)
        macs[node_id] = DcfMac(
            sim, radio, DSSS_MAC, NeighborTable(channel, node_id),
            rng=random.Random(node_id),
        )
    return sim, macs


class TestSaturatedCbrSource:
    def test_keeps_queue_nonempty(self):
        sim, macs = make_pair()
        source = SaturatedCbrSource(sim, macs[0], [1], random.Random(0))
        source.start()
        sim.run(until=seconds(1))
        assert macs[0].queue_length >= 1

    def test_generates_on_every_service(self):
        sim, macs = make_pair()
        source = SaturatedCbrSource(sim, macs[0], [1], random.Random(0))
        source.start()
        sim.run(until=seconds(1))
        delivered = macs[0].stats.packets_delivered
        assert delivered > 10
        assert source.packets_generated == delivered + 1  # one in flight

    def test_random_destination_choice(self):
        sim, macs = make_pair()
        # Destination list with repeats biases the draw; just verify all
        # packets target members of the list.
        seen = set()
        source = SaturatedCbrSource(sim, macs[0], [1], random.Random(0))
        macs[1].delivery_listeners.append(lambda f: seen.add(f.dst))
        source.start()
        sim.run(until=milliseconds(500))
        assert seen == {1}

    def test_rejects_empty_destinations(self):
        sim, macs = make_pair()
        with pytest.raises(ValueError):
            SaturatedCbrSource(sim, macs[0], [], random.Random(0))

    def test_rejects_bad_packet_size(self):
        sim, macs = make_pair()
        with pytest.raises(ValueError):
            SaturatedCbrSource(
                sim, macs[0], [1], random.Random(0), packet_bytes=0
            )

    def test_packet_size_respected(self):
        sim, macs = make_pair()
        sizes = []
        macs[1].delivery_listeners.append(lambda f: sizes.append(f.size_bytes))
        source = SaturatedCbrSource(
            sim, macs[0], [1], random.Random(0), packet_bytes=512
        )
        source.start()
        sim.run(until=milliseconds(100))
        assert sizes and all(s == 512 for s in sizes)


class TestCbrSource:
    def test_generates_at_fixed_interval(self):
        sim, macs = make_pair()
        source = CbrSource(
            sim, macs[0], [1], random.Random(0), interval_ns=milliseconds(50)
        )
        source.start()
        sim.run(until=milliseconds(501))
        assert source.packets_generated == 11  # t=0, 50, ..., 500

    def test_below_saturation_delivers_everything(self):
        sim, macs = make_pair()
        source = CbrSource(
            sim, macs[0], [1], random.Random(0), interval_ns=milliseconds(100)
        )
        source.start()
        sim.run(until=seconds(2))
        # 6.9 ms per handshake << 100 ms interval: no queueing losses.
        assert macs[0].stats.packets_delivered >= source.packets_generated - 1

    def test_queue_cap_drops_excess(self):
        sim, macs = make_pair()
        # Interval far below service time with a tiny queue cap.
        source = CbrSource(
            sim, macs[0], [1], random.Random(0),
            interval_ns=milliseconds(1), max_queue=2,
        )
        source.start()
        sim.run(until=milliseconds(200))
        assert source.packets_dropped_at_queue > 0
        assert macs[0].queue_length <= 2

    def test_offered_load_accounting(self):
        """Every tick is accounted: generated + dropped == ticks."""
        sim, macs = make_pair()
        source = CbrSource(
            sim, macs[0], [1], random.Random(0),
            interval_ns=milliseconds(5), max_queue=3,
        )
        source.start()
        sim.run(until=milliseconds(1000))
        ticks = 1000 // 5 + 1  # t=0, 5, ..., 1000
        assert source.packets_generated + source.packets_dropped_at_queue == ticks
        # Accepted packets either got delivered or are still queued/in flight.
        assert source.packets_generated >= macs[0].stats.packets_delivered

    def test_interarrival_determinism_under_registry_streams(self):
        """Same RngRegistry stream => identical schedule and delays."""

        def run_once():
            sim, macs = make_pair()
            delays = []
            macs[0].service_listeners.append(
                lambda p, ok: delays.append((sim.now - p.created_ns, ok))
            )
            source = CbrSource(
                sim, macs[0], [1],
                RngRegistry(17).stream("cbr-0"),
                interval_ns=milliseconds(20),
            )
            source.start()
            sim.run(until=seconds(1))
            return (
                source.packets_generated,
                macs[0].stats.packets_delivered,
                delays,
            )

        assert run_once() == run_once()

    def test_rejects_bad_arguments(self):
        sim, macs = make_pair()
        with pytest.raises(ValueError):
            CbrSource(sim, macs[0], [], random.Random(0), interval_ns=1000)
        with pytest.raises(ValueError):
            CbrSource(sim, macs[0], [1], random.Random(0), interval_ns=0)
        with pytest.raises(ValueError):
            CbrSource(
                sim, macs[0], [1], random.Random(0),
                interval_ns=1000, max_queue=0,
            )
        with pytest.raises(ValueError):
            CbrSource(
                sim, macs[0], [1], random.Random(0),
                interval_ns=1000, packet_bytes=-1,
            )
