"""Engine-level tests: suppressions, baseline, file discovery."""

import json
import textwrap

import pytest

from repro.lint import LintConfig, get_rule, lint_paths
from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.engine import iter_python_files, lint_source
from repro.lint.findings import Finding
from repro.lint.suppressions import SuppressionIndex

RNG_VIOLATION = textwrap.dedent(
    """
    import random

    def build():
        return random.Random(0)
    """
)


def _rules():
    return [get_rule("SL001")()]


class TestSuppressions:
    def test_inline_disable_suppresses_that_line(self):
        source = RNG_VIOLATION.replace(
            "random.Random(0)", "random.Random(0)  # simlint: disable=SL001"
        )
        kept, suppressed = lint_source(source, "src/repro/mac/x.py", _rules())
        assert kept == []
        assert len(suppressed) == 1

    def test_justification_text_is_allowed(self):
        source = RNG_VIOLATION.replace(
            "random.Random(0)",
            "random.Random(0)  # simlint: disable=SL001 -- legacy, see #42",
        )
        kept, suppressed = lint_source(source, "src/repro/mac/x.py", _rules())
        assert kept == []

    def test_disable_all(self):
        source = RNG_VIOLATION.replace(
            "random.Random(0)", "random.Random(0)  # simlint: disable=all"
        )
        kept, _ = lint_source(source, "src/repro/mac/x.py", _rules())
        assert kept == []

    def test_file_level_disable(self):
        source = "# simlint: disable-file=SL001\n" + RNG_VIOLATION
        kept, suppressed = lint_source(source, "src/repro/mac/x.py", _rules())
        assert kept == []
        assert len(suppressed) == 1

    def test_other_rule_id_does_not_suppress(self):
        source = RNG_VIOLATION.replace(
            "random.Random(0)", "random.Random(0)  # simlint: disable=SL002"
        )
        kept, _ = lint_source(source, "src/repro/mac/x.py", _rules())
        assert len(kept) == 1

    def test_parse_multiple_rules(self):
        index = SuppressionIndex.parse("x = 1  # simlint: disable=SL001, SL003\n")
        assert index.line_rules[1] == {"SL001", "SL003"}


class TestBaseline:
    def test_roundtrip_and_filtering(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "mac"
        pkg.mkdir(parents=True)
        (pkg / "x.py").write_text(RNG_VIOLATION)
        config = LintConfig(root=tmp_path)

        first = lint_paths([tmp_path / "src"], config)
        assert len(first.findings) == 1

        write_baseline(config.baseline_path, first.findings)
        second = lint_paths([tmp_path / "src"], config)
        assert second.findings == []
        assert len(second.baselined) == 1
        assert second.ok

    def test_new_findings_still_fail_with_baseline(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "mac"
        pkg.mkdir(parents=True)
        (pkg / "x.py").write_text(RNG_VIOLATION)
        config = LintConfig(root=tmp_path)
        write_baseline(config.baseline_path, lint_paths([tmp_path], config).findings)

        (pkg / "y.py").write_text(
            RNG_VIOLATION.replace("random.Random(0)", "random.Random(7)")
        )
        result = lint_paths([tmp_path], config)
        assert len(result.findings) == 1
        assert "y.py" in result.findings[0].path

    def test_fingerprint_survives_line_drift(self):
        a = Finding("p.py", 10, 4, "SL001", "m", "x = random.Random(0)")
        b = Finding("p.py", 99, 4, "SL001", "m", "x = random.Random(0)")
        assert a.fingerprint() == b.fingerprint()

    def test_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps({"version": 99, "findings": {}}))
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}


class TestDiscovery:
    def test_skips_pycache_and_dedupes(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "a.cpython-311.py").write_text("x = 1\n")
        files = list(iter_python_files([tmp_path, tmp_path / "a.py"]))
        assert files == [tmp_path / "a.py"]

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        (tmp_path / "bad.py").write_text("def broken(:\n")
        result = lint_paths([tmp_path], LintConfig(root=tmp_path))
        assert not result.ok
        assert "syntax error" in result.errors[0]


class TestRepositoryIsClean:
    def test_repro_lint_src_is_clean(self):
        """The acceptance gate: the shipped tree has no findings."""
        from pathlib import Path

        from repro.lint import load_config

        root = Path(__file__).resolve().parents[2]
        config = load_config(pyproject=root / "pyproject.toml")
        result = lint_paths([root / "src"], config)
        assert result.errors == []
        assert result.findings == [], "\n".join(
            f.render() for f in result.findings
        )
        # The experiments migration means the repo-level config can be
        # stricter than the rule default: no baselined debt at all.
        assert result.baselined == []
