"""Config loading and the repro-lint command line."""

import json
import textwrap

import pytest

from repro.lint import load_config
from repro.lint.cli import main

VIOLATION = textwrap.dedent(
    """
    import random

    def build():
        return random.Random(0)
    """
)


def make_project(tmp_path, simlint_table=""):
    (tmp_path / "pyproject.toml").write_text(
        "[project]\nname = 'x'\nversion = '0'\n" + simlint_table
    )
    pkg = tmp_path / "src" / "repro" / "mac"
    pkg.mkdir(parents=True)
    (pkg / "x.py").write_text(VIOLATION)
    return tmp_path


class TestConfig:
    def test_defaults_without_table(self, tmp_path):
        make_project(tmp_path)
        config = load_config(pyproject=tmp_path / "pyproject.toml")
        assert config.baseline == ".simlint-baseline.json"
        assert config.disable == []

    def test_rule_options_and_disable(self, tmp_path):
        make_project(
            tmp_path,
            "[tool.simlint]\ndisable = ['sl004']\n"
            "[tool.simlint.rules.SL001]\nallow = ['mac/x.py']\n",
        )
        config = load_config(pyproject=tmp_path / "pyproject.toml")
        assert config.disable == ["SL004"]
        assert config.options_for("SL001") == {"allow": ["mac/x.py"]}

    def test_unknown_keys_rejected(self, tmp_path):
        make_project(tmp_path, "[tool.simlint]\nbasline = 'typo.json'\n")
        with pytest.raises(ValueError, match="basline"):
            load_config(pyproject=tmp_path / "pyproject.toml")

    def test_cache_key_parsed(self, tmp_path):
        make_project(
            tmp_path, "[tool.simlint]\ncache = '.simlint-cache.json'\n"
        )
        config = load_config(pyproject=tmp_path / "pyproject.toml")
        assert config.cache == ".simlint-cache.json"
        assert config.cache_path == tmp_path / ".simlint-cache.json"

    def test_cache_defaults_off(self, tmp_path):
        make_project(tmp_path)
        config = load_config(pyproject=tmp_path / "pyproject.toml")
        assert config.cache is None
        assert config.cache_path is None

    def test_missing_pyproject_gives_defaults(self, tmp_path):
        config = load_config(start=tmp_path)
        # May find an ancestor pyproject when run from a checkout; the
        # call must at least not fail and must produce a usable config.
        assert config.baseline


class TestCli:
    def test_exit_one_on_findings(self, tmp_path, capsys):
        root = make_project(tmp_path)
        code = main(["--config", str(root / "pyproject.toml"), str(root / "src")])
        assert code == 1
        out = capsys.readouterr().out
        assert "SL001" in out and "1 findings" in out

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        root = make_project(
            tmp_path, "[tool.simlint.rules.SL001]\nallow = ['mac/x.py']\n"
        )
        code = main(["--config", str(root / "pyproject.toml"), str(root / "src")])
        assert code == 0
        assert "0 findings" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        root = make_project(tmp_path)
        code = main(
            [
                "--config", str(root / "pyproject.toml"),
                "--format", "json",
                str(root / "src"),
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["findings"] == 1
        assert payload["findings"][0]["rule"] == "SL001"
        assert not payload["ok"]

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        root = make_project(tmp_path)
        args = ["--config", str(root / "pyproject.toml"), str(root / "src")]
        assert main(args + ["--write-baseline"]) == 0
        assert (root / ".simlint-baseline.json").exists()
        assert main(args) == 0
        assert main(args + ["--no-baseline"]) == 1
        capsys.readouterr()

    def test_select_subset(self, tmp_path, capsys):
        root = make_project(tmp_path)
        args = ["--config", str(root / "pyproject.toml"), str(root / "src")]
        assert main(args + ["--select", "SL002"]) == 0  # SL001 not selected
        assert main(args + ["--select", "SL001"]) == 1
        assert main(args + ["--select", "SL999"]) == 2
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("SL001", "SL002", "SL003", "SL004", "SL005"):
            assert rule_id in out

    def test_no_paths_is_usage_error(self, capsys):
        assert main([]) == 2

    def test_cache_flag_creates_and_reuses_cache(self, tmp_path, capsys):
        root = make_project(tmp_path)
        args = [
            "--config", str(root / "pyproject.toml"),
            "--cache", ".simlint-cache.json",
            str(root / "src"),
        ]
        assert main(args) == 1
        assert (root / ".simlint-cache.json").exists()
        capsys.readouterr()
        assert main(args) == 1
        out = capsys.readouterr().out
        assert "0 misses" in out
        # --no-cache ignores the configured cache entirely
        assert main(args + ["--no-cache"]) == 1
        assert "cache:" not in capsys.readouterr().out

    def test_prune_baseline_exit_codes(self, tmp_path, capsys):
        root = make_project(tmp_path)
        args = ["--config", str(root / "pyproject.toml"), str(root / "src")]
        assert main(args + ["--write-baseline"]) == 0
        # nothing stale yet: exit 0, file untouched
        assert main(args + ["--prune-baseline"]) == 0
        # fix the violation -> the baselined finding goes stale
        (root / "src" / "repro" / "mac" / "x.py").write_text(
            "def build():\n    return 4\n"
        )
        assert main(args + ["--prune-baseline"]) == 1
        out = capsys.readouterr().out
        assert "1 stale entries pruned" in out
        baseline = json.loads((root / ".simlint-baseline.json").read_text())
        assert baseline["findings"] == {}
        # and a second prune is clean
        assert main(args + ["--prune-baseline"]) == 0
        capsys.readouterr()

    def test_module_entry_point(self, tmp_path):
        import subprocess
        import sys

        root = make_project(tmp_path)
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.lint",
                "--config", str(root / "pyproject.toml"),
                str(root / "src"),
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "SL001" in proc.stdout
