"""Span-based auto-fixes: the applier and the --fix round-trip."""

import textwrap

from repro.lint.cli import main
from repro.lint.fixes import Fix, apply_fixes


def fix(sl, sc, el, ec, replacement):
    return Fix(sl, sc, el, ec, replacement)


class TestApplyFixes:
    def test_single_replacement(self):
        text, applied = apply_fixes("a = 1.0\n", [fix(1, 4, 1, 7, "1")])
        assert text == "a = 1\n"
        assert applied == 1

    def test_multiple_on_one_line_back_to_front(self):
        source = "f(1.0, 2.0)\n"
        fixes = [fix(1, 2, 1, 5, "1"), fix(1, 7, 1, 10, "2")]
        text, applied = apply_fixes(source, fixes)
        assert text == "f(1, 2)\n"
        assert applied == 2

    def test_multiline_span(self):
        source = "x = (1.0 +\n     2.0)\n"
        text, applied = apply_fixes(source, [fix(1, 4, 2, 9, "3")])
        assert text == "x = 3\n"
        assert applied == 1

    def test_overlapping_fix_skipped(self):
        source = "value = compute()\n"
        fixes = [
            fix(1, 8, 1, 17, "sorted(compute())"),
            fix(1, 8, 1, 17, "other()"),
        ]
        text, applied = apply_fixes(source, fixes)
        assert applied == 1
        assert text in (
            "value = sorted(compute())\n",
            "value = other()\n",
        )

    def test_out_of_range_span_skipped(self):
        text, applied = apply_fixes("a = 1\n", [fix(9, 0, 9, 3, "zzz")])
        assert text == "a = 1\n"
        assert applied == 0

    def test_empty_fix_list(self):
        text, applied = apply_fixes("a = 1\n", [])
        assert text == "a = 1\n"
        assert applied == 0

    def test_round_trips_through_dict(self):
        original = fix(3, 4, 3, 9, "sorted(x)")
        assert Fix.from_dict(original.to_dict()) == original


class TestFixCli:
    def make_project(self, tmp_path, source):
        (tmp_path / "pyproject.toml").write_text(
            "[project]\nname = 'x'\nversion = '0'\n"
        )
        pkg = tmp_path / "src" / "pkg"
        pkg.mkdir(parents=True)
        (pkg / "scan.py").write_text(textwrap.dedent(source))
        return tmp_path

    def test_fix_rewrites_and_relints_clean(self, tmp_path, capsys):
        root = self.make_project(
            tmp_path,
            """
            def keys(directory):
                return [p.stem for p in directory.glob("*.json")]
            """,
        )
        args = ["--config", str(root / "pyproject.toml"), str(root / "src")]
        assert main(args) == 1  # SL008 fires
        capsys.readouterr()
        assert main(args + ["--fix"]) == 0
        out = capsys.readouterr().out
        assert "applied 1 auto-fix" in out
        rewritten = (root / "src" / "pkg" / "scan.py").read_text()
        assert 'sorted(directory.glob("*.json"))' in rewritten
        assert main(args) == 0  # clean after the rewrite

    def test_fix_leaves_unfixable_findings(self, tmp_path, capsys):
        root = self.make_project(
            tmp_path,
            """
            def wait(sim, delay_ns):
                sim.schedule(delay_ns, "t")

            def go(sim):
                wait(sim, 1.5)
            """,
        )
        args = ["--config", str(root / "pyproject.toml"), str(root / "src")]
        assert main(args + ["--fix"]) == 1  # non-integral float: no fix
        out = capsys.readouterr().out
        assert "applied 0 auto-fixes" in out
        assert "SL006" in out

    def test_fix_is_idempotent(self, tmp_path, capsys):
        root = self.make_project(
            tmp_path,
            """
            def keys(directory):
                return [p.stem for p in directory.glob("*.json")]
            """,
        )
        args = ["--config", str(root / "pyproject.toml"), str(root / "src")]
        assert main(args + ["--fix"]) == 0
        first = (root / "src" / "pkg" / "scan.py").read_text()
        assert main(args + ["--fix"]) == 0
        assert (root / "src" / "pkg" / "scan.py").read_text() == first
        capsys.readouterr()
