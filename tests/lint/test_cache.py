"""The incremental cache: hits, invalidation, and graceful corruption."""

import json
import textwrap

from repro.lint.config import LintConfig
from repro.lint.context import ModuleContext
from repro.lint.engine import lint_paths

CLEAN = """
    def add(a, b):
        return a + b
    """

VIOLATION = """
    import random

    def build():
        return random.Random(0)
    """


def make_tree(tmp_path, files):
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))


def config_for(tmp_path):
    return LintConfig(
        root=tmp_path, use_baseline=False, cache=".simlint-cache.json"
    )


class TestCacheLifecycle:
    def test_warm_run_hits_and_matches_cold(self, tmp_path):
        make_tree(
            tmp_path,
            {"src/pkg/a.py": VIOLATION, "src/pkg/b.py": CLEAN},
        )
        cold = lint_paths([tmp_path / "src"], config_for(tmp_path))
        assert cold.cache_hits == 0
        assert (tmp_path / ".simlint-cache.json").exists()

        warm = lint_paths([tmp_path / "src"], config_for(tmp_path))
        assert warm.cache_misses == 0
        assert warm.cache_hits == 3  # two files + the project entry
        assert warm.findings == cold.findings
        assert warm.suppressed == cold.suppressed

    def test_warm_run_parses_nothing(self, tmp_path, monkeypatch):
        make_tree(tmp_path, {"src/pkg/a.py": VIOLATION})
        lint_paths([tmp_path / "src"], config_for(tmp_path))

        def boom(*args, **kwargs):
            raise AssertionError("warm run must not parse")

        monkeypatch.setattr(ModuleContext, "parse", boom)
        warm = lint_paths([tmp_path / "src"], config_for(tmp_path))
        assert warm.cache_misses == 0
        assert len(warm.findings) == 1

    def test_edited_file_invalidates_its_entry(self, tmp_path):
        make_tree(
            tmp_path,
            {"src/pkg/a.py": VIOLATION, "src/pkg/b.py": CLEAN},
        )
        lint_paths([tmp_path / "src"], config_for(tmp_path))
        (tmp_path / "src/pkg/b.py").write_text(textwrap.dedent(VIOLATION))
        result = lint_paths([tmp_path / "src"], config_for(tmp_path))
        # a.py stays cached; b.py and the project entry re-run.
        assert result.cache_hits == 1
        assert result.cache_misses == 2
        assert len(result.findings) == 2

    def test_option_change_invalidates_everything(self, tmp_path):
        make_tree(tmp_path, {"src/pkg/a.py": VIOLATION})
        lint_paths([tmp_path / "src"], config_for(tmp_path))
        config = config_for(tmp_path)
        config.rule_options = {"SL001": {"allow": ["pkg/a.py"]}}
        result = lint_paths([tmp_path / "src"], config)
        assert result.cache_hits == 0
        assert result.findings == []

    def test_corrupt_cache_degrades_to_cold(self, tmp_path):
        make_tree(tmp_path, {"src/pkg/a.py": VIOLATION})
        (tmp_path / ".simlint-cache.json").write_text("{not json")
        result = lint_paths([tmp_path / "src"], config_for(tmp_path))
        assert len(result.findings) == 1
        # and the broken file was rewritten into a valid cache
        data = json.loads((tmp_path / ".simlint-cache.json").read_text())
        assert data["format"] == "simlint-cache-v1"

    def test_deleted_file_entry_pruned(self, tmp_path):
        make_tree(
            tmp_path,
            {"src/pkg/a.py": VIOLATION, "src/pkg/b.py": CLEAN},
        )
        lint_paths([tmp_path / "src"], config_for(tmp_path))
        (tmp_path / "src/pkg/b.py").unlink()
        lint_paths([tmp_path / "src"], config_for(tmp_path))
        data = json.loads((tmp_path / ".simlint-cache.json").read_text())
        assert set(data["files"]) == {"src/pkg/a.py"}

    def test_no_cache_configured_writes_nothing(self, tmp_path):
        make_tree(tmp_path, {"src/pkg/a.py": CLEAN})
        config = LintConfig(root=tmp_path, use_baseline=False)
        result = lint_paths([tmp_path / "src"], config)
        assert result.cache_hits == 0 and result.cache_misses == 0
        assert not (tmp_path / ".simlint-cache.json").exists()

    def test_syntax_error_never_cached(self, tmp_path):
        make_tree(tmp_path, {"src/pkg/a.py": "def broken(:\n"})
        first = lint_paths([tmp_path / "src"], config_for(tmp_path))
        assert first.errors
        second = lint_paths([tmp_path / "src"], config_for(tmp_path))
        assert second.errors  # still reported on the warm run
