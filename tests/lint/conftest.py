"""Helpers for the simlint tests."""

import textwrap

import pytest

from repro.lint import get_rule
from repro.lint.engine import lint_source


@pytest.fixture
def check():
    """check(rule_id, source, path=...) -> list of kept findings."""

    def run(rule_id, source, path="src/repro/mac/example.py", options=None):
        rule = get_rule(rule_id)(options)
        kept, _suppressed = lint_source(textwrap.dedent(source), path, [rule])
        return kept

    return run
