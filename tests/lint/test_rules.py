"""Per-rule tests: every rule has flagging and non-flagging fixtures."""


class TestRngDiscipline:  # SL001
    def test_flags_random_construction(self, check):
        findings = check(
            "SL001",
            """
            import random

            def build():
                return random.Random(0)
            """,
        )
        assert [f.rule_id for f in findings] == ["SL001"]
        assert "random.Random" in findings[0].message

    def test_flags_module_level_call(self, check):
        findings = check(
            "SL001",
            """
            import random

            def jitter():
                return random.randint(0, 31)
            """,
        )
        assert len(findings) == 1

    def test_flags_aliased_import(self, check):
        findings = check(
            "SL001",
            """
            import random as rnd

            def build():
                return rnd.Random(1)
            """,
        )
        assert len(findings) == 1

    def test_flags_from_import(self, check):
        findings = check(
            "SL001",
            """
            from random import Random

            def build():
                return Random(1)
            """,
        )
        assert len(findings) == 1

    def test_flags_numpy_random(self, check):
        findings = check(
            "SL001",
            """
            import numpy as np

            def build():
                return np.random.default_rng(3)
            """,
        )
        assert len(findings) == 1

    def test_injected_stream_use_is_clean(self, check):
        findings = check(
            "SL001",
            """
            def draw(rng):
                return rng.random() + rng.randint(0, 7)
            """,
        )
        assert findings == []

    def test_annotation_is_clean(self, check):
        findings = check(
            "SL001",
            """
            import random

            def accept(rng: random.Random) -> random.Random:
                return rng
            """,
        )
        assert findings == []

    def test_allowlisted_path_is_clean(self, check):
        source = """
        import random

        def build():
            return random.Random(0)
        """
        assert check("SL001", source, path="src/repro/dessim/rng.py") == []
        assert check("SL001", source, path="src/repro/cli.py") == []
        # the repo config tightens this, but the rule default allows it:
        assert check("SL001", source, path="src/repro/experiments/x.py") == []


class TestWallClockBan:  # SL002
    def test_flags_time_time(self, check):
        findings = check(
            "SL002",
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        assert [f.rule_id for f in findings] == ["SL002"]

    def test_flags_datetime_now_from_import(self, check):
        findings = check(
            "SL002",
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """,
        )
        assert len(findings) == 1

    def test_flags_uuid4_and_urandom(self, check):
        findings = check(
            "SL002",
            """
            import os
            import uuid

            def ids():
                return uuid.uuid4(), os.urandom(8)
            """,
        )
        assert len(findings) == 2

    def test_simulator_clock_is_clean(self, check):
        findings = check(
            "SL002",
            """
            def stamp(sim):
                return sim.now
            """,
        )
        assert findings == []

    def test_unrelated_now_attribute_is_clean(self, check):
        findings = check(
            "SL002",
            """
            def read(sim):
                return sim.now, sim.clock()
            """,
        )
        assert findings == []

    def test_flags_perf_counter_from_import_without_call(self, check):
        # Binding a banned clock locally is flagged even before any call:
        # an imported clock is a clock about to be read.
        findings = check(
            "SL002",
            """
            from time import perf_counter

            CLOCK = perf_counter
            """,
        )
        assert [f.rule_id for f in findings] == ["SL002"]
        assert "import" in findings[0].message
        assert "repro.obs.profile" in findings[0].message

    def test_flags_aliased_perf_counter_import(self, check):
        findings = check(
            "SL002",
            """
            from time import perf_counter as clock

            def read():
                return clock()
            """,
        )
        # Once at the import, once at the (alias-resolved) call.
        assert len(findings) == 2

    def test_plain_time_module_import_is_clean(self, check):
        # ``import time`` alone binds no clock; only reads are banned.
        findings = check(
            "SL002",
            """
            import time

            def annotate(t: "time.struct_time"):
                return t
            """,
        )
        assert findings == []

    def test_sanctioned_profile_module_is_exempt(self, check):
        source = """
        from time import perf_counter

        def wall_clock():
            return perf_counter()
        """
        # The repo config (pyproject [tool.simlint.rules.SL002]) allows
        # exactly obs/profile.py; the same code anywhere else is debt.
        options = {"allow": ["obs/profile.py"]}
        clean = check(
            "SL002", source, path="src/repro/obs/profile.py", options=options
        )
        assert clean == []
        rejected = check(
            "SL002", source, path="src/repro/obs/telemetry.py", options=options
        )
        assert [f.rule_id for f in rejected] == ["SL002", "SL002"]

    def test_repo_config_sanctions_only_obs_profile(self):
        # Regression for the telemetry PR: the committed pyproject must
        # whitelist repro.obs.profile — and nothing else — for SL002.
        import pathlib

        from repro.lint import load_config

        config = load_config(pathlib.Path(__file__).parents[2] / "pyproject.toml")
        assert config.options_for("SL002") == {"allow": ["obs/profile.py"]}


class TestUnitDiscipline:  # SL003
    def test_flags_float_literal_into_schedule(self, check):
        findings = check(
            "SL003",
            """
            def arm(sim):
                sim.schedule(1e-6, print)
            """,
        )
        assert [f.rule_id for f in findings] == ["SL003"]

    def test_flags_float_arithmetic_into_timer(self, check):
        findings = check(
            "SL003",
            """
            def arm(self, factor):
                self._cts_timer.start(factor * 1.5)
            """,
        )
        assert len(findings) == 1

    def test_flags_true_division_into_run_until(self, check):
        findings = check(
            "SL003",
            """
            def go(sim, total, n):
                sim.run(until=total / n)
            """,
        )
        assert len(findings) == 1

    def test_flags_float_in_ns_keyword(self, check):
        findings = check(
            "SL003",
            """
            def build(Frame):
                return Frame(duration_ns=1.5)
            """,
        )
        assert len(findings) == 1

    def test_units_helper_is_clean(self, check):
        findings = check(
            "SL003",
            """
            from repro.dessim.units import microseconds, seconds

            def arm(sim, self):
                sim.schedule(microseconds(10.0), print)
                self._slot_timer.start(seconds(0.5))
                sim.run(until=round(1.5e9))
            """,
        )
        assert findings == []

    def test_integer_expressions_are_clean(self, check):
        findings = check(
            "SL003",
            """
            def arm(sim, slot_ns, k):
                sim.schedule(slot_ns * k + 3, print)
                sim.schedule(slot_ns // 2, print)
            """,
        )
        assert findings == []

    def test_non_timer_start_is_clean(self, check):
        # .start() on things that are not timers (threads, sources) is
        # out of scope.
        findings = check(
            "SL003",
            """
            def go(source):
                source.start(0.5)
            """,
        )
        assert findings == []


class TestIterationOrder:  # SL004
    def test_flags_set_call_iteration(self, check):
        findings = check(
            "SL004",
            """
            def fanout(self, nodes):
                for node in set(nodes):
                    node.notify()
            """,
        )
        assert [f.rule_id for f in findings] == ["SL004"]

    def test_flags_local_set_variable(self, check):
        findings = check(
            "SL004",
            """
            def fanout(self, a, b):
                audible = a.neighbors() & set(b)
                for node in audible:
                    node.notify()
            """,
        )
        assert len(findings) == 1

    def test_flags_set_method_result(self, check):
        findings = check(
            "SL004",
            """
            def fanout(self, a, b):
                return [n.id for n in a.union(b)]
            """,
        )
        assert len(findings) == 1

    def test_sorted_iteration_is_clean(self, check):
        findings = check(
            "SL004",
            """
            def fanout(self, nodes):
                for node in sorted(set(nodes)):
                    node.notify()
            """,
        )
        assert findings == []

    def test_dict_and_list_iteration_is_clean(self, check):
        findings = check(
            "SL004",
            """
            def fanout(self, macs, queue):
                for node_id, mac in macs.items():
                    mac.poll(queue[node_id])
                for item in queue:
                    item.age += 1
            """,
        )
        assert findings == []

    def test_out_of_scope_path_is_clean(self, check):
        source = """
        def fanout(nodes):
            for node in set(nodes):
                node.notify()
        """
        assert check("SL004", source, path="src/repro/report/chart.py") == []


class TestSeedPlumbing:  # SL005
    def test_flags_defaulted_rng(self, check):
        findings = check(
            "SL005",
            """
            class Mac:
                def __init__(self, sim, rng=None):
                    self.rng = rng
            """,
        )
        assert [f.rule_id for f in findings] == ["SL005"]
        assert "'rng'" in findings[0].message

    def test_flags_defaulted_seed_and_kwonly(self, check):
        findings = check(
            "SL005",
            """
            class Net:
                def __init__(self, topology, seed=0, *, mobility_rng=None):
                    pass
            """,
        )
        assert len(findings) == 2

    def test_explicit_parameters_are_clean(self, check):
        findings = check(
            "SL005",
            """
            class Mac:
                def __init__(self, sim, rng, seed):
                    self.rng = rng
            """,
        )
        assert findings == []

    def test_private_class_is_clean(self, check):
        findings = check(
            "SL005",
            """
            class _Scratch:
                def __init__(self, rng=None):
                    self.rng = rng
            """,
        )
        assert findings == []

    def test_unrelated_defaults_are_clean(self, check):
        findings = check(
            "SL005",
            """
            class Mac:
                def __init__(self, sim, rng, retry_limit=7, tracer=None):
                    pass
            """,
        )
        assert findings == []
