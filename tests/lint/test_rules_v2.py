"""Interprocedural rules (SL006-SL010): single-file and cross-module."""

import textwrap

from repro.lint.config import LintConfig
from repro.lint.engine import lint_paths


def lint_tree(tmp_path, files, **config_kwargs):
    """Write a src/ tree and lint it; returns the LintResult."""
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    config = LintConfig(root=tmp_path, use_baseline=False, **config_kwargs)
    return lint_paths([tmp_path / "src"], config)


class TestEventTime:  # SL006
    def test_flags_float_into_ns_param(self, check):
        findings = check(
            "SL006",
            """
            def wait(sim, delay_ns):
                sim.schedule(delay_ns, "tick")

            def caller(sim):
                wait(sim, 1.5)
            """,
        )
        assert [f.rule_id for f in findings] == ["SL006"]
        assert "delay_ns" in findings[0].message

    def test_flags_transitive_forwarding(self, check):
        findings = check(
            "SL006",
            """
            def inner(sim, delay_ns):
                sim.schedule(delay_ns, "tick")

            def outer(sim, pause):
                inner(sim, pause)

            def caller(sim):
                outer(sim, 0.25)
            """,
        )
        assert len(findings) == 1
        assert findings[0].line == 9

    def test_flags_float_default(self, check):
        findings = check(
            "SL006",
            """
            def wait(sim, delay_ns=2.0):
                sim.schedule(delay_ns, "tick")
            """,
        )
        assert len(findings) == 1
        assert "default" in findings[0].message

    def test_integral_literal_gets_fix(self, check):
        findings = check(
            "SL006",
            """
            def wait(sim, delay_ns):
                sim.schedule(delay_ns, "tick")

            def caller(sim):
                wait(sim, 1e6)
            """,
        )
        assert findings[0].fix is not None
        assert findings[0].fix.replacement == "1000000"

    def test_non_integral_has_no_fix(self, check):
        findings = check(
            "SL006",
            """
            def wait(sim, delay_ns):
                sim.schedule(delay_ns, "tick")

            def caller(sim):
                wait(sim, 1.5)
            """,
        )
        assert findings[0].fix is None

    def test_int_argument_is_clean(self, check):
        findings = check(
            "SL006",
            """
            def wait(sim, delay_ns):
                sim.schedule(delay_ns, "tick")

            def caller(sim):
                wait(sim, 1_000_000)
            """,
        )
        assert findings == []

    def test_ns_keyword_left_to_sl003(self, check):
        # schedule(delay_ns=1.5) is SL003's finding; SL006 must not
        # double-report it.
        findings = check(
            "SL006",
            """
            def wait(sim, delay_ns):
                sim.schedule(delay_ns, "tick")

            def caller(sim):
                wait(sim, delay_ns=1.5)
            """,
        )
        assert findings == []

    def test_method_sink_via_self(self, check):
        findings = check(
            "SL006",
            """
            class Node:
                def arm(self, timeout_ns):
                    self.sim.schedule(timeout_ns, "t")

                def fire(self):
                    self.arm(3.5)
            """,
        )
        assert len(findings) == 1

    def test_suppression_comment(self, check):
        findings = check(
            "SL006",
            """
            def wait(sim, delay_ns):
                sim.schedule(delay_ns, "tick")

            def caller(sim):
                wait(sim, 1.5)  # simlint: disable=SL006
            """,
        )
        assert findings == []

    def test_cross_module_flow(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "src/pkg/sched.py": """
                    def wait(sim, delay_ns):
                        sim.schedule(delay_ns, "tick")
                    """,
                "src/pkg/caller.py": """
                    from pkg.sched import wait

                    def go(sim):
                        wait(sim, 2.5)
                    """,
            },
        )
        sl006 = [f for f in result.findings if f.rule_id == "SL006"]
        assert len(sl006) == 1
        assert sl006[0].path == "src/pkg/caller.py"


class TestProcessBoundary:  # SL007
    def test_flags_stream_into_submit(self, check):
        findings = check(
            "SL007",
            """
            def run(pool, registry):
                return pool.submit(work, registry.stream("placement"))
            """,
        )
        assert [f.rule_id for f in findings] == ["SL007"]
        assert "pickled" in findings[0].message

    def test_flags_rng_name_into_submit(self, check):
        findings = check(
            "SL007",
            """
            import random

            def run(pool):
                rng = random.Random(7)
                return pool.submit(work, rng)
            """,
        )
        assert len(findings) == 1

    def test_flags_stream_into_pickled_type(self, check):
        findings = check(
            "SL007",
            """
            def build(registry):
                return CellSpec(8, "dcf", registry.spawn(3))
            """,
        )
        assert len(findings) == 1
        assert "CellSpec" in findings[0].message

    def test_seed_arguments_are_clean(self, check):
        findings = check(
            "SL007",
            """
            def run(pool, seed):
                return pool.submit(work, seed, 42)
            """,
        )
        assert findings == []

    def test_worker_reading_module_rng_global(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "src/pkg/worker.py": """
                    import random

                    _rng = random.Random(0)

                    def work(n):
                        return _rng.random() * n
                    """,
                "src/pkg/driver.py": """
                    from concurrent.futures import ProcessPoolExecutor
                    from pkg.worker import work

                    def run(specs):
                        with ProcessPoolExecutor() as pool:
                            return [pool.submit(work, s) for s in specs]
                    """,
            },
        )
        sl007 = [f for f in result.findings if f.rule_id == "SL007"]
        assert len(sl007) >= 1
        assert any("module-level" in f.message for f in sl007)

    def test_pure_worker_is_clean(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "src/pkg/worker.py": """
                    def work(seed, n):
                        return seed * n
                    """,
                "src/pkg/driver.py": """
                    from concurrent.futures import ProcessPoolExecutor
                    from pkg.worker import work

                    def run(specs):
                        with ProcessPoolExecutor() as pool:
                            return [pool.submit(work, s, 2) for s in specs]
                    """,
            },
        )
        assert [f for f in result.findings if f.rule_id == "SL007"] == []


class TestFsOrder:  # SL008
    def test_flags_glob_in_for(self, check):
        findings = check(
            "SL008",
            """
            def scan(directory):
                for path in directory.glob("*.json"):
                    print(path)
            """,
        )
        assert [f.rule_id for f in findings] == ["SL008"]

    def test_flags_listdir_comprehension(self, check):
        findings = check(
            "SL008",
            """
            import os

            def names(d):
                return [n for n in os.listdir(d)]
            """,
        )
        assert len(findings) == 1

    def test_fix_wraps_in_sorted(self, check):
        findings = check(
            "SL008",
            """
            def scan(directory):
                for path in directory.glob("*.json"):
                    print(path)
            """,
        )
        assert findings[0].fix is not None
        assert findings[0].fix.replacement == 'sorted(directory.glob("*.json"))'

    def test_scandir_flagged_without_fix(self, check):
        findings = check(
            "SL008",
            """
            import os

            def scan(d):
                for entry in os.scandir(d):
                    print(entry.name)
            """,
        )
        assert len(findings) == 1
        assert findings[0].fix is None

    def test_sorted_scan_is_clean(self, check):
        findings = check(
            "SL008",
            """
            def scan(directory):
                for path in sorted(directory.glob("*.json")):
                    print(path)
            """,
        )
        assert findings == []

    def test_assigned_scan_iterated_later(self, check):
        findings = check(
            "SL008",
            """
            def scan(directory):
                paths = directory.glob("*.json")
                for path in paths:
                    print(path)
            """,
        )
        assert len(findings) == 1
        assert "'paths'" in findings[0].message

    def test_list_wrapper_still_flagged(self, check):
        findings = check(
            "SL008",
            """
            def scan(directory):
                for path in list(directory.glob("*.json")):
                    print(path)
            """,
        )
        assert len(findings) == 1


class TestTelemetryPurity:  # SL009
    def test_flags_consumed_mutator_result(self, check):
        findings = check(
            "SL009",
            """
            def record(counter):
                total = counter.inc()
                return total
            """,
        )
        assert [f.rule_id for f in findings] == ["SL009"]

    def test_bare_mutator_statement_is_clean(self, check):
        findings = check(
            "SL009",
            """
            def record(counter, histogram):
                counter.inc()
                histogram.observe(3)
            """,
        )
        assert findings == []

    def test_flags_gated_state_mutation(self, check):
        findings = check(
            "SL009",
            """
            class Node:
                def step(self):
                    if self.metrics is not None:
                        self.backoff += 1
            """,
        )
        assert len(findings) == 1
        assert "state mutated" in findings[0].message

    def test_flags_gated_return(self, check):
        findings = check(
            "SL009",
            """
            def step(node):
                if node.telemetry:
                    return None
                node.advance()
            """,
        )
        assert len(findings) == 1
        assert "control flow" in findings[0].message

    def test_gated_observation_is_clean(self, check):
        findings = check(
            "SL009",
            """
            class Node:
                def step(self):
                    if self.metrics is not None:
                        self.metrics.tx_attempts.inc()
            """,
        )
        assert findings == []

    def test_outside_event_path_is_clean(self, check):
        findings = check(
            "SL009",
            """
            def step(node):
                if node.telemetry:
                    return None
                node.advance()
            """,
            path="src/repro/experiments/run.py",
        )
        assert findings == []


class TestFingerprint:  # SL010
    CONFIG_AND_PRINTER = """
        import dataclasses
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class SimStudyConfig:
            n_values: tuple
            base_seed: int
            retry_limit: int

        def config_fingerprint(config):
            record = {{
                "n_values": config.n_values,
                {extra}
            }}
            return record
        """

    def test_flags_uncovered_field(self, check):
        findings = check(
            "SL010",
            self.CONFIG_AND_PRINTER.format(extra='"base_seed": config.base_seed,'),
        )
        assert [f.rule_id for f in findings] == ["SL010"]
        assert "'retry_limit'" in findings[0].message

    def test_all_fields_read_is_clean(self, check):
        findings = check(
            "SL010",
            self.CONFIG_AND_PRINTER.format(
                extra='"base_seed": config.base_seed,'
                '"retry_limit": config.retry_limit,'
            ),
        )
        assert findings == []

    def test_asdict_covers_everything(self, check):
        findings = check(
            "SL010",
            """
            import dataclasses
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class SimStudyConfig:
                n_values: tuple
                base_seed: int

            def config_fingerprint(config):
                return dataclasses.asdict(config)
            """,
        )
        assert findings == []

    def test_popped_field_is_flagged(self, check):
        findings = check(
            "SL010",
            """
            import dataclasses
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class SimStudyConfig:
                n_values: tuple
                base_seed: int

            def config_fingerprint(config):
                record = dataclasses.asdict(config)
                record.pop("base_seed")
                return record
            """,
        )
        assert len(findings) == 1
        assert "'base_seed'" in findings[0].message

    def test_no_fingerprint_function_no_findings(self, check):
        findings = check(
            "SL010",
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class SimStudyConfig:
                n_values: tuple
            """,
        )
        assert findings == []

    def test_sinr_config_is_a_default_root(self, check):
        # SinrStudyConfig ships in the default roots: a reception knob
        # that never reaches the fingerprint must be flagged, or two
        # SINR campaigns differing only in that knob would share a
        # directory.
        findings = check(
            "SL010",
            """
            import dataclasses
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class SinrStudyConfig:
                n_values: tuple
                capture_threshold_db: float = 10.0

            def config_fingerprint(config):
                return {"n_values": config.n_values}
            """,
        )
        assert [f.rule_id for f in findings] == ["SL010"]
        assert "'capture_threshold_db'" in findings[0].message

    def test_cross_module_subclass_fields(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "src/pkg/config.py": """
                    from dataclasses import dataclass

                    @dataclass(frozen=True)
                    class SimStudyConfig:
                        base_seed: int

                    @dataclass(frozen=True)
                    class MultihopStudyConfig(SimStudyConfig):
                        ttl: int = 8
                    """,
                "src/pkg/store.py": """
                    from pkg.config import SimStudyConfig

                    def config_fingerprint(config):
                        return {"base_seed": config.base_seed}
                    """,
            },
        )
        sl010 = [f for f in result.findings if f.rule_id == "SL010"]
        assert len(sl010) == 1
        assert "'ttl'" in sl010[0].message
        assert sl010[0].path == "src/pkg/config.py"
