"""The whole-program pass: module naming, resolution, call graph."""

import textwrap

from repro.lint.context import ModuleContext
from repro.lint.project import ProjectContext, module_name_for_path


def parse(path, source):
    return ModuleContext.parse(path, textwrap.dedent(source))


class TestModuleNames:
    def test_src_root_stripped(self):
        assert module_name_for_path("src/repro/mac/dcf.py") == "repro.mac.dcf"

    def test_init_becomes_package(self):
        assert module_name_for_path("src/repro/phy/__init__.py") == "repro.phy"

    def test_no_source_root_uses_whole_path(self):
        assert module_name_for_path("pkg/mod.py") == "pkg.mod"

    def test_last_source_root_wins(self):
        assert module_name_for_path("src/vendor/src/pkg/m.py") == "pkg.m"

    def test_backslashes_normalised(self):
        assert module_name_for_path("src\\repro\\cli.py") == "repro.cli"


FIXTURE = {
    "src/pkg/units.py": """
        def seconds(value):
            return int(value * 1_000_000_000)

        class Timer:
            def start(self, delay_ns):
                return delay_ns
        """,
    "src/pkg/config.py": """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Base:
            alpha: int
            beta: str = "x"

        @dataclass(frozen=True)
        class Derived(Base):
            gamma: float = 0.0
            alpha: int = 3
        """,
    "src/pkg/app.py": """
        from .units import seconds, Timer
        from pkg.config import Derived

        def run(cfg):
            t = Timer()
            t.start(seconds(1))
            return Derived(alpha=cfg)

        class Driver:
            def step(self):
                return self.helper()

            def helper(self):
                return seconds(2)
        """,
}


def build_fixture():
    return ProjectContext.build(
        [parse(path, source) for path, source in FIXTURE.items()]
    )


class TestResolution:
    def test_modules_indexed_by_dotted_name(self):
        project = build_fixture()
        assert set(project.modules) == {"pkg.units", "pkg.config", "pkg.app"}

    def test_relative_import_resolves(self):
        project = build_fixture()
        assert project.resolve("pkg.app", "seconds") == "pkg.units.seconds"
        assert project.resolve("pkg.app", "Timer") == "pkg.units.Timer"

    def test_absolute_import_resolves(self):
        project = build_fixture()
        assert project.resolve("pkg.app", "Derived") == "pkg.config.Derived"

    def test_module_local_name_resolves(self):
        project = build_fixture()
        assert project.resolve("pkg.units", "seconds") == "pkg.units.seconds"

    def test_unknown_name_is_none(self):
        project = build_fixture()
        assert project.resolve("pkg.app", "json.dumps") is None
        assert project.resolve("pkg.app", "nonexistent") is None

    def test_methods_in_symbol_table(self):
        project = build_fixture()
        assert "pkg.units.Timer.start" in project.functions
        assert project.functions["pkg.units.Timer.start"].owner == "Timer"


class TestCallGraph:
    def test_cross_module_call_edge(self):
        project = build_fixture()
        assert "pkg.units.seconds" in project.callees_of("pkg.app.run")
        assert "pkg.config.Derived" in project.callees_of("pkg.app.run")

    def test_self_method_call_edge(self):
        project = build_fixture()
        assert "pkg.app.Driver.helper" in project.callees_of(
            "pkg.app.Driver.step"
        )

    def test_callers_inverse(self):
        project = build_fixture()
        assert "pkg.app.run" in project.callers_of("pkg.units.seconds")
        assert "pkg.app.Driver.helper" in project.callers_of("pkg.units.seconds")

    def test_resolve_call_on_self_attribute(self):
        import ast

        project = build_fixture()
        call = ast.parse("self.helper()", mode="eval").body
        assert (
            project.resolve_call("pkg.app", call, owner="Driver")
            == "pkg.app.Driver.helper"
        )


class TestDataclassIndex:
    def test_fields_in_declaration_order(self):
        project = build_fixture()
        info = project.dataclasses["pkg.config.Base"]
        assert info.fields == ("alpha", "beta")

    def test_inherited_fields_base_first(self):
        project = build_fixture()
        assert project.dataclass_fields("pkg.config.Derived") == (
            "alpha",
            "beta",
            "gamma",
        )

    def test_redeclared_field_keeps_base_position(self):
        project = build_fixture()
        fields = project.dataclass_fields("pkg.config.Derived")
        assert fields.count("alpha") == 1
        assert fields.index("alpha") == 0

    def test_non_dataclass_not_indexed(self):
        project = build_fixture()
        assert "pkg.units.Timer" not in project.dataclasses

    def test_unknown_class_has_no_fields(self):
        project = build_fixture()
        assert project.dataclass_fields("pkg.config.Missing") == ()


class TestModuleOf:
    def test_symbol_maps_to_module(self):
        project = build_fixture()
        module = project.module_of("pkg.units.Timer.start")
        assert module is project.modules["pkg.units"]

    def test_unknown_symbol_is_none(self):
        project = build_fixture()
        assert project.module_of("other.pkg.fn") is None
