"""Tests for the slot-model configuration and torus geometry."""

import math
import random

import pytest

from repro.core import PAPER_PARAMETERS
from repro.slotsim import SlotModelConfig, TorusGeometry


def config(**kw):
    defaults = dict(params=PAPER_PARAMETERS.with_neighbors(3.0), p=0.02)
    defaults.update(kw)
    return SlotModelConfig(**defaults)


class TestSlotModelConfig:
    def test_node_count_matches_density(self):
        # K = N * L^2 / (pi R^2) with L = 6R.
        cfg = config()
        assert cfg.node_count == round(3.0 * 36 / math.pi)

    def test_denser_network_more_nodes(self):
        sparse = config()
        dense = config(params=PAPER_PARAMETERS.with_neighbors(8.0))
        assert dense.node_count > sparse.node_count

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ValueError):
            config(scheme="NOPE")

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            config(p=0.0)
        with pytest.raises(ValueError):
            config(p=1.0)

    def test_rejects_small_torus(self):
        with pytest.raises(ValueError):
            config(torus_factor=2.0)


class TestTorusGeometry:
    @pytest.fixture(scope="class")
    def geometry(self):
        return TorusGeometry(config(seed=3), random.Random(3))

    def test_positions_on_torus(self, geometry):
        for x, y in zip(geometry.xs, geometry.ys):
            assert 0.0 <= x < geometry.side
            assert 0.0 <= y < geometry.side

    def test_distance_symmetric(self, geometry):
        for i in range(0, geometry.count, 5):
            for j in range(0, geometry.count, 7):
                if i != j:
                    assert geometry.distance(i, j) == pytest.approx(
                        geometry.distance(j, i)
                    )

    def test_distance_bounded_by_half_diagonal(self, geometry):
        bound = geometry.side * math.sqrt(2) / 2 + 1e-9
        for i in range(geometry.count):
            for j in range(geometry.count):
                if i != j:
                    assert geometry.distance(i, j) <= bound

    def test_wraparound_shortcut(self):
        # Two nodes near opposite edges are close through the wrap.
        cfg = config(seed=0)
        geo = TorusGeometry.__new__(TorusGeometry)
        # Hand-build a 2-node torus to check the minimum image math.
        geo.side = 6.0
        geo.count = 2
        geo.xs = [0.1, 5.9]
        geo.ys = [0.0, 0.0]
        geo._distance = [[0.0] * 2 for _ in range(2)]
        geo._bearing = [[0.0] * 2 for _ in range(2)]
        half = 3.0
        for i in range(2):
            for j in range(2):
                if i == j:
                    continue
                dx = (geo.xs[j] - geo.xs[i] + half) % 6.0 - half
                dy = (geo.ys[j] - geo.ys[i] + half) % 6.0 - half
                geo._distance[i][j] = math.hypot(dx, dy)
                geo._bearing[i][j] = math.atan2(dy, dx)
        assert geo._distance[0][1] == pytest.approx(0.2)
        # Bearing from node 0 to node 1 goes *west* through the wrap.
        assert abs(geo._bearing[0][1]) == pytest.approx(math.pi)

    def test_neighbors_within_unit_range(self, geometry):
        for i, neighbor_list in enumerate(geometry.neighbors):
            for j in neighbor_list:
                assert geometry.distance(i, j) <= 1.0

    def test_mean_degree_near_n(self, geometry):
        # Expected mean degree is lambda * pi = K * pi / L^2 ~ 3.
        assert 1.5 < geometry.mean_degree() < 4.5

    def test_covers_omni(self, geometry):
        i, j = 0, geometry.neighbors[0][0] if geometry.neighbors[0] else (0, 1)
        if isinstance(j, tuple):
            pytest.skip("no neighbors in this draw")
        assert geometry.covers(i, j, j, 2 * math.pi)

    def test_covers_respects_beam(self):
        geo = TorusGeometry(config(seed=11), random.Random(11))
        # Find a node with two neighbors at very different bearings.
        for i in range(geo.count):
            if len(geo.neighbors[i]) < 2:
                continue
            a, b = geo.neighbors[i][0], geo.neighbors[i][1]
            from repro.phy import angular_distance

            separation = angular_distance(geo.bearing(i, a), geo.bearing(i, b))
            if separation > math.radians(60):
                narrow = math.radians(30)
                assert geo.covers(i, a, a, narrow)
                assert not geo.covers(i, a, b, narrow)
                return
        pytest.skip("no suitable bearing pair in this draw")
