"""Property-based checks of the slot-model engine's bookkeeping."""

import math

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import PAPER_PARAMETERS
from repro.mac.policy import POLICIES
from repro.slotsim import SlotModelConfig, SlotModelEngine


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    scheme=st.sampled_from(sorted(POLICIES)),
    theta_deg=st.sampled_from([15.0, 60.0, 150.0]),
    p=st.floats(min_value=0.005, max_value=0.15),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_engine_bookkeeping_invariants(scheme, theta_deg, p, seed):
    params = PAPER_PARAMETERS.with_neighbors(3.0).with_beamwidth(
        math.radians(theta_deg)
    )
    engine = SlotModelEngine(
        SlotModelConfig(params=params, scheme=scheme, p=p, seed=seed)
    )
    results = engine.run(3_000)

    # Outcome accounting.
    assert results.successes + results.failures <= results.initiations
    assert results.payload_slots == results.successes * params.l_data
    assert sum(results.fail_durations.values()) == results.failures
    assert set(results.fail_durations) <= {12, 119}
    assert 0.0 <= results.throughput_per_node < 1.0
    assert 0.0 <= results.success_ratio <= 1.0

    # Engine internal consistency after the run: every active handshake
    # has its sender engaged, and engaged nodes map to live handshakes.
    for hs in engine._active:
        assert engine._engaged.get(hs.sender) is hs
        if hs.responded:
            assert engine._engaged.get(hs.receiver) is hs
    for node, hs in engine._engaged.items():
        assert hs in engine._active
        assert node in (hs.sender, hs.receiver)
