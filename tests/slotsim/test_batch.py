"""Scalar-vs-batch equivalence suite for the vectorized slot engine.

Three layers of evidence that :class:`BatchSlotModelEngine` simulates
the same world as the scalar oracle:

1. **Bit-identical**: in ``rng_mode="oracle"`` the batch engine replays
   the scalar engine's exact RNG stream, so every results field —
   including the integer ledgers — must match with ``==``.
2. **Structural**: the array-form geometry (padded neighbor table,
   reverse index, coverage tensor) must agree with the scalar
   ``TorusGeometry`` / a brute-force rebuild entry for entry.
3. **Distributional**: in the default numpy mode, paired runs on the
   *same* geometry must agree on success ratio, throughput and
   ``mean_fail_duration`` within combined-standard-error bounds.
"""

import math

import numpy as np
import pytest

from repro.core import PAPER_PARAMETERS
from repro.obs import MetricsRegistry
from repro.slotsim import (
    BatchGeometry,
    BatchSlotModelEngine,
    SlotModelConfig,
    SlotModelEngine,
    TorusGeometry,
)


def make_config(scheme="ORTS-OCTS", n=3.0, theta_deg=60.0, p=0.02, seed=1,
                torus_factor=6.0):
    params = PAPER_PARAMETERS.with_neighbors(n).with_beamwidth(
        math.radians(theta_deg)
    )
    return SlotModelConfig(
        params=params, scheme=scheme, p=p, torus_factor=torus_factor, seed=seed
    )


def assert_identical(a, b):
    """Field-exact equality of two SlotModelResults."""
    assert a.slots == b.slots
    assert a.node_count == b.node_count
    assert a.mean_degree == pytest.approx(b.mean_degree)
    assert a.initiations == b.initiations
    assert a.successes == b.successes
    assert a.failures == b.failures
    assert a.payload_slots == b.payload_slots
    assert dict(a.fail_durations) == dict(b.fail_durations)


class TestOracleBitIdentity:
    """Layer 1: the RNG-order-pinned mode equals the scalar engine."""

    @pytest.mark.parametrize("scheme", [
        "ORTS-OCTS", "DRTS-DCTS", "DRTS-OCTS", "ORTS-OCTS-DDATA", "DORTS-OCTS",
    ])
    def test_schemes_bit_identical(self, scheme):
        config = make_config(scheme=scheme, p=0.05, seed=11)
        scalar = SlotModelEngine(config).run(600)
        batch = BatchSlotModelEngine(config, rng_mode="oracle").run(600)
        assert len(batch) == 1
        assert_identical(batch[0], scalar)

    @pytest.mark.parametrize("p", [0.01, 0.1])
    @pytest.mark.parametrize("theta_deg", [30.0, 150.0])
    def test_p_beamwidth_grid_bit_identical(self, p, theta_deg):
        config = make_config(
            scheme="DRTS-DCTS", theta_deg=theta_deg, p=p, seed=5
        )
        scalar = SlotModelEngine(config).run(500)
        batch = BatchSlotModelEngine(config, rng_mode="oracle").run(500)
        assert_identical(batch[0], scalar)

    def test_oracle_on_shared_scalar_geometry(self):
        config = make_config(p=0.05, seed=3)
        import random

        geo = TorusGeometry(config, random.Random(config.seed))
        scalar = SlotModelEngine(config, geometry=geo).run(400)
        batch = BatchSlotModelEngine(
            config, geometry=geo, rng_mode="oracle"
        ).run(400)
        assert_identical(batch[0], scalar)

    def test_oracle_run_reuse_is_pure(self):
        config = make_config(p=0.05, seed=8)
        engine = BatchSlotModelEngine(config, rng_mode="oracle")
        first = engine.run(400)[0]
        second = engine.run(400)[0]
        assert_identical(first, second)

    def test_oracle_metrics_match_scalar_harvest(self):
        config = make_config(p=0.05, seed=2)
        scalar_metrics = MetricsRegistry()
        SlotModelEngine(config, metrics=scalar_metrics).run(400)
        batch_metrics = MetricsRegistry()
        BatchSlotModelEngine(
            config, rng_mode="oracle", metrics=batch_metrics
        ).run(400)
        assert scalar_metrics.snapshot() == batch_metrics.snapshot()


class TestGeometry:
    """Layer 2: the array-form geometry tables are faithful."""

    def test_from_torus_adopts_neighbors(self):
        config = make_config(seed=4)
        import random

        geo = TorusGeometry(config, random.Random(config.seed))
        batch = BatchGeometry.from_torus(geo, config.params.beamwidth)
        assert batch.count == geo.count
        assert batch.mean_degree() == pytest.approx(geo.mean_degree())
        for k in range(geo.count):
            row = batch.nbr[k, : batch.deg[k]].tolist()
            assert row == geo.neighbors[k]

    def test_from_torus_coverage_matches_covers(self):
        config = make_config(theta_deg=70.0, seed=4)
        import random

        geo = TorusGeometry(config, random.Random(config.seed))
        theta = config.params.beamwidth
        batch = BatchGeometry.from_torus(geo, theta)
        for k in range(geo.count):
            row = geo.neighbors[k]
            for a, aimed in enumerate(row):
                for l, listener in enumerate(row):
                    assert batch.cov[k, a, l] == geo.covers(
                        k, aimed, listener, theta
                    )

    def test_rev_is_the_reverse_index(self):
        config = make_config(seed=9, torus_factor=8.0)
        geometry = BatchGeometry.generate(
            config,
            np.random.Generator(np.random.PCG64(np.random.SeedSequence(0))),  # simlint: disable=SL001 -- test fixture stream
        )
        for k in range(geometry.count):
            for d in range(int(geometry.deg[k])):
                j = int(geometry.nbr[k, d])
                assert int(geometry.nbr[j, geometry.rev[k, d]]) == k

    def test_generate_matches_bruteforce_neighbors(self):
        """Cell-binned neighbor search equals the O(K^2) answer."""
        config = make_config(n=8.0, seed=13, torus_factor=7.0)
        geometry = BatchGeometry.generate(
            config,
            np.random.Generator(np.random.PCG64(np.random.SeedSequence(7))),  # simlint: disable=SL001 -- test fixture stream
        )
        xs, ys, side = geometry.xs, geometry.ys, geometry.side
        assert xs is not None and ys is not None
        dx = np.mod(xs[None, :] - xs[:, None] + side / 2, side) - side / 2
        dy = np.mod(ys[None, :] - ys[:, None] + side / 2, side) - side / 2
        within = (dx * dx + dy * dy <= 1.0) & ~np.eye(xs.size, dtype=bool)
        for k in range(geometry.count):
            expected = np.nonzero(within[k])[0].tolist()
            assert geometry.nbr[k, : geometry.deg[k]].tolist() == expected

    def test_generate_mean_degree_near_target(self):
        config = make_config(n=5.0, seed=1, torus_factor=12.0)
        geometry = BatchGeometry.generate(
            config,
            np.random.Generator(np.random.PCG64(np.random.SeedSequence(3))),  # simlint: disable=SL001 -- test fixture stream
        )
        # K = N * side^2 / pi nodes in side^2 area with unit-disk range:
        # E[degree] ~= N.
        assert geometry.mean_degree() == pytest.approx(5.0, rel=0.25)


class TestNumpyModeDeterminism:
    """Seed stability and batch-split invariance of the default mode."""

    def test_run_reuse_equals_fresh_engine(self):
        config = make_config(p=0.05, seed=21)
        engine = BatchSlotModelEngine(config, batch=3)
        first = engine.run(400)
        second = engine.run(400)
        fresh = BatchSlotModelEngine(config, batch=3).run(400)
        for a, b, c in zip(first, second, fresh):
            assert_identical(a, b)
            assert_identical(a, c)

    def test_batch_split_invariance(self):
        config = make_config(p=0.05, seed=6)
        whole = BatchSlotModelEngine(config, batch=4).run(300)
        front = BatchSlotModelEngine(config, batch=2).run(300)
        back = BatchSlotModelEngine(
            config, batch=2, replicate_offset=2
        ).run(300)
        for a, b in zip(whole, front + back):
            assert_identical(a, b)

    def test_replicates_differ(self):
        config = make_config(p=0.05, seed=6)
        results = BatchSlotModelEngine(config, batch=4).run(500)
        assert len({r.initiations for r in results}) > 1

    def test_geometry_stream_independent_of_batch(self):
        config = make_config(seed=17)
        a = BatchSlotModelEngine(config, batch=1)
        b = BatchSlotModelEngine(config, batch=5)
        assert np.array_equal(a.geometry.nbr, b.geometry.nbr)

    def test_payload_slots_are_exact_integers(self):
        config = make_config(p=0.05, seed=2)
        for r in BatchSlotModelEngine(config, batch=2).run(400):
            assert isinstance(r.payload_slots, int)
            assert r.payload_slots == r.successes * 100

    def test_metrics_harvest_sums_batch(self):
        config = make_config(p=0.05, seed=2)
        metrics = MetricsRegistry()
        results = BatchSlotModelEngine(config, batch=3, metrics=metrics).run(300)
        assert metrics.counter("slotsim.slots").value == 900
        assert metrics.counter("slotsim.successes").value == sum(
            r.successes for r in results
        )
        assert metrics.counter("slotsim.initiations").value == sum(
            r.initiations for r in results
        )


class TestValidation:
    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            BatchSlotModelEngine(make_config(), batch=0)

    def test_rejects_bad_offset(self):
        with pytest.raises(ValueError):
            BatchSlotModelEngine(make_config(), replicate_offset=-1)

    def test_rejects_bad_rng_mode(self):
        with pytest.raises(ValueError):
            BatchSlotModelEngine(make_config(), rng_mode="exotic")

    def test_oracle_requires_single_replicate(self):
        with pytest.raises(ValueError):
            BatchSlotModelEngine(make_config(), batch=2, rng_mode="oracle")
        with pytest.raises(ValueError):
            BatchSlotModelEngine(
                make_config(), replicate_offset=1, rng_mode="oracle"
            )

    def test_rejects_mismatched_coverage_tensor(self):
        narrow = make_config(scheme="DRTS-DCTS", theta_deg=30.0, seed=1)
        wide = make_config(scheme="DRTS-DCTS", theta_deg=150.0, seed=1)
        geometry = BatchSlotModelEngine(narrow).geometry
        with pytest.raises(ValueError):
            BatchSlotModelEngine(wide, geometry=geometry)

    def test_omni_scheme_accepts_any_tensor(self):
        # ORTS-OCTS never consults the directional tensor.
        narrow = make_config(scheme="ORTS-OCTS", theta_deg=30.0, seed=1)
        wide = make_config(scheme="ORTS-OCTS", theta_deg=150.0, seed=1)
        geometry = BatchSlotModelEngine(narrow).geometry
        BatchSlotModelEngine(wide, geometry=geometry)

    def test_rejects_bad_slots(self):
        with pytest.raises(ValueError):
            BatchSlotModelEngine(make_config()).run(0)


# The distributional cells the acceptance criteria require: >= 3
# (topology, p) cells, paired on identical geometry.
EQUIVALENCE_CELLS = [
    # (scheme, theta_deg, p, seed)
    ("ORTS-OCTS", 60.0, 0.02, 31),
    ("DRTS-DCTS", 30.0, 0.05, 32),
    ("DRTS-OCTS", 90.0, 0.08, 33),
]


class TestDistributionalEquivalence:
    """Layer 3: numpy-mode traffic on the scalar geometry agrees with
    scalar runs within combined-standard-error bounds."""

    @pytest.mark.parametrize("scheme,theta_deg,p,seed", EQUIVALENCE_CELLS)
    def test_cell_agrees_within_ci(self, scheme, theta_deg, p, seed):
        import random

        config = make_config(scheme=scheme, theta_deg=theta_deg, p=p, seed=seed)
        geometry = TorusGeometry(config, random.Random(config.seed))
        slots, reps = 1_200, 6

        scalar_runs = []
        for i in range(reps):
            cfg_i = SlotModelConfig(
                params=config.params,
                scheme=scheme,
                p=p,
                torus_factor=config.torus_factor,
                seed=seed + 1000 * (i + 1),
            )
            scalar_runs.append(
                SlotModelEngine(cfg_i, geometry=geometry).run(slots)
            )
        batch_runs = BatchSlotModelEngine(
            config, batch=reps, geometry=geometry
        ).run(slots)

        for metric in ("success_ratio", "throughput_per_node",
                       "mean_fail_duration"):
            a = np.array([getattr(r, metric) for r in scalar_runs])
            b = np.array([getattr(r, metric) for r in batch_runs])
            se = math.sqrt(
                a.var(ddof=1) / reps + b.var(ddof=1) / reps
            )
            # 4 combined standard errors: wide enough to be stable
            # across platforms, tight enough to catch systematic bias
            # (the oracle layer pins exactness; this layer guards the
            # numpy draw paths).
            assert abs(a.mean() - b.mean()) <= max(4.0 * se, 1e-12), (
                f"{metric}: scalar {a.mean():.5f} vs batch {b.mean():.5f} "
                f"(se {se:.5f})"
            )

    def test_randomized_small_worlds(self):
        """Randomized N<=32 sweep: oracle equivalence on tiny worlds
        across p and beamwidth (bit-exactness implies distributional
        agreement, so the sweep doubles as a fuzz of the array paths
        on degenerate geometries)."""
        for seed, p, theta in [
            (41, 0.03, 45.0),
            (42, 0.12, 120.0),
            (43, 0.3, 15.0),
            (44, 0.07, 179.0),
        ]:
            config = make_config(
                scheme="DRTS-OCTS", n=2.5, theta_deg=theta, p=p, seed=seed,
                torus_factor=3.0,
            )
            assert config.node_count <= 32
            scalar = SlotModelEngine(config).run(700)
            batch = BatchSlotModelEngine(config, rng_mode="oracle").run(700)
            assert_identical(batch[0], scalar)
