"""Hand-built geometries pinning the slot-model's directional physics."""

import math
import random

import pytest

from repro.core import PAPER_PARAMETERS
from repro.slotsim import SlotModelConfig, SlotModelEngine, TorusGeometry


def hand_geometry(positions, side=6.0, range_limit=1.0):
    """Build a TorusGeometry from explicit coordinates (R = 1 units)."""
    geo = TorusGeometry.__new__(TorusGeometry)
    geo.side = side
    geo.count = len(positions)
    geo.xs = [p[0] for p in positions]
    geo.ys = [p[1] for p in positions]
    geo._distance = [[0.0] * geo.count for _ in range(geo.count)]
    geo._bearing = [[0.0] * geo.count for _ in range(geo.count)]
    half = side / 2.0
    for i in range(geo.count):
        for j in range(geo.count):
            if i == j:
                continue
            dx = (geo.xs[j] - geo.xs[i] + half) % side - half
            dy = (geo.ys[j] - geo.ys[i] + half) % side - half
            geo._distance[i][j] = math.hypot(dx, dy)
            geo._bearing[i][j] = math.atan2(dy, dx)
    geo.neighbors = [
        [
            j
            for j in range(geo.count)
            if j != i and geo._distance[i][j] <= range_limit
        ]
        for i in range(geo.count)
    ]
    return geo


def engine_for(positions, scheme, theta_deg, p=0.5, seed=1):
    params = PAPER_PARAMETERS.with_neighbors(3.0).with_beamwidth(
        math.radians(theta_deg)
    )
    config = SlotModelConfig(params=params, scheme=scheme, p=p, seed=seed)
    return SlotModelEngine(config, geometry=hand_geometry(positions))


class TestBeamGeometryInSlotSim:
    """Three nodes in a row: 0 at origin, 1 east of it, 2 east of 1.

    Node 2's packets go to node 1 (its only neighbor): its westward
    beam covers node 1 *and* node 0's transmissions to 1 collide there.
    """

    ROW = [(1.0, 1.0), (1.8, 1.0), (2.6, 1.0)]

    def test_cross_interference_under_narrow_beams(self):
        # Both 0 and 2 saturate toward 1 (each other's hidden rival):
        # narrow beams still collide at the shared receiver.
        engine = engine_for(self.ROW, "DRTS-DCTS", 15.0, p=0.3, seed=2)
        results = engine.run(10_000)
        assert results.failures > 0

    def test_perpendicular_beams_do_not_interfere(self):
        # 0 -> 1 along x; far pair 2 -> 3 along x as well, but offset in
        # y beyond any beam: fully parallel operation, so the failure
        # rate matches a lone pair's cross-initiation floor.
        positions = [(1.0, 1.0), (1.8, 1.0), (1.0, 4.0), (1.8, 4.0)]
        engine = engine_for(positions, "DRTS-DCTS", 15.0, p=0.05, seed=3)
        results = engine.run(20_000)
        # Out-of-range pairs cannot corrupt each other; only intra-pair
        # cross-initiations fail, detected at the early checkpoint.
        assert set(results.fail_durations) <= {12}

    def test_omni_couples_the_pairs(self):
        # Same two pairs but at coupling distance in y (0.9 < 1.0):
        # omni transmissions collide across pairs, beams do not.
        positions = [(1.0, 1.0), (1.8, 1.0), (1.0, 1.9), (1.8, 1.9)]
        omni = engine_for(positions, "ORTS-OCTS", 15.0, p=0.05, seed=4)
        beam = engine_for(positions, "DRTS-DCTS", 15.0, p=0.05, seed=4)
        omni_results = omni.run(20_000)
        beam_results = beam.run(20_000)
        assert (
            beam_results.throughput_per_node
            > omni_results.throughput_per_node
        )

    def test_receiver_busy_rejects_second_rts(self):
        # With p high, node 1 is usually mid-handshake when the rival's
        # RTS lands: those attempts fail at the early checkpoint.
        engine = engine_for(self.ROW, "ORTS-OCTS", 15.0, p=0.4, seed=5)
        results = engine.run(5_000)
        assert results.fail_durations.get(12, 0) > 0
