"""Tests for the slot-model engine."""

import math

import pytest

from repro.core import PAPER_PARAMETERS
from repro.core.params import ProtocolParameters
from repro.slotsim import SlotModelConfig, SlotModelEngine


def run(scheme="ORTS-OCTS", n=3.0, theta_deg=30.0, p=0.02, seed=1, slots=20_000):
    params = PAPER_PARAMETERS.with_neighbors(n).with_beamwidth(
        math.radians(theta_deg)
    )
    engine = SlotModelEngine(
        SlotModelConfig(params=params, scheme=scheme, p=p, seed=seed)
    )
    return engine.run(slots)


class TestPhaseBoundaries:
    def test_timeline_matches_paper(self):
        engine = SlotModelEngine(
            SlotModelConfig(params=PAPER_PARAMETERS, p=0.02)
        )
        assert engine.rts_end == 5
        assert engine.cts_start == 6
        assert engine.cts_end == 11
        assert engine.data_start == 12
        assert engine.data_end == 112
        assert engine.ack_start == 113
        assert engine.ack_end == 118
        assert engine.t_succeed == 119  # l_rts+l_cts+l_data+l_ack+4
        assert engine.t_fail_early == 12  # l_rts+l_cts+2


class TestBasicRuns:
    def test_progress_made(self):
        results = run()
        assert results.initiations > 0
        assert results.successes > 0
        assert results.payload_slots > 0

    def test_deterministic_given_seed(self):
        a = run(seed=9)
        b = run(seed=9)
        assert a.successes == b.successes
        assert a.initiations == b.initiations

    def test_different_seeds_differ(self):
        assert run(seed=1).successes != run(seed=2).successes

    def test_rejects_bad_slots(self):
        engine = SlotModelEngine(SlotModelConfig(params=PAPER_PARAMETERS, p=0.02))
        with pytest.raises(ValueError):
            engine.run(0)

    def test_throughput_in_unit_range(self):
        results = run()
        assert 0.0 <= results.throughput_per_node < 1.0

    def test_success_plus_failure_accounts_for_completions(self):
        results = run()
        assert results.successes + results.failures <= results.initiations


class TestFailureDurations:
    def test_only_two_checkpoint_durations(self):
        # Failures are detected either after the CTS window (12 slots)
        # or at the very end (119 slots) — nothing in between.
        results = run(p=0.05)
        assert set(results.fail_durations) <= {12, 119}

    def test_mean_fail_between_checkpoints(self):
        results = run(p=0.05)
        if results.failures:
            assert 12 <= results.mean_fail_duration <= 119


class TestModelAgreement:
    def test_orts_octs_ignores_beamwidth(self):
        assert (
            run(theta_deg=30.0, seed=4).successes
            == run(theta_deg=150.0, seed=4).successes
        )

    def test_paper_ordering_at_narrow_beamwidth(self):
        """The headline check: the Fig. 5 ordering survives in the
        honestly-simulated model world."""
        results = {
            scheme: run(scheme=scheme, theta_deg=30.0, seed=7, slots=40_000)
            for scheme in ("ORTS-OCTS", "DRTS-DCTS", "DRTS-OCTS")
        }
        assert (
            results["DRTS-DCTS"].throughput_per_node
            > results["ORTS-OCTS"].throughput_per_node
        )
        assert (
            results["DRTS-OCTS"].throughput_per_node
            > results["ORTS-OCTS"].throughput_per_node
        )

    def test_drts_dcts_narrow_beats_wide(self):
        narrow = run(scheme="DRTS-DCTS", theta_deg=30.0, seed=7, slots=40_000)
        wide = run(scheme="DRTS-DCTS", theta_deg=150.0, seed=7, slots=40_000)
        assert narrow.throughput_per_node > wide.throughput_per_node

    def test_analytical_is_upper_bound(self):
        # Independence assumptions only ever help the closed form.
        from repro.core import OrtsOcts

        results = run(p=0.02, slots=40_000, seed=3)
        analytical = OrtsOcts(PAPER_PARAMETERS.with_neighbors(3.0)).throughput(0.02)
        assert results.throughput_per_node < analytical


def lone_pair_geometry(config):
    """A hand-built two-node world: only each other in range."""
    import math
    import random

    from repro.slotsim import TorusGeometry

    geo = TorusGeometry.__new__(TorusGeometry)
    geo.side = config.torus_factor
    geo.count = 2
    geo.xs = [1.0, 1.5]
    geo.ys = [1.0, 1.0]
    geo._distance = [[0.0, 0.5], [0.5, 0.0]]
    geo._bearing = [[0.0, 0.0], [0.0, math.pi]]
    geo.neighbors = [[1], [0]]
    return geo


class TestIsolatedPair:
    def test_lone_pair_mostly_succeeds(self):
        # Two nodes alone in the world: the only failure mode is a
        # simultaneous cross-initiation (both transmit, both deaf).
        # The vulnerable window is the whole RTS (~6 slots): with
        # p = 0.01 the peer cross-initiates within it ~6% of the time.
        params = ProtocolParameters(n_neighbors=2.0)
        config = SlotModelConfig(params=params, p=0.01, torus_factor=3.0, seed=2)
        engine = SlotModelEngine(config, geometry=lone_pair_geometry(config))
        results = engine.run(60_000)
        assert results.initiations > 0
        assert results.success_ratio > 0.8

    def test_lone_pair_failures_are_cross_initiations(self):
        params = ProtocolParameters(n_neighbors=2.0)
        config = SlotModelConfig(params=params, p=0.2, torus_factor=3.0, seed=3)
        engine = SlotModelEngine(config, geometry=lone_pair_geometry(config))
        results = engine.run(20_000)
        # With aggressive p the pair often cross-initiates; every
        # failure is detected at the early (missing-CTS) checkpoint.
        assert results.failures > 0
        assert set(results.fail_durations) == {12}


class TestRunReuse:
    """Regression: run() once silently corrupted a second call —
    ``_engaged``/``_active`` survived while ``now`` restarted at 0, so
    stale handshakes got negative offsets and radiated RTS forever."""

    def test_two_sequential_runs_equal_two_fresh_engines(self):
        config = SlotModelConfig(
            params=PAPER_PARAMETERS.with_neighbors(3.0), p=0.05, seed=13
        )
        engine = SlotModelEngine(config)
        # 500 slots: far more than T_succeed, so handshakes are
        # guaranteed in flight at the cut.
        first = engine.run(500)
        second = engine.run(500)
        fresh = SlotModelEngine(config).run(500)
        for reused in (first, second):
            assert reused.initiations == fresh.initiations
            assert reused.successes == fresh.successes
            assert reused.failures == fresh.failures
            assert reused.payload_slots == fresh.payload_slots
            assert dict(reused.fail_durations) == dict(fresh.fail_durations)

    def test_reuse_clears_in_flight_state(self):
        config = SlotModelConfig(
            params=PAPER_PARAMETERS.with_neighbors(3.0), p=0.2, seed=3
        )
        engine = SlotModelEngine(config)
        engine.run(50)  # shorter than T_succeed: everything in flight
        assert engine._active  # the cut left live handshakes behind
        engine.run(500)
        # No handshake in the second run may predate it.
        assert all(hs.start >= 0 for hs in engine._active)

    def test_payload_slots_integer_exact(self):
        results = run(p=0.05, slots=5_000)
        assert isinstance(results.payload_slots, int)
        assert results.payload_slots == results.successes * 100


class TestActiveListHygiene:
    def test_active_holds_only_live_handshakes(self):
        """Regression guard for the filtered-sweep completion rebuild:
        finished handshakes (``end`` set) never linger in ``_active``,
        and every engaged node maps to a live handshake."""
        params = PAPER_PARAMETERS.with_neighbors(8.0).with_beamwidth(
            math.radians(30)
        )
        engine = SlotModelEngine(
            SlotModelConfig(params=params, p=0.2, seed=7)
        )
        results = engine.run(2_000)
        assert results.initiations > 100  # high p: heavy churn exercised
        assert all(hs.end < 0 for hs in engine._active)
        active_ids = {id(hs) for hs in engine._active}
        assert all(id(hs) in active_ids for hs in engine._engaged.values())

    def test_high_load_counts_consistent(self):
        params = PAPER_PARAMETERS.with_neighbors(8.0)
        results = SlotModelEngine(
            SlotModelConfig(params=params, p=0.3, seed=11)
        ).run(3_000)
        assert results.successes + results.failures <= results.initiations
