"""Tests for channel-utilization accounting."""

import math
import random

import pytest

from repro.dessim import SECOND, seconds
from repro.metrics import utilization_report
from repro.net import NetworkSimulation, TopologyConfig, generate_ring_topology
from repro.phy import ChannelStats, Frame, FrameType


def frame(ftype, size):
    return Frame(ftype, src=0, dst=1, size_bytes=size)


class TestUtilizationReport:
    def test_control_vs_data_split(self):
        stats = ChannelStats()
        stats.record(frame(FrameType.RTS, 20), 272_000)
        stats.record(frame(FrameType.DATA, 1460), 6_032_000)
        report = utilization_report(stats, SECOND)
        assert report.control_airtime_ns == 272_000
        assert report.data_airtime_ns == 6_032_000
        assert report.transmissions == 2
        assert report.control_overhead_fraction == pytest.approx(
            272_000 / 6_304_000
        )

    def test_empty_channel(self):
        report = utilization_report(ChannelStats(), SECOND)
        assert report.offered_airtime_fraction == 0.0
        assert report.control_overhead_fraction == 0.0

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            utilization_report(ChannelStats(), 0)

    def test_str_rendering(self):
        stats = ChannelStats()
        stats.record(frame(FrameType.RTS, 20), 272_000)
        text = str(utilization_report(stats, SECOND))
        assert "control overhead" in text


class TestOnRealSimulations:
    @pytest.fixture(scope="class")
    def topology(self):
        return generate_ring_topology(TopologyConfig(n=3), random.Random(21))

    def test_spatial_reuse_visible_in_airtime(self, topology):
        """Directional transmission packs more air time per wall-clock
        second than omni — the mechanism of the paper's result."""
        reports = {}
        for scheme in ("ORTS-OCTS", "DRTS-DCTS"):
            net = NetworkSimulation(topology, scheme, math.radians(30), seed=3)
            net.run(seconds(1))
            reports[scheme] = utilization_report(net.channel.stats, seconds(1))
        assert (
            reports["DRTS-DCTS"].offered_airtime_fraction
            > reports["ORTS-OCTS"].offered_airtime_fraction
        )

    def test_airtime_consistency(self, topology):
        net = NetworkSimulation(topology, "ORTS-OCTS", math.pi, seed=4)
        net.run(seconds(1))
        stats = net.channel.stats
        assert sum(stats.airtime_by_type_ns.values()) == stats.airtime_ns
        assert sum(stats.frames_by_type.values()) == stats.transmissions
