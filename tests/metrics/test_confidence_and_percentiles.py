"""Tests for confidence intervals, delay percentiles and warm-up."""

import math
import random

import pytest

from repro.dessim import SECOND, seconds
from repro.mac import MacStats
from repro.metrics import (
    ConfidenceInterval,
    delay_percentiles,
    mean_confidence_interval,
)


class TestMeanConfidenceInterval:
    def test_contains_mean(self):
        ci = mean_confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert ci.lower <= ci.mean <= ci.upper
        assert ci.mean == pytest.approx(2.5)
        assert ci.count == 4

    def test_known_two_sample_case(self):
        # n=2, mean 1.5, s=sqrt(0.5), SE=0.5; t(0.975, df=1)=12.706.
        ci = mean_confidence_interval([1.0, 2.0], level=0.95)
        assert ci.half_width == pytest.approx(12.706 * 0.5, rel=1e-3)

    def test_single_sample_degenerate(self):
        ci = mean_confidence_interval([5.0])
        assert ci.lower == ci.upper == ci.mean == 5.0

    def test_more_samples_tighter(self):
        rng = random.Random(1)
        few = mean_confidence_interval([rng.gauss(0, 1) for _ in range(5)])
        many = mean_confidence_interval([rng.gauss(0, 1) for _ in range(100)])
        assert many.half_width < few.half_width

    def test_higher_level_wider(self):
        data = [1.0, 2.0, 3.0, 2.0, 1.5]
        assert (
            mean_confidence_interval(data, 0.99).half_width
            > mean_confidence_interval(data, 0.9).half_width
        )

    def test_overlap_detection(self):
        a = ConfidenceInterval(mean=1.0, lower=0.5, upper=1.5, level=0.95, count=3)
        b = ConfidenceInterval(mean=1.4, lower=1.2, upper=1.6, level=0.95, count=3)
        c = ConfidenceInterval(mean=3.0, lower=2.5, upper=3.5, level=0.95, count=3)
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(c)

    def test_coverage_property(self):
        # ~95% of CIs from N(0,1) samples should contain 0.
        rng = random.Random(7)
        hits = 0
        trials = 300
        for _ in range(trials):
            ci = mean_confidence_interval(
                [rng.gauss(0, 1) for _ in range(10)], level=0.95
            )
            if ci.lower <= 0.0 <= ci.upper:
                hits += 1
        assert 0.90 <= hits / trials <= 0.99

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0], level=1.5)


class TestDelayPercentiles:
    def stats_with_delays(self, delays):
        s = MacStats()
        s.delays_ns.extend(delays)
        return {0: s}

    def test_median_of_odd_set(self):
        stats = self.stats_with_delays([1 * SECOND, 2 * SECOND, 3 * SECOND])
        assert delay_percentiles(stats, quantiles=(0.5,))[0.5] == pytest.approx(2.0)

    def test_extremes(self):
        stats = self.stats_with_delays([i * SECOND for i in range(1, 101)])
        result = delay_percentiles(stats, quantiles=(0.0, 1.0))
        assert result[0.0] == pytest.approx(1.0)
        assert result[1.0] == pytest.approx(100.0)

    def test_tail_above_median(self):
        stats = self.stats_with_delays([i * SECOND for i in range(1, 101)])
        result = delay_percentiles(stats, quantiles=(0.5, 0.99))
        assert result[0.99] > result[0.5]

    def test_empty_returns_empty(self):
        assert delay_percentiles({0: MacStats()}) == {}

    def test_rejects_bad_quantile(self):
        stats = self.stats_with_delays([SECOND])
        with pytest.raises(ValueError):
            delay_percentiles(stats, quantiles=(1.5,))


class TestWarmup:
    def test_warmup_discards_transient(self):
        from repro.net import (
            NetworkSimulation,
            TopologyConfig,
            generate_ring_topology,
        )

        topo = generate_ring_topology(TopologyConfig(n=3), random.Random(13))
        cold = NetworkSimulation(topo, "ORTS-OCTS", math.pi, seed=2).run(
            seconds(0.5)
        )
        warm = NetworkSimulation(topo, "ORTS-OCTS", math.pi, seed=2).run(
            seconds(0.5), warmup_ns=seconds(0.5)
        )
        # Warm measurements cover the same window length but start from
        # a mixed state; both deliver traffic.
        assert cold.inner_packets_delivered > 0
        assert warm.inner_packets_delivered > 0
        # Totals cannot be identical: the warm run's counters exclude
        # the first 0.5 s that the cold run counts.
        total_cold = sum(s.packets_delivered for s in cold.stats.values())
        total_warm = sum(s.packets_delivered for s in warm.stats.values())
        assert total_warm != 0
        assert total_cold != 0

    def test_warmup_validation(self):
        from repro.net import (
            NetworkSimulation,
            TopologyConfig,
            generate_ring_topology,
        )

        topo = generate_ring_topology(TopologyConfig(n=3), random.Random(13))
        net = NetworkSimulation(topo, "ORTS-OCTS", math.pi, seed=0)
        with pytest.raises(ValueError):
            net.run(seconds(1), warmup_ns=-1)

    def test_stats_reset(self):
        s = MacStats()
        s.record_delivery(100, 5)
        s.rts_sent = 7
        s.reset()
        assert s.packets_delivered == 0
        assert s.rts_sent == 0
        assert s.delays_ns == []
        assert s.bits_delivered == 0


class TestNearIdenticalSamples:
    def test_underflowing_half_width_keeps_invariant(self):
        """Regression: when the half-width underflows on near-identical
        samples, the bounds are clamped to the mean instead of tripping
        ConfidenceInterval's lower <= mean <= upper check."""
        base = 0.1 + 0.2  # not exactly representable
        samples = [base] * 6 + [math.nextafter(base, 1.0)]
        ci = mean_confidence_interval(samples)
        assert ci.lower <= ci.mean <= ci.upper
        assert ci.half_width >= 0.0

    def test_identical_tiny_samples(self):
        # The mean of eight identical tiny values picks up summation
        # rounding, so the variance is a denormal-scale artifact; the
        # clamped interval must still bracket the mean.
        ci = mean_confidence_interval([2.5e-17] * 8)
        assert ci.lower <= ci.mean <= ci.upper

    def test_huge_magnitude_samples(self):
        samples = [1e308, math.nextafter(1e308, 0.0), 1e308]
        ci = mean_confidence_interval(samples)
        assert ci.lower <= ci.mean <= ci.upper
