"""Tests for Jain's fairness index."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics import jain_index


class TestJainIndex:
    def test_perfectly_fair(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_monopoly(self):
        # One of n nodes gets everything: J = 1/n.
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_known_intermediate(self):
        # J([1, 2, 3]) = 36 / (3 * 14) = 6/7.
        assert jain_index([1.0, 2.0, 3.0]) == pytest.approx(6.0 / 7.0)

    def test_scale_invariant(self):
        assert jain_index([1.0, 2.0, 3.0]) == pytest.approx(
            jain_index([10.0, 20.0, 30.0])
        )

    def test_empty_is_fair(self):
        assert jain_index([]) == 1.0

    def test_all_zero_is_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            jain_index([1.0, -0.5])

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=30))
    def test_bounded(self, values):
        j = jain_index(values)
        assert 1.0 / len(values) - 1e-9 <= j <= 1.0 + 1e-9

    @given(
        st.floats(min_value=0.01, max_value=1e3),
        st.integers(min_value=1, max_value=20),
    )
    def test_equal_allocations_always_one(self, value, count):
        assert jain_index([value] * count) == pytest.approx(1.0)
