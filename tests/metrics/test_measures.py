"""Tests for run-level metric computations."""

import pytest

from repro.dessim import SECOND
from repro.mac import MacStats
from repro.metrics import (
    ReplicateSummary,
    aggregate_collision_ratio,
    aggregate_throughput_bps,
    mean_delay_seconds,
    per_node_throughput_bps,
    summarize,
)


def stats_with(**kw):
    s = MacStats()
    for key, value in kw.items():
        setattr(s, key, value)
    return s


class TestThroughput:
    def test_aggregate(self):
        stats = {
            0: stats_with(bits_delivered=1_000_000),
            1: stats_with(bits_delivered=500_000),
        }
        assert aggregate_throughput_bps(stats, SECOND) == pytest.approx(1_500_000)

    def test_node_selection(self):
        stats = {
            0: stats_with(bits_delivered=1_000_000),
            1: stats_with(bits_delivered=500_000),
        }
        assert aggregate_throughput_bps(stats, SECOND, [1]) == pytest.approx(
            500_000
        )

    def test_duration_scaling(self):
        stats = {0: stats_with(bits_delivered=1_000_000)}
        assert aggregate_throughput_bps(stats, 2 * SECOND) == pytest.approx(
            500_000
        )

    def test_per_node_vector(self):
        stats = {
            0: stats_with(bits_delivered=100),
            1: stats_with(bits_delivered=300),
        }
        assert per_node_throughput_bps(stats, SECOND, [0, 1]) == [
            pytest.approx(100),
            pytest.approx(300),
        ]

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            aggregate_throughput_bps({0: MacStats()}, 0)
        with pytest.raises(ValueError):
            per_node_throughput_bps({0: MacStats()}, -5)


class TestDelay:
    def test_mean_over_all_packets(self):
        stats = {
            0: stats_with(delays_ns=[SECOND, 3 * SECOND]),
            1: stats_with(delays_ns=[2 * SECOND]),
        }
        assert mean_delay_seconds(stats) == pytest.approx(2.0)

    def test_weighted_by_packet_not_node(self):
        # Node 0 has many fast packets; node 1 one slow packet.
        stats = {
            0: stats_with(delays_ns=[SECOND] * 9),
            1: stats_with(delays_ns=[11 * SECOND]),
        }
        assert mean_delay_seconds(stats) == pytest.approx(2.0)

    def test_empty_is_zero(self):
        assert mean_delay_seconds({0: MacStats()}) == 0.0


class TestCollisionRatio:
    def test_pooled_ratio(self):
        stats = {
            0: stats_with(ack_timeouts=2, packets_delivered=8),
            1: stats_with(ack_timeouts=0, packets_delivered=10),
        }
        assert aggregate_collision_ratio(stats) == pytest.approx(2 / 20)

    def test_no_data_stage_is_zero(self):
        assert aggregate_collision_ratio({0: MacStats()}) == 0.0

    def test_per_node_property(self):
        s = stats_with(ack_timeouts=3, packets_delivered=7)
        assert s.collision_ratio == pytest.approx(0.3)
        assert s.handshakes_reaching_data == 10


class TestMacStatsMerge:
    def test_merge_accumulates(self):
        a = stats_with(packets_delivered=3, bits_delivered=300, delays_ns=[1, 2])
        b = stats_with(packets_delivered=2, bits_delivered=200, delays_ns=[3])
        a.merge(b)
        assert a.packets_delivered == 5
        assert a.bits_delivered == 500
        assert a.delays_ns == [1, 2, 3]

    def test_record_delivery(self):
        s = MacStats()
        s.record_delivery(1000, 5_000)
        assert s.packets_delivered == 1
        assert s.bits_delivered == 1000
        assert s.mean_delay_ns == 5_000

    def test_mean_delay_empty(self):
        assert MacStats().mean_delay_ns == 0.0


class TestSummarize:
    def test_mean_min_max(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.count == 3

    def test_std(self):
        s = summarize([2.0, 4.0])
        assert s.std == pytest.approx(1.0)

    def test_single_sample(self):
        s = summarize([5.0])
        assert s.mean == s.minimum == s.maximum == 5.0
        assert s.std == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicateSummary(mean=5.0, minimum=1.0, maximum=4.0, std=0.0, count=2)
        with pytest.raises(ValueError):
            ReplicateSummary(mean=2.0, minimum=1.0, maximum=4.0, std=0.0, count=0)
