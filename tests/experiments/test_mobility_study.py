"""Tests for the mobility extension study."""

import pytest

from repro.dessim import seconds
from repro.experiments import (
    MobilityPoint,
    format_mobility_table,
    run_mobility_study,
)


class TestRunMobilityStudy:
    @pytest.fixture(scope="class")
    def points(self):
        return run_mobility_study(
            schemes=("ORTS-OCTS", "DRTS-DCTS"),
            refresh_seconds=(0.0, 3.0),
            sim_time_ns=seconds(2),
        )

    def test_grid_shape(self, points):
        assert len(points) == 4
        assert {(p.scheme, p.refresh_s) for p in points} == {
            ("ORTS-OCTS", 0.0),
            ("ORTS-OCTS", 3.0),
            ("DRTS-DCTS", 0.0),
            ("DRTS-DCTS", 3.0),
        }

    def test_traffic_flows(self, points):
        for pt in points:
            assert pt.packets_delivered + pt.packets_dropped > 0
            assert 0.0 <= pt.delivery_ratio <= 1.0

    def test_staleness_hurts_beams_only(self, points):
        def ratio(scheme, refresh):
            return next(
                p.delivery_ratio
                for p in points
                if p.scheme == scheme and p.refresh_s == refresh
            )

        assert ratio("ORTS-OCTS", 3.0) == ratio("ORTS-OCTS", 0.0)
        assert ratio("DRTS-DCTS", 3.0) < ratio("DRTS-DCTS", 0.0)

    def test_rejects_negative_refresh(self):
        with pytest.raises(ValueError):
            run_mobility_study(refresh_seconds=(-1.0,))

    def test_format(self, points):
        text = format_mobility_table(points)
        assert "delivery-ratio" in text
        assert "DRTS-DCTS" in text

    def test_delivery_ratio_empty(self):
        pt = MobilityPoint(
            scheme="X", refresh_s=0.0, speed_mps=1.0,
            packets_delivered=0, packets_dropped=0,
        )
        assert pt.delivery_ratio == 0.0
