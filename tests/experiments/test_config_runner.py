"""Tests for experiment configuration and the sweep runner."""

import math

import pytest

from repro.dessim import seconds
from repro.experiments import SimStudyConfig, SimStudyRunner, from_environment


def tiny_config(**overrides):
    defaults = dict(
        n_values=(3,),
        beamwidths_deg=(30.0,),
        schemes=("ORTS-OCTS", "DRTS-DCTS"),
        topologies=1,
        sim_time_ns=seconds(0.2),
    )
    defaults.update(overrides)
    return SimStudyConfig(**defaults)


class TestSimStudyConfig:
    def test_defaults_match_paper_grid(self):
        cfg = SimStudyConfig()
        assert cfg.n_values == (3, 5, 8)
        assert cfg.beamwidths_deg == (30.0, 90.0, 150.0)
        assert cfg.schemes == ("ORTS-OCTS", "DRTS-DCTS", "DRTS-OCTS")

    def test_validation(self):
        with pytest.raises(ValueError):
            SimStudyConfig(n_values=())
        with pytest.raises(ValueError):
            SimStudyConfig(n_values=(1,))
        with pytest.raises(ValueError):
            SimStudyConfig(beamwidths_deg=(0.0,))
        with pytest.raises(ValueError):
            SimStudyConfig(beamwidths_deg=(400.0,))
        with pytest.raises(ValueError):
            SimStudyConfig(topologies=0)
        with pytest.raises(ValueError):
            SimStudyConfig(sim_time_ns=0)

    def test_derived_parameter_objects(self):
        cfg = SimStudyConfig(retry_limit=5, capture_threshold=10.0)
        assert cfg.mac_params.retry_limit == 5
        assert cfg.phy_params.capture_threshold == 10.0

    def test_from_environment_defaults(self, monkeypatch):
        for var in (
            "REPRO_TOPOLOGIES",
            "REPRO_SIM_SECONDS",
            "REPRO_N_VALUES",
            "REPRO_BEAMWIDTHS_DEG",
            "REPRO_RETRY_LIMIT",
            "REPRO_CAPTURE",
        ):
            monkeypatch.delenv(var, raising=False)
        cfg = from_environment()
        assert cfg.topologies == 3
        assert cfg.sim_time_ns == seconds(2)
        assert cfg.capture_threshold is None

    def test_from_environment_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_TOPOLOGIES", "7")
        monkeypatch.setenv("REPRO_SIM_SECONDS", "0.5")
        monkeypatch.setenv("REPRO_N_VALUES", "3,8")
        monkeypatch.setenv("REPRO_BEAMWIDTHS_DEG", "45")
        monkeypatch.setenv("REPRO_RETRY_LIMIT", "4")
        monkeypatch.setenv("REPRO_CAPTURE", "10")
        cfg = from_environment()
        assert cfg.topologies == 7
        assert cfg.sim_time_ns == seconds(0.5)
        assert cfg.n_values == (3, 8)
        assert cfg.beamwidths_deg == (45.0,)
        assert cfg.retry_limit == 4
        assert cfg.capture_threshold == 10.0


class TestSimStudyRunner:
    def test_topologies_cached_across_schemes(self):
        runner = SimStudyRunner(tiny_config())
        assert runner.topology(3, 0) is runner.topology(3, 0)

    def test_different_replicates_differ(self):
        runner = SimStudyRunner(tiny_config())
        a = runner.topology(3, 0)
        b = runner.topology(3, 1)
        assert a.positions != b.positions

    def test_run_cell_produces_replicates(self):
        runner = SimStudyRunner(tiny_config(topologies=2))
        cell = runner.run_cell(3, "ORTS-OCTS", 30.0)
        assert len(cell.results) == 2
        assert cell.n == 3
        assert cell.scheme == "ORTS-OCTS"

    def test_run_grid_covers_all_cells(self):
        runner = SimStudyRunner(tiny_config())
        cells = runner.run_grid()
        assert len(cells) == 1 * 2 * 1  # n x schemes x beamwidths
        assert {c.scheme for c in cells} == {"ORTS-OCTS", "DRTS-DCTS"}

    def test_metric_extraction(self):
        runner = SimStudyRunner(tiny_config())
        cell = runner.run_cell(3, "ORTS-OCTS", 30.0)
        values = cell.metric("inner_throughput_bps")
        assert len(values) == 1
        assert values[0] >= 0

    def test_schemes_compared_on_identical_topologies(self):
        runner = SimStudyRunner(tiny_config())
        runner.run_grid()
        # After the grid, only (n=3, replicate=0) exists in the cache —
        # both schemes reused it.
        assert set(runner._topologies) == {(3, 0)}


class TestReplicateSeedPlumbing:
    def test_seeds_are_registry_derived(self):
        """Regression: replicate seeds come from the SHA-256 registry
        derivation, not ``base_seed + replicate`` arithmetic."""
        from repro.experiments import replicate_seed

        cfg = tiny_config(topologies=2)
        cell = SimStudyRunner(cfg).run_cell(3, "ORTS-OCTS", 30.0)
        assert [r.seed for r in cell.results] == [
            replicate_seed(cfg.base_seed, 3, r) for r in range(2)
        ]
        assert all(
            r.seed != cfg.base_seed + r.replicate for r in cell.results
        )

    def test_adjacent_base_seeds_share_no_replicate_seed(self):
        from repro.experiments import replicate_seed

        a = {replicate_seed(2003, 3, r) for r in range(10)}
        b = {replicate_seed(2004, 3, r) for r in range(10)}
        assert not a & b
