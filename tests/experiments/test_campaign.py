"""Tests for the campaign layer: seeds, store, resume, parallel fan-out."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.dessim import seconds
from repro.experiments import (
    CampaignProgress,
    CampaignRunner,
    CampaignStore,
    CellSpec,
    SimStudyConfig,
    SimStudyRunner,
    replicate_seed,
    replicate_topology,
    run_campaign,
    run_cell_spec,
)
from repro.experiments.io import load_cell_json, save_cell_json


def tiny_config(**overrides):
    defaults = dict(
        n_values=(3,),
        beamwidths_deg=(30.0,),
        schemes=("ORTS-OCTS", "DRTS-DCTS"),
        topologies=1,
        sim_time_ns=seconds(0.1),
    )
    defaults.update(overrides)
    return SimStudyConfig(**defaults)


class TestReplicateSeed:
    def test_deterministic(self):
        assert replicate_seed(2003, 3, 0) == replicate_seed(2003, 3, 0)

    def test_distinct_within_base(self):
        seeds = {replicate_seed(2003, 3, r) for r in range(50)}
        assert len(seeds) == 50

    def test_adjacent_base_seeds_disjoint(self):
        """Regression: ``base_seed + replicate`` aliased adjacent bases.

        Under the old additive rule, base 42 / replicate 1 and base 43 /
        replicate 0 both seeded their runs with 43 — overlapping
        replicate streams for "independent" studies.  The registry
        derivation must keep the full streams disjoint.
        """
        a = {replicate_seed(42, n, r) for n in (3, 5, 8) for r in range(50)}
        b = {replicate_seed(43, n, r) for n in (3, 5, 8) for r in range(50)}
        assert not a & b

    def test_not_additive(self):
        assert replicate_seed(42, 3, 1) != 42 + 1
        assert replicate_seed(42, 3, 1) != replicate_seed(42, 3, 0) + 1


class TestTopologyDerivation:
    def test_pure_function_matches_runner_cache(self):
        """Topology caching unchanged by the refactor: the runner's
        cached topology is the same derivation as the pure function."""
        config = tiny_config()
        runner = SimStudyRunner(config)
        direct = replicate_topology(config.base_seed, 3, 0)
        assert runner.topology(3, 0).positions == direct.positions

    def test_runner_cache_shared_across_schemes(self):
        runner = SimStudyRunner(tiny_config())
        runner.run_grid()
        assert set(runner._topologies) == {(3, 0)}

    def test_worker_path_equals_serial_path(self):
        """run_cell_spec with its default (worker-side) topology memo
        produces the same cell as the runner's cached path."""
        config = tiny_config(schemes=("ORTS-OCTS",))
        spec = CellSpec(3, "ORTS-OCTS", 30.0, config)
        runner = SimStudyRunner(config)
        assert run_cell_spec(spec) == runner.run_cell(3, "ORTS-OCTS", 30.0)


class TestCellArtifacts:
    def test_json_roundtrip_exact(self, tmp_path):
        config = tiny_config(schemes=("ORTS-OCTS",), topologies=2)
        cell = run_cell_spec(CellSpec(3, "ORTS-OCTS", 30.0, config))
        path = tmp_path / "cell.json"
        save_cell_json(cell, path)
        assert load_cell_json(path) == cell

    def test_format_guard(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "other"}))
        with pytest.raises(ValueError):
            load_cell_json(path)

    def test_corrupt_artifact_rejected(self, tmp_path):
        path = tmp_path / "trunc.json"
        path.write_text('{"format": "repro-cell-v1", "n": 3,')
        with pytest.raises(ValueError):
            load_cell_json(path)


class TestCampaignStore:
    def test_save_load(self, tmp_path):
        config = tiny_config()
        store = CampaignStore(tmp_path / "camp", config)
        spec = CellSpec(3, "ORTS-OCTS", 30.0, config)
        assert store.load(spec) is None
        cell = run_cell_spec(spec)
        store.save(spec, cell)
        assert store.load(spec) == cell
        assert store.completed_keys() == {spec.key}

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        directory = tmp_path / "camp"
        CampaignStore(directory, tiny_config())
        with pytest.raises(ValueError):
            CampaignStore(directory, tiny_config(topologies=2))

    def test_same_config_reopens(self, tmp_path):
        directory = tmp_path / "camp"
        CampaignStore(directory, tiny_config())
        CampaignStore(directory, tiny_config())  # no error

    def test_rejects_foreign_manifest(self, tmp_path):
        directory = tmp_path / "camp"
        directory.mkdir()
        (directory / "campaign.json").write_text(json.dumps({"format": "other"}))
        with pytest.raises(ValueError):
            CampaignStore(directory, tiny_config())


class TestCampaignRunner:
    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            CampaignRunner(tiny_config(), workers=0)

    def test_specs_cover_grid_in_order(self):
        config = tiny_config(n_values=(3, 5), beamwidths_deg=(30.0, 90.0))
        specs = CampaignRunner(config).specs()
        assert len(specs) == 2 * 2 * 2
        assert specs[0] == CellSpec(3, "ORTS-OCTS", 30.0, config)
        assert specs[-1] == CellSpec(5, "DRTS-DCTS", 90.0, config)

    def test_matches_serial_runner(self):
        config = tiny_config()
        assert run_campaign(config) == SimStudyRunner(config).run_grid()

    def test_workers_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert CampaignRunner(tiny_config(), workers=None).workers == 1
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError):
            CampaignRunner(tiny_config(), workers=None)

    def test_serial_vs_parallel_identical(self):
        """Acceptance: serial and 4-worker runs of the same config give
        identical per-cell results."""
        config = tiny_config(beamwidths_deg=(30.0, 150.0))  # 4 cells
        serial = run_campaign(config, workers=1)
        parallel = run_campaign(config, workers=4)
        assert serial == parallel

    def test_parallel_store_matches_serial(self, tmp_path):
        config = tiny_config(beamwidths_deg=(30.0, 150.0))
        serial = run_campaign(config, workers=1)
        stored = run_campaign(config, workers=2, directory=tmp_path / "camp")
        assert stored == serial

    def test_resume_skips_completed_cells(self, tmp_path):
        directory = tmp_path / "camp"
        config = tiny_config(beamwidths_deg=(30.0, 150.0))
        first = run_campaign(config, directory=directory)
        artifacts = sorted(directory.glob("cell-*.json"))
        assert len(artifacts) == 4
        # Simulate an interrupted campaign: one cell's artifact missing.
        removed = artifacts[0]
        removed.unlink()
        before = {
            path: path.stat().st_mtime_ns for path in directory.glob("cell-*.json")
        }
        resumed = run_campaign(config, directory=directory)
        assert resumed == first
        # The surviving artifacts were not rewritten...
        after = {path: path.stat().st_mtime_ns for path in before}
        assert after == before
        # ...and the missing cell was recomputed.
        assert removed.exists()

    def test_fully_resumed_campaign_runs_nothing(self, tmp_path, monkeypatch):
        directory = tmp_path / "camp"
        config = tiny_config()
        first = run_campaign(config, directory=directory)

        def boom(*args, **kwargs):
            raise AssertionError("resume must not re-run completed cells")

        monkeypatch.setattr(
            "repro.experiments.campaign.run_cell_spec", boom
        )
        assert run_campaign(config, directory=directory) == first


class TestKilledCampaignResume:
    def test_sigkilled_campaign_resumes(self, tmp_path):
        """Acceptance: kill a 2-worker campaign mid-flight, resume from
        its directory, and get the same results as a fresh serial run —
        with the pre-kill artifacts untouched."""
        directory = tmp_path / "camp"
        script = (
            "from repro.dessim import seconds\n"
            "from repro.experiments import SimStudyConfig, run_campaign\n"
            "config = SimStudyConfig(n_values=(3,),\n"
            "    beamwidths_deg=(30.0, 90.0, 150.0),\n"
            "    schemes=('ORTS-OCTS', 'DRTS-DCTS'),\n"
            "    topologies=1, sim_time_ns=seconds(0.4))\n"
            f"run_campaign(config, workers=2, directory={str(directory)!r})\n"
        )
        import repro

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_dir, env.get("PYTHONPATH", "")) if p
        )
        proc = subprocess.Popen([sys.executable, "-c", script], env=env)
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if list(directory.glob("cell-*.json")) or proc.poll() is not None:
                    break
                time.sleep(0.02)
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait(timeout=60)
        survivors = {
            path: path.stat().st_mtime_ns for path in directory.glob("cell-*.json")
        }
        assert len(survivors) < 6 or proc.returncode == 0

        config = SimStudyConfig(
            n_values=(3,),
            beamwidths_deg=(30.0, 90.0, 150.0),
            schemes=("ORTS-OCTS", "DRTS-DCTS"),
            topologies=1,
            sim_time_ns=seconds(0.4),
        )
        resumed = run_campaign(config, directory=directory)
        assert len(resumed) == 6
        assert len(list(directory.glob("cell-*.json"))) == 6
        # Cells completed before the kill were skipped, not re-run.
        for path, mtime in survivors.items():
            assert path.stat().st_mtime_ns == mtime
        # And the resumed campaign equals a fresh serial one.
        assert resumed == run_campaign(config)


class TestCampaignProgress:
    def test_reports_skips_and_eta(self):
        ticks = iter(range(0, 100, 10))
        lines = []
        progress = CampaignProgress(
            clock=lambda: float(next(ticks)), echo=lines.append
        )
        config = tiny_config()
        spec_a, spec_b = CampaignRunner(config).specs()
        progress.start(2)
        progress.cell_done(spec_a, skipped=True)
        progress.cell_done(spec_b, skipped=False)
        assert lines[0] == "campaign: 2 cells"
        assert "cached, skipped" in lines[1]
        assert "[1/2]" in lines[1]
        assert "[2/2]" in lines[2]
        assert "eta 0.0s" in lines[2]

    def test_wired_into_runner(self):
        lines = []
        ticks = iter(range(0, 1000, 1))
        progress = CampaignProgress(
            clock=lambda: float(next(ticks)), echo=lines.append
        )
        run_campaign(tiny_config(), progress=progress)
        assert lines[0] == "campaign: 2 cells"
        assert len(lines) == 3

    def test_duplicate_completion_does_not_skew_eta(self):
        """Regression: a lease-race double completion used to advance
        the rate estimate, halving the apparent per-cell cost.  The
        duplicate must neither advance the fraction nor touch the ETA."""
        # The duplicate branch returns before reading the clock, so the
        # tick sequence covers start() and the two real completions.
        clock = iter([0.0, 10.0, 20.0]).__next__
        lines = []
        progress = CampaignProgress(clock=clock, echo=lines.append)
        spec_a, spec_b = CampaignRunner(
            tiny_config(beamwidths_deg=(30.0, 90.0), schemes=("ORTS-OCTS",))
        ).specs()
        progress.start(4)
        progress.cell_done(spec_a, skipped=False)  # t=10: 10s/cell, 3 left
        assert "[1/4]" in lines[1] and "eta 30.0s" in lines[1]
        progress.cell_done(spec_a, skipped=False)  # the losing retry
        assert "duplicate completion" in lines[2]
        assert "[" not in lines[2]  # fraction did not advance
        progress.cell_done(spec_b, skipped=False)  # t=20: still 10s/cell
        assert "[2/4]" in lines[3] and "eta 20.0s" in lines[3]

    def test_retry_lines_are_informational_only(self):
        clock = iter([0.0, 5.0, 10.0]).__next__
        lines = []
        progress = CampaignProgress(clock=clock, echo=lines.append)
        (spec,) = CampaignRunner(
            tiny_config(schemes=("ORTS-OCTS",))
        ).specs()
        progress.start(1)
        progress.cell_retried(spec, attempt=2)
        assert "re-queued (attempt 2, lease expired)" in lines[1]
        progress.cell_done(spec, skipped=False)
        assert "[1/1]" in lines[2]  # the retry did not consume a slot
