"""Tests for the multi-hop experiment driver and its campaign plumbing."""

import json

import pytest

from repro.dessim import seconds
from repro.experiments import (
    MultihopReplicateMetrics,
    MultihopStudyConfig,
    SimStudyConfig,
    normalize_scheme,
    run_multihop,
    run_multihop_cell_spec,
    run_multihop_cell_spec_telemetry,
    summarize_multihop,
)
from repro.experiments.campaign import CellSpec, config_fingerprint
from repro.experiments.io import cell_from_payload, cell_to_payload


def small_config(**overrides) -> MultihopStudyConfig:
    """One cheap connected cell: n=5, rings=2, seed 0 connects on draw 1."""
    defaults = dict(
        n_values=(5,),
        beamwidths_deg=(90.0,),
        schemes=("DRTS-OCTS",),
        topologies=1,
        sim_time_ns=seconds(0.2),
        base_seed=0,
        rings=2,
    )
    defaults.update(overrides)
    return MultihopStudyConfig(**defaults)


def small_spec(**overrides) -> CellSpec:
    cfg = small_config(**overrides)
    return CellSpec(cfg.n_values[0], cfg.schemes[0], cfg.beamwidths_deg[0], cfg)


class TestNormalizeScheme:
    def test_lower_and_underscores(self):
        assert normalize_scheme("drts_octs") == "DRTS-OCTS"
        assert normalize_scheme("ORTS-OCTS") == "ORTS-OCTS"
        assert normalize_scheme(" drts-dcts ") == "DRTS-DCTS"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            normalize_scheme("csma")


class TestMultihopStudyConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            small_config(router="magic")
        with pytest.raises(ValueError):
            small_config(flow_interval_ns=0)
        with pytest.raises(ValueError):
            small_config(min_flow_hops=0)
        with pytest.raises(ValueError):
            small_config(relay_queue=0)
        with pytest.raises(ValueError):
            small_config(ttl=0)
        with pytest.raises(ValueError):
            small_config(rings=1)

    def test_inherits_base_validation(self):
        with pytest.raises(ValueError):
            small_config(n_values=())

    def test_fingerprint_covers_routing_fields(self):
        base = config_fingerprint(small_config())
        assert config_fingerprint(small_config(router="shortest-path")) != base
        assert config_fingerprint(small_config(ttl=16)) != base
        # And differs from a plain single-hop config of the same grid.
        plain = SimStudyConfig(
            n_values=(5,),
            beamwidths_deg=(90.0,),
            schemes=("DRTS-OCTS",),
            topologies=1,
            sim_time_ns=seconds(0.2),
            base_seed=0,
        )
        assert config_fingerprint(plain) != base


class TestCellWorker:
    def test_deterministic_across_calls(self):
        first = run_multihop_cell_spec(small_spec())
        second = run_multihop_cell_spec(small_spec())
        assert first == second

    def test_telemetry_variant_identical_result(self):
        bare = run_multihop_cell_spec(small_spec())
        observed, record = run_multihop_cell_spec_telemetry(small_spec())
        assert observed == bare
        assert record["kind"] == "cell"
        assert record["counters"]["route.originated"] > 0

    def test_replicate_carries_flows(self):
        cell = run_multihop_cell_spec(small_spec())
        replicate = cell.results[0]
        assert isinstance(replicate, MultihopReplicateMetrics)
        assert replicate.goodput_bps > 0
        assert len(replicate.flows) > 0
        assert replicate.packets_originated == sum(
            f.packets_sent for f in replicate.flows
        )

    def test_routers_both_deliver(self):
        for router in ("greedy", "shortest-path"):
            cell = run_multihop_cell_spec(small_spec(router=router))
            assert cell.results[0].packets_delivered > 0

    def test_rejects_plain_config(self):
        plain = SimStudyConfig(
            n_values=(5,), beamwidths_deg=(90.0,), schemes=("DRTS-OCTS",),
            topologies=1, sim_time_ns=seconds(0.2), base_seed=0,
        )
        with pytest.raises(TypeError):
            run_multihop_cell_spec(CellSpec(5, "DRTS-OCTS", 90.0, plain))


class TestArtifactRoundTrip:
    def test_payload_kind_and_exact_round_trip(self):
        cell = run_multihop_cell_spec(small_spec())
        payload = json.loads(json.dumps(cell_to_payload(cell)))
        assert payload["kind"] == "multihop"
        assert cell_from_payload(payload) == cell

    def test_single_hop_payload_has_no_kind(self):
        from repro.experiments import run_cell_spec

        plain = SimStudyConfig(
            n_values=(3,), beamwidths_deg=(90.0,), schemes=("DRTS-OCTS",),
            topologies=1, sim_time_ns=seconds(0.1), base_seed=0,
        )
        cell = run_cell_spec(CellSpec(3, "DRTS-OCTS", 90.0, plain))
        payload = cell_to_payload(cell)
        assert "kind" not in payload
        assert cell_from_payload(payload) == cell

    def test_unknown_kind_rejected(self):
        cell = run_multihop_cell_spec(small_spec())
        payload = cell_to_payload(cell)
        payload["kind"] = "quantum"
        with pytest.raises(ValueError):
            cell_from_payload(payload)


class TestCampaignIntegration:
    def test_store_resume_is_exact(self, tmp_path):
        cfg = small_config()
        first = run_multihop(cfg, directory=tmp_path)
        artifacts = sorted(p.name for p in tmp_path.glob("cell-*.json"))
        assert artifacts == ["cell-n5-DRTS-OCTS-bw90.json"]
        before = (tmp_path / artifacts[0]).read_bytes()
        second = run_multihop(cfg, directory=tmp_path)  # all cached
        assert second == first
        assert (tmp_path / artifacts[0]).read_bytes() == before

    def test_summaries(self):
        cells = run_multihop(small_config())
        assert len(cells) == 1
        summary = cells[0]
        assert summary.scheme == "DRTS-OCTS"
        assert summary.goodput_bps.mean > 0
        assert summary.mean_delay_s.mean > 0
        assert summary.mean_hop_count >= 2
        assert 0 < summary.delivery_ratio <= 1

    def test_summarize_multihop_matches_raw(self):
        raw = run_multihop_cell_spec(small_spec())
        summary = summarize_multihop([raw])[0]
        assert summary.goodput_bps.mean == raw.results[0].goodput_bps
