"""Tests for experiment-result persistence."""

import csv
import json
import math

import pytest

from repro.dessim import seconds
from repro.experiments import SimStudyConfig, SimStudyRunner, run_fig5
from repro.experiments.io import (
    grid_to_records,
    load_grid_records,
    save_fig5_csv,
    save_grid_csv,
    save_grid_json,
)


@pytest.fixture(scope="module")
def cells():
    config = SimStudyConfig(
        n_values=(3,),
        beamwidths_deg=(90.0,),
        schemes=("ORTS-OCTS",),
        topologies=2,
        sim_time_ns=seconds(0.2),
    )
    return SimStudyRunner(config).run_grid()


class TestGridRecords:
    def test_one_record_per_replicate(self, cells):
        records = grid_to_records(cells)
        assert len(records) == 2
        assert {r["replicate"] for r in records} == {0, 1}

    def test_record_fields(self, cells):
        record = grid_to_records(cells)[0]
        assert record["n"] == 3
        assert record["scheme"] == "ORTS-OCTS"
        assert record["beamwidth_deg"] == 90.0
        assert record["inner_throughput_bps"] >= 0
        assert 0 <= record["inner_fairness"] <= 1

    def test_json_roundtrip(self, cells, tmp_path):
        path = tmp_path / "grid.json"
        save_grid_json(cells, path)
        loaded = load_grid_records(path)
        assert loaded == grid_to_records(cells)

    def test_json_format_guard(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "other", "records": []}))
        with pytest.raises(ValueError):
            load_grid_records(path)

    def test_csv_export(self, cells, tmp_path):
        path = tmp_path / "grid.csv"
        save_grid_csv(cells, path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert float(rows[0]["inner_throughput_bps"]) >= 0

    def test_empty_csv_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_grid_csv([], tmp_path / "x.csv")


class TestFig5Csv:
    def test_export(self, tmp_path):
        rows = run_fig5(n_neighbors=3.0, beamwidths=[math.radians(30)])
        path = tmp_path / "fig5.csv"
        save_fig5_csv(rows, path)
        with open(path) as handle:
            parsed = list(csv.reader(handle))
        assert parsed[0][0] == "beamwidth_deg"
        assert len(parsed) == 2

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_fig5_csv([], tmp_path / "x.csv")
