"""Fault injection: real worker processes, real SIGKILL, byte identity.

The acceptance contract for the dispatch subsystem: a 3-shard CLI run
with one worker SIGKILLed mid-sweep finishes (survivors steal the dead
worker's leases) and leaves a store — manifest and every cell artifact —
byte-identical to a serial run of the same config.  And ``repro
campaign-watch`` streams cell-completed events while the sweep is still
running.
"""

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.dessim import seconds
from repro.experiments import CampaignStore, SimStudyConfig, run_campaign
from repro.experiments.dispatch import ShardRunner, watch_campaign


def fault_config():
    """Big enough that a kill lands mid-sweep, small enough for CI."""
    return SimStudyConfig(
        n_values=(3,),
        beamwidths_deg=(30.0, 90.0, 150.0),
        schemes=("ORTS-OCTS", "DRTS-DCTS"),
        topologies=1,
        sim_time_ns=seconds(0.4),
    )


def worker_env():
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_dir, env.get("PYTHONPATH", "")) if p
    )
    return env


def spawn_worker(directory, shard_id, lease_seconds=2.0):
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "campaign-worker",
            "--store",
            str(directory),
            "--shard-id",
            str(shard_id),
            "--no-telemetry",
            "--lease-seconds",
            str(lease_seconds),
            "--poll-seconds",
            "0.05",
        ],
        env=worker_env(),
    )


def store_bytes(directory):
    return {
        path.name: path.read_bytes()
        for path in sorted(directory.glob("*.json"))
    }


class TestSigkilledShard:
    def test_survivors_finish_byte_identical_to_serial(self, tmp_path):
        """SIGKILL one of three CLI worker shards mid-sweep; the two
        survivors complete the grid, and the store matches a serial
        telemetry-off run byte for byte."""
        config = fault_config()
        serial_dir = tmp_path / "serial"
        run_campaign(config, workers=1, directory=serial_dir, telemetry=False)

        sharded_dir = tmp_path / "sharded"
        CampaignStore(sharded_dir, config)
        workers = [spawn_worker(sharded_dir, i) for i in range(3)]
        victim = workers[0]
        try:
            # Kill the victim once the sweep is demonstrably mid-flight:
            # at least one artifact exists and the grid is unfinished.
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                done = len(list(sharded_dir.glob("cell-*.json")))
                if 0 < done < 6 or victim.poll() is not None:
                    break
                time.sleep(0.02)
            if victim.poll() is None:
                victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=60)
            for worker in workers[1:]:
                assert worker.wait(timeout=240) == 0
        finally:
            for worker in workers:
                if worker.poll() is None:
                    worker.kill()
                    worker.wait(timeout=60)

        assert len(list(sharded_dir.glob("cell-*.json"))) == 6
        serial = store_bytes(serial_dir)
        sharded = {
            name: data
            for name, data in store_bytes(sharded_dir).items()
            if not name.startswith("events")
        }
        assert sharded == serial

    def test_leases_do_not_outlive_the_sweep(self, tmp_path):
        """After a crash-riddled sweep completes, no stale lease files
        remain claiming cells that are already on disk."""
        config = fault_config()
        directory = tmp_path / "camp"
        CampaignStore(directory, config)
        workers = [spawn_worker(directory, i) for i in range(2)]
        try:
            for worker in workers:
                assert worker.wait(timeout=240) == 0
        finally:
            for worker in workers:
                if worker.poll() is None:
                    worker.kill()
                    worker.wait(timeout=60)
        assert list((directory / "leases").glob("*.json")) == []


class TestWatchDuringSweep:
    def test_watch_streams_completions_while_running(self, tmp_path):
        """Acceptance: campaign-watch, started before the sweep, streams
        cell-completed lines while the grid is still being worked and
        reports a finished summary once it is done."""
        config = fault_config()
        directory = tmp_path / "camp"
        CampaignStore(directory, config)

        lines = []
        summary_box = {}

        def watcher():
            summary_box["summary"] = watch_campaign(
                directory,
                follow=True,
                poll_seconds=0.05,
                timeout=240.0,
                echo=lines.append,
            )

        thread = threading.Thread(target=watcher)
        thread.start()
        try:
            ShardRunner(
                directory, shard_id="w0", telemetry=False, poll_seconds=0.05
            ).run()
        finally:
            thread.join(timeout=300)
        assert not thread.is_alive()
        summary = summary_box["summary"]
        assert summary.finished
        assert summary.completed == 6
        cell_lines = [line for line in lines if line.startswith("[")]
        assert len(cell_lines) == 6
        assert cell_lines[0].startswith("[1/6]")
        assert cell_lines[-1].startswith("[6/6]")

    def test_watch_cli_exits_nonzero_on_unfinished_sweep(self, tmp_path):
        """--once on a half-finished store reports and exits 1, so CI
        scripts can assert on completion."""
        config = fault_config()
        directory = tmp_path / "camp"
        CampaignStore(directory, config)  # no cells computed at all
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "campaign-watch",
                "--store",
                str(directory),
                "--once",
            ],
            env=worker_env(),
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 1
        assert "0/6 cells" in result.stdout


@pytest.mark.parametrize("shards", [1, 3])
def test_facade_shard_count_invariance(tmp_path, shards):
    """run_campaign results are invariant to the worker count even when
    the sharded path (workers > 1) executes them."""
    config = SimStudyConfig(
        n_values=(3,),
        beamwidths_deg=(30.0, 150.0),
        schemes=("ORTS-OCTS",),
        topologies=1,
        sim_time_ns=seconds(0.1),
    )
    baseline = run_campaign(config, workers=1, telemetry=False)
    assert run_campaign(config, workers=shards, telemetry=False) == baseline
