"""Tests for the slot-model campaign study and its engine selection."""

import dataclasses
import json

import pytest

from repro.experiments import (
    SlotReplicateMetrics,
    SlotStudyConfig,
    format_slotsim_table,
    run_slot_cell_spec,
    run_slot_study,
)
from repro.experiments.campaign import CellSpec, config_fingerprint
from repro.experiments.io import cell_from_payload, cell_to_payload


def tiny_config(**overrides):
    options = dict(
        n_values=(3,),
        beamwidths_deg=(60.0,),
        schemes=("ORTS-OCTS",),
        topologies=2,
        p=0.05,
        slots=200,
        engine="batch",
    )
    options.update(overrides)
    return SlotStudyConfig(**options)


class TestConfigValidation:
    def test_defaults_valid(self):
        config = tiny_config()
        assert config.engine == "batch"

    @pytest.mark.parametrize("overrides", [
        {"p": 0.0},
        {"p": 1.0},
        {"slots": 0},
        {"torus_factor": 2.0},
        {"engine": "gpu"},
    ])
    def test_rejects_bad_values(self, overrides):
        with pytest.raises(ValueError):
            tiny_config(**overrides)

    def test_engine_changes_fingerprint(self):
        """The acceptance property: campaign artifacts distinguish
        engines because the engine is part of the config fingerprint."""
        batch = config_fingerprint(tiny_config(engine="batch"))
        scalar = config_fingerprint(tiny_config(engine="scalar"))
        assert batch != scalar

    def test_slot_knobs_change_fingerprint(self):
        base = config_fingerprint(tiny_config())
        assert config_fingerprint(tiny_config(p=0.06)) != base
        assert config_fingerprint(tiny_config(slots=300)) != base


class TestWorker:
    def test_requires_slot_config(self):
        from repro.experiments import SimStudyConfig

        spec = CellSpec(3, "ORTS-OCTS", 60.0, SimStudyConfig(n_values=(3,)))
        with pytest.raises(TypeError):
            run_slot_cell_spec(spec)

    def test_replicates_are_independent_topologies(self):
        cell = run_slot_cell_spec(CellSpec(3, "ORTS-OCTS", 60.0, tiny_config()))
        assert len(cell.results) == 2
        a, b = cell.results
        assert a.seed != b.seed
        assert (a.node_count, a.mean_degree) != (b.node_count, b.mean_degree) or (
            a.initiations != b.initiations
        )

    def test_worker_is_pure(self):
        spec = CellSpec(3, "ORTS-OCTS", 60.0, tiny_config())
        assert run_slot_cell_spec(spec) == run_slot_cell_spec(spec)

    def test_engines_share_seeds_not_outcomes(self):
        batch = run_slot_cell_spec(
            CellSpec(3, "ORTS-OCTS", 60.0, tiny_config(engine="batch"))
        )
        scalar = run_slot_cell_spec(
            CellSpec(3, "ORTS-OCTS", 60.0, tiny_config(engine="scalar"))
        )
        for br, sr in zip(batch.results, scalar.results):
            assert br.seed == sr.seed
            assert br.engine == "batch" and sr.engine == "scalar"

    def test_ignores_topology_provider(self):
        spec = CellSpec(3, "ORTS-OCTS", 60.0, tiny_config())
        sentinel = object()
        cell = run_slot_cell_spec(spec, topology=sentinel)
        assert cell == run_slot_cell_spec(spec)


class TestArtifacts:
    def test_payload_round_trip(self):
        cell = run_slot_cell_spec(CellSpec(3, "ORTS-OCTS", 60.0, tiny_config()))
        payload = json.loads(json.dumps(cell_to_payload(cell)))
        assert payload["kind"] == "slotsim"
        assert cell_from_payload(payload) == cell

    def test_from_record_restores_integer_duration_keys(self):
        cell = run_slot_cell_spec(
            CellSpec(3, "ORTS-OCTS", 60.0, tiny_config(p=0.2, slots=400))
        )
        record = json.loads(json.dumps(dataclasses.asdict(cell.results[0])))
        restored = SlotReplicateMetrics.from_record(record)
        assert restored == cell.results[0]
        assert all(isinstance(k, int) for k in restored.fail_durations)


class TestStudy:
    def test_serial_run_and_table(self):
        cells = run_slot_study(tiny_config(), telemetry=False)
        assert len(cells) == 1
        assert cells[0].engine == "batch"
        table = format_slotsim_table(cells)
        assert "N = 3" in table and "ORTS-OCTS" in table

    def test_campaign_store_resume(self, tmp_path):
        config = tiny_config()
        first = run_slot_study(config, directory=tmp_path, telemetry=False)
        again = run_slot_study(config, directory=tmp_path, telemetry=False)
        assert first == again

    def test_store_refuses_to_mix_engines(self, tmp_path):
        """Fingerprinted artifacts: a directory started with one engine
        rejects the other outright instead of silently mixing cells."""
        run_slot_study(
            tiny_config(engine="batch"), directory=tmp_path, telemetry=False
        )
        with pytest.raises(ValueError, match="different"):
            run_slot_study(
                tiny_config(engine="scalar"), directory=tmp_path, telemetry=False
            )

    def test_parallel_equals_serial(self):
        config = tiny_config(n_values=(3,), schemes=("ORTS-OCTS", "DRTS-DCTS"))
        serial = run_slot_study(config, workers=1, telemetry=False)
        parallel = run_slot_study(config, workers=2, telemetry=False)
        assert serial == parallel
