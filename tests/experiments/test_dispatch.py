"""Scheduler tests: leases, steals, backoff, events, manifest registry.

Everything here runs single-process with injected clocks — the
concurrency properties (expiry reassignment, double-completion
idempotency) are exercised as deterministic interleavings of the same
primitives the multi-process path uses.  Real crashes are covered by
``test_dispatch_faults.py``.
"""

import json
import os
import time

import pytest

from repro.dessim import seconds
from repro.experiments import (
    CampaignStore,
    SimStudyConfig,
    run_campaign,
)
from repro.experiments.dispatch import (
    EventLog,
    ShardRunner,
    WorkQueue,
    backoff_seconds,
    read_events,
    tail_events,
    watch_campaign,
)
from repro.experiments.dispatch.queue import DEFAULT_LEASE_SECONDS, Lease
from repro.experiments.dispatch.registry import (
    config_from_manifest,
    resolve_study,
    study_tag,
)
from repro.experiments.dispatch.shard import grid_specs
from repro.obs import MetricsRegistry


def tiny_config(**overrides):
    defaults = dict(
        n_values=(3,),
        beamwidths_deg=(30.0,),
        schemes=("ORTS-OCTS", "DRTS-DCTS"),
        topologies=1,
        sim_time_ns=seconds(0.1),
    )
    defaults.update(overrides)
    return SimStudyConfig(**defaults)


class FakeClock:
    """An advanceable epoch clock for lease-expiry tests."""

    def __init__(self, now=1_000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestBackoff:
    def test_fresh_claim_is_zero(self):
        assert backoff_seconds("any-key", 0) == 0.0

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            backoff_seconds("any-key", -1)

    def test_pure_function_of_arguments(self):
        """The whole schedule is reproducible: no host entropy anywhere."""
        schedule = [backoff_seconds("n3-ORTS-OCTS-bw30", a) for a in range(8)]
        again = [backoff_seconds("n3-ORTS-OCTS-bw30", a) for a in range(8)]
        assert schedule == again

    def test_exponential_and_capped(self):
        key = "n3-ORTS-OCTS-bw30"
        delays = [backoff_seconds(key, a) for a in range(1, 16)]
        assert all(b >= a for a, b in zip(delays, delays[1:]))
        # Doubles while under the cap...
        assert delays[1] == pytest.approx(2 * delays[0])
        # ...and saturates at cap * per-key fraction.
        assert delays[-1] == delays[-2] <= 30.0

    def test_per_key_desynchronization(self):
        """Different cells back off by different amounts at the same
        attempt, and the scale stays within [0.5, 1.0] of nominal."""
        keys = [f"n{n}-DRTS-DCTS-bw90" for n in range(3, 11)]
        delays = {key: backoff_seconds(key, 1) for key in keys}
        assert len(set(delays.values())) > 1
        for delay in delays.values():
            assert 0.05 <= delay <= 0.1  # base 0.1, fraction in [0.5, 1]


class TestLeaseRecord:
    def test_json_roundtrip(self):
        lease = Lease(
            key="k", shard="s", acquired=1.0, expires=2.0, attempt=3, nonce="n"
        )
        assert Lease.from_json(lease.to_json()) == lease

    def test_foreign_payload_rejected(self):
        with pytest.raises(ValueError):
            Lease.from_json(json.dumps({"format": "other", "key": "k"}))


class TestWorkQueue:
    def make(self, tmp_path, shard="0", clock=None, metrics=None, **kwargs):
        store = CampaignStore(tmp_path / "camp", tiny_config())
        return store, WorkQueue(
            store,
            shard=shard,
            clock=clock or FakeClock(),
            metrics=metrics,
            **kwargs,
        )

    def test_acquire_then_contend(self, tmp_path):
        clock = FakeClock()
        store, queue_a = self.make(tmp_path, shard="a", clock=clock)
        queue_b = WorkQueue(store, shard="b", clock=clock)
        lease = queue_a.try_acquire("k1")
        assert lease is not None and lease.shard == "a" and lease.attempt == 0
        assert queue_b.try_acquire("k1") is None  # validly leased elsewhere

    def test_release_lets_others_in(self, tmp_path):
        clock = FakeClock()
        store, queue_a = self.make(tmp_path, shard="a", clock=clock)
        queue_b = WorkQueue(store, shard="b", clock=clock)
        assert queue_a.try_acquire("k1") is not None
        queue_a.release("k1")
        taken = queue_b.try_acquire("k1")
        assert taken is not None and taken.shard == "b" and taken.attempt == 0

    def test_completed_cell_never_leased(self, tmp_path):
        store, queue = self.make(tmp_path)
        config = store.config
        spec = grid_specs(config)[0]
        from repro.experiments import run_cell_spec

        store.save(spec, run_cell_spec(spec))
        assert queue.try_acquire(spec.key) is None

    def test_expired_lease_stolen_with_attempt_bump(self, tmp_path):
        clock = FakeClock()
        metrics = MetricsRegistry()
        store, queue_dead = self.make(
            tmp_path, shard="dead", clock=clock, lease_seconds=5.0
        )
        queue_live = WorkQueue(
            store, shard="live", clock=clock, lease_seconds=5.0, metrics=metrics
        )
        assert queue_dead.try_acquire("k1") is not None
        clock.advance(4.0)
        assert queue_live.try_acquire("k1") is None  # not expired yet
        clock.advance(2.0)  # now 6s past acquisition
        stolen = queue_live.try_acquire("k1")
        assert stolen is not None
        assert stolen.shard == "live"
        assert stolen.attempt == 1
        counters = metrics.snapshot()["counters"]
        assert counters["dispatch.lease_expirations"] == 1
        assert counters["dispatch.steals"] == 1
        assert counters["dispatch.leases"] == 1

    def test_corrupt_lease_reads_as_none(self, tmp_path):
        store, queue = self.make(tmp_path)
        queue.lease_path("k1").write_text("not json{")
        assert queue.read_lease("k1") is None

    def test_lease_counter_on_plain_acquire(self, tmp_path):
        metrics = MetricsRegistry()
        store, queue = self.make(tmp_path, metrics=metrics)
        queue.try_acquire("k1")
        assert metrics.snapshot()["counters"]["dispatch.leases"] == 1


class TestAttachedStores:
    def test_rejects_directory_without_manifest(self, tmp_path):
        (tmp_path / "other").mkdir()
        store = CampaignStore(tmp_path / "camp", tiny_config())
        with pytest.raises(ValueError, match="no manifest"):
            WorkQueue(store, shard="0", attached=[tmp_path / "other"])

    def test_rejects_fingerprint_mismatch(self, tmp_path):
        CampaignStore(tmp_path / "other", tiny_config(topologies=2))
        store = CampaignStore(tmp_path / "camp", tiny_config())
        with pytest.raises(ValueError, match="different"):
            WorkQueue(store, shard="0", attached=[tmp_path / "other"])

    def test_import_is_byte_preserving(self, tmp_path):
        config = tiny_config()
        run_campaign(config, directory=tmp_path / "other", telemetry=False)
        store = CampaignStore(tmp_path / "camp", config)
        metrics = MetricsRegistry()
        queue = WorkQueue(
            store, shard="0", metrics=metrics, attached=[tmp_path / "other"]
        )
        key = grid_specs(config)[0].key
        assert queue.import_cell(key) is True
        source = (tmp_path / "other" / f"cell-{key}.json").read_bytes()
        assert store.path_for_key(key).read_bytes() == source
        assert metrics.snapshot()["counters"]["dispatch.dedup_hits"] == 1
        # Idempotent: a second import is a no-op.
        assert queue.import_cell(key) is False

    def test_import_misses_when_attached_lacks_cell(self, tmp_path):
        config = tiny_config()
        CampaignStore(tmp_path / "other", config)  # manifest, no cells
        store = CampaignStore(tmp_path / "camp", config)
        queue = WorkQueue(store, shard="0", attached=[tmp_path / "other"])
        assert queue.import_cell(grid_specs(config)[0].key) is False

    def test_shard_runner_imports_instead_of_computing(self, tmp_path):
        config = tiny_config()
        run_campaign(config, directory=tmp_path / "other", telemetry=False)
        CampaignStore(tmp_path / "camp", config)
        report = ShardRunner(
            tmp_path / "camp",
            shard_id="w0",
            telemetry=False,
            attached=[tmp_path / "other"],
        ).run()
        assert report.imported == len(grid_specs(config))
        assert report.computed == 0


class TestDoubleCompletionIdempotency:
    def test_save_if_absent_keeps_first_artifact(self, tmp_path):
        """Two shards racing one cell leave exactly one artifact with
        the first writer's bytes (which determinism makes identical to
        the second's anyway)."""
        from repro.experiments import run_cell_spec

        config = tiny_config()
        store = CampaignStore(tmp_path / "camp", config)
        spec = grid_specs(config)[0]
        cell = run_cell_spec(spec)
        assert store.save_if_absent(spec, cell) is True
        first = store.path_for(spec).read_bytes()
        mtime = store.path_for(spec).stat().st_mtime_ns
        assert store.save_if_absent(spec, run_cell_spec(spec)) is False
        assert store.path_for(spec).read_bytes() == first
        assert store.path_for(spec).stat().st_mtime_ns == mtime

    def test_recompute_after_steal_is_byte_identical(self, tmp_path):
        """The property that makes lease races harmless: the stolen
        cell's recompute serializes to the same bytes."""
        from repro.experiments import run_cell_spec

        config = tiny_config()
        spec = grid_specs(config)[0]
        store_a = CampaignStore(tmp_path / "a", config)
        store_b = CampaignStore(tmp_path / "b", config)
        store_a.save(spec, run_cell_spec(spec))
        store_b.save(spec, run_cell_spec(spec))
        assert (
            store_a.path_for(spec).read_bytes()
            == store_b.path_for(spec).read_bytes()
        )


class TestLeaseExpiryReassignment:
    def test_survivor_completes_abandoned_cell(self, tmp_path):
        """A cell leased by a shard that never finishes is stolen and
        completed by a survivor once the lease expires."""
        config = tiny_config()
        store = CampaignStore(tmp_path / "camp", config)
        clock = FakeClock()
        dead = WorkQueue(
            store, shard="dead", clock=clock, lease_seconds=5.0
        )
        abandoned = grid_specs(config)[0].key
        assert dead.try_acquire(abandoned) is not None
        clock.advance(10.0)  # the worker is presumed dead

        sleeps = []
        survivor = ShardRunner(
            tmp_path / "camp",
            shard_id="live",
            telemetry=False,
            lease_seconds=5.0,
            clock=clock,
            sleep=sleeps.append,
        )
        report = survivor.run()
        assert report.cells_total == report.computed == 2
        assert report.steals == 1
        assert report.retries == 1
        # The retry honoured the deterministic backoff for that key.
        assert backoff_seconds(abandoned, 1) in sleeps
        events = read_events(tmp_path / "camp" / "events.jsonl")
        retried = [e for e in events if e["event"] == "cell-retry"]
        assert [e["key"] for e in retried] == [abandoned]
        assert retried[0]["attempt"] == 1

    def test_backoff_skips_recompute_when_owner_finished(self, tmp_path):
        """If the presumed-dead owner's artifact lands during the
        backoff, the stealing shard releases and moves on."""
        from repro.experiments import run_cell_spec

        config = tiny_config()
        store = CampaignStore(tmp_path / "camp", config)
        clock = FakeClock()
        dead = WorkQueue(store, shard="dead", clock=clock, lease_seconds=5.0)
        spec = grid_specs(config)[0]
        assert dead.try_acquire(spec.key) is not None
        clock.advance(10.0)

        def slow_owner_finishes(_):
            store.save_if_absent(spec, run_cell_spec(spec))

        survivor = ShardRunner(
            tmp_path / "camp",
            shard_id="live",
            telemetry=False,
            lease_seconds=5.0,
            clock=clock,
            sleep=slow_owner_finishes,
        )
        report = survivor.run()
        assert report.skipped == 1
        assert report.computed == 1  # only the other cell


class TestSingleShardEquivalence:
    def test_manifest_joined_shard_matches_serial_bytes(self, tmp_path):
        """Acceptance: a ShardRunner bootstrapped from the manifest
        alone produces cell artifacts byte-identical to a serial
        run_campaign of the same config."""
        config = tiny_config(beamwidths_deg=(30.0, 90.0))
        run_campaign(
            config, workers=1, directory=tmp_path / "serial", telemetry=False
        )
        CampaignStore(tmp_path / "sharded", config)
        ShardRunner(tmp_path / "sharded", shard_id="w0", telemetry=False).run()
        serial = {
            p.name: p.read_bytes()
            for p in sorted((tmp_path / "serial").glob("cell-*.json"))
        }
        sharded = {
            p.name: p.read_bytes()
            for p in sorted((tmp_path / "sharded").glob("cell-*.json"))
        }
        assert serial == sharded
        manifest = lambda d: (d / "campaign.json").read_bytes()  # noqa: E731
        assert manifest(tmp_path / "serial") == manifest(tmp_path / "sharded")


class TestEventStream:
    def test_per_shard_seq_is_total_and_gap_free(self, tmp_path):
        path = tmp_path / "events.jsonl"
        ticks = FakeClock()
        log_a = EventLog(path, shard="a", clock=ticks)
        log_b = EventLog(path, shard="b", clock=ticks)
        log_a.emit("shard-start", cells=2)
        log_b.emit("shard-start", cells=2)
        log_a.emit("cell-completed", key="k1")
        log_b.emit("cell-completed", key="k2")
        log_a.emit("shard-done")
        events = read_events(path)
        assert [e["seq"] for e in events if e["shard"] == "a"] == [1, 2, 3]
        assert [e["seq"] for e in events if e["shard"] == "b"] == [1, 2]
        # File order is append order.
        assert [e["event"] for e in events] == [
            "shard-start",
            "shard-start",
            "cell-completed",
            "cell-completed",
            "shard-done",
        ]

    def test_torn_and_foreign_lines_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        EventLog(path, shard="a", clock=FakeClock()).emit("shard-start")
        with open(path, "a") as handle:
            handle.write('{"not": "an event"}\n')
            handle.write('{"event": "cell-completed", "key": "k1"')  # torn
        events = read_events(path)
        assert [e["event"] for e in events] == ["shard-start"]

    def test_empty_event_name_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            EventLog(tmp_path / "e.jsonl").emit("")

    def test_watch_reports_unique_completions_in_order(self, tmp_path):
        config = tiny_config()
        CampaignStore(tmp_path / "camp", config)
        ShardRunner(tmp_path / "camp", shard_id="w0", telemetry=False).run()
        lines = []
        summary = watch_campaign(
            tmp_path / "camp", follow=False, echo=lines.append
        )
        assert summary.finished
        assert summary.total == summary.completed == 2
        cell_lines = [line for line in lines if line.startswith("[")]
        assert cell_lines[0].startswith("[1/2]")
        assert cell_lines[1].startswith("[2/2]")

    def test_watch_folds_duplicate_completions(self, tmp_path):
        config = tiny_config()
        CampaignStore(tmp_path / "camp", config)
        log = EventLog(
            tmp_path / "camp" / "events.jsonl", shard="a", clock=FakeClock()
        )
        key = grid_specs(config)[0].key
        log.emit("cell-completed", key=key)
        log.emit("cell-completed", key=key)  # the losing race duplicate
        summary = watch_campaign(
            tmp_path / "camp", follow=False, echo=lambda _: None
        )
        assert summary.completed == 1

    def test_watch_requires_a_store(self, tmp_path):
        with pytest.raises(ValueError, match="manifest"):
            watch_campaign(tmp_path, follow=False, echo=lambda _: None)


class TestTailEvents:
    def test_incremental_reads_only_new_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path, shard="a", clock=FakeClock())
        log.emit("shard-start")
        events, offset = tail_events(path)
        assert [e["event"] for e in events] == ["shard-start"]
        assert offset == path.stat().st_size
        # Nothing new: no events, offset unchanged.
        assert tail_events(path, offset) == ([], offset)
        log.emit("cell-completed", key="k1")
        events, offset = tail_events(path, offset)
        assert [e["event"] for e in events] == ["cell-completed"]

    def test_torn_tail_not_consumed(self, tmp_path):
        """The offset never advances past a line still being appended,
        so the torn tail is re-read whole once its newline lands."""
        path = tmp_path / "events.jsonl"
        EventLog(path, shard="a", clock=FakeClock()).emit("shard-start")
        _, offset = tail_events(path)
        with open(path, "a") as handle:
            handle.write('{"event": "cell-completed", "key": "k1"')
        assert tail_events(path, offset) == ([], offset)
        with open(path, "a") as handle:
            handle.write("}\n")
        events, offset = tail_events(path, offset)
        assert [e["event"] for e in events] == ["cell-completed"]
        assert offset == path.stat().st_size

    def test_missing_file(self, tmp_path):
        assert tail_events(tmp_path / "none.jsonl", 0) == ([], 0)


def _failing_worker(spec, topology=None):
    """Top-level (picklable) worker that always fails."""
    raise RuntimeError("worker exploded")


class TestWorkerFailure:
    def test_failed_worker_releases_its_lease(self, tmp_path):
        """A worker exception must not park the cell for lease_seconds:
        the shard drops the lease on its way out, so survivors retry
        (or surface the same failure) immediately."""
        config = tiny_config()
        CampaignStore(tmp_path / "camp", config)
        runner = ShardRunner(
            tmp_path / "camp",
            config,
            shard_id="w0",
            telemetry=False,
            worker=_failing_worker,
        )
        with pytest.raises(RuntimeError, match="exploded"):
            runner.run()
        assert list((tmp_path / "camp" / "leases").glob("*.json")) == []

    def test_facade_surfaces_shard_error_without_lease_wait(self, tmp_path):
        """run_campaign's sharded path re-raises a worker failure as
        soon as any shard dies on it, instead of letting survivors idle
        out the (default 300 s) lease before failing."""
        start = time.monotonic()
        with pytest.raises(RuntimeError, match="exploded"):
            run_campaign(
                tiny_config(),
                workers=2,
                directory=tmp_path / "camp",
                telemetry=False,
                worker=_failing_worker,
            )
        assert time.monotonic() - start < DEFAULT_LEASE_SECONDS / 4


class TestAtomicWrites:
    def test_tmp_file_is_writer_unique_and_cleaned_up(self, tmp_path):
        """Concurrent writers (shards double-completing, finishers
        merging the manifest) must never share a temp file: the temp
        name embeds the pid, and nothing is left behind."""
        import repro.experiments.campaign as campaign_mod

        seen = []
        real_replace = os.replace

        def recording_replace(src, dst):
            seen.append(str(src))
            return real_replace(src, dst)

        campaign_mod.os.replace = recording_replace
        try:
            campaign_mod._atomic_write_text(tmp_path / "m.json", "{}")
        finally:
            campaign_mod.os.replace = real_replace
        assert (tmp_path / "m.json").read_text() == "{}"
        assert seen == [str(tmp_path / f"m.json.{os.getpid()}.tmp")]
        assert list(tmp_path.glob("*.tmp")) == []


class TestSummaryMergeOwnership:
    def test_shard_leaves_manifest_merge_to_caller(self, tmp_path):
        """ShardRunner appends telemetry but never merges the manifest
        summary — shards finishing near-simultaneously would race the
        read-modify-write.  Merging is the finisher's step (facade
        parent or CLI worker exit) and stays re-runnable."""
        config = tiny_config()
        CampaignStore(tmp_path / "camp", config)
        ShardRunner(tmp_path / "camp", config, shard_id="w0").run()
        manifest = json.loads((tmp_path / "camp" / "campaign.json").read_text())
        assert "telemetry" not in manifest
        store = CampaignStore(tmp_path / "camp", config)
        summary = store.merge_telemetry_summary()
        assert summary["cells"] == 2
        manifest = json.loads((tmp_path / "camp" / "campaign.json").read_text())
        assert manifest["telemetry"]["cells"] == 2

    def test_cli_worker_merges_on_exit(self, tmp_path):
        from repro.cli import main

        config = tiny_config()
        CampaignStore(tmp_path / "camp", config)
        assert (
            main(
                [
                    "campaign-worker",
                    "--store",
                    str(tmp_path / "camp"),
                    "--shard-id",
                    "w0",
                ]
            )
            == 0
        )
        manifest = json.loads((tmp_path / "camp" / "campaign.json").read_text())
        assert manifest["telemetry"]["cells"] == 2


class TestStudyRegistry:
    def test_tags_cover_registered_studies(self):
        from repro.experiments import MultihopStudyConfig, SlotStudyConfig

        assert study_tag(tiny_config()) == "sim"
        assert study_tag(MultihopStudyConfig()) == "multihop"
        assert study_tag(SlotStudyConfig()) == "slotsim"

    def test_campaign_exports_same_tagging(self):
        from repro.experiments import study_tag as exported

        assert exported(tiny_config()) == "sim"

    def test_unknown_tag_points_at_python_api(self):
        with pytest.raises(ValueError, match="ShardRunner"):
            resolve_study("custom-study")

    @pytest.mark.parametrize("tag", ["sim", "multihop", "slotsim"])
    def test_manifest_roundtrip(self, tag, tmp_path):
        from repro.experiments import MultihopStudyConfig, SlotStudyConfig

        config = {
            "sim": tiny_config(),
            "multihop": MultihopStudyConfig(n_values=(3,), topologies=1),
            "slotsim": SlotStudyConfig(n_values=(3,), topologies=1),
        }[tag]
        store = CampaignStore(tmp_path / "camp", config)
        manifest = json.loads((store.directory / "campaign.json").read_text())
        assert manifest["study"] == tag
        rebuilt, study = config_from_manifest(manifest)
        assert rebuilt == config
        assert study.tag == tag

    def test_edited_manifest_rejected(self, tmp_path):
        store = CampaignStore(tmp_path / "camp", tiny_config())
        manifest = json.loads((store.directory / "campaign.json").read_text())
        manifest["config"]["topologies"] = 99  # fingerprint now stale
        with pytest.raises(ValueError, match="fingerprint"):
            config_from_manifest(manifest)

    def test_manifest_without_config_rejected(self):
        with pytest.raises(ValueError, match="config"):
            config_from_manifest({"study": "sim"})

    def test_pre_tag_manifests_default_to_sim(self, tmp_path):
        """Stores written before the study tag existed are single-hop
        sims; joining them must keep working."""
        store = CampaignStore(tmp_path / "camp", tiny_config())
        manifest = json.loads((store.directory / "campaign.json").read_text())
        del manifest["study"]
        rebuilt, study = config_from_manifest(manifest)
        assert study.tag == "sim"
        assert rebuilt == tiny_config()


class TestDefaultLease:
    def test_generous_relative_to_cell_compute(self):
        assert DEFAULT_LEASE_SECONDS == 300.0
