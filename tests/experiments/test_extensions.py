"""Tests for the extension studies (load sweep, scheme comparison)."""

import pytest

from repro.dessim import seconds
from repro.experiments import (
    format_load_sweep_table,
    format_scheme_comparison,
    run_load_sweep,
    run_scheme_comparison,
)


class TestLoadSweep:
    def test_points_structure(self):
        points = run_load_sweep(
            n=3,
            schemes=("ORTS-OCTS",),
            rates_pps=(5.0,),
            sim_time_ns=seconds(0.5),
        )
        assert len(points) == 1
        pt = points[0]
        assert pt.scheme == "ORTS-OCTS"
        assert pt.offered_bps > 0
        assert 0.0 <= pt.delivery_ratio <= 1.0

    def test_light_load_delivered(self):
        points = run_load_sweep(
            n=3,
            schemes=("ORTS-OCTS",),
            rates_pps=(2.0,),
            sim_time_ns=seconds(1),
        )
        assert points[0].delivery_ratio > 0.8

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            run_load_sweep(rates_pps=())
        with pytest.raises(ValueError):
            run_load_sweep(rates_pps=(0.0,))

    def test_format(self):
        points = run_load_sweep(
            n=3,
            schemes=("ORTS-OCTS",),
            rates_pps=(5.0,),
            sim_time_ns=seconds(0.3),
        )
        text = format_load_sweep_table(points)
        assert "offered" in text
        assert "ORTS-OCTS" in text


class TestSchemeComparison:
    def test_four_schemes(self):
        rows = run_scheme_comparison(
            n=3, topologies=1, sim_time_ns=seconds(0.5)
        )
        assert [row.scheme for row in rows] == [
            "ORTS-OCTS",
            "DRTS-DCTS",
            "DRTS-OCTS",
            "ORTS-OCTS-DDATA",
            "DORTS-OCTS",
        ]
        assert all(row.throughput_bps > 0 for row in rows)

    def test_subset_of_schemes(self):
        rows = run_scheme_comparison(
            n=3,
            topologies=1,
            sim_time_ns=seconds(0.3),
            schemes=("ORTS-OCTS-DDATA",),
        )
        assert len(rows) == 1

    def test_rejects_bad_topologies(self):
        with pytest.raises(ValueError):
            run_scheme_comparison(topologies=0)

    def test_format(self):
        rows = run_scheme_comparison(
            n=3, topologies=1, sim_time_ns=seconds(0.3),
            schemes=("ORTS-OCTS",),
        )
        assert "thr(Mbps)" in format_scheme_comparison(rows)


class TestNasipuriInNetwork:
    def test_nasipuri_network_runs(self):
        import math
        import random

        from repro.net import (
            NetworkSimulation,
            TopologyConfig,
            generate_ring_topology,
        )

        topo = generate_ring_topology(TopologyConfig(n=3), random.Random(9))
        result = NetworkSimulation(
            topo, "ORTS-OCTS-DDATA", math.radians(45), seed=2
        ).run(seconds(0.5))
        assert result.inner_packets_delivered > 0
