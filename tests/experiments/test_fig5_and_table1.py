"""Tests for the analytical experiment modules (Fig. 5, Table 1)."""

import math

import pytest

from repro.experiments import (
    format_fig5_table,
    format_table1,
    run_fig5,
    table1_entries,
)


class TestRunFig5:
    def test_default_grid_has_twelve_rows(self):
        rows = run_fig5(n_neighbors=3.0, beamwidths=[math.radians(30)])
        assert len(rows) == 1
        assert set(rows[0].throughput) == {
            "ORTS-OCTS",
            "DRTS-DCTS",
            "DRTS-OCTS",
        }

    def test_paper_grid(self):
        rows = run_fig5(n_neighbors=3.0)
        assert len(rows) == 12
        assert rows[0].beamwidth_deg == pytest.approx(15.0)
        assert rows[-1].beamwidth_deg == pytest.approx(180.0)

    def test_narrow_beam_ordering(self):
        rows = run_fig5(n_neighbors=5.0, beamwidths=[math.radians(15)])
        th = rows[0].throughput
        assert th["DRTS-DCTS"] > th["DRTS-OCTS"] > th["ORTS-OCTS"]

    def test_all_throughputs_positive(self):
        for row in run_fig5(n_neighbors=8.0, beamwidths=[math.radians(90)]):
            assert all(v > 0 for v in row.throughput.values())

    def test_format_table(self):
        rows = run_fig5(n_neighbors=3.0, beamwidths=[math.radians(30)])
        text = format_fig5_table(rows)
        assert "ORTS-OCTS" in text
        assert "30" in text


class TestTable1:
    def test_all_entries_match(self):
        for entry in table1_entries():
            assert entry.matches, f"{entry.name}: {entry.repo_value}"

    def test_expected_parameter_set(self):
        names = {e.name for e in table1_entries()}
        assert {
            "RTS size",
            "CTS size",
            "data size",
            "ACK size",
            "DIFS",
            "SIFS",
            "contention window",
            "slot time",
            "sync time",
            "propagation delay",
            "raw channel bit rate",
        } <= names

    def test_format_includes_airtimes(self):
        text = format_table1()
        assert "6032us" in text  # data air time
        assert "272us" in text  # RTS air time

    def test_mismatch_detection(self):
        from repro.experiments import Table1Entry

        entry = Table1Entry("x", "1us", "2us")
        assert not entry.matches
