"""Tests for the analytical baseline ladder."""

import pytest

from repro.experiments import format_baseline_table, run_baseline_ladder


class TestBaselineLadder:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_baseline_ladder(
            n_neighbors=5.0, data_lengths=(10.0, 100.0)
        )

    def test_all_rungs_present(self, rows):
        for row in rows:
            assert set(row.throughput) == {
                "NP-CSMA",
                "BTMA-ideal",
                "ORTS-OCTS",
                "DRTS-DCTS",
            }
            assert all(v > 0 for v in row.throughput.values())

    def test_winner_helper(self, rows):
        for row in rows:
            winner = row.winner()
            assert row.throughput[winner] == max(row.throughput.values())

    def test_short_data_btma_beats_handshake(self, rows):
        short = rows[0].throughput
        assert short["BTMA-ideal"] > short["ORTS-OCTS"]

    def test_long_data_handshake_beats_btma(self, rows):
        long = rows[1].throughput
        assert long["ORTS-OCTS"] > long["BTMA-ideal"]

    def test_csma_always_last(self, rows):
        for row in rows:
            assert row.winner() != "NP-CSMA"
            assert row.throughput["NP-CSMA"] == min(row.throughput.values())

    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            run_baseline_ladder(data_lengths=())
        with pytest.raises(ValueError):
            run_baseline_ladder(data_lengths=(0.0,))

    def test_format(self, rows):
        text = format_baseline_table(rows)
        assert "winner" in text
        assert "BTMA-ideal" in text
