"""Tests for the figure-level summarisation modules (Fig. 6/7 etc.)."""

import pytest

from repro.dessim import seconds
from repro.experiments import (
    SimStudyConfig,
    format_collision_table,
    format_fairness_table,
    format_fig6_table,
    format_fig7_table,
    run_collision_ratio,
    run_fairness,
    run_fig6,
    run_fig7,
)


@pytest.fixture(scope="module")
def tiny_cfg():
    return SimStudyConfig(
        n_values=(3,),
        beamwidths_deg=(90.0,),
        schemes=("ORTS-OCTS",),
        topologies=2,
        sim_time_ns=seconds(0.3),
    )


class TestFig6:
    def test_cells_and_table(self, tiny_cfg):
        cells = run_fig6(tiny_cfg)
        assert len(cells) == 1
        cell = cells[0]
        assert cell.n == 3
        assert cell.throughput_bps.count == 2
        assert cell.throughput_bps.mean > 0
        text = format_fig6_table(cells)
        assert "N = 3" in text
        assert "ORTS-OCTS" in text


class TestFig7:
    def test_cells_and_table(self, tiny_cfg):
        cells = run_fig7(tiny_cfg)
        assert len(cells) == 1
        assert cells[0].delay_s.mean > 0
        text = format_fig7_table(cells)
        assert "ms" in text


class TestCollisionRatio:
    def test_cells_and_table(self, tiny_cfg):
        cells = run_collision_ratio(tiny_cfg)
        assert 0.0 <= cells[0].collision_ratio.mean <= 1.0
        assert "ACK-timeout" in format_collision_table(cells)


class TestFairness:
    def test_cells_and_table(self, tiny_cfg):
        cells = run_fairness(tiny_cfg)
        assert 0.0 < cells[0].jain.mean <= 1.0
        assert "Jain" in format_fairness_table(cells)


class TestAblation:
    def test_fixed_p_rows(self):
        from repro.experiments import run_fixed_p_ablation

        rows = run_fixed_p_ablation(n_neighbors=3.0, p_values=(0.02, 0.05))
        assert len(rows) == 3
        for row in rows:
            assert set(row.fixed) == {0.02, 0.05}
            assert row.optimised >= max(row.fixed.values()) - 1e-9

    def test_tfail_rows(self):
        from repro.experiments import run_tfail_ablation

        rows = run_tfail_ablation(n_neighbors=3.0, beamwidths_deg=(30.0,))
        assert len(rows) == 1
        assert rows[0].early_bound > rows[0].paper_bound
        assert rows[0].relative_change > 0
