"""Tests for the Network Allocation Vector."""

import pytest
from hypothesis import given, strategies as st

from repro.mac import Nav


class TestNav:
    def test_initially_idle(self):
        nav = Nav()
        assert not nav.busy(0)
        assert nav.until == 0

    def test_update_reserves(self):
        nav = Nav()
        assert nav.update(100)
        assert nav.busy(50)
        assert not nav.busy(100)  # expiry instant counts as idle

    def test_only_extends(self):
        nav = Nav()
        nav.update(100)
        assert not nav.update(60)
        assert nav.until == 100

    def test_extension(self):
        nav = Nav()
        nav.update(100)
        assert nav.update(250)
        assert nav.until == 250

    def test_remaining(self):
        nav = Nav()
        nav.update(100)
        assert nav.remaining(40) == 60
        assert nav.remaining(150) == 0

    def test_clear(self):
        nav = Nav()
        nav.update(100)
        nav.clear()
        assert not nav.busy(0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Nav().update(-1)

    @given(st.lists(st.integers(min_value=0, max_value=10**9), max_size=50))
    def test_until_is_monotone_under_updates(self, updates):
        nav = Nav()
        previous = 0
        for value in updates:
            nav.update(value)
            assert nav.until >= previous
            previous = nav.until
        assert nav.until == max(updates, default=0)
