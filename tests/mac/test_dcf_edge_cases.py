"""Edge-case behaviour of the DCF state machine."""

import pytest

from repro.dessim import microseconds, seconds
from repro.phy import Frame, FrameType, OmniAntenna

from .conftest import TinyNetwork


class TestResponderDataProbe:
    """After a CTS whose handshake dies, the responder must recover
    quickly (no idling through a whole data airtime)."""

    def test_responder_frees_quickly_when_data_never_starts(self):
        # a's RTS reaches b; b's CTS back to a is destroyed by an
        # interferer positioned to hit only a; b must not stay locked.
        net = TinyNetwork({0: (0, 0), 1: (200, 0), 2: (-250, 0), 3: (-450, 0)})
        net.send(0, 1)
        # Node 3 (out of b's range, in a's range... 3 is at -450: out of
        # a's range too).  Use node 2 at -250: in a's range, out of b's.
        noise = Frame(FrameType.RTS, src=2, dst=99, size_bytes=20)
        # a's RTS: 50-322us; b's CTS arrives at a 333-581us. Hit it.
        net.sim.schedule_at(
            microseconds(400), net.radios[2].transmit, noise, OmniAntenna()
        )
        net.sim.run(until=seconds(2))
        # b sent a CTS, a never got it (collision), yet b responds to
        # the retried RTS and the packet is eventually delivered.
        assert net.macs[1].stats.cts_sent >= 2
        assert net.macs[0].stats.packets_delivered == 1

    def test_responder_waits_full_window_when_data_arrives(self):
        # Normal handshake: the probe must not cut off a real DATA.
        net = TinyNetwork({0: (0, 0), 1: (200, 0)})
        net.send(0, 1)
        net.sim.run(until=seconds(1))
        assert net.macs[1].stats.data_received == 1
        assert net.macs[0].stats.packets_delivered == 1

    def test_data_timeout_trace_on_lost_cts(self):
        net = TinyNetwork({0: (0, 0), 1: (200, 0), 2: (-250, 0)})
        net.send(0, 1)
        noise = Frame(FrameType.RTS, src=2, dst=99, size_bytes=20)
        net.sim.schedule_at(
            microseconds(400), net.radios[2].transmit, noise, OmniAntenna()
        )
        net.sim.run(until=microseconds(2000))
        timeouts = net.mac_events(node=1, event="data-timeout")
        assert timeouts, "responder never released via the data probe"
        # Release is fast: within ~100 us of the CTS, not ~6 ms.
        cts_end = microseconds(333 + 248)
        assert timeouts[0].time < cts_end + microseconds(200)


class TestStaleFrames:
    def test_late_cts_ignored_after_timeout(self):
        # A CTS arriving after the initiator already gave up must not
        # confuse the state machine.  Construct indirectly: unreachable
        # responder -> timeout path exercised repeatedly without crash.
        net = TinyNetwork({0: (0, 0), 2: (400, 0)})
        net.send(0, 2)
        net.sim.run(until=seconds(1))
        assert net.macs[0].stats.packets_dropped == 1

    def test_duplicate_rts_handling(self):
        # Two RTSes from the same node in quick succession (retry after
        # a missed CTS): the responder must answer both without error.
        net = TinyNetwork({0: (0, 0), 1: (200, 0)})
        net.send(0, 1)
        net.send(0, 1)
        net.sim.run(until=seconds(1))
        assert net.macs[0].stats.packets_delivered == 2
        assert net.macs[1].stats.cts_sent == 2

    def test_ack_for_wrong_peer_ignored(self):
        # Three nodes in range; an ACK addressed to us from a node that
        # is not our current destination must not complete our handshake.
        net = TinyNetwork({0: (0, 0), 1: (200, 0), 2: (100, 170)})
        net.send(0, 1)
        # Inject a spurious ACK from node 2 to node 0 mid-handshake.
        spurious = Frame(FrameType.ACK, src=2, dst=0, size_bytes=14)
        net.sim.schedule_at(
            microseconds(700), net.radios[2].transmit, spurious, OmniAntenna()
        )
        net.sim.run(until=seconds(1))
        # The real handshake may fail (the spurious ACK can collide with
        # the CTS) but the delivery count can only come from node 1.
        stats = net.macs[0].stats
        assert stats.packets_delivered <= 1


class TestQueueDynamics:
    def test_empty_queue_goes_quiet(self):
        net = TinyNetwork({0: (0, 0), 1: (200, 0)})
        net.send(0, 1)
        net.sim.run(until=seconds(1))
        events_before = net.sim.events_processed
        net.sim.run(until=seconds(2))
        # Nothing scheduled once the queue drains.
        assert net.sim.events_processed == events_before

    def test_enqueue_after_idle_restarts_access(self):
        net = TinyNetwork({0: (0, 0), 1: (200, 0)})
        net.send(0, 1)
        net.sim.run(until=seconds(1))
        net.send(0, 1, at=seconds(1))
        net.sim.run(until=seconds(2))
        assert net.macs[0].stats.packets_delivered == 2

    def test_backoff_persists_across_idle_period(self):
        # After a success the post-TX backoff applies to the next
        # packet even if it arrives much later.
        net = TinyNetwork({0: (0, 0), 1: (200, 0)})
        net.send(0, 1)
        net.sim.run(until=seconds(1))
        backoff_before = net.macs[0]._backoff_remaining
        net.send(0, 1, at=seconds(1))
        net.sim.run(until=seconds(2))
        assert net.macs[0].stats.packets_delivered == 2
        assert backoff_before >= 0
