"""Tests for the oracle neighbor protocol."""

import math

import pytest

from repro.mac import NeighborTable

from .conftest import TinyNetwork


class TestNeighborTable:
    def test_neighbor_ids(self):
        net = TinyNetwork({0: (0, 0), 1: (200, 0), 2: (400, 0)})
        table = NeighborTable(net.channel, 1)
        assert sorted(table.neighbor_ids()) == [0, 2]

    def test_out_of_range_excluded(self):
        net = TinyNetwork({0: (0, 0), 2: (400, 0)})
        table = NeighborTable(net.channel, 0)
        assert table.neighbor_ids() == []

    def test_bearing_east(self):
        net = TinyNetwork({0: (0, 0), 1: (200, 0)})
        assert NeighborTable(net.channel, 0).bearing_to(1) == pytest.approx(0.0)

    def test_bearing_north_west(self):
        net = TinyNetwork({0: (0, 0), 1: (-100, 100)})
        assert NeighborTable(net.channel, 0).bearing_to(1) == pytest.approx(
            3 * math.pi / 4
        )

    def test_distance(self):
        net = TinyNetwork({0: (0, 0), 1: (30, 40)})
        assert NeighborTable(net.channel, 0).distance_to(1) == pytest.approx(50.0)

    def test_colocated_bearing_rejected(self):
        net = TinyNetwork({0: (0, 0), 1: (0, 0)})
        with pytest.raises(ValueError):
            NeighborTable(net.channel, 0).bearing_to(1)
