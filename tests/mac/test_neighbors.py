"""Tests for the oracle neighbor protocol."""

import math

import pytest

from repro.dessim import milliseconds
from repro.mac import NeighborTable, SnapshotNeighborTable
from repro.phy import Position

from .conftest import TinyNetwork


class TestNeighborTable:
    def test_neighbor_ids(self):
        net = TinyNetwork({0: (0, 0), 1: (200, 0), 2: (400, 0)})
        table = NeighborTable(net.channel, 1)
        assert sorted(table.neighbor_ids()) == [0, 2]

    def test_out_of_range_excluded(self):
        net = TinyNetwork({0: (0, 0), 2: (400, 0)})
        table = NeighborTable(net.channel, 0)
        assert table.neighbor_ids() == []

    def test_bearing_east(self):
        net = TinyNetwork({0: (0, 0), 1: (200, 0)})
        assert NeighborTable(net.channel, 0).bearing_to(1) == pytest.approx(0.0)

    def test_bearing_north_west(self):
        net = TinyNetwork({0: (0, 0), 1: (-100, 100)})
        assert NeighborTable(net.channel, 0).bearing_to(1) == pytest.approx(
            3 * math.pi / 4
        )

    def test_distance(self):
        net = TinyNetwork({0: (0, 0), 1: (30, 40)})
        assert NeighborTable(net.channel, 0).distance_to(1) == pytest.approx(50.0)

    def test_colocated_bearing_rejected(self):
        net = TinyNetwork({0: (0, 0), 1: (0, 0)})
        with pytest.raises(ValueError):
            NeighborTable(net.channel, 0).bearing_to(1)


class TestSnapshotStalenessUnderMobility:
    """Regression: the snapshot table must serve *stale* data between
    refreshes, while the live oracle tracks the move immediately."""

    def make_tables(self, net, interval_ns=milliseconds(100)):
        live = NeighborTable(net.channel, 0)
        snap = SnapshotNeighborTable(net.channel, 0, interval_ns, sim=net.sim)
        return live, snap

    def test_bearing_stays_stale_until_refresh(self):
        net = TinyNetwork({0: (0, 0), 1: (200, 0)})
        live, snap = self.make_tables(net)
        assert snap.bearing_to(1) == pytest.approx(0.0)  # first query snapshots
        assert snap.refreshes == 1

        net.radios[1].position = Position(0.0, 200.0)  # peer moves due north

        # Live oracle sees the move at once; the snapshot still aims east.
        assert live.bearing_to(1) == pytest.approx(math.pi / 2)
        assert snap.bearing_to(1) == pytest.approx(0.0)
        assert snap.refreshes == 1

        # Past the refresh interval, the snapshot catches up to live.
        net.sim.run(until=net.sim.now + milliseconds(100))
        assert snap.bearing_to(1) == pytest.approx(live.bearing_to(1))
        assert snap.refreshes == 2

    def test_neighbor_set_stays_stale_until_refresh(self):
        net = TinyNetwork({0: (0, 0), 1: (200, 0)})
        live, snap = self.make_tables(net)
        assert snap.neighbor_ids() == [1]

        net.radios[1].position = Position(5000.0, 0.0)  # moves out of range

        assert live.neighbor_ids() == []
        assert snap.neighbor_ids() == [1]  # stale: still listed

        net.sim.run(until=net.sim.now + milliseconds(100))
        assert snap.neighbor_ids() == []

    def test_zero_interval_degrades_to_live(self):
        net = TinyNetwork({0: (0, 0), 1: (200, 0)})
        live, snap = self.make_tables(net, interval_ns=0)
        snap.bearing_to(1)
        net.radios[1].position = Position(0.0, 200.0)
        assert snap.bearing_to(1) == pytest.approx(live.bearing_to(1))
        assert snap.neighbor_ids() == live.neighbor_ids()

    def test_unseen_peer_falls_back_to_live(self):
        # 2 starts out of range, snapshot taken, then 2 moves in range:
        # it was never in a snapshot, so bearings come from the oracle.
        net = TinyNetwork({0: (0, 0), 1: (200, 0), 2: (5000, 0)})
        _, snap = self.make_tables(net)
        assert snap.neighbor_ids() == [1]
        net.radios[2].position = Position(100.0, 0.0)
        assert snap.bearing_to(2) == pytest.approx(0.0)

    def test_rejects_negative_interval(self):
        net = TinyNetwork({0: (0, 0), 1: (200, 0)})
        with pytest.raises(ValueError):
            SnapshotNeighborTable(net.channel, 0, -1, sim=net.sim)
