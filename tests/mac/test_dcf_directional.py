"""Directional-variant behaviour: spatial reuse and its collision cost."""

import math

import pytest

from repro.dessim import microseconds, seconds

from .conftest import TinyNetwork


def behind_receiver_positions():
    """a -> b handshake; w sits behind b, out of a's range."""
    return {0: (0, 0), 1: (200, 0), 2: (390, 0)}


class TestBeamedFrames:
    def test_drts_dcts_leaks_nothing_behind_receiver(self):
        net = TinyNetwork(behind_receiver_positions(), "DRTS-DCTS", 30.0)
        net.send(0, 1)
        net.sim.run(until=seconds(1))
        assert net.macs[0].stats.packets_delivered == 1
        # w (node 2) heard no frame at all: CTS and ACK were beamed west.
        assert net.radios[2].frames_received == 0

    def test_orts_octs_cts_heard_behind_receiver(self):
        net = TinyNetwork(behind_receiver_positions(), "ORTS-OCTS")
        net.send(0, 1)
        net.sim.run(until=seconds(1))
        # w hears b's omni CTS and ACK.
        assert net.radios[2].frames_received == 2

    def test_drts_octs_cts_still_heard_behind_receiver(self):
        net = TinyNetwork(behind_receiver_positions(), "DRTS-OCTS", 30.0)
        net.send(0, 1)
        net.sim.run(until=seconds(1))
        # The omni CTS reaches w; the beamed ACK does not.
        assert net.radios[2].frames_received == 1

    def test_beamed_rts_invisible_to_side_node(self):
        # s is north of a; the eastward RTS beam must not disturb it.
        net = TinyNetwork({0: (0, 0), 1: (200, 0), 2: (0, 200)}, "DRTS-DCTS", 30.0)
        net.send(0, 1)
        net.sim.run(until=seconds(1))
        assert net.radios[2].frames_received == 0
        assert net.macs[0].stats.packets_delivered == 1


class TestSpatialReuse:
    def test_two_parallel_beamed_handshakes_overlap_in_time(self):
        """Two east-west pairs stacked 250 m apart: with 30-degree beams
        both handshakes proceed concurrently; with omni they serialize."""
        # Senders are diagonal: each sender is in range of the *other*
        # pair's receiver (250 m), but the two senders are hidden from
        # each other (320 m).  Omni handshakes therefore collide and
        # serialize; 30-degree beams never cross.
        positions = {
            0: (0, 0), 1: (200, 0),      # pair A, sender west
            2: (200, 250), 3: (0, 250),  # pair B, sender east
        }

        def first_delivery_times(policy):
            net = TinyNetwork(positions, policy, 30.0)
            net.send(0, 1)
            net.send(2, 3)
            net.sim.run(until=seconds(2))
            times = {}
            for node in (0, 2):
                events = net.mac_events(node=node, event="delivered")
                assert events, f"node {node} never delivered under {policy}"
                times[node] = events[0].time
            return times

        directional = first_delivery_times("DRTS-DCTS")
        omni = first_delivery_times("ORTS-OCTS")
        # Beamed: both complete within one handshake's span (concurrent).
        assert max(directional.values()) < microseconds(8000)
        # Omni: the loser waits for the winner's whole handshake.
        assert max(omni.values()) > microseconds(12000)

    def test_narrow_beam_delivers_between_close_bearings(self):
        # Receivers 30 degrees apart from a common sender: the beam for
        # one must not stop the other from replying later.
        net = TinyNetwork(
            {0: (0, 0), 1: (200, 0), 2: (173, 100)}, "DRTS-DCTS", 15.0
        )
        net.send(0, 1)
        net.send(0, 2, at=microseconds(8000))
        net.sim.run(until=seconds(1))
        assert net.macs[0].stats.packets_delivered == 2


class TestDirectionalCollisionCost:
    def test_hidden_data_collision_more_likely_without_omni_cts(self):
        """A classic paper scenario: w (node 2) never hears DRTS-DCTS
        control traffic, and its westward beam toward its peer q
        (node 3) covers the receiver b — so it transmits into b's
        ongoing reception.  Under ORTS-OCTS, b's omni CTS silences w."""
        positions = {0: (0, 0), 1: (200, 0), 2: (390, 0), 3: (90, 0)}

        def run(policy):
            net = TinyNetwork(positions, policy, 30.0, seed=3)
            # a -> b, and w (node 2) -> its own peer (node 3), saturated.
            def refill(mac, dst):
                def cb(pkt, ok):
                    net.send(mac.node_id, dst)
                return cb

            net.macs[0].service_listeners.append(refill(net.macs[0], 1))
            net.macs[2].service_listeners.append(refill(net.macs[2], 3))
            net.send(0, 1)
            net.send(2, 3)
            net.sim.run(until=seconds(2))
            return net

        directional = run("DRTS-DCTS")
        omni = run("ORTS-OCTS")
        d_stats = directional.macs[0].stats
        o_stats = omni.macs[0].stats
        # Under DRTS-DCTS node 2 is never silenced by b's CTS, so node
        # 0 suffers ACK timeouts; under ORTS-OCTS the omni CTS from b
        # reaches node 2 and prevents (nearly all of) them.
        assert d_stats.collision_ratio > o_stats.collision_ratio
