"""Tests for binary exponential backoff."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.mac import BackoffManager, MacParameters


def manager(seed=0, **kw):
    return BackoffManager(MacParameters(**kw), random.Random(seed))


class TestContentionWindow:
    def test_starts_at_cw_min(self):
        assert manager().cw == 31

    def test_doubling_sequence(self):
        beb = manager()
        observed = [beb.cw]
        for _ in range(6):
            beb.double()
            observed.append(beb.cw)
        assert observed == [31, 63, 127, 255, 511, 1023, 1023]

    def test_caps_at_cw_max(self):
        beb = manager()
        for _ in range(20):
            beb.double()
        assert beb.cw == 1023

    def test_reset(self):
        beb = manager()
        beb.double()
        beb.double()
        beb.reset()
        assert beb.cw == 31

    def test_stage_tracks_doublings(self):
        beb = manager()
        assert beb.stage == 0
        beb.double()
        assert beb.stage == 1
        beb.double()
        assert beb.stage == 2
        beb.reset()
        assert beb.stage == 0

    def test_custom_window(self):
        beb = manager(cw_min=15, cw_max=255)
        assert beb.cw == 15
        for _ in range(10):
            beb.double()
        assert beb.cw == 255


class TestDraw:
    def test_draw_within_window(self):
        beb = manager()
        for _ in range(200):
            assert 0 <= beb.draw() <= 31

    def test_draw_uses_doubled_window(self):
        beb = manager()
        beb.double()
        draws = [beb.draw() for _ in range(500)]
        assert max(draws) > 31  # wider window is actually used
        assert all(0 <= d <= 63 for d in draws)

    def test_deterministic_given_seed(self):
        a = [manager(seed=5).draw() for _ in range(1)]
        b = [manager(seed=5).draw() for _ in range(1)]
        assert a == b

    def test_draw_covers_full_range(self):
        beb = manager(cw_min=3, cw_max=7)
        draws = {beb.draw() for _ in range(300)}
        assert draws == {0, 1, 2, 3}

    @given(st.integers(min_value=0, max_value=20))
    def test_cw_is_always_power_of_two_minus_one(self, doublings):
        beb = manager()
        for _ in range(doublings):
            beb.double()
        assert (beb.cw + 1) & beb.cw == 0  # 2^k - 1 bit pattern
