"""Behavioural tests for the DCF state machine on tiny real networks.

Timing reference for a lone pair (Table 1, all in microseconds)::

    DIFS 50 | RTS 272 | prop 1 | SIFS 10 | CTS 248 | prop 1 |
    SIFS 10 | DATA 6032 | prop 1 | SIFS 10 | ACK 248 | prop 1
    => handshake completes at t = 6884 us.
"""

import pytest

from repro.dessim import microseconds, seconds
from repro.phy import Frame, FrameType, OmniAntenna

from .conftest import TinyNetwork

HANDSHAKE_US = 50 + 272 + 1 + 10 + 248 + 1 + 10 + 6032 + 1 + 10 + 248 + 1


class TestSuccessfulHandshake:
    def test_single_packet_delivered(self, pair):
        pair.send(0, 1)
        pair.sim.run(until=seconds(1))
        assert pair.macs[0].stats.packets_delivered == 1
        assert pair.macs[1].stats.data_received == 1

    def test_exact_handshake_timing(self, pair):
        pair.send(0, 1)
        pair.sim.run(until=seconds(1))
        assert pair.macs[0].stats.delays_ns == [microseconds(HANDSHAKE_US)]

    def test_frame_sequence(self, pair):
        pair.send(0, 1)
        pair.sim.run(until=seconds(1))
        sent = [
            r.detail["ftype"]
            for r in pair.tracer.filter(category="phy", event="tx-start")
        ]
        assert sent == ["rts", "cts", "data", "ack"]

    def test_counters_on_both_sides(self, pair):
        pair.send(0, 1)
        pair.sim.run(until=seconds(1))
        a, b = pair.macs[0].stats, pair.macs[1].stats
        assert (a.rts_sent, a.data_sent) == (1, 1)
        assert (b.cts_sent, b.ack_sent) == (1, 1)
        assert a.cts_timeouts == a.ack_timeouts == 0
        assert a.bits_delivered == 1460 * 8
        assert b.bits_received == 1460 * 8

    def test_no_retransmissions_needed(self, pair):
        pair.send(0, 1)
        pair.sim.run(until=seconds(1))
        assert pair.macs[0].backoff.cw == 31  # never doubled

    def test_delivery_listener_invoked(self, pair):
        got = []
        pair.macs[1].delivery_listeners.append(got.append)
        pair.send(0, 1)
        pair.sim.run(until=seconds(1))
        assert len(got) == 1
        assert got[0].ftype is FrameType.DATA
        assert got[0].src == 0

    def test_service_listener_reports_success(self, pair):
        outcomes = []
        pair.macs[0].service_listeners.append(
            lambda pkt, ok: outcomes.append((pkt.dst, ok))
        )
        pair.send(0, 1)
        pair.sim.run(until=seconds(1))
        assert outcomes == [(1, True)]

    def test_fifo_queue_order(self, pair):
        delivered = []
        pair.macs[1].delivery_listeners.append(
            lambda f: delivered.append(f.size_bytes)
        )
        for size in (100, 200, 300):
            pair.send(0, 1, size=size)
        pair.sim.run(until=seconds(1))
        assert delivered == [100, 200, 300]


class TestTimeoutsAndRetries:
    def test_unreachable_destination_drops_after_retry_limit(self):
        # Node 2 is out of range: every RTS goes unanswered.
        net = TinyNetwork({0: (0, 0), 2: (400, 0)})
        outcomes = []
        net.macs[0].service_listeners.append(
            lambda pkt, ok: outcomes.append(ok)
        )
        net.send(0, 2)
        net.sim.run(until=seconds(2))
        stats = net.macs[0].stats
        assert stats.packets_dropped == 1
        assert stats.cts_timeouts == 7  # retry_limit attempts
        assert stats.rts_sent == 7
        assert outcomes == [False]

    def test_contention_window_doubles_on_failures(self):
        net = TinyNetwork({0: (0, 0), 2: (400, 0)})
        net.send(0, 2)
        # Run long enough for exactly two CTS timeouts.
        observed = []

        def snoop(*_args):
            observed.append(net.macs[0].backoff.cw)

        net.macs[0].service_listeners.append(snoop)
        net.sim.run(until=seconds(2))
        # After the drop the window resets.
        assert net.macs[0].backoff.cw == 31
        assert net.macs[0].stats.cts_timeouts == 7

    def test_cw_reset_after_success(self, hidden_trio):
        # Saturate both hidden senders; collisions double windows, but a
        # success must bring the winner's window back to cw_min.
        net = hidden_trio
        net.send(0, 1)
        net.send(2, 1)
        net.sim.run(until=seconds(2))
        total = (
            net.macs[0].stats.packets_delivered
            + net.macs[2].stats.packets_delivered
        )
        assert total == 2  # both eventually get through
        assert net.macs[0].backoff.cw == 31
        assert net.macs[2].backoff.cw == 31

    def test_hidden_terminals_eventually_deliver(self, hidden_trio):
        net = hidden_trio
        for _ in range(3):
            net.send(0, 1)
            net.send(2, 1)
        net.sim.run(until=seconds(5))
        assert net.macs[0].stats.packets_delivered == 3
        assert net.macs[2].stats.packets_delivered == 3

    def test_ack_timeout_on_data_collision(self, hidden_trio):
        """Force the paper's collision-ratio event: DATA corrupted at the
        receiver by a hidden interferer after a clean RTS/CTS."""
        net = hidden_trio
        net.send(0, 1)
        # Node 2 blasts a raw frame into node 1's receiver mid-DATA.
        noise = Frame(FrameType.RTS, src=2, dst=99, size_bytes=20)
        net.sim.schedule_at(
            microseconds(1500), net.radios[2].transmit, noise, OmniAntenna()
        )
        net.sim.run(until=microseconds(8000))
        assert net.macs[0].stats.ack_timeouts == 1
        assert net.macs[0].stats.collision_ratio == 1.0
        # The retry should eventually succeed.
        net.sim.run(until=seconds(2))
        assert net.macs[0].stats.packets_delivered == 1
        assert 0.0 < net.macs[0].stats.collision_ratio < 1.0


class TestVirtualCarrierSense:
    def test_overhearing_node_defers_whole_handshake(self):
        # c hears a's RTS (not addressed to it) and must stay silent
        # until the reservation runs out.
        net = TinyNetwork({0: (0, 0), 1: (200, 0), 2: (100, 170)})
        net.send(0, 1)
        net.send(2, 1, at=microseconds(100))
        net.sim.run(until=seconds(2))
        c_rts = net.mac_events(node=2, event="rts-sent")
        assert c_rts, "node 2 never transmitted"
        assert c_rts[0].time >= microseconds(HANDSHAKE_US)
        # Both packets are eventually delivered.
        assert net.macs[0].stats.packets_delivered == 1
        assert net.macs[2].stats.packets_delivered == 1

    def test_responder_suppresses_cts_when_nav_busy(self):
        net = TinyNetwork({0: (0, 0), 1: (200, 0), 2: (400, 0)})
        # Node 2 reserves the medium around node 1 for 20 ms.
        blocker = Frame(
            FrameType.RTS, src=2, dst=99, size_bytes=20,
            duration_ns=microseconds(20_000),
        )
        net.radios[2].transmit(blocker, OmniAntenna())
        net.send(0, 1, at=microseconds(500))
        net.sim.run(until=microseconds(5000))
        assert net.macs[1].stats.cts_sent == 0
        assert net.macs[0].stats.cts_timeouts >= 1
        # After the NAV expires the handshake goes through.
        net.sim.run(until=seconds(2))
        assert net.macs[0].stats.packets_delivered == 1


class TestEifs:
    def test_first_access_waits_difs(self, pair):
        pair.send(0, 1)
        pair.sim.run(until=seconds(1))
        rts = pair.mac_events(node=0, event="rts-sent")
        assert rts[0].time == microseconds(50)

    def test_access_after_garbled_reception_waits_eifs(self, pair):
        pair.macs[0].on_reception_failed()  # inject the EIFS condition
        pair.send(0, 1)
        pair.sim.run(until=seconds(1))
        rts = pair.mac_events(node=0, event="rts-sent")
        # EIFS = SIFS + ACK air + DIFS = 10 + 248 + 50 = 308 us.
        assert rts[0].time == microseconds(308)

    def test_clean_frame_clears_eifs(self, pair):
        # A successful reception between the failure and the access
        # restores the normal DIFS.
        pair.macs[0].on_reception_failed()
        pair.send(1, 0)  # node 1 sends us a frame first
        pair.send(0, 1, at=microseconds(7000))  # after that handshake
        pair.sim.run(until=seconds(1))
        rts = pair.mac_events(node=0, event="rts-sent")
        assert rts, "node 0 never sent its RTS"
        # Node 0's own access begins after node 1's handshake; its IFS
        # must be DIFS-sized, not EIFS-sized.  The handshake ends at
        # 6884 us < enqueue time 7000 us, so RTS at 7000 + 50 us.
        assert rts[0].time == microseconds(7050)


class TestSaturatedPair:
    def test_bidirectional_saturation_no_deadlock(self, pair):
        for mac in pair.macs.values():
            peer = 1 - mac.node_id

            def refill(pkt, ok, mac=mac, peer=peer):
                pair.send(mac.node_id, peer)

            mac.service_listeners.append(refill)
        pair.send(0, 1)
        pair.send(1, 0)
        pair.sim.run(until=seconds(2))
        a, b = pair.macs[0].stats, pair.macs[1].stats
        assert a.packets_delivered > 50
        assert b.packets_delivered > 50
        # Conservation: every delivery was received by the peer.
        assert a.packets_delivered == b.data_received
        assert b.packets_delivered == a.data_received
