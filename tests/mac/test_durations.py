"""Exact duration-field and NAV arithmetic."""

import pytest

from repro.dessim import microseconds, seconds
from repro.phy import FrameType

from .conftest import TinyNetwork


class TestDurationFields:
    def test_handshake_tail_values(self):
        net = TinyNetwork({0: (0, 0), 1: (200, 0)})
        mac = net.macs[0]
        # After the RTS: 3 SIFS + CTS + DATA + ACK + 3 prop.
        assert mac._handshake_tail_ns(FrameType.RTS, 1460) == microseconds(
            3 * 10 + 248 + 6032 + 248 + 3
        )
        # After the CTS: 2 SIFS + DATA + ACK + 2 prop.
        assert mac._handshake_tail_ns(FrameType.CTS, 1460) == microseconds(
            2 * 10 + 6032 + 248 + 2
        )
        # After the DATA: SIFS + ACK + prop.
        assert mac._handshake_tail_ns(FrameType.DATA, 1460) == microseconds(
            10 + 248 + 1
        )
        assert mac._handshake_tail_ns(FrameType.ACK, 1460) == 0

    def test_tail_scales_with_payload(self):
        net = TinyNetwork({0: (0, 0), 1: (200, 0)})
        mac = net.macs[0]
        small = mac._handshake_tail_ns(FrameType.RTS, 100)
        large = mac._handshake_tail_ns(FrameType.RTS, 1460)
        # 1360 extra bytes at 500 ns/bit.
        assert large - small == 1360 * 8 * 500


class TestNavArithmetic:
    def test_overheard_rts_reserves_until_ack_end(self):
        # c overhears a's RTS to b: its NAV must land exactly on the
        # handshake's end (6884 us).
        net = TinyNetwork({0: (0, 0), 1: (200, 0), 2: (100, 170)})
        net.send(0, 1)
        net.sim.run(until=microseconds(400))
        nav = net.macs[2].nav
        assert nav.until == microseconds(6884)

    def test_cts_overhearer_same_reservation(self):
        # A node that hears only the CTS (hidden from the sender)
        # reserves until the same instant, modulo its own propagation
        # delay (real 802.11 has the same +-prop skew between
        # overhearers at different distances).
        net = TinyNetwork({0: (0, 0), 1: (200, 0), 2: (400, 0)})
        net.send(0, 1)
        net.sim.run(until=microseconds(600))
        skew = abs(net.macs[2].nav.until - microseconds(6884))
        assert skew <= microseconds(1)

    def test_data_overhearer_same_reservation(self):
        net = TinyNetwork({0: (0, 0), 1: (200, 0), 2: (100, 170)})
        net.send(0, 1)
        net.sim.run(until=seconds(1))
        # After the whole handshake every bystander NAV has expired.
        assert not net.macs[2].nav.busy(net.sim.now)

    def test_all_reservation_paths_agree(self):
        """RTS, CTS and DATA overhearers compute the same end +-prop."""
        net = TinyNetwork({0: (0, 0), 1: (200, 0), 2: (100, 170), 3: (400, 0)})
        net.send(0, 1)
        net.sim.run(until=microseconds(6700))
        # Node 2 hears everything from a; node 3 hears b's frames only.
        end = microseconds(6884)
        assert abs(net.macs[2].nav.until - end) <= microseconds(1)
        assert abs(net.macs[3].nav.until - end) <= microseconds(1)
