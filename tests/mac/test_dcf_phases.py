"""Phase-level observations of the DCF state machine during a handshake.

Timeline for a lone pair (microseconds): DIFS ends 50, RTS on air
50-322, CTS 333-581, DATA 592-6624, ACK 6635-6883.
"""

import pytest

from repro.dessim import microseconds, seconds
from repro.mac import DcfPhase

from .conftest import TinyNetwork


@pytest.fixture
def pair():
    return TinyNetwork({0: (0, 0), 1: (200, 0)})


def phase_at(net, node, time_us):
    net.sim.run(until=microseconds(time_us))
    return net.macs[node].phase


class TestInitiatorPhases:
    def test_idle_before_traffic(self, pair):
        assert pair.macs[0].phase is DcfPhase.NO_PACKET

    def test_ifs_during_difs(self, pair):
        pair.send(0, 1)
        assert phase_at(pair, 0, 20) is DcfPhase.ACCESS_IFS

    def test_await_cts_during_rts(self, pair):
        pair.send(0, 1)
        assert phase_at(pair, 0, 100) is DcfPhase.AWAIT_CTS

    def test_await_cts_while_cts_inbound(self, pair):
        pair.send(0, 1)
        assert phase_at(pair, 0, 400) is DcfPhase.AWAIT_CTS

    def test_send_data_after_cts(self, pair):
        pair.send(0, 1)
        assert phase_at(pair, 0, 585) is DcfPhase.SEND_DATA

    def test_await_ack_during_data(self, pair):
        pair.send(0, 1)
        assert phase_at(pair, 0, 3000) is DcfPhase.AWAIT_ACK

    def test_no_packet_after_completion(self, pair):
        pair.send(0, 1)
        assert phase_at(pair, 0, 8000) is DcfPhase.NO_PACKET

    def test_access_wait_when_medium_busy(self, pair):
        # Node 1 receives node 0's RTS while holding its own packet.
        pair.send(1, 0, at=microseconds(100))
        pair.send(0, 1)
        # At t=200us node 1's medium is busy with node 0's RTS.
        net = pair
        net.sim.run(until=microseconds(200))
        assert net.macs[1].phase is DcfPhase.ACCESS_WAIT


class TestResponderFlag:
    def test_responding_during_cts_and_data(self, pair):
        pair.send(0, 1)
        pair.sim.run(until=microseconds(400))
        assert pair.macs[1]._responding
        pair.sim.run(until=microseconds(3000))
        assert pair.macs[1]._responding

    def test_released_after_ack(self, pair):
        pair.send(0, 1)
        pair.sim.run(until=microseconds(8000))
        assert not pair.macs[1]._responding


class TestBackoffFreezing:
    def test_backoff_frozen_by_busy_medium(self):
        """A node mid-backoff halts its countdown during a neighbor's
        handshake and resumes afterwards."""
        net = TinyNetwork({0: (0, 0), 1: (200, 0), 2: (100, 170)})
        # Give node 2 a failed attempt first so it has a real backoff:
        # its first RTS will collide with node 0's (both start at DIFS).
        net.send(0, 1)
        net.send(2, 1)
        net.sim.run(until=seconds(2))
        # Everything eventually delivered despite the collision dance.
        assert net.macs[0].stats.packets_delivered == 1
        assert net.macs[2].stats.packets_delivered == 1
        # And at least one node actually went through ACCESS_BACKOFF
        # (cts timeouts imply doubled windows and drawn backoffs).
        total_timeouts = (
            net.macs[0].stats.cts_timeouts + net.macs[2].stats.cts_timeouts
        )
        assert total_timeouts >= 1
