"""Tests for the three antenna-mode policies."""

import math

import pytest

from repro.mac import (
    DRTS_DCTS_POLICY,
    DRTS_OCTS_POLICY,
    ORTS_OCTS_POLICY,
    POLICIES,
)
from repro.phy import FrameType, OmniAntenna, SectorAntenna

ALL_TYPES = [FrameType.RTS, FrameType.CTS, FrameType.DATA, FrameType.ACK]


class TestPolicyTable:
    """The scheme table from Section 2 of the paper."""

    def test_orts_octs_everything_omni(self):
        for ftype in ALL_TYPES:
            assert not ORTS_OCTS_POLICY.is_directional(ftype)

    def test_drts_dcts_everything_beamed(self):
        for ftype in ALL_TYPES:
            assert DRTS_DCTS_POLICY.is_directional(ftype)

    def test_drts_octs_only_cts_omni(self):
        assert DRTS_OCTS_POLICY.is_directional(FrameType.RTS)
        assert not DRTS_OCTS_POLICY.is_directional(FrameType.CTS)
        assert DRTS_OCTS_POLICY.is_directional(FrameType.DATA)
        assert DRTS_OCTS_POLICY.is_directional(FrameType.ACK)

    def test_registry_names(self):
        assert set(POLICIES) == {
            "ORTS-OCTS",
            "DRTS-DCTS",
            "DRTS-OCTS",
            "ORTS-OCTS-DDATA",
            "DORTS-OCTS",
        }
        for name, policy in POLICIES.items():
            assert policy.name == name

    def test_ko_alternating_rts(self):
        from repro.mac import KO_ALTERNATING_POLICY

        policy = KO_ALTERNATING_POLICY
        # RTS alternates with the attempt number.
        assert policy.is_directional(FrameType.RTS, retries=0)
        assert not policy.is_directional(FrameType.RTS, retries=1)
        assert policy.is_directional(FrameType.RTS, retries=2)
        # CTS omni, data/ACK beamed regardless of attempt.
        for retries in (0, 1):
            assert not policy.is_directional(FrameType.CTS, retries)
            assert policy.is_directional(FrameType.DATA, retries)
            assert policy.is_directional(FrameType.ACK, retries)

    def test_ko_alternating_pattern_switches(self):
        from repro.mac import KO_ALTERNATING_POLICY
        from repro.phy import OmniAntenna, SectorAntenna

        first = KO_ALTERNATING_POLICY.pattern_for(
            FrameType.RTS, 0.5, math.pi / 6, retries=0
        )
        retry = KO_ALTERNATING_POLICY.pattern_for(
            FrameType.RTS, 0.5, math.pi / 6, retries=1
        )
        assert isinstance(first, SectorAntenna)
        assert isinstance(retry, OmniAntenna)

    def test_nasipuri_extension_scheme(self):
        from repro.mac import NASIPURI_POLICY

        assert not NASIPURI_POLICY.is_directional(FrameType.RTS)
        assert not NASIPURI_POLICY.is_directional(FrameType.CTS)
        assert NASIPURI_POLICY.is_directional(FrameType.DATA)
        assert NASIPURI_POLICY.is_directional(FrameType.ACK)


class TestPatternFor:
    def test_omni_pattern_type(self):
        pattern = ORTS_OCTS_POLICY.pattern_for(FrameType.RTS, 1.0, math.pi / 6)
        assert isinstance(pattern, OmniAntenna)

    def test_sector_pattern_aimed_at_peer(self):
        pattern = DRTS_DCTS_POLICY.pattern_for(FrameType.RTS, 1.2, math.pi / 6)
        assert isinstance(pattern, SectorAntenna)
        assert pattern.boresight == pytest.approx(1.2)
        assert pattern.beamwidth == pytest.approx(math.pi / 6)

    def test_hybrid_cts_is_omni(self):
        assert isinstance(
            DRTS_OCTS_POLICY.pattern_for(FrameType.CTS, 0.0, math.pi / 6),
            OmniAntenna,
        )
        assert isinstance(
            DRTS_OCTS_POLICY.pattern_for(FrameType.DATA, 0.0, math.pi / 6),
            SectorAntenna,
        )

    def test_rejects_bad_beamwidth(self):
        with pytest.raises(ValueError):
            DRTS_DCTS_POLICY.pattern_for(FrameType.RTS, 0.0, 0.0)
        with pytest.raises(ValueError):
            DRTS_DCTS_POLICY.pattern_for(FrameType.RTS, 0.0, 7.0)
