"""Tests for MAC timing parameters (Table 1)."""

import pytest

from repro.dessim import microseconds
from repro.mac import DSSS_MAC, MacParameters
from repro.phy import DSSS_PHY


class TestDefaults:
    def test_table1_values(self):
        assert DSSS_MAC.slot_time_ns == microseconds(20)
        assert DSSS_MAC.sifs_ns == microseconds(10)
        assert DSSS_MAC.difs_ns == microseconds(50)
        assert DSSS_MAC.cw_min == 31
        assert DSSS_MAC.cw_max == 1023

    def test_difs_is_sifs_plus_two_slots(self):
        # The 802.11 relation DIFS = SIFS + 2 * slot holds for Table 1.
        assert DSSS_MAC.difs_ns == DSSS_MAC.sifs_ns + 2 * DSSS_MAC.slot_time_ns


class TestDerivedTimeouts:
    def test_cts_timeout_covers_reply(self):
        # SIFS + CTS air + 2 prop = 10 + 248 + 2 us; timeout adds a slot.
        assert DSSS_MAC.cts_timeout_ns(DSSS_PHY) == microseconds(10 + 248 + 2 + 20)

    def test_ack_timeout(self):
        assert DSSS_MAC.ack_timeout_ns(DSSS_PHY) == microseconds(10 + 248 + 2 + 20)

    def test_data_timeout(self):
        assert DSSS_MAC.data_timeout_ns(DSSS_PHY) == microseconds(
            10 + 6032 + 2 + 20
        )

    def test_eifs_is_sifs_ack_difs(self):
        assert DSSS_MAC.eifs_ns(DSSS_PHY) == microseconds(10 + 248 + 50)

    def test_eifs_longer_than_difs(self):
        assert DSSS_MAC.eifs_ns(DSSS_PHY) > DSSS_MAC.difs_ns


class TestValidation:
    @pytest.mark.parametrize("field", ["slot_time_ns", "sifs_ns", "difs_ns"])
    def test_rejects_non_positive_times(self, field):
        with pytest.raises(ValueError):
            MacParameters(**{field: 0})

    def test_rejects_bad_cw(self):
        with pytest.raises(ValueError):
            MacParameters(cw_min=0)
        with pytest.raises(ValueError):
            MacParameters(cw_min=63, cw_max=31)

    def test_rejects_bad_retry_limit(self):
        with pytest.raises(ValueError):
            MacParameters(retry_limit=0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DSSS_MAC.cw_min = 15  # type: ignore[misc]
