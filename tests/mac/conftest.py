"""Shared fixtures for MAC-layer tests: tiny real networks."""

import math

import pytest

from repro.dessim import RngRegistry, Simulator, Tracer
from repro.mac import DSSS_MAC, DcfMac, NeighborTable, Packet, POLICIES
from repro.phy import Channel, Position, Radio, UnitDiskPropagation


class TinyNetwork:
    """A handful of DcfMac nodes on a shared channel, fully wired."""

    def __init__(self, positions, policy_name="ORTS-OCTS", beamwidth_deg=30.0,
                 seed=1, range_m=300.0, params=DSSS_MAC, trace=True):
        self.sim = Simulator()
        self.tracer = Tracer(enabled=trace, capacity=None)
        self.channel = Channel(
            self.sim, propagation=UnitDiskPropagation(range_m=range_m)
        )
        rng = RngRegistry(seed)
        self.macs: dict[int, DcfMac] = {}
        self.radios: dict[int, Radio] = {}
        for node_id, (x, y) in positions.items():
            radio = Radio(
                self.sim, node_id, Position(x, y), self.channel, tracer=self.tracer
            )
            mac = DcfMac(
                self.sim,
                radio,
                params,
                NeighborTable(self.channel, node_id),
                POLICIES[policy_name],
                beamwidth=math.radians(beamwidth_deg),
                rng=rng.stream(f"mac-{node_id}"),
                tracer=self.tracer,
            )
            self.radios[node_id] = radio
            self.macs[node_id] = mac

    def send(self, src, dst, size=1460, at=None):
        """Enqueue one packet from src to dst."""
        now = self.sim.now if at is None else at
        packet = Packet(dst=dst, size_bytes=size, created_ns=now)
        if at is None or at == self.sim.now:
            self.macs[src].enqueue(packet)
        else:
            self.sim.schedule_at(at, self.macs[src].enqueue, packet)
        return packet

    def mac_events(self, node=None, event=None):
        return self.tracer.filter(category="mac", node=node, event=event)


@pytest.fixture
def pair():
    """Two nodes in range: 0 at origin, 1 at 200 m east."""
    return TinyNetwork({0: (0, 0), 1: (200, 0)})


@pytest.fixture
def hidden_trio():
    """0 and 2 are hidden from each other; both neighbor 1."""
    return TinyNetwork({0: (0, 0), 1: (200, 0), 2: (400, 0)})
