"""Tests for frame formats and Table-1 air-time arithmetic."""

import pytest

from repro.dessim import microseconds
from repro.phy import DSSS_PHY, FRAME_SIZES, Frame, FrameType, PhyParameters


class TestFrameSizes:
    def test_table1_sizes(self):
        assert FRAME_SIZES[FrameType.RTS] == 20
        assert FRAME_SIZES[FrameType.CTS] == 14
        assert FRAME_SIZES[FrameType.DATA] == 1460
        assert FRAME_SIZES[FrameType.ACK] == 14


class TestPhyParameters:
    def test_bit_time_at_2mbps(self):
        assert DSSS_PHY.bit_time_ns == 500

    def test_sync_time(self):
        assert DSSS_PHY.sync_time_ns == microseconds(192)

    def test_rts_airtime(self):
        # 192 us sync + 20 B * 8 * 500 ns = 192 + 80 us = 272 us.
        assert DSSS_PHY.frame_airtime_ns(FrameType.RTS) == microseconds(272)

    def test_cts_airtime(self):
        # 192 us + 14 B * 8 * 500 ns = 192 + 56 = 248 us.
        assert DSSS_PHY.frame_airtime_ns(FrameType.CTS) == microseconds(248)

    def test_data_airtime(self):
        # 192 us + 1460 B * 8 * 500 ns = 192 + 5840 = 6032 us.
        assert DSSS_PHY.frame_airtime_ns(FrameType.DATA) == microseconds(6032)

    def test_ack_airtime_equals_cts(self):
        assert DSSS_PHY.frame_airtime_ns(FrameType.ACK) == DSSS_PHY.frame_airtime_ns(
            FrameType.CTS
        )

    def test_airtime_rejects_non_positive(self):
        with pytest.raises(ValueError):
            DSSS_PHY.airtime_ns(0)

    def test_rejects_non_divisible_bitrate(self):
        with pytest.raises(ValueError):
            PhyParameters(bitrate_bps=3_000_000)

    def test_rejects_negative_times(self):
        with pytest.raises(ValueError):
            PhyParameters(sync_time_ns=-1)
        with pytest.raises(ValueError):
            PhyParameters(propagation_delay_ns=-1)

    def test_rejects_non_positive_bitrate(self):
        with pytest.raises(ValueError):
            PhyParameters(bitrate_bps=0)


class TestFrame:
    def test_control_flag(self):
        rts = Frame(FrameType.RTS, src=0, dst=1, size_bytes=20)
        data = Frame(FrameType.DATA, src=0, dst=1, size_bytes=1460)
        assert rts.is_control
        assert not data.is_control

    def test_rejects_self_addressed(self):
        with pytest.raises(ValueError):
            Frame(FrameType.RTS, src=3, dst=3, size_bytes=20)

    def test_rejects_empty_frame(self):
        with pytest.raises(ValueError):
            Frame(FrameType.RTS, src=0, dst=1, size_bytes=0)

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Frame(FrameType.RTS, src=0, dst=1, size_bytes=20, duration_ns=-5)

    def test_frozen(self):
        frame = Frame(FrameType.RTS, src=0, dst=1, size_bytes=20)
        with pytest.raises(AttributeError):
            frame.dst = 2  # type: ignore[misc]
