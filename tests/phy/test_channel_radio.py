"""Integration tests for the channel + radio pair.

Node layout used throughout (range 300 m)::

    a(0,0) --- b(200,0) --- c(400,0)        a-b and b-c hear each other,
                                            a-c are hidden from each other.
"""

import math

import pytest

from repro.dessim import microseconds
from repro.phy import (
    DSSS_PHY,
    Frame,
    FrameType,
    OmniAntenna,
    RadioError,
    SectorAntenna,
)

from .conftest import make_node


def rts(src, dst, **kw):
    return Frame(FrameType.RTS, src=src, dst=dst, size_bytes=20, **kw)


def data(src, dst, **kw):
    return Frame(FrameType.DATA, src=src, dst=dst, size_bytes=1460, **kw)


RTS_AIR = DSSS_PHY.frame_airtime_ns(FrameType.RTS)
PROP = microseconds(1)


class TestDelivery:
    def test_omni_frame_delivered_to_neighbor(self, sim, channel):
        a, _ = make_node(sim, channel, 0, 0, 0)
        _b, mac_b = make_node(sim, channel, 1, 200, 0)
        frame = rts(0, 1)
        a.transmit(frame, OmniAntenna())
        sim.run()
        assert [f for _, f in mac_b.received] == [frame]

    def test_delivery_time_is_prop_plus_airtime(self, sim, channel):
        a, _ = make_node(sim, channel, 0, 0, 0)
        _b, mac_b = make_node(sim, channel, 1, 200, 0)
        a.transmit(rts(0, 1))
        sim.run()
        assert mac_b.received[0][0] == PROP + RTS_AIR

    def test_out_of_range_node_hears_nothing(self, sim, channel):
        a, _ = make_node(sim, channel, 0, 0, 0)
        _c, mac_c = make_node(sim, channel, 2, 400, 0)
        a.transmit(rts(0, 2))
        sim.run()
        assert mac_c.received == []
        assert mac_c.busy_edges == []

    def test_overhearing_third_party(self, sim, channel):
        # b transmits omni; both a and c hear it.
        a, mac_a = make_node(sim, channel, 0, 0, 0)
        b, _ = make_node(sim, channel, 1, 200, 0)
        _c, mac_c = make_node(sim, channel, 2, 400, 0)
        b.transmit(rts(1, 0))
        sim.run()
        assert len(mac_a.received) == 1
        assert len(mac_c.received) == 1
        assert a.frames_received == 1

    def test_transmitter_gets_completion(self, sim, channel):
        a, mac_a = make_node(sim, channel, 0, 0, 0)
        make_node(sim, channel, 1, 200, 0)
        frame = rts(0, 1)
        a.transmit(frame)
        sim.run()
        assert mac_a.tx_completions == [(RTS_AIR, frame)]


class TestDirectionality:
    def test_beam_toward_receiver_delivers(self, sim, channel):
        a, _ = make_node(sim, channel, 0, 0, 0)
        _b, mac_b = make_node(sim, channel, 1, 200, 0)
        beam = SectorAntenna(boresight=0.0, beamwidth=math.radians(30))
        a.transmit(rts(0, 1), beam)
        sim.run()
        assert len(mac_b.received) == 1

    def test_beam_away_from_receiver_silent(self, sim, channel):
        a, _ = make_node(sim, channel, 0, 0, 0)
        _b, mac_b = make_node(sim, channel, 1, 200, 0)
        beam = SectorAntenna(boresight=math.pi, beamwidth=math.radians(30))
        a.transmit(rts(0, 1), beam)
        sim.run()
        assert mac_b.received == []
        assert mac_b.busy_edges == []

    def test_side_node_outside_beam_not_disturbed(self, sim, channel):
        # b is east; s is north. A narrow eastward beam must not touch s.
        a, _ = make_node(sim, channel, 0, 0, 0)
        _b, mac_b = make_node(sim, channel, 1, 200, 0)
        _s, mac_s = make_node(sim, channel, 2, 0, 200)
        a.transmit(rts(0, 1), SectorAntenna(0.0, math.radians(30)))
        sim.run()
        assert len(mac_b.received) == 1
        assert mac_s.received == []
        assert mac_s.busy_edges == []

    def test_wide_beam_covers_side_node(self, sim, channel):
        a, _ = make_node(sim, channel, 0, 0, 0)
        make_node(sim, channel, 1, 200, 0)
        _s, mac_s = make_node(sim, channel, 2, 0, 200)
        # 190 deg beam centered east: north (90 deg) is inside.
        a.transmit(rts(0, 1), SectorAntenna(0.0, math.radians(190)))
        sim.run()
        assert len(mac_s.received) == 1


class TestCollisions:
    def test_overlap_corrupts_both(self, sim, channel):
        # a and c are hidden from each other; both transmit at b.
        a, _ = make_node(sim, channel, 0, 0, 0)
        _b, mac_b = make_node(sim, channel, 1, 200, 0)
        c, _ = make_node(sim, channel, 2, 400, 0)
        a.transmit(rts(0, 1))
        c.transmit(rts(2, 1))
        sim.run()
        assert mac_b.received == []
        assert len(mac_b.failures) >= 1

    def test_late_collider_ruins_long_reception(self, sim, channel):
        # c starts an RTS in the middle of a's long DATA frame.
        a, _ = make_node(sim, channel, 0, 0, 0)
        _b, mac_b = make_node(sim, channel, 1, 200, 0)
        c, _ = make_node(sim, channel, 2, 400, 0)
        a.transmit(data(0, 1))
        sim.schedule(microseconds(1000), c.transmit, rts(2, 1))
        sim.run()
        assert mac_b.received == []
        assert len(mac_b.failures) >= 1

    def test_sequential_frames_both_received(self, sim, channel):
        a, _ = make_node(sim, channel, 0, 0, 0)
        _b, mac_b = make_node(sim, channel, 1, 200, 0)
        c, _ = make_node(sim, channel, 2, 400, 0)
        a.transmit(rts(0, 1))
        # c starts well after a's frame (and its propagation) ends.
        sim.schedule(RTS_AIR + 10 * PROP, c.transmit, rts(2, 1))
        sim.run()
        assert len(mac_b.received) == 2

    def test_no_capture_even_with_late_weak_overlap(self, sim, channel):
        # Second signal arriving 1 ns before the first ends still kills it.
        a, _ = make_node(sim, channel, 0, 0, 0)
        _b, mac_b = make_node(sim, channel, 1, 200, 0)
        c, _ = make_node(sim, channel, 2, 400, 0)
        a.transmit(rts(0, 1))
        sim.schedule(RTS_AIR - 1, c.transmit, rts(2, 1))
        sim.run()
        assert all(f.src != 0 for _, f in mac_b.received)

    def test_collision_counters(self, sim, channel):
        a, _ = make_node(sim, channel, 0, 0, 0)
        b, _mac_b = make_node(sim, channel, 1, 200, 0)
        c, _ = make_node(sim, channel, 2, 400, 0)
        a.transmit(rts(0, 1))
        c.transmit(rts(2, 1))
        sim.run()
        assert b.receptions_corrupted >= 1
        assert b.frames_received == 0


class TestDeafness:
    def test_transmitting_node_cannot_receive(self, sim, channel):
        # b transmits a long DATA while a sends it an RTS: b misses it.
        a, _ = make_node(sim, channel, 0, 0, 0)
        b, mac_b = make_node(sim, channel, 1, 200, 0)
        b.transmit(data(1, 0))
        sim.schedule(microseconds(100), a.transmit, rts(0, 1))
        sim.run()
        assert mac_b.received == []
        assert b.receptions_missed == 1

    def test_tx_while_tx_raises(self, sim, channel):
        a, _ = make_node(sim, channel, 0, 0, 0)
        make_node(sim, channel, 1, 200, 0)
        a.transmit(rts(0, 1))
        with pytest.raises(RadioError):
            a.transmit(rts(0, 1))

    def test_tx_aborts_reception_in_progress(self, sim, channel):
        # a starts receiving b's DATA, then transmits: the DATA is lost.
        a, mac_a = make_node(sim, channel, 0, 0, 0)
        b, _ = make_node(sim, channel, 1, 200, 0)
        b.transmit(data(1, 0))
        sim.schedule(microseconds(500), a.transmit, rts(0, 1))
        sim.run()
        assert all(f.ftype is not FrameType.DATA for _, f in mac_a.received)

    def test_missed_signal_still_blocks_carrier_after_tx(self, sim, channel):
        # b's long DATA outlives a's short RTS; after a finishes its TX
        # the leftover energy keeps a's carrier busy.
        a, mac_a = make_node(sim, channel, 0, 0, 0)
        b, _ = make_node(sim, channel, 1, 200, 0)
        b.transmit(data(1, 0))
        sim.schedule(microseconds(100), a.transmit, rts(0, 1))
        sim.run(until=microseconds(100) + RTS_AIR + 1)
        assert a.carrier_busy  # b's frame is still in the air
        sim.run()
        assert not a.carrier_busy


class TestCarrierSense:
    def test_busy_idle_edges(self, sim, channel):
        a, _ = make_node(sim, channel, 0, 0, 0)
        _b, mac_b = make_node(sim, channel, 1, 200, 0)
        a.transmit(rts(0, 1))
        sim.run()
        assert mac_b.busy_edges == [PROP]
        assert mac_b.idle_edges == [PROP + RTS_AIR]

    def test_own_transmission_is_busy(self, sim, channel):
        a, mac_a = make_node(sim, channel, 0, 0, 0)
        make_node(sim, channel, 1, 200, 0)
        a.transmit(rts(0, 1))
        assert a.carrier_busy
        sim.run()
        assert not a.carrier_busy
        assert mac_a.busy_edges == [0]
        assert mac_a.idle_edges == [RTS_AIR]

    def test_overlapping_signals_single_busy_period(self, sim, channel):
        # Two overlapping frames produce one busy edge and one idle edge.
        a, _ = make_node(sim, channel, 0, 0, 0)
        _b, mac_b = make_node(sim, channel, 1, 200, 0)
        c, _ = make_node(sim, channel, 2, 400, 0)
        a.transmit(rts(0, 1))
        sim.schedule(microseconds(50), c.transmit, rts(2, 1))
        sim.run()
        assert len(mac_b.busy_edges) == 1
        assert len(mac_b.idle_edges) == 1
        assert mac_b.idle_edges[0] == microseconds(50) + PROP + RTS_AIR


class TestChannelBookkeeping:
    def test_stats_record_transmissions(self, sim, channel):
        a, _ = make_node(sim, channel, 0, 0, 0)
        make_node(sim, channel, 1, 200, 0)
        a.transmit(rts(0, 1))
        sim.run()
        assert channel.stats.transmissions == 1
        assert channel.stats.frames_by_type[FrameType.RTS] == 1
        assert channel.stats.airtime_ns == RTS_AIR

    def test_stats_publish_into_registry(self, sim, channel):
        from repro.obs import MetricsRegistry

        a, _ = make_node(sim, channel, 0, 0, 0)
        make_node(sim, channel, 1, 200, 0)
        a.transmit(rts(0, 1))
        sim.run()
        metrics = MetricsRegistry()
        channel.stats.publish(metrics)
        assert metrics.counter("phy.transmissions").value == 1
        assert metrics.counter("phy.airtime_ns").value == RTS_AIR
        assert metrics.counter("phy.frames.rts").value == 1
        assert metrics.counter("phy.airtime.rts_ns").value == RTS_AIR
        # Untransmitted types publish explicit zeros: stable snapshot keys.
        assert metrics.counter("phy.frames.data").value == 0

    def test_duplicate_node_id_rejected(self, sim, channel):
        make_node(sim, channel, 0, 0, 0)
        with pytest.raises(ValueError):
            make_node(sim, channel, 0, 10, 10)

    def test_neighbors_of(self, sim, channel):
        make_node(sim, channel, 0, 0, 0)
        make_node(sim, channel, 1, 200, 0)
        make_node(sim, channel, 2, 400, 0)
        assert channel.neighbors_of(0) == [1]
        assert sorted(channel.neighbors_of(1)) == [0, 2]

    def test_audible_nodes_respects_beam(self, sim, channel):
        a, _ = make_node(sim, channel, 0, 0, 0)
        make_node(sim, channel, 1, 200, 0)
        make_node(sim, channel, 2, 0, 200)
        east = SectorAntenna(0.0, math.radians(30))
        assert channel.audible_nodes(a, east) == [1]
        assert sorted(channel.audible_nodes(a, OmniAntenna())) == [1, 2]

    def test_mac_required_before_events(self, sim, channel):
        from repro.phy import Position, Radio

        radio = Radio(sim, 5, Position(0, 0), channel)
        with pytest.raises(RadioError):
            _ = radio.mac
