"""Shared fixtures for PHY-layer tests."""

from dataclasses import dataclass, field

import pytest

from repro.dessim import Simulator
from repro.phy import Channel, Frame, Position, Radio, UnitDiskPropagation


@dataclass
class RecordingMac:
    """A MAC stub that records every radio event with its timestamp."""

    sim: Simulator
    received: list = field(default_factory=list)
    failures: list = field(default_factory=list)
    busy_edges: list = field(default_factory=list)
    idle_edges: list = field(default_factory=list)
    tx_completions: list = field(default_factory=list)

    def on_frame_received(self, frame: Frame) -> None:
        self.received.append((self.sim.now, frame))

    def on_reception_failed(self) -> None:
        self.failures.append(self.sim.now)

    def on_medium_busy(self) -> None:
        self.busy_edges.append(self.sim.now)

    def on_medium_idle(self) -> None:
        self.idle_edges.append(self.sim.now)

    def on_transmit_complete(self, frame: Frame) -> None:
        self.tx_completions.append((self.sim.now, frame))


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def channel(sim):
    # Range 300 m, Table-1 PHY.
    return Channel(sim, propagation=UnitDiskPropagation(range_m=300.0))


def make_node(sim, channel, node_id, x, y):
    """Create a radio + recording MAC at the given position."""
    radio = Radio(sim, node_id, Position(x, y), channel)
    mac = RecordingMac(sim)
    radio.set_mac(mac)
    return radio, mac
