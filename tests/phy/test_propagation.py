"""Tests for positions and unit-disk propagation."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.dessim import microseconds
from repro.phy import Position, UnitDiskPropagation

coords = st.floats(min_value=-1e4, max_value=1e4)


class TestPosition:
    def test_distance(self):
        assert Position(0, 0).distance_to(Position(3, 4)) == pytest.approx(5.0)

    def test_distance_symmetric(self):
        a, b = Position(1, 2), Position(-3, 7)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_bearing_east(self):
        assert Position(0, 0).bearing_to(Position(10, 0)) == pytest.approx(0.0)

    def test_bearing_north(self):
        assert Position(0, 0).bearing_to(Position(0, 10)) == pytest.approx(
            math.pi / 2
        )

    def test_bearing_west(self):
        assert Position(0, 0).bearing_to(Position(-10, 0)) == pytest.approx(math.pi)

    def test_bearing_reverse_is_opposite(self):
        a, b = Position(0, 0), Position(3, 4)
        forward = a.bearing_to(b)
        backward = b.bearing_to(a)
        assert abs(abs(forward - backward) - math.pi) < 1e-9

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            Position(float("inf"), 0.0)
        with pytest.raises(ValueError):
            Position(0.0, float("nan"))

    @given(coords, coords, coords, coords)
    def test_triangle_inequality(self, x1, y1, x2, y2):
        origin = Position(0, 0)
        a = Position(x1, y1)
        b = Position(x2, y2)
        assert origin.distance_to(b) <= origin.distance_to(a) + a.distance_to(b) + 1e-6


class TestUnitDiskPropagation:
    def test_within_range(self):
        prop = UnitDiskPropagation(range_m=100.0)
        assert prop.reaches(Position(0, 0), Position(60, 80))  # dist 100

    def test_range_edge_inclusive(self):
        prop = UnitDiskPropagation(range_m=100.0)
        assert prop.reaches(Position(0, 0), Position(100, 0))

    def test_out_of_range(self):
        prop = UnitDiskPropagation(range_m=100.0)
        assert not prop.reaches(Position(0, 0), Position(100.1, 0))

    def test_delay_is_constant(self):
        prop = UnitDiskPropagation(range_m=300.0, delay_ns=microseconds(1))
        near = prop.delay(Position(0, 0), Position(1, 0))
        far = prop.delay(Position(0, 0), Position(299, 0))
        assert near == far == microseconds(1)

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            UnitDiskPropagation(range_m=0.0)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            UnitDiskPropagation(delay_ns=-1)

    @given(coords, coords)
    def test_reaches_is_symmetric(self, x, y):
        prop = UnitDiskPropagation(range_m=300.0)
        a, b = Position(0, 0), Position(x, y)
        assert prop.reaches(a, b) == prop.reaches(b, a)
