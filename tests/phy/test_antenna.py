"""Tests for antenna patterns and angle helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.phy import OmniAntenna, SectorAntenna, angular_distance, normalize_angle


class TestNormalizeAngle:
    def test_identity_in_range(self):
        assert normalize_angle(0.5) == pytest.approx(0.5)

    def test_wraps_positive(self):
        assert normalize_angle(2 * math.pi + 0.3) == pytest.approx(0.3)

    def test_wraps_negative(self):
        assert normalize_angle(-2 * math.pi - 0.3) == pytest.approx(-0.3)

    def test_pi_maps_to_pi(self):
        assert normalize_angle(math.pi) == pytest.approx(math.pi)

    def test_minus_pi_maps_to_pi(self):
        assert normalize_angle(-math.pi) == pytest.approx(math.pi)

    @given(st.floats(min_value=-100.0, max_value=100.0))
    def test_result_in_half_open_interval(self, angle):
        wrapped = normalize_angle(angle)
        assert -math.pi < wrapped <= math.pi + 1e-12

    @given(st.floats(min_value=-50.0, max_value=50.0))
    def test_equivalent_modulo_two_pi(self, angle):
        wrapped = normalize_angle(angle)
        assert math.cos(wrapped) == pytest.approx(math.cos(angle), abs=1e-9)
        assert math.sin(wrapped) == pytest.approx(math.sin(angle), abs=1e-9)


class TestAngularDistance:
    def test_symmetric(self):
        assert angular_distance(0.2, 1.5) == pytest.approx(
            angular_distance(1.5, 0.2)
        )

    def test_wraps_around(self):
        # 350 deg and 10 deg are 20 deg apart.
        a, b = math.radians(350), math.radians(10)
        assert angular_distance(a, b) == pytest.approx(math.radians(20))

    @given(
        st.floats(min_value=-10.0, max_value=10.0),
        st.floats(min_value=-10.0, max_value=10.0),
    )
    def test_bounded_by_pi(self, a, b):
        assert 0.0 <= angular_distance(a, b) <= math.pi + 1e-12


class TestOmniAntenna:
    def test_covers_everything(self):
        omni = OmniAntenna()
        for bearing in (-math.pi, -1.0, 0.0, 2.0, math.pi):
            assert omni.covers(bearing)

    def test_is_omni(self):
        assert OmniAntenna().is_omni

    def test_beamwidth_full_circle(self):
        assert OmniAntenna().beamwidth == pytest.approx(2 * math.pi)


class TestSectorAntenna:
    def test_covers_boresight(self):
        beam = SectorAntenna(boresight=1.0, beamwidth=math.radians(30))
        assert beam.covers(1.0)

    def test_edge_inclusive(self):
        beam = SectorAntenna(boresight=0.0, beamwidth=math.radians(30))
        assert beam.covers(math.radians(15))
        assert beam.covers(-math.radians(15))

    def test_outside_not_covered(self):
        beam = SectorAntenna(boresight=0.0, beamwidth=math.radians(30))
        assert not beam.covers(math.radians(16))
        assert not beam.covers(math.pi)

    def test_wraps_across_pi(self):
        beam = SectorAntenna(boresight=math.pi, beamwidth=math.radians(40))
        assert beam.covers(math.pi - math.radians(10))
        assert beam.covers(-math.pi + math.radians(10))
        assert not beam.covers(0.0)

    def test_full_circle_is_omni(self):
        beam = SectorAntenna(boresight=0.3, beamwidth=2 * math.pi)
        assert beam.is_omni
        for bearing in (-3.0, 0.0, 3.0):
            assert beam.covers(bearing)

    def test_narrow_beam_not_omni(self):
        assert not SectorAntenna(boresight=0.0, beamwidth=0.1).is_omni

    def test_rejects_bad_beamwidth(self):
        with pytest.raises(ValueError):
            SectorAntenna(boresight=0.0, beamwidth=0.0)
        with pytest.raises(ValueError):
            SectorAntenna(boresight=0.0, beamwidth=7.0)

    def test_rejects_non_finite_boresight(self):
        with pytest.raises(ValueError):
            SectorAntenna(boresight=float("nan"), beamwidth=1.0)

    @given(
        st.floats(min_value=-math.pi, max_value=math.pi),
        st.floats(min_value=0.05, max_value=2 * math.pi),
        st.floats(min_value=-math.pi, max_value=math.pi),
    )
    def test_coverage_matches_angular_distance(self, boresight, width, bearing):
        beam = SectorAntenna(boresight=boresight, beamwidth=width)
        expected = angular_distance(bearing, boresight) <= width / 2
        assert beam.covers(bearing) == expected
