"""Tests for the SINR/capture reception model (phy/reception/sinr.py).

Deterministic geometry, zero shadowing unless a test wants it:
receiver at the origin, a *close* sender at 50 m and a *far* one at
290 m.  Under the default budget (20 dBm, 40 dB reference loss at 1 m,
exponent 3.0) the close signal lands at about -71 dBm and the far one
at -93.9 dBm — just above the -94 dBm sensitivity floor, and ~23 dB
below the close signal, comfortably past the 10 dB capture threshold.
"""

import math

import pytest

from repro.dessim import Simulator
from repro.dessim.rng import RngRegistry
from repro.phy import (
    Channel,
    Frame,
    FrameType,
    PhyConfig,
    PhyParameters,
    Position,
    Radio,
    SinrCaptureReception,
    UnitDiskPropagation,
    UnitDiskReception,
)
from repro.phy.reception import dbm_to_mw, mw_to_dbm

from .conftest import RecordingMac


def sinr_model(seed=0, **knobs):
    knobs.setdefault("shadowing_sigma_db", 0.0)
    return SinrCaptureReception(
        UnitDiskPropagation(range_m=300.0), RngRegistry(seed), **knobs
    )


def make_net(reception):
    sim = Simulator()
    channel = Channel(sim, reception=reception)

    def node(nid, x, y):
        radio = Radio(sim, nid, Position(x, y), channel)
        mac = RecordingMac(sim)
        radio.set_mac(mac)
        return radio, mac

    return sim, channel, node


def data(src, dst):
    return Frame(FrameType.DATA, src=src, dst=dst, size_bytes=1460)


def rts(src, dst):
    return Frame(FrameType.RTS, src=src, dst=dst, size_bytes=20)


class TestLinkBudget:
    def test_log_distance_path_loss(self):
        model = sinr_model()
        # 20 dBm - (40 + 30*log10(50)) at 50 m.
        expected = 20.0 - (40.0 + 30.0 * math.log10(50.0))
        got = model.rx_power_dbm(1, 2, Position(0, 0), Position(50, 0))
        assert got == pytest.approx(expected)

    def test_distance_clamped_to_reference(self):
        model = sinr_model()
        at_zero = model.rx_power_dbm(1, 2, Position(0, 0), Position(0, 0))
        at_ref = model.rx_power_dbm(1, 2, Position(0, 0), Position(1, 0))
        assert at_zero == at_ref == pytest.approx(20.0 - 40.0)

    def test_sensitivity_cut(self):
        model = sinr_model()
        # -93.9 dBm at 290 m clears the -94 dBm floor; 300 m does not.
        assert model.link_budget(1, 2, Position(0, 0), Position(290, 0))[0]
        assert not model.link_budget(1, 2, Position(0, 0), Position(300, 0))[0]

    def test_budget_power_is_linear_milliwatts(self):
        model = sinr_model()
        audible, power_mw = model.link_budget(
            1, 2, Position(0, 0), Position(50, 0)
        )
        assert audible
        assert mw_to_dbm(power_mw) == pytest.approx(
            model.rx_power_dbm(1, 2, Position(0, 0), Position(50, 0))
        )

    def test_dbm_mw_round_trip(self):
        assert mw_to_dbm(dbm_to_mw(-71.5)) == pytest.approx(-71.5)
        with pytest.raises(ValueError):
            mw_to_dbm(0.0)

    @pytest.mark.parametrize(
        "knobs",
        [
            {"pathloss_exponent": 0.0},
            {"reference_distance_m": 0.0},
            {"shadowing_sigma_db": -1.0},
            {"sensitivity_dbm": -110.0, "noise_dbm": -104.0},
        ],
    )
    def test_invalid_knobs_rejected(self, knobs):
        with pytest.raises(ValueError):
            SinrCaptureReception(
                UnitDiskPropagation(range_m=300.0), RngRegistry(0), **knobs
            )


class TestShadowingDeterminism:
    def test_same_seed_same_shadowing(self):
        a = sinr_model(seed=7, shadowing_sigma_db=6.0)
        b = sinr_model(seed=7, shadowing_sigma_db=6.0)
        assert a.shadowing_db(3, 4) == b.shadowing_db(3, 4)

    def test_memoized_and_query_order_independent(self):
        a = sinr_model(seed=7, shadowing_sigma_db=6.0)
        first = a.shadowing_db(1, 2)
        assert a.shadowing_db(1, 2) == first
        # Querying the reverse pair first must not shift the draw.
        b = sinr_model(seed=7, shadowing_sigma_db=6.0)
        b.shadowing_db(2, 1)
        assert b.shadowing_db(1, 2) == first

    def test_zero_sigma_zero_shadow(self):
        assert sinr_model(seed=7).shadowing_db(1, 2) == 0.0

    def test_directions_shadow_independently(self):
        model = sinr_model(seed=7, shadowing_sigma_db=6.0)
        assert model.shadowing_db(1, 2) != model.shadowing_db(2, 1)


class TestAsymmetricLink:
    """The classic hidden-terminal ingredient the unit-disk model
    cannot express: A hears B, B cannot hear A."""

    # Pinned by search: under registry seed 1, the 280 m pair (1, 2)
    # shadows +2.6 dB forward and -6.8 dB backward across the -94 dBm
    # floor.
    SEED = 1
    DISTANCE = 280.0

    def model(self):
        return SinrCaptureReception(
            UnitDiskPropagation(range_m=300.0), RngRegistry(self.SEED)
        )

    def test_budget_is_directional(self):
        model = self.model()
        a, b = Position(0, 0), Position(self.DISTANCE, 0)
        assert model.link_budget(1, 2, a, b)[0]
        assert not model.link_budget(2, 1, b, a)[0]

    def test_frames_flow_one_way_only(self):
        sim, _ch, node = make_net(self.model())
        a, mac_a = node(1, 0, 0)
        b, mac_b = node(2, self.DISTANCE, 0)
        a.transmit(data(1, 2))
        sim.run()
        assert [f.src for _, f in mac_b.received] == [1]
        b.transmit(data(2, 1))
        sim.run()
        # The reverse signal is below sensitivity: A never even hears
        # a busy edge, let alone the frame.
        assert mac_a.received == []
        assert mac_a.failures == []


class TestCaptureRescue:
    """An overlap the unit-disk model corrupts is delivered under SINR."""

    def test_strong_frame_survives_weak_overlap(self):
        sim, channel, node = make_net(sinr_model())
        _rx, mac_rx = node(0, 0, 0)
        close, _ = node(1, 50, 0)
        far, _ = node(2, 290, 0)
        close.transmit(data(1, 0))
        sim.schedule(1_000_000, far.transmit, rts(2, 0))
        sim.run()
        assert [f.ftype for _, f in mac_rx.received] == [FrameType.DATA]
        assert channel.radios[0].receiver.captures == 1

    def test_same_overlap_corrupts_under_unit_disk(self):
        reception = UnitDiskReception(
            UnitDiskPropagation(range_m=300.0), capture_threshold=None
        )
        sim, channel, node = make_net(reception)
        _rx, mac_rx = node(0, 0, 0)
        close, _ = node(1, 50, 0)
        far, _ = node(2, 290, 0)
        close.transmit(data(1, 0))
        sim.schedule(1_000_000, far.transmit, rts(2, 0))
        sim.run()
        assert mac_rx.received == []
        assert channel.radios[0].receiver.captures == 0

    def test_weak_frame_dies_mid_air(self):
        sim, channel, node = make_net(sinr_model())
        _rx, mac_rx = node(0, 0, 0)
        far, _ = node(2, 290, 0)
        close, _ = node(1, 50, 0)
        far.transmit(data(2, 0))
        sim.schedule(1_000_000, close.transmit, rts(1, 0))
        sim.run()
        # The far DATA was being decoded, then the close interferer
        # crushed its SINR mid-air: a reception failure, counted.
        assert all(f.ftype is not FrameType.DATA for _, f in mac_rx.received)
        assert channel.radios[0].receiver.sinr_drops == 1
        assert mac_rx.failures

    def test_sub_threshold_signal_never_locks(self):
        # 20 dB capture over a -104 dBm floor needs -84 dBm; 290 m
        # delivers only -93.9 dBm, so the receiver never locks on.
        sim, channel, node = make_net(sinr_model(capture_threshold_db=20.0))
        _rx, mac_rx = node(0, 0, 0)
        far, _ = node(2, 290, 0)
        far.transmit(data(2, 0))
        sim.run()
        assert mac_rx.received == []
        assert mac_rx.failures == []


class TestPhyConfig:
    def test_default_is_unit_disk(self):
        model = PhyConfig().build(
            UnitDiskPropagation(range_m=300.0), PhyParameters(), RngRegistry(0)
        )
        assert isinstance(model, UnitDiskReception)
        assert model.capture_threshold is None

    def test_sinr_model_gets_all_knobs(self):
        cfg = PhyConfig(model="sinr", capture_threshold_db=3.0,
                        shadowing_sigma_db=0.0)
        model = cfg.build(
            UnitDiskPropagation(range_m=300.0), PhyParameters(), RngRegistry(0)
        )
        assert isinstance(model, SinrCaptureReception)
        assert model.capture_threshold_db == 3.0
        assert model.shadowing_sigma_db == 0.0

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown reception model"):
            PhyConfig(model="raytrace")
