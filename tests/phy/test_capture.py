"""Tests for the SNR-capture reception model (GloMoSim-style).

Geometry used: receiver at the origin; a *close* sender at 50 m and a
*far* interferer at 290 m.  With the d**-2 path loss the power ratio is
(290/50)^2 ~= 33.6, comfortably above a 10 dB (10x) threshold, so the
close signal must survive the far one — and vice versa must not.
"""

import pytest

from repro.dessim import Simulator, microseconds
from repro.phy import (
    Channel,
    Frame,
    FrameType,
    OmniAntenna,
    PhyParameters,
    Position,
    Radio,
    UnitDiskPropagation,
    UnitDiskReception,
)

from .conftest import RecordingMac


def make_capture_net(threshold=10.0):
    sim = Simulator()
    channel = Channel(
        sim,
        phy=PhyParameters(capture_threshold=threshold),
        propagation=UnitDiskPropagation(range_m=300.0),
    )

    def node(nid, x, y):
        radio = Radio(sim, nid, Position(x, y), channel)
        mac = RecordingMac(sim)
        radio.set_mac(mac)
        return radio, mac

    return sim, channel, node


def data(src, dst):
    return Frame(FrameType.DATA, src=src, dst=dst, size_bytes=1460)


def rts(src, dst):
    return Frame(FrameType.RTS, src=src, dst=dst, size_bytes=20)


class TestOngoingReceptionSurvival:
    def test_strong_signal_survives_weak_interferer(self):
        sim, _ch, node = make_capture_net()
        _rx, mac_rx = node(0, 0, 0)
        close, _ = node(1, 50, 0)
        far, _ = node(2, 290, 0)
        close.transmit(data(1, 0))
        sim.schedule(microseconds(1000), far.transmit, rts(2, 0))
        sim.run()
        received = [f.ftype for _, f in mac_rx.received]
        assert FrameType.DATA in received

    def test_weak_signal_killed_by_strong_interferer(self):
        sim, _ch, node = make_capture_net()
        _rx, mac_rx = node(0, 0, 0)
        far, _ = node(2, 290, 0)
        close, _ = node(1, 50, 0)
        far.transmit(data(2, 0))
        sim.schedule(microseconds(1000), close.transmit, rts(1, 0))
        sim.run()
        assert all(f.ftype is not FrameType.DATA for _, f in mac_rx.received)

    def test_comparable_powers_destroy_each_other(self):
        # 200 m vs 210 m: power ratio ~1.1, far below 10x.
        sim, _ch, node = make_capture_net()
        _rx, mac_rx = node(0, 0, 0)
        a, _ = node(1, 200, 0)
        b, _ = node(2, -210, 0)
        a.transmit(rts(1, 0))
        sim.schedule(microseconds(50), b.transmit, rts(2, 0))
        sim.run()
        assert mac_rx.received == []

    def test_no_capture_mode_still_destroys_everything(self):
        sim, _ch, node = make_capture_net(threshold=None)
        _rx, mac_rx = node(0, 0, 0)
        close, _ = node(1, 50, 0)
        far, _ = node(2, 290, 0)
        close.transmit(data(1, 0))
        sim.schedule(microseconds(1000), far.transmit, rts(2, 0))
        sim.run()
        assert mac_rx.received == []


class TestCaptureOverGarbage:
    def test_strong_newcomer_captured_over_corrupted_background(self):
        # Two comparable signals collide; then a much stronger one
        # arrives and should be decoded over the garbage.
        sim, _ch, node = make_capture_net()
        _rx, mac_rx = node(0, 0, 0)
        a, _ = node(1, 250, 0)
        b, _ = node(2, -260, 0)
        strong, _ = node(3, 30, 30)
        a.transmit(data(1, 0))
        sim.schedule(microseconds(10), b.transmit, data(2, 0))
        sim.schedule(microseconds(500), strong.transmit, rts(3, 0))
        sim.run()
        received = [f.src for _, f in mac_rx.received]
        assert 3 in received

    def test_weak_newcomer_not_captured_over_background(self):
        sim, _ch, node = make_capture_net()
        _rx, mac_rx = node(0, 0, 0)
        a, _ = node(1, 250, 0)
        b, _ = node(2, -260, 0)
        weak, _ = node(3, 240, 100)
        a.transmit(data(1, 0))
        sim.schedule(microseconds(10), b.transmit, data(2, 0))
        sim.schedule(microseconds(500), weak.transmit, rts(3, 0))
        sim.run()
        assert mac_rx.received == []


class TestRxPowerModel:
    """The relative ``d**-alpha`` power law (now on UnitDiskReception)."""

    @staticmethod
    def power(model, x):
        return model.link_budget(0, 1, Position(0, 0), Position(x, 0))[1]

    def test_inverse_square(self):
        model = UnitDiskReception(UnitDiskPropagation(range_m=300.0))
        assert self.power(model, 100) / self.power(model, 200) == pytest.approx(4.0)

    def test_close_range_clamped(self):
        model = UnitDiskReception(UnitDiskPropagation(range_m=300.0))
        assert self.power(model, 0.5) == pytest.approx(1.0)

    def test_custom_exponent(self):
        model = UnitDiskReception(
            UnitDiskPropagation(range_m=300.0), pathloss_exponent=4.0
        )
        assert self.power(model, 100) / self.power(model, 200) == pytest.approx(16.0)

    def test_rejects_bad_exponent(self):
        with pytest.raises(ValueError):
            UnitDiskReception(UnitDiskPropagation(), pathloss_exponent=0.0)

    def test_capture_threshold_validation(self):
        with pytest.raises(ValueError):
            PhyParameters(capture_threshold=0.0)
        with pytest.raises(ValueError):
            PhyParameters(capture_threshold=-5.0)
