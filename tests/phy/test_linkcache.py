"""Equivalence suite: the link-cache fast path vs the naive scan.

The channel's :class:`~repro.phy.LinkCache` is a pure optimisation —
ISSUE: every query it answers must be bit-identical (same values, same
order) to the naive O(N) trig scan it replaces, on static topologies
and under mobility with epoch invalidation.  These tests pin that
property, plus a full-stack determinism guard: a complete
:class:`~repro.net.NetworkSimulation` run produces identical results
with the fast path on and off.
"""

import math
import random

from repro.dessim import Simulator, seconds
from repro.net import NetworkSimulation, TopologyConfig, generate_ring_topology
from repro.phy import (
    Channel,
    OmniAntenna,
    Position,
    Radio,
    SectorAntenna,
    UnitDiskPropagation,
)

RANGE_M = 300.0


def _paired_worlds(positions, range_m=RANGE_M):
    """Two identical radio fields: one cached channel, one naive."""
    worlds = []
    for cached in (True, False):
        sim = Simulator()
        channel = Channel(
            sim,
            propagation=UnitDiskPropagation(range_m=range_m),
            link_cache=cached,
        )
        radios = [
            Radio(sim, node_id, pos, channel)
            for node_id, pos in enumerate(positions)
        ]
        worlds.append((channel, radios))
    (cached_channel, cached_radios), (naive_channel, naive_radios) = worlds
    assert cached_channel.cache is not None
    assert naive_channel.cache is None
    return cached_channel, cached_radios, naive_channel, naive_radios


def _random_positions(rng, count, spread=700.0):
    """A cluster sized so some pairs are in range and some are not."""
    return [
        Position(rng.uniform(-spread, spread), rng.uniform(-spread, spread))
        for _ in range(count)
    ]


def _patterns(rng):
    """A sweep of patterns: omni plus beams from sliver to full circle."""
    yield OmniAntenna()
    for beamwidth in (0.05, math.pi / 6, math.pi / 3, math.pi, 2 * math.pi - 1e-9):
        yield SectorAntenna(rng.uniform(-math.pi, math.pi), beamwidth)
    # beamwidth = 2*pi is a SectorAntenna that reports is_omni.
    yield SectorAntenna(rng.uniform(-math.pi, math.pi), 2 * math.pi)


def _assert_equivalent(cached_channel, cached_radios, naive_channel, naive_radios, rng):
    for node_id in range(len(cached_radios)):
        assert cached_channel.neighbors_of(node_id) == naive_channel.neighbors_of(
            node_id
        )
        for pattern in _patterns(rng):
            fast = cached_channel.audible_nodes(cached_radios[node_id], pattern)
            slow = naive_channel.audible_nodes(naive_radios[node_id], pattern)
            assert fast == slow, (node_id, pattern)


def test_audible_sets_identical_on_random_topologies():
    """Cached audible/neighbor sets match the naive scan exactly."""
    for seed in range(8):
        rng = random.Random(seed)
        positions = _random_positions(rng, rng.randint(2, 25))
        _assert_equivalent(*_paired_worlds(positions), rng)


def test_link_geometry_matches_naive_channel():
    """Point-cache Links equal the naive channel's inline computation."""
    rng = random.Random(99)
    positions = _random_positions(rng, 12)
    cached_channel, _, naive_channel, _ = _paired_worlds(positions)
    for src in range(len(positions)):
        for dst in range(len(positions)):
            if src == dst:
                continue
            assert cached_channel.link(src, dst) == naive_channel.link(src, dst)
            # Repeat query is a cache hit and still identical.
            assert cached_channel.link(src, dst) == naive_channel.link(src, dst)


def test_beam_straddling_the_wrap_seam():
    """Targets at bearings near +/-pi survive the sector-bin wrap."""
    positions = [Position(0.0, 0.0)]
    # A fan of nodes hugging the +/-pi seam behind the sender, plus a
    # node exactly at bearing pi and one on each beam edge.
    for offset in (-0.3, -0.1, -1e-9, 0.0, 1e-9, 0.1, 0.3):
        bearing = math.pi + offset
        positions.append(
            Position(100.0 * math.cos(bearing), 100.0 * math.sin(bearing))
        )
    cached_channel, cached_radios, naive_channel, naive_radios = _paired_worlds(
        positions
    )
    for boresight in (math.pi, -math.pi, math.pi - 0.2, -math.pi + 0.2):
        for beamwidth in (0.2, 0.6, math.pi / 2):
            pattern = SectorAntenna(boresight, beamwidth)
            fast = cached_channel.audible_nodes(cached_radios[0], pattern)
            slow = naive_channel.audible_nodes(naive_radios[0], pattern)
            assert fast == slow, (boresight, beamwidth)


def test_equivalence_under_mobility():
    """Moves through Radio.position keep the cache exact.

    Random-waypoint mobility assigns ``radio.position``; the setter
    bumps the node's epoch, so every later query must reflect the new
    geometry — applied identically to a naive world.
    """
    rng = random.Random(4242)
    positions = _random_positions(rng, 15)
    cached_channel, cached_radios, naive_channel, naive_radios = _paired_worlds(
        positions
    )
    cache = cached_channel.cache
    # Warm every row and pair, then churn: move a random subset, check
    # full equivalence, repeat.  Stale cached geometry would surface as
    # a mismatch on the first post-move round.
    _assert_equivalent(cached_channel, cached_radios, naive_channel, naive_radios, rng)
    for _ in range(5):
        movers = rng.sample(range(len(positions)), 4)
        for node_id in movers:
            target = Position(rng.uniform(-700, 700), rng.uniform(-700, 700))
            epoch_before = cache.epoch_of(node_id)
            cached_radios[node_id].position = target
            naive_radios[node_id].position = target
            assert cache.epoch_of(node_id) == epoch_before + 1
        _assert_equivalent(
            cached_channel, cached_radios, naive_channel, naive_radios, rng
        )


def test_move_seq_advances_on_attach_and_move():
    sim = Simulator()
    channel = Channel(sim, propagation=UnitDiskPropagation(range_m=RANGE_M))
    cache = channel.cache
    assert cache.move_seq == 0
    a = Radio(sim, 0, Position(0, 0), channel)
    Radio(sim, 1, Position(50, 0), channel)
    assert cache.move_seq == 2
    a.position = Position(10, 0)
    assert cache.move_seq == 3
    assert cache.epoch_of(0) == 1
    assert cache.epoch_of(1) == 0


def test_point_cache_reused_across_row_rebuilds():
    """A move rebuilds rows but re-derives only the mover's pairs."""
    sim = Simulator()
    channel = Channel(sim, propagation=UnitDiskPropagation(range_m=RANGE_M))
    cache = channel.cache
    radios = [
        Radio(sim, i, Position(60.0 * i, 0.0), channel) for i in range(6)
    ]
    for node_id in range(6):
        channel.neighbors_of(node_id)
    warm = cache.cached_pairs()
    assert warm == 6 * 5
    radios[0].position = Position(5.0, 0.0)
    # Requerying one sender's row revalidates that row; pair records
    # between unmoved endpoints are served from cache (the count cannot
    # shrink and grows only by re-derived mover pairs).
    channel.neighbors_of(1)
    assert cache.cached_pairs() == warm


def test_neighbors_of_served_from_cache_not_naive_sweep():
    """neighbors_of routes through the LinkCache, not the O(N) sweep.

    Once the sender's row is warm, a repeat query on a static topology
    must not touch the propagation model at all; the naive channel
    pays N-1 reachability checks per query.  This pins the cache
    routing in ``Channel.neighbors_of`` so it cannot silently regress
    to the trig scan.
    """
    calls = {"cached": 0, "naive": 0}

    class CountingPropagation(UnitDiskPropagation):
        label = ""

        def reaches(self, src, dst):
            calls[self.label] += 1
            return super().reaches(src, dst)

    rng = random.Random(13)
    positions = _random_positions(rng, 10)
    worlds = {}
    for label, link_cache in (("cached", True), ("naive", False)):
        propagation = CountingPropagation(range_m=RANGE_M)
        object.__setattr__(propagation, "label", label)  # frozen dataclass
        sim = Simulator()
        channel = Channel(sim, propagation=propagation, link_cache=link_cache)
        for node_id, pos in enumerate(positions):
            Radio(sim, node_id, pos, channel)
        worlds[label] = channel
    cached_channel, naive_channel = worlds["cached"], worlds["naive"]

    for node_id in range(10):
        assert cached_channel.neighbors_of(node_id) == naive_channel.neighbors_of(
            node_id
        )
    warm_calls = calls["cached"]
    assert calls["naive"] == 10 * 9

    calls["cached"] = calls["naive"] = 0
    for node_id in range(10):
        cached_channel.neighbors_of(node_id)
        naive_channel.neighbors_of(node_id)
    assert calls["cached"] == 0, "warm cache row must not re-run the sweep"
    assert calls["naive"] == 10 * 9
    assert warm_calls <= 10 * 9  # cold build never exceeds the naive cost


def test_full_network_run_identical_with_and_without_cache():
    """Determinism guard: the fast path changes nothing observable.

    Two complete NetworkSimulation runs over the same topology, scheme,
    and seed — one with the link cache, one naive — must agree on every
    MAC counter, the kernel event count, and the derived figures.
    """
    topology = generate_ring_topology(TopologyConfig(n=3), random.Random(7))
    results = []
    sims = []
    for link_cache in (True, False):
        net = NetworkSimulation(
            topology,
            "DRTS-OCTS",
            math.pi / 3,
            seed=11,
            link_cache=link_cache,
        )
        results.append(net.run(seconds(0.05)))
        sims.append(net.sim)
    fast, slow = results
    assert fast.stats == slow.stats
    assert fast.inner_ids == slow.inner_ids
    assert fast.inner_throughput_bps == slow.inner_throughput_bps
    assert fast.inner_mean_delay_s == slow.inner_mean_delay_s
    assert fast.inner_collision_ratio == slow.inner_collision_ratio
    assert sims[0].events_processed == sims[1].events_processed
    assert sims[0].now == sims[1].now
