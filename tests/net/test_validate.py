"""Tests for the post-run invariant validator (incl. failure injection)."""

import math
import random

import pytest

from repro.dessim import seconds
from repro.net import (
    NetworkSimulation,
    Topology,
    TopologyConfig,
    connected_components,
    generate_ring_topology,
    is_connected,
    validate_simulation,
)
from repro.phy import Position


def topology_at(positions: dict[int, tuple[float, float]]) -> Topology:
    return Topology(
        config=TopologyConfig(n=max(2, len(positions)), range_m=300.0),
        positions={i: Position(x, y) for i, (x, y) in positions.items()},
        ring_of={i: 0 for i in positions},
    )


class TestConnectivity:
    def test_line_is_one_component(self):
        topo = topology_at({0: (0, 0), 1: (250, 0), 2: (500, 0)})
        assert connected_components(topo) == [[0, 1, 2]]
        assert is_connected(topo)

    def test_partition_splits_components(self):
        # Two clusters separated by far more than the 300 m range.
        topo = topology_at({0: (0, 0), 3: (100, 0), 1: (5000, 0), 2: (5100, 0)})
        assert connected_components(topo) == [[0, 3], [1, 2]]
        assert not is_connected(topo)

    def test_components_ordered_by_smallest_member(self):
        topo = topology_at({5: (0, 0), 1: (5000, 0), 3: (-5000, 0)})
        assert connected_components(topo) == [[1], [3], [5]]

    def test_single_node_is_connected(self):
        assert is_connected(topology_at({0: (0, 0)}))


@pytest.fixture(scope="module")
def run():
    topo = generate_ring_topology(TopologyConfig(n=3), random.Random(31))
    net = NetworkSimulation(topo, "ORTS-OCTS", math.pi, seed=1)
    result = net.run(seconds(0.5))
    return net, result


class TestCleanRun:
    def test_no_violations(self, run):
        net, result = run
        assert validate_simulation(net, result) == []


class TestFailureInjection:
    """Corrupt counters on purpose: the validator must notice."""

    def test_detects_excess_deliveries(self, run):
        net, result = run
        node = result.inner_ids[0]
        stats = result.stats[node]
        original = stats.packets_delivered
        stats.packets_delivered = stats.data_sent + 5
        try:
            violations = validate_simulation(net, result)
            assert any("deliver" in v for v in violations)
        finally:
            stats.packets_delivered = original

    def test_detects_delay_sample_mismatch(self, run):
        net, result = run
        node = result.inner_ids[0]
        stats = result.stats[node]
        stats.delays_ns.append(123)
        try:
            violations = validate_simulation(net, result)
            assert any("delay samples" in v for v in violations)
        finally:
            stats.delays_ns.pop()

    def test_detects_negative_delay(self, run):
        net, result = run
        node = result.inner_ids[0]
        stats = result.stats[node]
        stats.delays_ns.append(-1)
        stats.packets_delivered += 1
        try:
            violations = validate_simulation(net, result)
            assert any("non-positive delay" in v for v in violations)
        finally:
            stats.delays_ns.pop()
            stats.packets_delivered -= 1

    def test_detects_ack_mismatch(self, run):
        net, result = run
        node = result.inner_ids[0]
        stats = result.stats[node]
        stats.ack_sent += 3
        try:
            violations = validate_simulation(net, result)
            assert any("ACKs sent" in v for v in violations)
        finally:
            stats.ack_sent -= 3

    def test_detects_channel_inconsistency(self, run):
        net, result = run
        from repro.phy import FrameType

        net.channel.stats.frames_by_type[FrameType.RTS] += 1
        try:
            violations = validate_simulation(net, result)
            assert any("per-type frame counts" in v for v in violations)
        finally:
            net.channel.stats.frames_by_type[FrameType.RTS] -= 1

    def test_detects_starved_saturated_queue(self, run):
        net, result = run
        node = next(iter(net.sources))
        mac = net.macs[node]
        saved = list(mac.queue)
        mac.queue.clear()
        try:
            violations = validate_simulation(net, result)
            assert any("queue empty" in v for v in violations)
        finally:
            mac.queue.extend(saved)
