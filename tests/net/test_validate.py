"""Tests for the post-run invariant validator (incl. failure injection)."""

import math
import random

import pytest

from repro.dessim import seconds
from repro.net import (
    NetworkSimulation,
    TopologyConfig,
    generate_ring_topology,
    validate_simulation,
)


@pytest.fixture(scope="module")
def run():
    topo = generate_ring_topology(TopologyConfig(n=3), random.Random(31))
    net = NetworkSimulation(topo, "ORTS-OCTS", math.pi, seed=1)
    result = net.run(seconds(0.5))
    return net, result


class TestCleanRun:
    def test_no_violations(self, run):
        net, result = run
        assert validate_simulation(net, result) == []


class TestFailureInjection:
    """Corrupt counters on purpose: the validator must notice."""

    def test_detects_excess_deliveries(self, run):
        net, result = run
        node = result.inner_ids[0]
        stats = result.stats[node]
        original = stats.packets_delivered
        stats.packets_delivered = stats.data_sent + 5
        try:
            violations = validate_simulation(net, result)
            assert any("deliver" in v for v in violations)
        finally:
            stats.packets_delivered = original

    def test_detects_delay_sample_mismatch(self, run):
        net, result = run
        node = result.inner_ids[0]
        stats = result.stats[node]
        stats.delays_ns.append(123)
        try:
            violations = validate_simulation(net, result)
            assert any("delay samples" in v for v in violations)
        finally:
            stats.delays_ns.pop()

    def test_detects_negative_delay(self, run):
        net, result = run
        node = result.inner_ids[0]
        stats = result.stats[node]
        stats.delays_ns.append(-1)
        stats.packets_delivered += 1
        try:
            violations = validate_simulation(net, result)
            assert any("non-positive delay" in v for v in violations)
        finally:
            stats.delays_ns.pop()
            stats.packets_delivered -= 1

    def test_detects_ack_mismatch(self, run):
        net, result = run
        node = result.inner_ids[0]
        stats = result.stats[node]
        stats.ack_sent += 3
        try:
            violations = validate_simulation(net, result)
            assert any("ACKs sent" in v for v in violations)
        finally:
            stats.ack_sent -= 3

    def test_detects_channel_inconsistency(self, run):
        net, result = run
        from repro.phy import FrameType

        net.channel.stats.frames_by_type[FrameType.RTS] += 1
        try:
            violations = validate_simulation(net, result)
            assert any("per-type frame counts" in v for v in violations)
        finally:
            net.channel.stats.frames_by_type[FrameType.RTS] -= 1

    def test_detects_starved_saturated_queue(self, run):
        net, result = run
        node = next(iter(net.sources))
        mac = net.macs[node]
        saved = list(mac.queue)
        mac.queue.clear()
        try:
            violations = validate_simulation(net, result)
            assert any("queue empty" in v for v in violations)
        finally:
            mac.queue.extend(saved)
