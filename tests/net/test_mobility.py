"""Tests for random-waypoint mobility and stale neighbor tables."""

import math
import random

import pytest

from repro.dessim import RngRegistry, Simulator, seconds
from repro.mac import (
    DSSS_MAC,
    DcfMac,
    NeighborTable,
    POLICIES,
    SnapshotNeighborTable,
)
from repro.net import RandomWaypointMobility
from repro.phy import Channel, Position, Radio, UnitDiskPropagation
from repro.traffic import SaturatedCbrSource


def make_world(positions, range_m=300.0):
    sim = Simulator()
    channel = Channel(sim, propagation=UnitDiskPropagation(range_m=range_m))
    radios = {}
    for node_id, (x, y) in positions.items():
        radios[node_id] = Radio(sim, node_id, Position(x, y), channel)
    return sim, channel, radios


class TestRandomWaypointMobility:
    def test_moves_the_radio(self):
        sim, _ch, radios = make_world({0: (0, 0)})
        mob = RandomWaypointMobility(
            sim, radios[0], random.Random(1), speed_mps=10.0,
            bounds=(0, 0, 1000, 1000),
        )
        mob.start()
        start = radios[0].position
        sim.run(until=seconds(10))
        assert radios[0].position.distance_to(start) > 0

    def test_stays_in_bounds(self):
        sim, _ch, radios = make_world({0: (50, 50)})
        mob = RandomWaypointMobility(
            sim, radios[0], random.Random(2), speed_mps=50.0,
            bounds=(0, 0, 100, 100),
        )
        mob.start()
        positions = []
        for _ in range(200):
            sim.run(until=sim.now + seconds(0.5))
            positions.append(radios[0].position)
        for pos in positions:
            assert -1e-9 <= pos.x <= 100 + 1e-9
            assert -1e-9 <= pos.y <= 100 + 1e-9

    def test_travel_distance_tracks_speed(self):
        sim, _ch, radios = make_world({0: (0, 0)})
        mob = RandomWaypointMobility(
            sim, radios[0], random.Random(3), speed_mps=10.0,
            bounds=(0, 0, 10_000, 10_000),  # huge: rarely reaches waypoints
        )
        mob.start()
        sim.run(until=seconds(100))
        assert mob.distance_travelled == pytest.approx(1000.0, rel=0.05)

    def test_validation(self):
        sim, _ch, radios = make_world({0: (0, 0)})
        with pytest.raises(ValueError):
            RandomWaypointMobility(
                sim, radios[0], random.Random(0), speed_mps=0.0,
                bounds=(0, 0, 10, 10),
            )
        with pytest.raises(ValueError):
            RandomWaypointMobility(
                sim, radios[0], random.Random(0), speed_mps=1.0,
                bounds=(10, 0, 0, 10),
            )
        with pytest.raises(ValueError):
            RandomWaypointMobility(
                sim, radios[0], random.Random(0), speed_mps=1.0,
                bounds=(0, 0, 10, 10), step_ns=0,
            )


class TestSnapshotNeighborTable:
    def test_interval_zero_is_live(self):
        sim, channel, radios = make_world({0: (0, 0), 1: (100, 0)})
        table = SnapshotNeighborTable(channel, 0, refresh_interval_ns=0, sim=sim)
        assert table.bearing_to(1) == pytest.approx(0.0)
        radios[1].position = Position(0, 100)
        assert table.bearing_to(1) == pytest.approx(math.pi / 2)

    def test_staleness_between_refreshes(self):
        sim, channel, radios = make_world({0: (0, 0), 1: (100, 0)})
        table = SnapshotNeighborTable(
            channel, 0, refresh_interval_ns=seconds(10), sim=sim
        )
        assert table.bearing_to(1) == pytest.approx(0.0)  # snapshot taken
        radios[1].position = Position(0, 100)  # peer moves north
        # Still inside the refresh window: the stale bearing is served.
        assert table.bearing_to(1) == pytest.approx(0.0)

    def test_refresh_after_interval(self):
        sim, channel, radios = make_world({0: (0, 0), 1: (100, 0)})
        table = SnapshotNeighborTable(
            channel, 0, refresh_interval_ns=seconds(1), sim=sim
        )
        table.bearing_to(1)
        radios[1].position = Position(0, 100)
        sim.schedule(seconds(2), lambda: None)
        sim.run()
        assert table.bearing_to(1) == pytest.approx(math.pi / 2)
        assert table.refreshes == 2

    def test_neighbor_set_is_snapshotted(self):
        sim, channel, radios = make_world({0: (0, 0), 1: (100, 0)})
        table = SnapshotNeighborTable(
            channel, 0, refresh_interval_ns=seconds(10), sim=sim
        )
        assert table.neighbor_ids() == [1]
        radios[1].position = Position(5000, 0)  # leaves range
        assert table.neighbor_ids() == [1]  # stale view

    def test_rejects_negative_interval(self):
        sim, channel, _radios = make_world({0: (0, 0), 1: (100, 0)})
        with pytest.raises(ValueError):
            SnapshotNeighborTable(channel, 0, refresh_interval_ns=-1, sim=sim)


class TestStaleBeamsEndToEnd:
    """The future-work punchline: narrow beams need fresh bearings."""

    def _run_pair(self, scheme, refresh_ns, speed_mps=25.0):
        sim, channel, radios = make_world({0: (0, 0), 1: (150, 0)})
        rng = RngRegistry(5)
        tables = {
            0: SnapshotNeighborTable(channel, 0, refresh_ns, sim=sim),
            1: SnapshotNeighborTable(channel, 1, refresh_ns, sim=sim),
        }
        macs = {
            nid: DcfMac(
                sim, radios[nid], DSSS_MAC, tables[nid], POLICIES[scheme],
                beamwidth=math.radians(15),
                rng=rng.stream(f"mac{nid}"),
            )
            for nid in (0, 1)
        }
        # Node 1 wanders laterally while node 0 keeps sending to it.
        mobility = RandomWaypointMobility(
            sim, radios[1], random.Random(9), speed_mps=speed_mps,
            bounds=(100, -200, 250, 200),
        )
        mobility.start()
        source = SaturatedCbrSource(sim, macs[0], [1], rng.stream("traffic"))
        source.start()
        sim.run(until=seconds(5))
        return macs[0].stats

    def test_stale_beams_hurt_directional(self):
        fresh = self._run_pair("DRTS-DCTS", refresh_ns=0)
        stale = self._run_pair("DRTS-DCTS", refresh_ns=seconds(3))
        assert stale.packets_delivered < fresh.packets_delivered

    def test_omni_indifferent_to_staleness(self):
        fresh = self._run_pair("ORTS-OCTS", refresh_ns=0)
        stale = self._run_pair("ORTS-OCTS", refresh_ns=seconds(3))
        # Omni transmissions ignore bearings entirely.
        assert stale.packets_delivered == fresh.packets_delivered
