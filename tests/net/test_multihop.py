"""Tests for the multi-hop network assembly."""

import dataclasses
import math

import pytest

from repro.dessim import milliseconds, seconds
from repro.net import (
    MultihopNetworkSimulation,
    Topology,
    TopologyConfig,
    is_connected,
)
from repro.obs import MetricsRegistry
from repro.phy import Position


def spoke_topology() -> Topology:
    """A deterministic *connected* 3-ring topology.

    Four spokes (N/E/S/W) with one node per ring at radii 150/450/750:
    consecutive spoke nodes are exactly 300 m apart (= range, in range),
    and the four inner nodes are 150*sqrt(2) = 212 m from each other, so
    the unit-disk graph is a single component.  Inner-to-outer flows
    need >= 2 hops.
    """
    config = TopologyConfig(n=4, range_m=300.0, rings=3)
    positions: dict[int, Position] = {}
    ring_of: dict[int, int] = {}
    node_id = 0
    for ring, radius in enumerate((150.0, 450.0, 750.0)):
        for dx, dy in ((0, 1), (1, 0), (0, -1), (-1, 0)):
            positions[node_id] = Position(dx * radius, dy * radius)
            ring_of[node_id] = ring
            node_id += 1
    return Topology(config=config, positions=positions, ring_of=ring_of)


def run_multihop(router, **kwargs):
    sim = MultihopNetworkSimulation(
        spoke_topology(),
        "DRTS-OCTS",
        math.radians(90),
        seed=7,
        router=router,
        flow_interval_ns=milliseconds(20),
        **kwargs,
    )
    return sim, sim.run(seconds(0.5))


class TestSpokeFixture:
    def test_is_connected(self):
        assert is_connected(spoke_topology())


class TestDelivery:
    """The acceptance property: both routers deliver end to end."""

    @pytest.mark.parametrize("router", ["greedy", "shortest-path"])
    def test_positive_goodput_with_delay_and_hops(self, router):
        _, result = run_multihop(router)
        assert result.total_goodput_bps > 0
        assert result.packets_delivered_e2e > 0
        assert result.mean_delay_s > 0
        assert result.mean_hop_count >= 2  # min_flow_hops default
        delivered = [f for f in result.flows if f.packets_delivered > 0]
        assert delivered
        for flow in delivered:
            assert flow.mean_delay_s > 0
            assert flow.mean_hops >= 1

    def test_every_node_originates(self):
        sim, result = run_multihop("shortest-path")
        # On a connected topology every node has a far destination.
        assert sorted(sim.sources) == sorted(sim.macs)
        assert len(result.flows) == len(sim.macs)

    def test_route_totals_balance(self):
        _, result = run_multihop("shortest-path")
        totals = result.route_totals()
        assert totals.originated == result.packets_originated
        assert totals.delivered == result.packets_delivered_e2e
        assert 0.0 < result.delivery_ratio <= 1.0


class TestDeterminism:
    def test_same_seed_identical_results(self):
        _, first = run_multihop("greedy")
        _, second = run_multihop("greedy")
        assert first.flows == second.flows
        assert first.mean_delay_s == second.mean_delay_s
        assert dataclasses.asdict(first.route_totals()) == dataclasses.asdict(
            second.route_totals()
        )

    def test_telemetry_does_not_change_results(self):
        _, bare = run_multihop("greedy")
        metrics = MetricsRegistry()
        _, observed = run_multihop("greedy", metrics=metrics)
        assert bare.flows == observed.flows
        snapshot = metrics.snapshot()["counters"]
        assert snapshot["route.originated"] == observed.packets_originated
        assert snapshot["route.delivered"] == observed.packets_delivered_e2e

    def test_warmup_discards_transient(self):
        sim = MultihopNetworkSimulation(
            spoke_topology(),
            "DRTS-OCTS",
            math.radians(90),
            seed=7,
            flow_interval_ns=milliseconds(20),
        )
        result = sim.run(seconds(0.3), warmup_ns=milliseconds(100))
        # Sent counts reflect the measured window only (~15 ticks/flow),
        # not the warm-up.
        for flow in result.flows:
            assert flow.packets_sent <= 16


class TestValidation:
    def test_rejects_unknown_scheme(self):
        with pytest.raises(KeyError):
            MultihopNetworkSimulation(spoke_topology(), "XRTS", math.pi, seed=1)

    def test_rejects_unknown_router(self):
        with pytest.raises(KeyError):
            MultihopNetworkSimulation(
                spoke_topology(), "DRTS-OCTS", math.pi, seed=1, router="magic"
            )

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MultihopNetworkSimulation(
                spoke_topology(), "DRTS-OCTS", math.pi, seed=1, flow_interval_ns=0
            )
        with pytest.raises(ValueError):
            MultihopNetworkSimulation(
                spoke_topology(), "DRTS-OCTS", math.pi, seed=1, min_flow_hops=0
            )
        with pytest.raises(ValueError):
            MultihopNetworkSimulation(spoke_topology(), "DRTS-OCTS", 7.0, seed=1)
