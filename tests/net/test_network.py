"""Tests for network assembly and end-to-end simulation runs."""

import math
import random

import pytest

from repro.dessim import seconds
from repro.net import NetworkSimulation, TopologyConfig, generate_ring_topology


@pytest.fixture(scope="module")
def small_topology():
    return generate_ring_topology(TopologyConfig(n=3), random.Random(5))


class TestConstruction:
    def test_one_mac_per_node(self, small_topology):
        net = NetworkSimulation(small_topology, "ORTS-OCTS", math.pi, seed=0)
        assert len(net.macs) == 27

    def test_sources_only_for_connected_nodes(self, small_topology):
        net = NetworkSimulation(small_topology, "ORTS-OCTS", math.pi, seed=0)
        for node_id in net.sources:
            assert net.channel.neighbors_of(node_id)

    def test_rejects_unknown_scheme(self, small_topology):
        with pytest.raises(KeyError):
            NetworkSimulation(small_topology, "FOO", math.pi, seed=0)

    def test_rejects_bad_beamwidth(self, small_topology):
        with pytest.raises(ValueError):
            NetworkSimulation(small_topology, "DRTS-DCTS", 0.0, seed=0)

    def test_rejects_bad_duration(self, small_topology):
        net = NetworkSimulation(small_topology, "ORTS-OCTS", math.pi, seed=0)
        with pytest.raises(ValueError):
            net.run(0)


class TestRun:
    @pytest.mark.parametrize("scheme", ["ORTS-OCTS", "DRTS-DCTS", "DRTS-OCTS"])
    def test_inner_nodes_deliver_traffic(self, small_topology, scheme):
        net = NetworkSimulation(
            small_topology, scheme, math.radians(90), seed=1
        )
        result = net.run(seconds(1))
        assert result.inner_packets_delivered > 0
        assert result.inner_throughput_bps > 0
        assert 0.0 < result.inner_mean_delay_s < 1.0
        assert 0.0 <= result.inner_collision_ratio <= 1.0
        assert 0.0 < result.inner_fairness <= 1.0

    def test_deterministic_given_seed(self, small_topology):
        results = [
            NetworkSimulation(
                small_topology, "DRTS-DCTS", math.radians(30), seed=9
            ).run(seconds(1))
            for _ in range(2)
        ]
        assert (
            results[0].inner_throughput_bps == results[1].inner_throughput_bps
        )
        assert results[0].inner_mean_delay_s == results[1].inner_mean_delay_s

    def test_different_seeds_differ(self, small_topology):
        a = NetworkSimulation(
            small_topology, "ORTS-OCTS", math.pi, seed=1
        ).run(seconds(1))
        b = NetworkSimulation(
            small_topology, "ORTS-OCTS", math.pi, seed=2
        ).run(seconds(1))
        assert a.inner_throughput_bps != b.inner_throughput_bps

    def test_conservation_of_packets(self, small_topology):
        # Every delivered packet was received by someone.
        net = NetworkSimulation(small_topology, "ORTS-OCTS", math.pi, seed=3)
        result = net.run(seconds(1))
        delivered = sum(s.packets_delivered for s in result.stats.values())
        received = sum(s.data_received for s in result.stats.values())
        # data_received can exceed deliveries (ACK lost after good DATA),
        # but never the other way around.
        assert received >= delivered > 0

    def test_throughput_bounded_by_channel_rate(self, small_topology):
        # With spatial reuse the aggregate over the whole network can
        # exceed 2 Mbps, but the inner disk alone cannot sustain more
        # than a few times the channel rate.
        result = NetworkSimulation(
            small_topology, "DRTS-DCTS", math.radians(30), seed=4
        ).run(seconds(1))
        assert result.inner_throughput_bps < 3 * 2e6

    def test_saturation_maintained(self, small_topology):
        # Saturated sources keep every connected node's queue non-empty.
        net = NetworkSimulation(small_topology, "ORTS-OCTS", math.pi, seed=5)
        net.run(seconds(1))
        for node_id in net.sources:
            assert net.macs[node_id].queue_length >= 1
