"""Tests for the concentric-ring topology generator."""

import math
import random

import warnings

import pytest
from hypothesis import given, settings, strategies as st

from repro.net import (
    TopologyConfig,
    TopologyError,
    generate_connected_ring_topology,
    generate_ring_topology,
    is_connected,
)
from repro.net.topology import _admissible, _uniform_in_annulus


class TestTopologyConfig:
    def test_ring_populations_match_paper(self):
        # N, 3N, 5N for the three rings.
        cfg = TopologyConfig(n=3)
        assert [cfg.ring_population(k) for k in range(3)] == [3, 9, 15]

    def test_total_is_nine_n(self):
        for n in (3, 5, 8):
            assert TopologyConfig(n=n).total_nodes == 9 * n

    def test_ring_population_bounds(self):
        cfg = TopologyConfig(n=3)
        with pytest.raises(ValueError):
            cfg.ring_population(3)
        with pytest.raises(ValueError):
            cfg.ring_population(-1)

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            TopologyConfig(n=1)

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            TopologyConfig(range_m=0)

    def test_rejects_bad_rings(self):
        with pytest.raises(ValueError):
            TopologyConfig(rings=0)

    def test_rejects_bad_attempts(self):
        with pytest.raises(ValueError):
            TopologyConfig(max_attempts=0)


class TestUniformInAnnulus:
    def test_points_within_bounds(self):
        rng = random.Random(1)
        for _ in range(500):
            x, y = _uniform_in_annulus(rng, 300.0, 600.0)
            r = math.hypot(x, y)
            assert 300.0 <= r <= 600.0

    def test_disk_case(self):
        rng = random.Random(2)
        for _ in range(200):
            x, y = _uniform_in_annulus(rng, 0.0, 300.0)
            assert math.hypot(x, y) <= 300.0

    def test_area_uniformity(self):
        # In an area-uniform disk sample, ~1/4 of points fall inside
        # half the radius.
        rng = random.Random(3)
        inner = sum(
            1
            for _ in range(4000)
            if math.hypot(*_uniform_in_annulus(rng, 0.0, 1.0)) <= 0.5
        )
        assert 0.20 < inner / 4000 < 0.30


class TestGenerateRingTopology:
    def test_node_counts_per_ring(self):
        topo = generate_ring_topology(TopologyConfig(n=3), random.Random(0))
        assert len(topo.ids_in_ring(0)) == 3
        assert len(topo.ids_in_ring(1)) == 9
        assert len(topo.ids_in_ring(2)) == 15
        assert len(topo.positions) == 27

    def test_nodes_in_their_rings(self):
        topo = generate_ring_topology(TopologyConfig(n=3), random.Random(1))
        for node_id, ring in topo.ring_of.items():
            radius = math.hypot(topo.positions[node_id].x, topo.positions[node_id].y)
            assert ring * 300.0 <= radius <= (ring + 1) * 300.0

    def test_inner_degree_condition(self):
        cfg = TopologyConfig(n=3)
        topo = generate_ring_topology(cfg, random.Random(2))
        for node_id in topo.inner_ids:
            degree = topo.neighbor_count(node_id)
            assert 2 <= degree <= 2 * cfg.n - 2

    def test_middle_degree_condition(self):
        cfg = TopologyConfig(n=3)
        topo = generate_ring_topology(cfg, random.Random(3))
        for node_id in topo.ids_in_ring(1):
            degree = topo.neighbor_count(node_id)
            assert 1 <= degree <= 2 * cfg.n - 1

    def test_reproducible_from_seed(self):
        a = generate_ring_topology(TopologyConfig(n=3), random.Random(7))
        b = generate_ring_topology(TopologyConfig(n=3), random.Random(7))
        assert a.positions == b.positions

    def test_different_seeds_differ(self):
        a = generate_ring_topology(TopologyConfig(n=3), random.Random(7))
        b = generate_ring_topology(TopologyConfig(n=3), random.Random(8))
        assert a.positions != b.positions

    def test_connectivity_graph_matches_neighbor_count(self):
        topo = generate_ring_topology(TopologyConfig(n=3), random.Random(4))
        graph = topo.connectivity_graph()
        for node_id in topo.positions:
            assert graph.degree(node_id) == topo.neighbor_count(node_id)

    def test_exhausted_attempts_raise(self):
        # One attempt with a fixed seed that fails admissibility.
        cfg = TopologyConfig(n=8, max_attempts=1)
        rng = random.Random(0)
        # Find a seed whose first draw is inadmissible, then assert the
        # error surfaces (probe a few seeds; inadmissible first draws
        # are common for n=8).
        for seed in range(50):
            probe_cfg = TopologyConfig(n=8, max_attempts=1)
            try:
                generate_ring_topology(probe_cfg, random.Random(seed))
            except TopologyError:
                return  # observed the failure path
        pytest.skip("all probed seeds admissible on first draw")

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_admissibility_holds_for_any_seed(self, seed):
        cfg = TopologyConfig(n=3)
        topo = generate_ring_topology(cfg, random.Random(seed))
        assert _admissible(topo)

    @pytest.mark.parametrize("n", [3, 5, 8])
    def test_paper_configurations_generate(self, n):
        topo = generate_ring_topology(
            TopologyConfig(n=n), random.Random(11)
        )
        assert len(topo.positions) == 9 * n


class TestGenerateConnectedRingTopology:
    # Pinned seed facts (n=5, rings=2): random.Random(2) is connected
    # on the first draw; random.Random(0) is partitioned on the first
    # draw but connects within a few resamples of the same stream.
    TWO_RING = {"n": 5, "rings": 2}

    def test_connected_first_draw_matches_plain_generator(self):
        # No resample needed: the wrapper is a pass-through, warning-free.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            topo = generate_connected_ring_topology(
                TopologyConfig(**self.TWO_RING), random.Random(2)
            )
        plain = generate_ring_topology(TopologyConfig(**self.TWO_RING), random.Random(2))
        assert topo.positions == plain.positions
        assert is_connected(topo)

    def test_resamples_to_connected_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            topo = generate_connected_ring_topology(
                TopologyConfig(**self.TWO_RING), random.Random(0), max_resamples=10
            )
        assert is_connected(topo)
        # And it actually resampled: the first draw is partitioned.
        first = generate_ring_topology(TopologyConfig(**self.TWO_RING), random.Random(0))
        assert topo.positions != first.positions

    def test_warns_and_returns_partitioned_on_exhaustion(self):
        # The paper's 3-ring geometry essentially never connects.
        with pytest.warns(UserWarning, match="partitioned"):
            topo = generate_connected_ring_topology(
                TopologyConfig(n=3, rings=3), random.Random(0), max_resamples=2
            )
        assert len(topo.positions) == 27  # still a full, admissible placement
        assert not is_connected(topo)

    def test_deterministic_in_stream_state(self):
        a = generate_connected_ring_topology(
            TopologyConfig(**self.TWO_RING), random.Random(0)
        )
        b = generate_connected_ring_topology(
            TopologyConfig(**self.TWO_RING), random.Random(0)
        )
        assert a.positions == b.positions

    def test_rejects_bad_max_resamples(self):
        with pytest.raises(ValueError):
            generate_connected_ring_topology(
                TopologyConfig(**self.TWO_RING), random.Random(0), max_resamples=0
            )
