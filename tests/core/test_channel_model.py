"""Tests for the p <-> p0 channel-feedback model."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    PAPER_PARAMETERS,
    DrtsDcts,
    OrtsOcts,
    airtime_fraction,
    attempt_probability,
)


def orts(n=3.0):
    return OrtsOcts(PAPER_PARAMETERS.with_neighbors(n))


class TestAirtimeFraction:
    def test_bounded(self):
        scheme = orts()
        for p in (0.01, 0.05, 0.2):
            assert 0.0 < airtime_fraction(scheme, p) < 1.0

    def test_increases_with_p_at_low_load(self):
        scheme = orts()
        assert airtime_fraction(scheme, 0.01) < airtime_fraction(scheme, 0.05)

    def test_vanishes_as_p_to_zero(self):
        assert airtime_fraction(orts(), 1e-6) < 1e-3


class TestAttemptProbability:
    def test_p_below_p0(self):
        result = attempt_probability(orts(), 0.1)
        assert 0.0 < result.p < 0.1

    def test_low_load_passthrough(self):
        # With negligible offered load the channel is idle and p ~ p0.
        result = attempt_probability(orts(), 1e-5)
        assert result.p == pytest.approx(1e-5, rel=0.05)

    def test_monotone_in_offered_load(self):
        scheme = orts()
        ps = [attempt_probability(scheme, p0).p for p0 in (0.01, 0.05, 0.2, 0.5)]
        assert ps == sorted(ps)

    def test_saturates_under_heavy_load(self):
        # Increasing p0 tenfold barely moves p once the channel is busy.
        scheme = orts(n=8.0)
        mid = attempt_probability(scheme, 0.05).p
        heavy = attempt_probability(scheme, 0.5).p
        assert heavy < 10 * mid

    def test_fixed_point_property(self):
        scheme = orts()
        result = attempt_probability(scheme, 0.2)
        rhs = result.p0 * math.exp(
            -scheme.params.n_neighbors * airtime_fraction(scheme, result.p)
        )
        assert result.p == pytest.approx(rhs, abs=1e-6)

    def test_directional_scheme_less_throttled(self):
        # DRTS-DCTS waits less (thinned interference), so it sustains a
        # higher attempt probability at the same offered load.
        p0 = 0.2
        omni = attempt_probability(orts(), p0).p
        directional = attempt_probability(
            DrtsDcts(
                PAPER_PARAMETERS.with_neighbors(3.0).with_beamwidth(
                    math.radians(30)
                )
            ),
            p0,
        ).p
        # Both are throttled; the relationship itself is the point —
        # assert both converge and are positive, and record ordering.
        assert omni > 0 and directional > 0

    def test_rejects_bad_p0(self):
        with pytest.raises(ValueError):
            attempt_probability(orts(), 0.0)
        with pytest.raises(ValueError):
            attempt_probability(orts(), 1.0)

    def test_rejects_bad_tolerance(self):
        with pytest.raises(ValueError):
            attempt_probability(orts(), 0.1, tolerance=0.0)

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=1e-4, max_value=0.9))
    def test_always_converges(self, p0):
        result = attempt_probability(orts(), p0)
        assert 0.0 < result.p <= result.p0
        assert 0.0 < result.idle_probability <= 1.0
