"""Tests for throughput maximisation and beamwidth sweeps."""

import math

import pytest

from repro.core import (
    PAPER_PARAMETERS,
    DrtsDcts,
    OrtsOcts,
    ThroughputOptimum,
    beamwidth_sweep,
    fig5_series,
    maximize_throughput,
    paper_beamwidths,
)


class TestMaximizeThroughput:
    def test_optimum_beats_nearby_points(self):
        scheme = OrtsOcts(PAPER_PARAMETERS)
        opt = maximize_throughput(scheme)
        for offset in (-0.3, -0.1, 0.1, 0.3):
            p = opt.p_opt * (1 + offset)
            assert scheme.throughput(p) <= opt.throughput + 1e-12

    def test_optimal_p_is_small(self):
        # The paper argues collision avoidance keeps p <~ 0.1.
        scheme = OrtsOcts(PAPER_PARAMETERS.with_neighbors(5.0))
        opt = maximize_throughput(scheme)
        assert 0.0 < opt.p_opt < 0.1

    def test_matches_dense_grid_scan(self):
        import numpy as np

        scheme = DrtsDcts(PAPER_PARAMETERS.with_beamwidth(math.radians(60)))
        opt = maximize_throughput(scheme)
        grid = np.linspace(1e-4, 0.3, 400)
        brute = max(scheme.throughput(float(p)) for p in grid)
        assert opt.throughput >= brute - 1e-6

    def test_rejects_bad_bounds(self):
        scheme = OrtsOcts(PAPER_PARAMETERS)
        with pytest.raises(ValueError):
            maximize_throughput(scheme, p_min=0.2, p_max=0.1)
        with pytest.raises(ValueError):
            maximize_throughput(scheme, p_min=0.0, p_max=0.5)

    def test_rejects_tiny_grid(self):
        scheme = OrtsOcts(PAPER_PARAMETERS)
        with pytest.raises(ValueError):
            maximize_throughput(scheme, grid_points=2)

    def test_result_validation(self):
        with pytest.raises(ValueError):
            ThroughputOptimum(p_opt=0.0, throughput=0.5)
        with pytest.raises(ValueError):
            ThroughputOptimum(p_opt=0.5, throughput=-0.1)


class TestPaperBeamwidths:
    def test_grid_matches_figure5(self):
        widths = paper_beamwidths()
        assert len(widths) == 12
        assert widths[0] == pytest.approx(math.radians(15))
        assert widths[-1] == pytest.approx(math.pi)

    def test_uniform_spacing(self):
        widths = paper_beamwidths()
        steps = [b - a for a, b in zip(widths, widths[1:])]
        assert all(s == pytest.approx(math.radians(15)) for s in steps)


class TestBeamwidthSweep:
    def test_series_structure(self):
        series = beamwidth_sweep(
            "DRTS-DCTS",
            PAPER_PARAMETERS,
            beamwidths=[math.radians(30), math.radians(90)],
        )
        assert series.scheme == "DRTS-DCTS"
        assert len(series.points) == 2
        assert series.beamwidths == (
            pytest.approx(math.radians(30)),
            pytest.approx(math.radians(90)),
        )
        assert all(t > 0 for t in series.throughputs)

    def test_orts_octs_is_flat(self):
        series = beamwidth_sweep(
            "ORTS-OCTS",
            PAPER_PARAMETERS,
            beamwidths=[math.radians(15), math.radians(180)],
        )
        first, last = series.throughputs
        assert first == pytest.approx(last, rel=1e-4)

    def test_unknown_scheme(self):
        with pytest.raises(KeyError):
            beamwidth_sweep("NOT-A-SCHEME", PAPER_PARAMETERS)

    def test_fig5_series_has_all_schemes(self):
        series = fig5_series(
            PAPER_PARAMETERS, beamwidths=[math.radians(30)]
        )
        assert set(series) == {"ORTS-OCTS", "DRTS-DCTS", "DRTS-OCTS"}
