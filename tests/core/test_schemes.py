"""Tests for the three analytical schemes and their shared machinery."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    PAPER_PARAMETERS,
    DrtsDcts,
    DrtsOcts,
    NonPersistentCsma,
    OrtsOcts,
)

ALL_SCHEMES = [OrtsOcts, DrtsDcts, DrtsOcts, NonPersistentCsma]
NARROW = PAPER_PARAMETERS.with_beamwidth(math.radians(30))


def make(cls, n=3.0, theta_deg=30.0):
    params = PAPER_PARAMETERS.with_neighbors(n).with_beamwidth(
        math.radians(theta_deg)
    )
    return cls(params)


class TestSharedBehaviour:
    @pytest.mark.parametrize("cls", ALL_SCHEMES)
    def test_p_ws_below_p(self, cls):
        # P_ws < p: success requires at least that the node transmits.
        scheme = make(cls)
        for p in (0.01, 0.05, 0.2):
            assert scheme.p_ws(p) < p

    @pytest.mark.parametrize("cls", ALL_SCHEMES)
    def test_p_ws_r_below_one(self, cls):
        scheme = make(cls)
        for r in (0.1, 0.5, 0.9):
            value = scheme.p_ws_at_distance(r, 0.05)
            assert 0.0 <= value <= 1.0

    @pytest.mark.parametrize("cls", ALL_SCHEMES)
    def test_throughput_positive_and_bounded(self, cls):
        scheme = make(cls)
        th = scheme.throughput(0.03)
        assert 0.0 < th < 1.0

    @pytest.mark.parametrize("cls", ALL_SCHEMES)
    def test_throughput_upper_bound_is_perfect_scheduling(self, cls):
        # Even a perfect schedule cannot beat l_data / T_succeed per
        # neighborhood, modulo the pi_w >= 1/2 structure of the chain.
        scheme = make(cls)
        bound = scheme.params.l_data / scheme.t_succeed()
        for p in (0.01, 0.05, 0.1):
            assert scheme.throughput(p) <= bound

    @pytest.mark.parametrize("cls", ALL_SCHEMES)
    def test_throughput_vanishes_at_extremes(self, cls):
        scheme = make(cls)
        assert scheme.throughput(1e-6) < 1e-3
        assert scheme.throughput(0.999) < 1e-3

    @pytest.mark.parametrize("cls", ALL_SCHEMES)
    def test_rejects_p_out_of_range(self, cls):
        scheme = make(cls)
        for bad in (0.0, 1.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                scheme.throughput(bad)
            with pytest.raises(ValueError):
                scheme.p_ws(bad)

    @pytest.mark.parametrize("cls", ALL_SCHEMES)
    def test_stationary_is_distribution(self, cls):
        scheme = make(cls)
        pi = scheme.stationary(0.04)
        assert sum(pi.as_tuple()) == pytest.approx(1.0)
        assert pi.wait >= 0.5

    @pytest.mark.parametrize("cls", ALL_SCHEMES)
    @settings(max_examples=20, deadline=None)
    @given(p=st.floats(min_value=1e-4, max_value=0.5))
    def test_throughput_finite_over_p(self, cls, p):
        scheme = make(cls)
        th = scheme.throughput(p)
        assert math.isfinite(th)
        assert th >= 0.0

    @pytest.mark.parametrize("cls", ALL_SCHEMES)
    def test_denser_network_lowers_throughput(self, cls):
        sparse = make(cls, n=3.0)
        dense = make(cls, n=8.0)
        for p in (0.02, 0.05):
            assert dense.throughput(p) < sparse.throughput(p)


class TestOrtsOcts:
    def test_ignores_beamwidth(self):
        narrow = make(OrtsOcts, theta_deg=15.0)
        wide = make(OrtsOcts, theta_deg=180.0)
        assert narrow.throughput(0.03) == pytest.approx(wide.throughput(0.03))

    def test_t_fail_constant(self):
        scheme = make(OrtsOcts)
        assert scheme.t_fail(0.01) == scheme.t_fail(0.2) == pytest.approx(12.0)

    def test_p_ww_formula(self):
        scheme = make(OrtsOcts, n=3.0)
        p = 0.05
        assert scheme.p_ww(p) == pytest.approx((1 - p) * math.exp(-p * 3.0))

    def test_p_ws_r_decreases_with_distance(self):
        # Farther receivers expose more hidden area.
        scheme = make(OrtsOcts)
        values = [scheme.p_ws_at_distance(r, 0.05) for r in (0.1, 0.5, 0.9)]
        assert values[0] > values[1] > values[2]

    def test_p_ws_r_at_zero_distance(self):
        # No hidden terminals: P_ws(0) = p (1-p) exp(-pN).
        scheme = make(OrtsOcts, n=3.0)
        p = 0.05
        expected = p * (1 - p) * math.exp(-p * 3.0)
        assert scheme.p_ws_at_distance(0.0, p) == pytest.approx(expected)


class TestDrtsDcts:
    def test_narrower_beam_wins(self):
        p = 0.05
        narrow = make(DrtsDcts, theta_deg=15.0).throughput(p)
        medium = make(DrtsDcts, theta_deg=90.0).throughput(p)
        wide = make(DrtsDcts, theta_deg=180.0).throughput(p)
        assert narrow > medium > wide

    def test_t_fail_within_bounds(self):
        scheme = make(DrtsDcts)
        for p in (0.01, 0.1, 0.5):
            t = scheme.t_fail(p)
            assert scheme.params.l_rts + 1 <= t <= scheme.params.t_succeed

    def test_p_ww_uses_thinned_probability(self):
        scheme = make(DrtsDcts, n=3.0, theta_deg=36.0)
        p = 0.05
        p_dir = p * 36.0 / 360.0
        assert scheme.p_ww(p) == pytest.approx((1 - p) * math.exp(-p_dir * 3.0))

    def test_waits_less_than_omni(self):
        # Directional neighbours disturb a waiting node less often.
        p = 0.05
        assert make(DrtsDcts).p_ww(p) > make(OrtsOcts).p_ww(p)

    def test_interference_free_probability_bounded(self):
        scheme = make(DrtsDcts)
        for r in (0.0, 0.5, 1.0):
            assert 0.0 < scheme.interference_free_probability(r, 0.05) <= 1.0


class TestDrtsOcts:
    def test_p_ww_matches_omni(self):
        # The omni CTS exposes waiting nodes to the full neighborhood.
        p = 0.05
        assert make(DrtsOcts).p_ww(p) == pytest.approx(make(OrtsOcts).p_ww(p))

    def test_t_fail_lower_bound_includes_cts(self):
        scheme = make(DrtsOcts)
        lower = scheme.params.l_rts + scheme.params.l_cts + 2
        assert scheme.t_fail(0.01) >= lower

    def test_t_fail_above_drts_dcts(self):
        # The omni-CTS lower bound pushes the failed period up.
        for p in (0.01, 0.05, 0.2):
            assert make(DrtsOcts).t_fail(p) > make(DrtsDcts).t_fail(p)

    def test_outperforms_orts_octs_at_narrow_beam(self):
        # Section 3: DRTS-OCTS outperforms ORTS-OCTS (marginally).
        p = 0.04
        assert make(DrtsOcts, theta_deg=30.0).throughput(p) > make(
            OrtsOcts
        ).throughput(p)


class TestNonPersistentCsma:
    def test_t_succeed_excludes_handshake(self):
        scheme = make(NonPersistentCsma)
        assert scheme.t_succeed() == pytest.approx(100.0 + 5.0 + 2.0)

    def test_loses_badly_to_rts_cts_with_long_data(self):
        # The classic motivation for collision avoidance.
        p = 0.02
        assert make(NonPersistentCsma).throughput(p) < make(OrtsOcts).throughput(p)

    def test_t_fail_is_full_data_frame(self):
        scheme = make(NonPersistentCsma)
        assert scheme.t_fail(0.05) == pytest.approx(101.0)


class TestPaperHeadlineResults:
    """The qualitative claims of Section 3 (Fig. 5) as regression tests."""

    def test_drts_dcts_best_at_narrow_beamwidth(self):
        from repro.core import maximize_throughput

        best = {
            cls.name: maximize_throughput(make(cls, theta_deg=15.0)).throughput
            for cls in (OrtsOcts, DrtsDcts, DrtsOcts)
        }
        assert best["DRTS-DCTS"] > best["DRTS-OCTS"] > best["ORTS-OCTS"]

    def test_drts_dcts_degrades_with_beamwidth(self):
        from repro.core import maximize_throughput

        narrow = maximize_throughput(make(DrtsDcts, theta_deg=30.0)).throughput
        wide = maximize_throughput(make(DrtsDcts, theta_deg=150.0)).throughput
        assert narrow > wide

    def test_wide_beam_drts_dcts_loses_to_omni(self):
        # "When the antenna beamwidth is wider, the performance of
        # DRTS-DCTS drops significantly."
        from repro.core import maximize_throughput

        drts = maximize_throughput(make(DrtsDcts, theta_deg=180.0)).throughput
        omni = maximize_throughput(make(OrtsOcts)).throughput
        assert drts < omni
