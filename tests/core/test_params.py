"""Tests for protocol parameter validation and derived quantities."""

import math

import pytest

from repro.core.params import PAPER_PARAMETERS, ProtocolParameters


class TestProtocolParameters:
    def test_paper_configuration(self):
        assert PAPER_PARAMETERS.l_rts == 5.0
        assert PAPER_PARAMETERS.l_cts == 5.0
        assert PAPER_PARAMETERS.l_ack == 5.0
        assert PAPER_PARAMETERS.l_data == 100.0

    def test_t_succeed(self):
        # l_rts + l_cts + l_data + l_ack + 4 = 119 slots.
        assert PAPER_PARAMETERS.t_succeed == pytest.approx(119.0)

    def test_t_fail_omni(self):
        # l_rts + l_cts + 2 = 12 slots.
        assert PAPER_PARAMETERS.t_fail_omni == pytest.approx(12.0)

    def test_directional_fraction(self):
        params = ProtocolParameters(beamwidth=math.pi / 2)
        assert params.directional_fraction == pytest.approx(0.25)

    def test_with_beamwidth_returns_new_object(self):
        updated = PAPER_PARAMETERS.with_beamwidth(math.pi / 3)
        assert updated is not PAPER_PARAMETERS
        assert updated.beamwidth == pytest.approx(math.pi / 3)
        assert updated.l_data == PAPER_PARAMETERS.l_data

    def test_with_neighbors(self):
        updated = PAPER_PARAMETERS.with_neighbors(8.0)
        assert updated.n_neighbors == 8.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PAPER_PARAMETERS.l_rts = 7.0  # type: ignore[misc]

    @pytest.mark.parametrize("field", ["l_rts", "l_cts", "l_data", "l_ack"])
    def test_rejects_non_positive_lengths(self, field):
        with pytest.raises(ValueError):
            ProtocolParameters(**{field: 0.0})
        with pytest.raises(ValueError):
            ProtocolParameters(**{field: -1.0})

    def test_rejects_non_positive_density(self):
        with pytest.raises(ValueError):
            ProtocolParameters(n_neighbors=0.0)

    def test_rejects_bad_beamwidth(self):
        with pytest.raises(ValueError):
            ProtocolParameters(beamwidth=0.0)
        with pytest.raises(ValueError):
            ProtocolParameters(beamwidth=2 * math.pi + 0.1)

    def test_full_circle_beamwidth_allowed(self):
        params = ProtocolParameters(beamwidth=2 * math.pi)
        assert params.directional_fraction == pytest.approx(1.0)
