"""Monte-Carlo cross-validation of the analytical closed forms.

These tests execute an independent slot-level encoding of Section 2
(fresh Poisson fields per slot, Bernoulli transmissions per node) and
require statistical agreement with the exponential closed forms.
"""

import math
import random

import pytest

from repro.core import (
    PAPER_PARAMETERS,
    DrtsDcts,
    DrtsOcts,
    InterferenceConstraint,
    NonPersistentCsma,
    OrtsOcts,
    constraints_for,
    estimate_p_ws,
    estimate_p_ws_at_distance,
    simulate_node_chain,
)


def make(cls, n=3.0, theta_deg=60.0):
    return cls(
        PAPER_PARAMETERS.with_neighbors(n).with_beamwidth(math.radians(theta_deg))
    )


class TestConstraintTables:
    def test_orts_octs_has_two_constraints(self):
        constraints = constraints_for(make(OrtsOcts), 0.5, 0.05)
        assert len(constraints) == 2
        assert constraints[1].slots == 11  # 2 * 5 + 1

    def test_drts_dcts_has_six_constraints(self):
        constraints = constraints_for(make(DrtsDcts), 0.5, 0.05)
        assert len(constraints) == 6

    def test_drts_octs_has_four_constraints(self):
        constraints = constraints_for(make(DrtsOcts), 0.5, 0.05)
        assert len(constraints) == 4

    def test_csma_not_tabulated(self):
        with pytest.raises(TypeError):
            constraints_for(make(NonPersistentCsma), 0.5, 0.05)

    def test_constraint_validation(self):
        with pytest.raises(ValueError):
            InterferenceConstraint(area=-0.1, tx_probability=0.1, slots=1)
        with pytest.raises(ValueError):
            InterferenceConstraint(area=0.5, tx_probability=1.5, slots=1)
        with pytest.raises(ValueError):
            InterferenceConstraint(area=0.5, tx_probability=0.1, slots=-1)


class TestPwsAgreement:
    """Closed-form P_ws(r) must sit inside the Monte-Carlo interval."""

    @pytest.mark.parametrize("cls", [OrtsOcts, DrtsDcts, DrtsOcts])
    @pytest.mark.parametrize("r", [0.3, 0.8])
    def test_p_ws_at_distance(self, cls, r):
        scheme = make(cls)
        p = 0.05
        estimate = estimate_p_ws_at_distance(
            scheme, r, p, random.Random(42), samples=30_000
        )
        assert estimate.within(scheme.p_ws_at_distance(r, p)), (
            f"{cls.__name__} at r={r}: closed form "
            f"{scheme.p_ws_at_distance(r, p):.5f} vs MC {estimate.mean:.5f} "
            f"+- {estimate.std_error:.5f}"
        )

    @pytest.mark.parametrize("cls", [OrtsOcts, DrtsDcts, DrtsOcts])
    def test_p_ws_integrated(self, cls):
        scheme = make(cls)
        p = 0.05
        estimate = estimate_p_ws(scheme, p, random.Random(7), samples=40_000)
        assert estimate.within(scheme.p_ws(p)), (
            f"{cls.__name__}: closed form {scheme.p_ws(p):.5f} vs MC "
            f"{estimate.mean:.5f} +- {estimate.std_error:.5f}"
        )

    def test_denser_network_agreement(self):
        scheme = make(OrtsOcts, n=8.0)
        p = 0.02
        estimate = estimate_p_ws(scheme, p, random.Random(3), samples=40_000)
        assert estimate.within(scheme.p_ws(p))

    def test_rejects_bad_samples(self):
        with pytest.raises(ValueError):
            estimate_p_ws(make(OrtsOcts), 0.05, random.Random(0), samples=0)
        with pytest.raises(ValueError):
            estimate_p_ws_at_distance(
                make(OrtsOcts), 0.5, 0.05, random.Random(0), samples=-1
            )


class TestChainAgreement:
    """Renewal-reward walk must reproduce the Th formula."""

    @pytest.mark.parametrize("cls", [OrtsOcts, DrtsDcts, DrtsOcts])
    def test_throughput(self, cls):
        scheme = make(cls)
        p = 0.03
        empirical = simulate_node_chain(
            scheme, p, random.Random(11), transitions=300_000
        )
        analytical = scheme.throughput(p)
        assert empirical == pytest.approx(analytical, rel=0.03), (
            f"{cls.__name__}: formula {analytical:.4f} vs walk {empirical:.4f}"
        )

    def test_rejects_bad_transitions(self):
        with pytest.raises(ValueError):
            simulate_node_chain(make(OrtsOcts), 0.05, random.Random(0), 0)
