"""Tests for the BTMA baseline and the analytical service delay."""

import math

import pytest

from repro.core import (
    PAPER_PARAMETERS,
    DrtsDcts,
    IdealizedBtma,
    NonPersistentCsma,
    OrtsOcts,
    maximize_throughput,
)


def make(cls, n=5.0, theta_deg=30.0):
    return cls(
        PAPER_PARAMETERS.with_neighbors(n).with_beamwidth(math.radians(theta_deg))
    )


class TestIdealizedBtma:
    def test_beats_csma(self):
        # Perfect busy tones dominate plain carrier sensing.
        p = 0.02
        assert make(IdealizedBtma).throughput(p) > make(
            NonPersistentCsma
        ).throughput(p)

    def test_handshake_crossover_with_data_length(self):
        # The Section-3 warrant for RTS/CTS, as a crossover: with short
        # data BTMA's zero control overhead wins; with long data the
        # full-frame collision losses hand the win to the handshake.
        from repro.core.params import ProtocolParameters

        short = ProtocolParameters(l_data=10.0, n_neighbors=5.0)
        long = ProtocolParameters(l_data=100.0, n_neighbors=5.0)
        assert (
            maximize_throughput(IdealizedBtma(short)).throughput
            > maximize_throughput(OrtsOcts(short)).throughput
        )
        assert (
            maximize_throughput(IdealizedBtma(long)).throughput
            < maximize_throughput(OrtsOcts(long)).throughput
        )

    def test_loses_to_narrow_beam_reuse(self):
        # The paper's thesis in one comparison: perfect coordination
        # without spatial reuse loses to narrow-beam reuse.
        params_n8 = PAPER_PARAMETERS.with_neighbors(8.0)
        btma = maximize_throughput(IdealizedBtma(params_n8)).throughput
        drts = maximize_throughput(
            DrtsDcts(params_n8.with_beamwidth(math.radians(15)))
        ).throughput
        assert drts > btma

    def test_t_succeed_has_no_handshake(self):
        scheme = make(IdealizedBtma)
        assert scheme.t_succeed() == pytest.approx(107.0)  # 100 + 5 + 2

    def test_failure_wastes_data_frame(self):
        assert make(IdealizedBtma).t_fail(0.05) == pytest.approx(101.0)

    def test_throughput_bounded(self):
        scheme = make(IdealizedBtma)
        for p in (0.01, 0.05, 0.2):
            assert 0.0 < scheme.throughput(p) < 1.0


class TestExpectedServiceSlots:
    def test_inverse_of_throughput(self):
        scheme = make(OrtsOcts)
        p = 0.03
        assert scheme.expected_service_slots(p) == pytest.approx(
            scheme.params.l_data / scheme.throughput(p)
        )

    def test_directional_faster_at_narrow_beam(self):
        # Fig. 7's analytical counterpart: DRTS-DCTS serves packets
        # faster than ORTS-OCTS at its optimal operating point.
        orts = make(OrtsOcts)
        drts = make(DrtsDcts, theta_deg=15.0)
        p_orts = maximize_throughput(orts).p_opt
        p_drts = maximize_throughput(drts).p_opt
        assert drts.expected_service_slots(p_drts) < orts.expected_service_slots(
            p_orts
        )

    def test_more_than_one_handshake(self):
        scheme = make(OrtsOcts)
        assert scheme.expected_service_slots(0.03) > scheme.t_succeed()

    def test_degenerate_p_gives_huge_delay(self):
        scheme = make(OrtsOcts)
        assert scheme.expected_service_slots(1e-6) > 1e4

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            make(OrtsOcts).expected_service_slots(0.0)
