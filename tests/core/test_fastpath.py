"""Tests pinning the numpy fast path to the reference implementation."""

import math

import numpy as np
import pytest

from repro.core import PAPER_PARAMETERS, DrtsDcts, DrtsOcts, NonPersistentCsma, OrtsOcts
from repro.core.fastpath import p_ws_curve, throughput_curve


def make(cls, n=5.0, theta_deg=30.0, **kw):
    params = PAPER_PARAMETERS.with_neighbors(n).with_beamwidth(
        math.radians(theta_deg)
    )
    return cls(params, **kw)


P_GRID = np.array([0.005, 0.02, 0.05, 0.1, 0.2])


class TestAgainstReference:
    @pytest.mark.parametrize("cls", [OrtsOcts, DrtsDcts, DrtsOcts])
    def test_p_ws_matches_quadrature(self, cls):
        scheme = make(cls)
        fast = p_ws_curve(scheme, P_GRID)
        slow = np.array([scheme.p_ws(float(p)) for p in P_GRID])
        assert np.allclose(fast, slow, rtol=1e-3, atol=1e-9)

    @pytest.mark.parametrize("cls", [OrtsOcts, DrtsDcts, DrtsOcts])
    def test_throughput_matches_reference(self, cls):
        scheme = make(cls)
        fast = throughput_curve(scheme, P_GRID)
        slow = np.array([scheme.throughput(float(p)) for p in P_GRID])
        assert np.allclose(fast, slow, rtol=2e-3)

    @pytest.mark.parametrize("theta", [15.0, 90.0, 180.0])
    def test_beamwidth_coverage(self, theta):
        scheme = make(DrtsDcts, theta_deg=theta)
        fast = throughput_curve(scheme, P_GRID)
        slow = np.array([scheme.throughput(float(p)) for p in P_GRID])
        assert np.allclose(fast, slow, rtol=2e-3)

    def test_area3_span_factor_respected(self):
        paper = make(DrtsDcts, area3_span_factor=1.0)
        upper = make(DrtsDcts, area3_span_factor=2.0)
        fast_paper = throughput_curve(paper, P_GRID)
        fast_upper = throughput_curve(upper, P_GRID)
        assert (fast_upper <= fast_paper + 1e-12).all()
        slow_upper = np.array([upper.throughput(float(p)) for p in P_GRID])
        assert np.allclose(fast_upper, slow_upper, rtol=2e-3)


class TestValidation:
    def test_rejects_unsupported_scheme(self):
        with pytest.raises(TypeError):
            p_ws_curve(make(NonPersistentCsma), P_GRID)

    def test_rejects_bad_p(self):
        scheme = make(OrtsOcts)
        with pytest.raises(ValueError):
            p_ws_curve(scheme, np.array([0.0, 0.1]))
        with pytest.raises(ValueError):
            p_ws_curve(scheme, np.array([]))
        with pytest.raises(ValueError):
            p_ws_curve(scheme, np.array([[0.1]]))


class TestUsefulness:
    def test_dense_curve_is_fast_enough(self):
        import time

        scheme = make(DrtsDcts)
        grid = np.linspace(0.001, 0.3, 500)
        start = time.perf_counter()
        values = throughput_curve(scheme, grid)
        elapsed = time.perf_counter() - start
        assert values.shape == (500,)
        assert elapsed < 2.0  # the reference would take far longer

    def test_curve_is_unimodal_in_practice(self):
        scheme = make(OrtsOcts)
        grid = np.linspace(0.001, 0.4, 400)
        values = throughput_curve(scheme, grid)
        peak = values.argmax()
        assert (np.diff(values[: peak + 1]) >= -1e-9).all()
        assert (np.diff(values[peak:]) <= 1e-9).all()
