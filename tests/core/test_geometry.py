"""Unit and property tests for the analytical geometry helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.geometry import (
    disk_overlap_area,
    drts_dcts_areas,
    drts_octs_areas,
    hidden_area,
    q_takagi_kleinrock,
)


class TestQTakagiKleinrock:
    def test_at_zero(self):
        assert q_takagi_kleinrock(0.0) == pytest.approx(math.pi / 2)

    def test_at_one(self):
        assert q_takagi_kleinrock(1.0) == pytest.approx(0.0, abs=1e-12)

    def test_at_half(self):
        expected = math.acos(0.5) - 0.5 * math.sqrt(0.75)
        assert q_takagi_kleinrock(0.5) == pytest.approx(expected)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            q_takagi_kleinrock(-0.1)

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            q_takagi_kleinrock(1.1)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_range(self, t):
        assert 0.0 <= q_takagi_kleinrock(t) <= math.pi / 2 + 1e-12

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_monotone_decreasing(self, a, b):
        lo, hi = sorted((a, b))
        assert q_takagi_kleinrock(lo) >= q_takagi_kleinrock(hi) - 1e-12


class TestHiddenArea:
    def test_zero_distance_means_no_hidden_region(self):
        assert hidden_area(0.0) == pytest.approx(0.0, abs=1e-12)

    def test_at_full_range(self):
        # B(R) = pi R^2 - 2 R^2 q(1/2); normalized 1 - 2 q(0.5)/pi.
        expected = 1.0 - 2.0 * q_takagi_kleinrock(0.5) / math.pi
        assert hidden_area(1.0) == pytest.approx(expected)

    def test_known_takagi_kleinrock_value(self):
        # At r = R roughly 61% of the receiver's disk is hidden from the
        # sender: 1 - 2 q(0.5)/pi ~= 0.609.
        assert hidden_area(1.0) == pytest.approx(0.609, abs=1e-3)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_bounded(self, r):
        assert 0.0 <= hidden_area(r) <= 1.0

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_monotone_increasing(self, a, b):
        lo, hi = sorted((a, b))
        assert hidden_area(lo) <= hidden_area(hi) + 1e-12

    def test_overlap_plus_hidden_is_disk(self):
        for r in (0.0, 0.3, 0.7, 1.0):
            assert disk_overlap_area(r) + hidden_area(r) == pytest.approx(1.0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            disk_overlap_area(2.5)


class TestDrtsDctsAreas:
    def test_sector_area(self):
        areas = drts_dcts_areas(0.5, math.radians(30))
        assert areas.s1 == pytest.approx(math.radians(30) / (2 * math.pi))

    def test_receiver_and_sender_only_regions_equal(self):
        areas = drts_dcts_areas(0.6, math.radians(60))
        assert areas.s4 == pytest.approx(areas.s5)

    def test_s4_is_hidden_area(self):
        for r in (0.1, 0.5, 0.9):
            areas = drts_dcts_areas(r, math.radians(45))
            assert areas.s4 == pytest.approx(hidden_area(r))

    def test_zero_distance_collapses_sliver(self):
        # With x and y co-located the Area II triangle term vanishes.
        areas = drts_dcts_areas(0.0, math.radians(30))
        assert areas.s2 == pytest.approx(areas.s1)

    def test_wide_beam_clamps_rather_than_diverges(self):
        areas = drts_dcts_areas(0.9, math.pi)  # tan(theta/2) -> inf
        for value in areas.as_tuple():
            assert 0.0 <= value <= 1.0
            assert math.isfinite(value)

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.01, max_value=2 * math.pi),
    )
    def test_all_areas_in_unit_interval(self, r, theta):
        for value in drts_dcts_areas(r, theta).as_tuple():
            assert 0.0 <= value <= 1.0

    def test_rejects_bad_distance(self):
        with pytest.raises(ValueError):
            drts_dcts_areas(1.5, math.radians(30))

    def test_rejects_bad_beamwidth(self):
        with pytest.raises(ValueError):
            drts_dcts_areas(0.5, 0.0)
        with pytest.raises(ValueError):
            drts_dcts_areas(0.5, 3 * math.pi)


class TestDrtsOctsAreas:
    def test_partition_of_plane(self):
        # Areas I and II partition the normalized reachable plane.
        areas = drts_octs_areas(0.4, math.radians(90))
        assert areas.s1 + areas.s2 == pytest.approx(1.0)

    def test_s3_is_hidden_area(self):
        for r in (0.2, 0.5, 1.0):
            areas = drts_octs_areas(r, math.radians(90))
            assert areas.s3 == pytest.approx(hidden_area(r))

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.01, max_value=2 * math.pi),
    )
    def test_all_areas_in_unit_interval(self, r, theta):
        for value in drts_octs_areas(r, theta).as_tuple():
            assert 0.0 <= value <= 1.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            drts_octs_areas(-0.1, math.radians(30))
        with pytest.raises(ValueError):
            drts_octs_areas(0.5, -1.0)
