"""Tests for the truncated geometric failed-period distribution."""

import pytest
from hypothesis import given, strategies as st

from repro.core.truncgeom import truncated_geometric_mean, truncated_geometric_pmf


class TestTruncatedGeometricMean:
    def test_degenerate_interval(self):
        assert truncated_geometric_mean(0.3, 10.0, 10.0) == pytest.approx(10.0)

    def test_zero_p_hits_lower_bound(self):
        # With p = 0 the failure is always detected at the earliest slot.
        assert truncated_geometric_mean(0.0, 6.0, 119.0) == pytest.approx(6.0)

    def test_small_p_stays_near_lower_bound(self):
        mean = truncated_geometric_mean(0.05, 6.0, 119.0)
        assert 6.0 <= mean < 7.0

    def test_explicit_two_point_case(self):
        # lower=1, upper=2, p=0.5: masses 2/3 and 1/3 -> mean 4/3.
        assert truncated_geometric_mean(0.5, 1.0, 2.0) == pytest.approx(4.0 / 3.0)

    def test_matches_pmf_expectation(self):
        p, lo, hi = 0.2, 6.0, 119.0
        pmf = truncated_geometric_pmf(p, lo, hi)
        expected = sum(prob * (lo + i) for i, prob in enumerate(pmf))
        assert truncated_geometric_mean(p, lo, hi) == pytest.approx(expected)

    @given(
        st.floats(min_value=0.0, max_value=0.99),
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=0, max_value=200),
    )
    def test_mean_within_bounds(self, p, lower, span):
        upper = lower + span
        mean = truncated_geometric_mean(p, float(lower), float(upper))
        assert lower - 1e-9 <= mean <= upper + 1e-9

    @given(
        st.floats(min_value=0.0, max_value=0.9),
        st.floats(min_value=0.0, max_value=0.9),
    )
    def test_mean_increases_with_p(self, a, b):
        lo_p, hi_p = sorted((a, b))
        lo_mean = truncated_geometric_mean(lo_p, 6.0, 119.0)
        hi_mean = truncated_geometric_mean(hi_p, 6.0, 119.0)
        assert lo_mean <= hi_mean + 1e-9

    def test_rejects_p_one(self):
        with pytest.raises(ValueError):
            truncated_geometric_mean(1.0, 1.0, 5.0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            truncated_geometric_mean(0.1, 10.0, 5.0)

    def test_rejects_non_integer_span(self):
        with pytest.raises(ValueError):
            truncated_geometric_mean(0.1, 1.0, 2.5)

    def test_rejects_non_positive_bounds(self):
        with pytest.raises(ValueError):
            truncated_geometric_mean(0.1, 0.0, 5.0)


class TestTruncatedGeometricPmf:
    def test_sums_to_one(self):
        pmf = truncated_geometric_pmf(0.3, 6.0, 119.0)
        assert sum(pmf) == pytest.approx(1.0)

    def test_zero_p_is_point_mass(self):
        pmf = truncated_geometric_pmf(0.0, 6.0, 10.0)
        assert pmf[0] == pytest.approx(1.0)
        assert all(x == 0.0 for x in pmf[1:])

    def test_monotone_decreasing_mass(self):
        pmf = truncated_geometric_pmf(0.4, 1.0, 20.0)
        assert all(a >= b for a, b in zip(pmf, pmf[1:]))

    @given(
        st.floats(min_value=0.0, max_value=0.95),
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=0, max_value=100),
    )
    def test_valid_distribution(self, p, lower, span):
        pmf = truncated_geometric_pmf(p, float(lower), float(lower + span))
        assert len(pmf) == span + 1
        assert sum(pmf) == pytest.approx(1.0)
        assert all(x >= 0.0 for x in pmf)
