"""Tests for the three-state node Markov chain."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.markov import (
    StationaryDistribution,
    solve_node_chain,
    stationary_from_matrix,
)


class TestSolveNodeChain:
    def test_paper_closed_form(self):
        pi = solve_node_chain(p_ww=0.8, p_ws=0.05)
        assert pi.wait == pytest.approx(1.0 / (2.0 - 0.8))
        assert pi.succeed == pytest.approx(0.05 / (2.0 - 0.8))

    def test_never_waiting_splits_evenly(self):
        # P_ww = 0: the node alternates wait -> (succeed|fail) -> wait.
        pi = solve_node_chain(p_ww=0.0, p_ws=0.3)
        assert pi.wait == pytest.approx(0.5)
        assert pi.succeed == pytest.approx(0.15)
        assert pi.fail == pytest.approx(0.35)

    def test_always_waiting(self):
        pi = solve_node_chain(p_ww=1.0, p_ws=0.0)
        assert pi.wait == pytest.approx(1.0)
        assert pi.succeed == 0.0
        assert pi.fail == pytest.approx(0.0)

    def test_rejects_inconsistent_probabilities(self):
        with pytest.raises(ValueError):
            solve_node_chain(p_ww=0.9, p_ws=0.2)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            solve_node_chain(p_ww=-0.1, p_ws=0.1)
        with pytest.raises(ValueError):
            solve_node_chain(p_ww=0.5, p_ws=1.2)

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_valid_distribution(self, p_ww, scale):
        p_ws = (1.0 - p_ww) * scale
        pi = solve_node_chain(p_ww=p_ww, p_ws=p_ws)
        assert sum(pi.as_tuple()) == pytest.approx(1.0)
        assert all(0.0 <= x <= 1.0 for x in pi.as_tuple())
        # pi_w >= 1/2 because the chain returns to wait every other step.
        assert pi.wait >= 0.5 - 1e-12

    @given(
        st.floats(min_value=0.0, max_value=0.999),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_matches_matrix_solver(self, p_ww, scale):
        p_ws = (1.0 - p_ww) * scale
        p_wf = 1.0 - p_ww - p_ws
        transition = np.array(
            [
                [p_ww, p_ws, p_wf],
                [1.0, 0.0, 0.0],
                [1.0, 0.0, 0.0],
            ]
        )
        expected = stationary_from_matrix(transition)
        pi = solve_node_chain(p_ww=p_ww, p_ws=p_ws)
        assert pi.wait == pytest.approx(expected[0], abs=1e-8)
        assert pi.succeed == pytest.approx(expected[1], abs=1e-8)
        assert pi.fail == pytest.approx(expected[2], abs=1e-8)


class TestStationaryFromMatrix:
    def test_two_state_chain(self):
        matrix = np.array([[0.9, 0.1], [0.5, 0.5]])
        pi = stationary_from_matrix(matrix)
        # Detailed balance: pi0 * 0.1 = pi1 * 0.5.
        assert pi[0] == pytest.approx(5.0 / 6.0)
        assert pi[1] == pytest.approx(1.0 / 6.0)

    def test_identity_preserves_any_distribution_choice(self):
        pi = stationary_from_matrix(np.eye(3))
        assert pi.sum() == pytest.approx(1.0)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            stationary_from_matrix(np.ones((2, 3)) / 3.0)

    def test_rejects_non_stochastic(self):
        with pytest.raises(ValueError):
            stationary_from_matrix(np.array([[0.5, 0.4], [0.5, 0.5]]))

    def test_rejects_negative_entries(self):
        with pytest.raises(ValueError):
            stationary_from_matrix(np.array([[1.2, -0.2], [0.5, 0.5]]))


class TestStationaryDistribution:
    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError):
            StationaryDistribution(wait=0.5, succeed=0.1, fail=0.1)

    def test_rejects_negative_component(self):
        with pytest.raises(ValueError):
            StationaryDistribution(wait=1.2, succeed=-0.1, fail=-0.1)

    def test_as_tuple_roundtrip(self):
        pi = StationaryDistribution(wait=0.6, succeed=0.3, fail=0.1)
        assert pi.as_tuple() == (0.6, 0.3, 0.1)
