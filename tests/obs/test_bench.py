"""The bench harness behind the perf gate: payloads, baselines, CLI."""

import json

import pytest

from repro.obs.bench import (
    BASELINE_FORMAT,
    BENCH_FORMAT,
    baseline_from_payload,
    compare_to_baseline,
    main,
    run_suite,
)

# Tiny workloads: these tests exercise plumbing, not performance.
TINY = dict(
    kernel_events=200,
    timer_churn_restarts=200,
    slotsim_slots=200,
    slotsim_batch_slots=10,
    network_sim_seconds=0.01,
)


@pytest.fixture(scope="module")
def payload():
    return run_suite(1, **TINY)


class TestRunSuite:
    def test_payload_shape(self, payload):
        assert payload["format"] == BENCH_FORMAT
        assert payload["calibration_seconds"] > 0
        assert set(payload["cases"]) == {
            "dessim_event_kernel",
            "timer_churn",
            "slotsim_loop",
            "slotsim_batch",
            "network_cell",
            "network_large",
            "network_sinr",
            "mobility_churn",
            "multihop_medium",
            "lint_full_tree",
        }
        for case in payload["cases"].values():
            assert case["count"] > 0
            assert case["wall_seconds"] > 0
            assert case["per_sec"] > 0
            assert case["score"] > 0
            assert case["normalized_wall"] > 0

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError, match="repeats"):
            run_suite(0, **TINY)


class TestBaseline:
    def test_distills_scores_only(self, payload):
        baseline = baseline_from_payload(payload, tolerance=0.25)
        assert baseline["format"] == BASELINE_FORMAT
        assert baseline["tolerance"] == 0.25
        for name, case in payload["cases"].items():
            assert baseline["cases"][name] == {
                "score": case["score"],
                "normalized_wall": case["normalized_wall"],
            }

    def test_rejects_foreign_payload(self):
        with pytest.raises(ValueError, match="not a bench payload"):
            baseline_from_payload({"format": "nope"})


class TestCompare:
    def test_passes_against_own_baseline(self, payload):
        assert compare_to_baseline(payload, baseline_from_payload(payload)) == []

    def test_fails_when_baseline_tightened(self, payload):
        baseline = baseline_from_payload(payload)
        # Pretend the machine used to be 10x faster: every case regresses.
        for case in baseline["cases"].values():
            case["score"] *= 10
            case["normalized_wall"] /= 10
        failures = compare_to_baseline(payload, baseline)
        assert len(failures) == 2 * len(baseline["cases"])
        assert any("score" in f for f in failures)
        assert any("normalized wall" in f for f in failures)

    def test_missing_case_is_a_failure(self, payload):
        baseline = baseline_from_payload(payload)
        baseline["cases"]["brand_new_case"] = {"score": 1.0, "normalized_wall": 1.0}
        failures = compare_to_baseline(payload, baseline)
        assert failures == ["brand_new_case: missing from the measured suite"]

    def test_rejects_foreign_baseline(self, payload):
        with pytest.raises(ValueError, match="not a bench baseline"):
            compare_to_baseline(payload, {"format": "nope"})

    def test_rejects_silly_tolerance(self, payload):
        baseline = baseline_from_payload(payload)
        with pytest.raises(ValueError, match="tolerance"):
            compare_to_baseline(payload, baseline, tolerance=1.5)


class TestMain:
    ARGS = [
        "--repeats", "1",
        "--kernel-events", "200",
        "--slotsim-slots", "200",
        "--slotsim-batch-slots", "10",
        "--network-sim-seconds", "0.01",
    ]
    # The pass-then-check test needs workloads big enough that timer
    # granularity doesn't dominate, and a wide tolerance so only a
    # broken harness (not scheduler noise) can fail it.
    STABLE_ARGS = [
        "--repeats", "3",
        "--kernel-events", "5000",
        "--slotsim-slots", "1000",
        "--slotsim-batch-slots", "40",
        "--network-sim-seconds", "0.02",
        "--tolerance", "0.9",
    ]

    def test_writes_snapshot_and_baseline_then_gate_passes(self, tmp_path, capsys):
        out = tmp_path / "BENCH_telemetry.json"
        baseline = tmp_path / "baseline.json"
        argv = ["--out", str(out), "--write-baseline", str(baseline), *self.STABLE_ARGS]
        assert main(argv) == 0
        snapshot = json.loads(out.read_text())
        assert snapshot["format"] == BENCH_FORMAT
        assert json.loads(baseline.read_text())["format"] == BASELINE_FORMAT
        # Same process, immediately after: the gate must pass.
        assert main(["--out", str(out), "--check", str(baseline), *self.STABLE_ARGS]) == 0
        assert "perf gate OK" in capsys.readouterr().out

    def test_gate_fails_on_tightened_baseline(self, tmp_path, capsys):
        out = tmp_path / "BENCH_telemetry.json"
        baseline_path = tmp_path / "baseline.json"
        assert main(["--out", str(out), "--write-baseline", str(baseline_path), *self.ARGS]) == 0
        baseline = json.loads(baseline_path.read_text())
        for case in baseline["cases"].values():
            case["score"] *= 1000
        baseline_path.write_text(json.dumps(baseline))
        assert main(["--out", str(out), "--check", str(baseline_path), *self.ARGS]) == 1
        assert "PERF REGRESSION" in capsys.readouterr().err
