"""Unit tests for the metrics registry and its instruments."""

import pytest

from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_bounds,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("x")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError, match="cannot inc"):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        gauge = Gauge("depth")
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3


class TestHistogram:
    def test_upper_inclusive_bucketing_with_overflow(self):
        hist = Histogram("d", bounds=(10, 20, 30))
        hist.observe(10)  # first bucket: v <= 10
        hist.observe(11)  # second bucket
        hist.observe(30)  # third bucket
        hist.observe(31)  # overflow
        assert hist.counts == [1, 1, 1, 1]
        assert hist.count == 4
        assert hist.total == 82

    def test_weighted_observation(self):
        hist = Histogram("d", bounds=(10,))
        hist.observe(5, count=3)
        assert hist.counts == [3, 0]
        assert hist.mean == 5.0

    def test_mean_of_empty_is_zero(self):
        assert Histogram("d", bounds=(1,)).mean == 0.0

    def test_rejects_unordered_bounds(self):
        with pytest.raises(ValueError, match="strictly ascending"):
            Histogram("d", bounds=(10, 10))

    def test_rejects_empty_bounds(self):
        with pytest.raises(ValueError, match="at least one bound"):
            Histogram("d", bounds=())

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError, match="count must be >= 1"):
            Histogram("d", bounds=(1,)).observe(0, count=0)


class TestExponentialBounds:
    def test_geometric_growth(self):
        assert exponential_bounds(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            exponential_bounds(0.0, 2.0, 3)
        with pytest.raises(ValueError):
            exponential_bounds(1.0, 1.0, 3)
        with pytest.raises(ValueError):
            exponential_bounds(1.0, 2.0, 0)


class TestMetricsRegistry:
    def test_memoizes_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert len(registry) == 1

    def test_kind_collision_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError, match="is a Counter"):
            registry.gauge("a")

    def test_histogram_bounds_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1, 2))
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("h", bounds=(1, 3))

    def test_snapshot_is_sorted_and_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("z.count").inc(2)
        registry.counter("a.count").inc(1)
        registry.gauge("m.depth").set(5)
        registry.histogram("h.d", bounds=(10,)).observe(4)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a.count", "z.count"]
        assert snap["gauges"] == {"m.depth": 5}
        assert snap["histograms"]["h.d"] == {
            "bounds": [10],
            "counts": [1, 0],
            "count": 1,
            "total": 4,
        }

    def test_clear_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.clear()
        assert len(registry) == 0
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestDisabledRegistry:
    def test_hands_out_shared_null_instruments(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("a") is registry.counter("b")
        assert registry.gauge("a") is registry.gauge("b")
        assert registry.histogram("a", (1,)) is registry.histogram("b", (5, 9))

    def test_null_instruments_record_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("a").inc(100)
        registry.gauge("g").set(7)
        registry.histogram("h", (1,)).observe(3)
        assert len(registry) == 0
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_shared_null_registry_is_disabled(self):
        assert not NULL_REGISTRY.enabled
        NULL_REGISTRY.counter("x").inc()
        assert len(NULL_REGISTRY) == 0
