"""The determinism guard: observation must never change results.

Telemetry (metrics registry + profiler) is strictly write-only from the
simulation's point of view.  These tests pin that contract by running
the same cell with observation on and off and demanding bit-identical
results — for the dessim network cell down to the serialized JSON
artifact bytes, and for the slotsim engine down to dataclass equality.
"""

import json

from repro.core import PAPER_PARAMETERS
from repro.dessim import seconds
from repro.experiments import SimStudyConfig
from repro.experiments.campaign import CellSpec, run_cell_spec, run_cell_spec_telemetry
from repro.experiments.io import cell_to_payload
from repro.obs import MetricsRegistry, PhaseProfiler
from repro.slotsim import SlotModelConfig, SlotModelEngine


def _spec() -> CellSpec:
    config = SimStudyConfig(
        n_values=(3,),
        beamwidths_deg=(90.0,),
        schemes=("ORTS-OCTS",),
        topologies=1,
        sim_time_ns=seconds(0.05),
    )
    return CellSpec(3, "ORTS-OCTS", 90.0, config)


class TestDessimCellGuard:
    def test_metrics_and_profiler_do_not_change_the_cell(self):
        plain = run_cell_spec(_spec())
        observed = run_cell_spec(
            _spec(), metrics=MetricsRegistry(), profiler=PhaseProfiler()
        )
        assert plain == observed

    def test_serialized_artifact_bytes_identical(self):
        # The campaign store persists cell_to_payload JSON; telemetry on
        # vs off must produce the same bytes an artifact diff would see.
        plain = json.dumps(cell_to_payload(run_cell_spec(_spec())), sort_keys=True)
        cell, record = run_cell_spec_telemetry(_spec())
        observed = json.dumps(cell_to_payload(cell), sort_keys=True)
        assert plain == observed
        assert record["events_processed"] > 0  # observation did happen

    def test_disabled_registry_also_changes_nothing(self):
        plain = run_cell_spec(_spec())
        nulled = run_cell_spec(_spec(), metrics=MetricsRegistry(enabled=False))
        assert plain == nulled


class TestSlotsimGuard:
    def test_harvested_metrics_do_not_change_results(self):
        config = SlotModelConfig(
            params=PAPER_PARAMETERS.with_neighbors(3.0), p=0.05, seed=11
        )
        plain = SlotModelEngine(config).run(2_000)
        metrics = MetricsRegistry()
        observed = SlotModelEngine(config, metrics=metrics).run(2_000)
        assert plain == observed
        # ... and the harvest actually captured the run.
        snap = metrics.snapshot()
        assert snap["counters"]["slotsim.slots"] == 2_000
        assert snap["counters"]["slotsim.initiations"] == plain.initiations
