"""Unit tests for the phase profiler (injected fake clock throughout)."""

import pytest

from repro.obs.profile import (
    CallbackProfiler,
    PhaseProfiler,
    classify_callback,
    format_callback_profile,
    format_profile,
    wall_clock,
)


class FakeClock:
    """Deterministic clock: every read advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestPhaseProfiler:
    def test_phase_times_the_block(self):
        profiler = PhaseProfiler(clock=FakeClock(step=2.0))
        with profiler.phase("work"):
            pass
        assert profiler.seconds("work") == 2.0
        assert profiler.total_seconds == 2.0

    def test_phases_accumulate_on_reentry(self):
        profiler = PhaseProfiler(clock=FakeClock(step=1.0))
        for _ in range(3):
            with profiler.phase("loop"):
                pass
        (record,) = profiler.phases
        assert record.label == "loop"
        assert record.seconds == 3.0
        assert record.entries == 3

    def test_phase_records_even_when_block_raises(self):
        profiler = PhaseProfiler(clock=FakeClock(step=1.0))
        with pytest.raises(RuntimeError):
            with profiler.phase("boom"):
                raise RuntimeError("x")
        assert profiler.seconds("boom") == 1.0

    def test_phases_keep_first_entered_order(self):
        profiler = PhaseProfiler(clock=FakeClock())
        for label in ("topology gen", "build", "event loop", "build"):
            with profiler.phase(label):
                pass
        assert [r.label for r in profiler.phases] == [
            "topology gen",
            "build",
            "event loop",
        ]

    def test_add_records_external_seconds(self):
        profiler = PhaseProfiler(clock=FakeClock())
        profiler.add("reduce", 0.5)
        profiler.add("reduce", 0.25)
        assert profiler.seconds("reduce") == 0.75

    def test_add_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            PhaseProfiler(clock=FakeClock()).add("x", -1.0)

    def test_rate(self):
        profiler = PhaseProfiler(clock=FakeClock(step=2.0))
        with profiler.phase("event loop"):
            pass
        assert profiler.rate(1000, "event loop") == 500.0
        assert profiler.rate(1000, "never entered") == 0.0

    def test_as_dict_is_json_ready(self):
        profiler = PhaseProfiler(clock=FakeClock(step=1.0))
        with profiler.phase("a"):
            pass
        assert profiler.as_dict() == {"a": 1.0}

    def test_untimed_phase_reads_zero(self):
        assert PhaseProfiler(clock=FakeClock()).seconds("nope") == 0.0


class TestFormatProfile:
    def test_table_has_phases_total_and_rates(self):
        profiler = PhaseProfiler(clock=FakeClock(step=1.0))
        with profiler.phase("event loop"):
            pass
        text = format_profile(profiler, [("events/sec", 5000, "event loop")])
        assert "event loop" in text
        assert "total" in text
        assert "events/sec" in text
        assert "5,000" in text

    def test_empty_profiler_renders_placeholder(self):
        assert "no phases recorded" in format_profile(PhaseProfiler(clock=FakeClock()))


class TestClassifyCallback:
    def test_bound_methods_classify_by_owner_module(self):
        from repro.dessim import Simulator, Timer

        sim = Simulator()
        timer = Timer(sim, "t", lambda: None)
        assert classify_callback(sim.run).startswith("dessim: Simulator.run")
        assert classify_callback(timer.cancel).startswith("dessim: Timer.cancel")

    def test_plain_functions_classify_by_own_module(self):
        from repro.dessim.units import seconds

        assert classify_callback(seconds) == "dessim: seconds"

    def test_unknown_callables_land_in_other(self):
        assert classify_callback(lambda: None).startswith("other: ")
        assert classify_callback([].append).startswith("other: ")


class TestCallbackProfiler:
    def test_dispatch_hook_breaks_down_a_run_by_callback(self):
        """Hooked run: same observable behavior, per-callback buckets."""
        from repro.dessim import Simulator

        sim = Simulator()
        fired = []
        profiler = CallbackProfiler(clock=FakeClock(step=0.5))
        sim.dispatch_hook = profiler
        for delay in (5, 5, 10):
            sim.schedule(delay, fired.append, len(fired))
        sim.run()
        assert len(fired) == 3
        assert sim.events_processed == 3
        records = profiler.records
        assert len(records) == 1  # all three fires share one key
        assert records[0].entries == 3
        assert records[0].seconds == 1.5
        assert profiler.total_seconds == 1.5

    def test_records_sorted_most_expensive_first(self):
        class Slow:
            def cb(self):
                pass

        clock = FakeClock(step=0.0)

        def stepping():
            # 1s for the first callback, 3s for every later one.
            clock.step = 3.0 if clock.now else 1.0
            return clock()

        from repro.dessim import Simulator

        sim = Simulator()
        profiler = CallbackProfiler(clock=stepping)
        sim.dispatch_hook = profiler
        sim.schedule(1, lambda: None)
        sim.schedule(2, Slow().cb)
        sim.run()
        labels = [record.label for record in profiler.records]
        assert labels[0].endswith("Slow.cb")
        assert profiler.as_dict()[labels[0]]["calls"] == 1

    def test_format_renders_table_and_empty_placeholder(self):
        assert "no callbacks dispatched" in format_callback_profile(
            CallbackProfiler(clock=FakeClock())
        )

        from repro.dessim import Simulator

        sim = Simulator()
        profiler = CallbackProfiler(clock=FakeClock(step=1.0))
        sim.dispatch_hook = profiler
        sim.schedule(1, lambda: None)
        sim.run()
        table = format_callback_profile(profiler)
        assert "callback" in table and "total" in table
        assert "100.0%" in table

    def test_hooked_run_matches_plain_run_on_both_engines(self):
        from repro.dessim import make_simulator

        for engine in ("wheel", "heap"):
            traces = []
            for hooked in (False, True):
                sim = make_simulator(scheduler=engine)
                trace = []

                def chain(n):
                    trace.append((sim.now, n))
                    if n:
                        sim.schedule(7, chain, n - 1)

                if hooked:
                    sim.dispatch_hook = CallbackProfiler(clock=FakeClock())
                sim.schedule(0, chain, 5)
                sim.schedule(14, trace.append, "tie")
                sim.run()
                traces.append(trace)
            assert traces[0] == traces[1], engine


class TestWallClock:
    def test_is_monotonic_nondecreasing(self):
        a = wall_clock()
        b = wall_clock()
        assert b >= a
