"""Unit tests for the phase profiler (injected fake clock throughout)."""

import pytest

from repro.obs.profile import PhaseProfiler, format_profile, wall_clock


class FakeClock:
    """Deterministic clock: every read advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestPhaseProfiler:
    def test_phase_times_the_block(self):
        profiler = PhaseProfiler(clock=FakeClock(step=2.0))
        with profiler.phase("work"):
            pass
        assert profiler.seconds("work") == 2.0
        assert profiler.total_seconds == 2.0

    def test_phases_accumulate_on_reentry(self):
        profiler = PhaseProfiler(clock=FakeClock(step=1.0))
        for _ in range(3):
            with profiler.phase("loop"):
                pass
        (record,) = profiler.phases
        assert record.label == "loop"
        assert record.seconds == 3.0
        assert record.entries == 3

    def test_phase_records_even_when_block_raises(self):
        profiler = PhaseProfiler(clock=FakeClock(step=1.0))
        with pytest.raises(RuntimeError):
            with profiler.phase("boom"):
                raise RuntimeError("x")
        assert profiler.seconds("boom") == 1.0

    def test_phases_keep_first_entered_order(self):
        profiler = PhaseProfiler(clock=FakeClock())
        for label in ("topology gen", "build", "event loop", "build"):
            with profiler.phase(label):
                pass
        assert [r.label for r in profiler.phases] == [
            "topology gen",
            "build",
            "event loop",
        ]

    def test_add_records_external_seconds(self):
        profiler = PhaseProfiler(clock=FakeClock())
        profiler.add("reduce", 0.5)
        profiler.add("reduce", 0.25)
        assert profiler.seconds("reduce") == 0.75

    def test_add_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            PhaseProfiler(clock=FakeClock()).add("x", -1.0)

    def test_rate(self):
        profiler = PhaseProfiler(clock=FakeClock(step=2.0))
        with profiler.phase("event loop"):
            pass
        assert profiler.rate(1000, "event loop") == 500.0
        assert profiler.rate(1000, "never entered") == 0.0

    def test_as_dict_is_json_ready(self):
        profiler = PhaseProfiler(clock=FakeClock(step=1.0))
        with profiler.phase("a"):
            pass
        assert profiler.as_dict() == {"a": 1.0}

    def test_untimed_phase_reads_zero(self):
        assert PhaseProfiler(clock=FakeClock()).seconds("nope") == 0.0


class TestFormatProfile:
    def test_table_has_phases_total_and_rates(self):
        profiler = PhaseProfiler(clock=FakeClock(step=1.0))
        with profiler.phase("event loop"):
            pass
        text = format_profile(profiler, [("events/sec", 5000, "event loop")])
        assert "event loop" in text
        assert "total" in text
        assert "events/sec" in text
        assert "5,000" in text

    def test_empty_profiler_renders_placeholder(self):
        assert "no phases recorded" in format_profile(PhaseProfiler(clock=FakeClock()))


class TestWallClock:
    def test_is_monotonic_nondecreasing(self):
        a = wall_clock()
        b = wall_clock()
        assert b >= a
