"""JSONL telemetry: record shape, file round-trip, campaign integration."""

import json

import pytest

from repro.dessim import seconds
from repro.experiments import SimStudyConfig, run_campaign
from repro.experiments.campaign import (
    CampaignStore,
    CellSpec,
    run_cell_spec_telemetry,
)
from repro.obs.telemetry import (
    TELEMETRY_FORMAT,
    append_telemetry,
    read_telemetry,
    summarize_cells,
    telemetry_record,
)


def tiny_config(**overrides) -> SimStudyConfig:
    defaults = dict(
        n_values=(3,),
        beamwidths_deg=(90.0,),
        schemes=("ORTS-OCTS",),
        topologies=1,
        sim_time_ns=seconds(0.05),
    )
    defaults.update(overrides)
    return SimStudyConfig(**defaults)


class TestRecordPrimitives:
    def test_record_carries_format_and_kind(self):
        record = telemetry_record("cell", key="x", n=3)
        assert record["format"] == TELEMETRY_FORMAT
        assert record["kind"] == "cell"
        assert record["n"] == 3

    def test_empty_kind_rejected(self):
        with pytest.raises(ValueError, match="non-empty kind"):
            telemetry_record("")

    def test_append_and_read_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        first = telemetry_record("cell", key="a", wall_seconds=1.5)
        second = telemetry_record("cell", key="b", wall_seconds=0.5)
        append_telemetry(path, first)
        append_telemetry(path, second)
        assert read_telemetry(path) == [first, second]

    def test_append_refuses_untagged_record(self, tmp_path):
        with pytest.raises(ValueError, match="refusing to write"):
            append_telemetry(tmp_path / "t.jsonl", {"kind": "cell"})

    def test_read_rejects_corrupt_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"format": "repro-telemetry-v1", "kind": "cell"}\n{oops\n')
        with pytest.raises(ValueError, match="t.jsonl:2"):
            read_telemetry(path)

    def test_read_rejects_foreign_format(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError, match="not a telemetry record"):
            read_telemetry(path)

    def test_lines_are_single_compact_json(self, tmp_path):
        path = tmp_path / "t.jsonl"
        append_telemetry(path, telemetry_record("cell", nested={"a": [1, 2]}))
        (line,) = path.read_text().splitlines()
        assert json.loads(line)["nested"] == {"a": [1, 2]}


class TestSummarizeCells:
    def test_totals_and_pooled_rate(self):
        records = [
            telemetry_record("cell", wall_seconds=2.0, events_processed=100),
            telemetry_record("cell", wall_seconds=3.0, events_processed=400),
            telemetry_record("note", wall_seconds=99.0),  # ignored: not a cell
        ]
        summary = summarize_cells(records)
        assert summary["cells"] == 2
        assert summary["wall_seconds"] == 5.0
        assert summary["events_processed"] == 500
        assert summary["events_per_sec"] == 100.0

    def test_empty_is_zeroed(self):
        summary = summarize_cells([])
        assert summary["cells"] == 0
        assert summary["events_per_sec"] == 0.0


class TestCellTelemetry:
    def test_worker_variant_returns_result_and_record(self):
        config = tiny_config()
        spec = CellSpec(3, "ORTS-OCTS", 90.0, config)
        cell, record = run_cell_spec_telemetry(spec)
        assert cell.n == 3
        assert record["format"] == TELEMETRY_FORMAT
        assert record["kind"] == "cell"
        assert record["key"] == spec.key
        assert record["replicates"] == config.topologies
        assert record["events_processed"] > 0
        assert record["wall_seconds"] > 0
        assert record["events_per_sec"] > 0
        assert set(record["phases"]) >= {"topology gen", "build", "event loop"}
        assert record["counters"]["dessim.events"] == record["events_processed"]
        # JSON-serializable end to end (this is what hits the JSONL file).
        json.dumps(record)


class TestCampaignIntegration:
    def test_campaign_writes_one_line_per_cell_and_merges_manifest(self, tmp_path):
        config = tiny_config(schemes=("ORTS-OCTS", "DRTS-DCTS"))
        results = run_campaign(config, workers=1, directory=tmp_path)
        store = CampaignStore(tmp_path, config)
        records = store.load_telemetry()
        assert len(records) == len(results) == 2
        assert {r["key"] for r in records} == {
            "n3-ORTS-OCTS-bw90",
            "n3-DRTS-DCTS-bw90",
        }
        manifest = json.loads((tmp_path / "campaign.json").read_text())
        assert manifest["telemetry"]["cells"] == 2
        assert manifest["telemetry"]["events_processed"] == sum(
            r["events_processed"] for r in records
        )

    def test_resume_does_not_duplicate_telemetry(self, tmp_path):
        config = tiny_config()
        run_campaign(config, workers=1, directory=tmp_path)
        lines_before = (tmp_path / "telemetry.jsonl").read_text().splitlines()
        resumed = run_campaign(config, workers=1, directory=tmp_path)
        lines_after = (tmp_path / "telemetry.jsonl").read_text().splitlines()
        assert lines_before == lines_after
        assert len(resumed) == 1

    def test_telemetry_off_writes_nothing(self, tmp_path):
        run_campaign(tiny_config(), workers=1, directory=tmp_path, telemetry=False)
        assert not (tmp_path / "telemetry.jsonl").exists()
        manifest = json.loads((tmp_path / "campaign.json").read_text())
        assert "telemetry" not in manifest

    def test_parallel_campaign_telemetry_matches_cell_count(self, tmp_path):
        config = tiny_config(schemes=("ORTS-OCTS", "DRTS-DCTS"))
        run_campaign(config, workers=2, directory=tmp_path)
        store = CampaignStore(tmp_path, config)
        records = store.load_telemetry()
        cell_records = [r for r in records if r["kind"] == "cell"]
        assert {r["key"] for r in cell_records} == {
            "n3-ORTS-OCTS-bw90",
            "n3-DRTS-DCTS-bw90",
        }
        # The sharded path also writes one scheduler-summary record per
        # shard, excluded from the manifest's cell totals.
        shard_records = [r for r in records if r["kind"] == "shard"]
        assert shard_records
        for record in shard_records:
            assert "scheduler" in record
        manifest = json.loads((tmp_path / "campaign.json").read_text())
        assert manifest["telemetry"]["cells"] == 2
