"""Smoke tests for the runnable examples."""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


class TestExamplesCompile:
    @pytest.mark.parametrize(
        "name",
        [
            "quickstart.py",
            "analytical_study.py",
            "sim_throughput_study.py",
            "fairness_study.py",
            "mobility_study.py",
            "multihop_study.py",
            "scripted_scenario.py",
        ],
    )
    def test_compiles(self, name):
        py_compile.compile(str(EXAMPLES / name), doraise=True)


class TestQuickstartRuns:
    def test_quickstart_output(self):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "Analytical model" in proc.stdout
        assert "throughput" in proc.stdout
        assert "Mbps" in proc.stdout


class TestScriptedScenarioRuns:
    def test_narration(self):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / "scripted_scenario.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "completed a four-way handshake" in proc.stdout
        # The NAV held node c back until node a finished.
        assert "node c: sent an RTS" in proc.stdout
