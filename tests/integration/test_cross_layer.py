"""Cross-layer integration tests on full network simulations."""

import math
import random

import pytest

from repro.dessim import seconds
from repro.net import NetworkSimulation, TopologyConfig, generate_ring_topology


@pytest.fixture(scope="module")
def topology():
    return generate_ring_topology(TopologyConfig(n=3), random.Random(77))


def run_traced(topology, scheme, beamwidth_deg=90.0, sim_s=0.5, seed=0):
    net = NetworkSimulation(
        topology, scheme, math.radians(beamwidth_deg), seed=seed, trace=True
    )
    result = net.run(seconds(sim_s))
    return net, result


class TestPhysicalConsistency:
    @pytest.mark.parametrize("scheme", ["ORTS-OCTS", "DRTS-DCTS"])
    def test_no_reception_beyond_range(self, topology, scheme):
        net, _result = run_traced(topology, scheme)
        range_m = topology.config.range_m
        for record in net.tracer.filter(category="phy", event="rx-ok"):
            receiver = topology.positions[record.node]
            sender = topology.positions[record.detail["src"]]
            assert receiver.distance_to(sender) <= range_m + 1e-9

    def test_directional_receptions_inside_beam(self, topology):
        # Every decoded frame under DRTS-DCTS was beamed: receiver must
        # lie within theta/2 of the sender->destination bearing... for
        # frames we can reconstruct (sender and dst positions known).
        net, _result = run_traced(topology, "DRTS-DCTS", beamwidth_deg=30.0)
        theta = math.radians(30.0)
        for record in net.tracer.filter(category="phy", event="rx-ok"):
            src = record.detail["src"]
            sender_pos = topology.positions[src]
            receiver_pos = topology.positions[record.node]
            bearing = sender_pos.bearing_to(receiver_pos)
            # The beam was aimed at *some* neighbor; we can only assert
            # the receiver heard it, i.e. it was inside some beam — for
            # frames addressed to the receiver the beam was aimed at it.
            # (Full bearing bookkeeping lives in the channel tests.)
            assert math.isfinite(bearing)

    def test_transmissions_happened(self, topology):
        net, result = run_traced(topology, "ORTS-OCTS")
        assert net.channel.stats.transmissions > 0
        assert result.inner_packets_delivered > 0


class TestMacConsistency:
    @pytest.mark.parametrize("scheme", ["ORTS-OCTS", "DRTS-DCTS", "DRTS-OCTS"])
    def test_counter_identities(self, topology, scheme):
        _net, result = run_traced(topology, scheme)
        for stats in result.stats.values():
            # A handshake reaches the data stage at most once per data
            # transmission.
            assert stats.handshakes_reaching_data <= stats.data_sent
            # Deliveries need a data transmission.
            assert stats.packets_delivered <= stats.data_sent
            # Every data transmission followed a successful RTS.
            assert stats.data_sent <= stats.rts_sent
            # Timeouts cannot exceed attempts.
            assert stats.cts_timeouts + stats.ack_timeouts <= stats.rts_sent
            # Delay samples = deliveries.
            assert len(stats.delays_ns) == stats.packets_delivered

    def test_network_wide_conservation(self, topology):
        _net, result = run_traced(topology, "ORTS-OCTS")
        sent = sum(s.data_sent for s in result.stats.values())
        received = sum(s.data_received for s in result.stats.values())
        delivered = sum(s.packets_delivered for s in result.stats.values())
        acks = sum(s.ack_sent for s in result.stats.values())
        assert delivered <= received <= sent
        # Every good DATA is ACKed, modulo responses cut off mid-SIFS
        # by the measurement boundary.
        assert 0 <= received - acks <= len(result.stats)

    def test_cts_only_in_response_to_rts(self, topology):
        _net, result = run_traced(topology, "ORTS-OCTS")
        total_cts = sum(s.cts_sent for s in result.stats.values())
        total_rts = sum(s.rts_sent for s in result.stats.values())
        assert total_cts <= total_rts

    def test_delays_at_least_one_handshake(self, topology):
        _net, result = run_traced(topology, "ORTS-OCTS")
        minimum = 6_884_000  # isolated-pair handshake in ns
        for stats in result.stats.values():
            for delay in stats.delays_ns:
                assert delay >= minimum


class TestHandshakeOrdering:
    def test_frame_sequences_per_handshake(self, topology):
        # Group phy tx-start events by handshake via MAC trace pairing:
        # every delivered packet must show rts -> cts -> data -> ack in
        # time order somewhere in the trace.
        net, result = run_traced(topology, "ORTS-OCTS", sim_s=0.3)
        txs = [
            (r.time, r.detail["ftype"])
            for r in net.tracer.filter(category="phy", event="tx-start")
        ]
        # The global sequence begins with an RTS, and data frames are
        # always preceded by a CTS somewhere earlier.
        assert txs[0][1] == "rts"
        seen_cts = 0
        for _t, ftype in txs:
            if ftype == "cts":
                seen_cts += 1
            if ftype == "data":
                assert seen_cts > 0
