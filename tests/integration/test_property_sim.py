"""Property-based stress tests: random networks must uphold invariants.

Hypothesis generates small random node layouts, schemes and beamwidths;
every generated network is run saturated for a short interval and must
satisfy the cross-layer invariants (no crashes, counter identities,
conservation, valid metric ranges).
"""

import math

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.dessim import RngRegistry, Simulator, seconds
from repro.mac import DSSS_MAC, DcfMac, NeighborTable, POLICIES
from repro.phy import Channel, Position, Radio, UnitDiskPropagation
from repro.traffic import SaturatedCbrSource

position = st.tuples(
    st.floats(min_value=-400.0, max_value=400.0),
    st.floats(min_value=-400.0, max_value=400.0),
)


def distinct_positions(min_size, max_size):
    return st.lists(
        position, min_size=min_size, max_size=max_size, unique=True
    ).filter(
        lambda pts: all(
            math.hypot(a[0] - b[0], a[1] - b[1]) > 1.0
            for i, a in enumerate(pts)
            for b in pts[i + 1 :]
        )
    )


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
@given(
    points=distinct_positions(3, 7),
    scheme=st.sampled_from(sorted(POLICIES)),
    beamwidth_deg=st.sampled_from([20.0, 60.0, 120.0, 200.0, 360.0]),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_random_saturated_network_invariants(points, scheme, beamwidth_deg, seed):
    sim = Simulator()
    channel = Channel(sim, propagation=UnitDiskPropagation(range_m=300.0))
    rng = RngRegistry(seed)
    macs = {}
    for node_id, (x, y) in enumerate(points):
        radio = Radio(sim, node_id, Position(x, y), channel)
        macs[node_id] = DcfMac(
            sim, radio, DSSS_MAC, NeighborTable(channel, node_id),
            POLICIES[scheme], beamwidth=math.radians(beamwidth_deg),
            rng=rng.stream(f"mac{node_id}"),
        )
    sources = []
    for node_id, mac in macs.items():
        neighbors = channel.neighbors_of(node_id)
        if neighbors:
            sources.append(
                SaturatedCbrSource(
                    sim, mac, sorted(neighbors), rng.stream(f"t{node_id}")
                )
            )
    for source in sources:
        source.start()

    sim.run(until=seconds(0.3))

    # --- invariants ---
    total_delivered = 0
    total_received = 0
    total_acks = 0
    for mac in macs.values():
        stats = mac.stats
        assert stats.data_sent <= stats.rts_sent
        assert stats.packets_delivered <= stats.data_sent
        assert stats.handshakes_reaching_data <= stats.data_sent
        assert stats.cts_timeouts + stats.ack_timeouts <= stats.rts_sent
        assert len(stats.delays_ns) == stats.packets_delivered
        assert all(d > 0 for d in stats.delays_ns)
        assert 0.0 <= stats.collision_ratio <= 1.0
        assert DSSS_MAC.cw_min <= mac.backoff.cw <= DSSS_MAC.cw_max
        total_delivered += stats.packets_delivered
        total_received += stats.data_received
        total_acks += stats.ack_sent
    assert total_delivered <= total_received
    # Every received DATA is ACKed, except responses still inside their
    # SIFS window when the measurement boundary cuts the run (at most
    # one in-flight response per node).
    assert 0 <= total_received - total_acks <= len(macs)

    # If anyone had a neighbor, the network made progress.
    if sources:
        total_rts = sum(m.stats.rts_sent for m in macs.values())
        assert total_rts > 0
