"""Unit-disk reception equivalence pins and SINR study round-trips.

The reception refactor moved the legacy collision logic out of
:class:`~repro.phy.Radio` into :class:`~repro.phy.reception.
UnitDiskReception`.  The pins here were captured on the pre-refactor
tree: byte-identical campaign artifacts (SHA-256 of the cell JSON) and
exact simulation metrics, for both capture settings of the legacy
model.  If any of them moves, the refactor changed physics.
"""

import dataclasses
import hashlib
import math

import pytest

from repro.dessim import seconds
from repro.experiments import (
    SimStudyConfig,
    SinrStudyConfig,
    replicate_seed,
    replicate_topology,
    run_campaign,
    run_sinr_study,
)
from repro.experiments.io import load_cell_json
from repro.experiments.sinr_study import SinrReplicateMetrics
from repro.net.network import NetworkSimulation
from repro.phy import PhyConfig, PhyParameters

#: SHA-256 of each campaign cell artifact for the pinned grid below,
#: captured before the reception subsystem existed.
GOLDEN_CELL_HASHES = {
    "cell-n3-DRTS-DCTS-bw30.json": (
        "d608b8a9cb4a6528d624284d0e173a06109124e233963040b0833f05f6634a2e"
    ),
    "cell-n3-DRTS-DCTS-bw90.json": (
        "692ec4ff67f7d6ee2ae2cabfa983e71c8d2923809396ffc2855aad90635f103c"
    ),
    "cell-n3-ORTS-OCTS-bw30.json": (
        "deb0bd4dae29a160d78c0f2313c9413b4f8060beb4a78ffddbf91a7880ab1492"
    ),
    "cell-n3-ORTS-OCTS-bw90.json": (
        "79358f77a22ee787926bb16dc1b9afc611d7ca2a71347d3ee130fc9540a6f0da"
    ),
}


def pinned_config():
    return SimStudyConfig(
        n_values=(3,),
        beamwidths_deg=(30.0, 90.0),
        schemes=("ORTS-OCTS", "DRTS-DCTS"),
        topologies=1,
        sim_time_ns=seconds(0.2),
    )


def run_pinned(capture_threshold):
    sim = NetworkSimulation(
        replicate_topology(2003, 3, 0),
        "DRTS-OCTS",
        math.radians(90),
        seed=replicate_seed(2003, 3, 0),
        phy_params=PhyParameters(capture_threshold=capture_threshold),
    )
    return sim.run(seconds(0.2))


class TestUnitDiskGoldenPins:
    def test_campaign_artifacts_bit_identical(self, tmp_path):
        run_campaign(
            pinned_config(), workers=1, directory=tmp_path, telemetry=False
        )
        hashes = {
            path.name: hashlib.sha256(path.read_bytes()).hexdigest()
            for path in tmp_path.glob("cell-*.json")
        }
        assert hashes == GOLDEN_CELL_HASHES

    def test_no_capture_metrics_exact(self):
        result = run_pinned(None)
        assert result.inner_throughput_bps == 992800.0
        assert result.inner_mean_delay_s == 0.010757764705882354
        assert result.inner_collision_ratio == 0.2608695652173913
        assert result.inner_fairness == 0.3333333333333333
        assert result.inner_packets_delivered == 17
        assert result.frames_captured == 0
        assert result.frames_sinr_dropped == 0

    def test_legacy_capture_metrics_exact(self):
        result = run_pinned(10.0)
        assert result.inner_throughput_bps == 584000.0
        assert result.inner_mean_delay_s == 0.0087753
        assert result.inner_collision_ratio == 0.2857142857142857
        assert result.inner_fairness == 0.3333333333333333
        assert result.inner_packets_delivered == 10

    def test_explicit_phy_config_is_the_default(self):
        implicit = run_pinned(None)
        sim = NetworkSimulation(
            replicate_topology(2003, 3, 0),
            "DRTS-OCTS",
            math.radians(90),
            seed=replicate_seed(2003, 3, 0),
            phy_config=PhyConfig(model="unitdisk"),
        )
        explicit = sim.run(seconds(0.2))
        assert explicit.inner_throughput_bps == implicit.inner_throughput_bps
        assert explicit.inner_mean_delay_s == implicit.inner_mean_delay_s
        assert {n: s.packets_delivered for n, s in explicit.stats.items()} == {
            n: s.packets_delivered for n, s in implicit.stats.items()
        }


def tiny_sinr_config():
    return SinrStudyConfig(
        n_values=(3,),
        beamwidths_deg=(90.0,),
        schemes=("DRTS-OCTS",),
        topologies=1,
        sim_time_ns=seconds(0.2),
    )


class TestSinrStudy:
    def test_unitdisk_arm_matches_plain_campaign_bytes(self, tmp_path):
        cfg = tiny_sinr_config()
        run_sinr_study(
            cfg,
            capture_db_values=(10.0,),
            directory=tmp_path / "sinr",
            telemetry=False,
        )
        plain = dataclasses.replace(
            SimStudyConfig(
                n_values=cfg.n_values,
                beamwidths_deg=cfg.beamwidths_deg,
                schemes=cfg.schemes,
                topologies=cfg.topologies,
                sim_time_ns=cfg.sim_time_ns,
            )
        )
        run_campaign(
            plain, workers=1, directory=tmp_path / "plain", telemetry=False
        )
        arm_cells = sorted((tmp_path / "sinr" / "unitdisk").glob("cell-*.json"))
        plain_cells = sorted((tmp_path / "plain").glob("cell-*.json"))
        assert [p.name for p in arm_cells] == [p.name for p in plain_cells]
        assert arm_cells  # the grid is non-empty
        for arm, ref in zip(arm_cells, plain_cells):
            assert arm.read_bytes() == ref.read_bytes()

    def test_sinr_arm_artifacts_round_trip(self, tmp_path):
        summary = run_sinr_study(
            tiny_sinr_config(),
            capture_db_values=(10.0,),
            directory=tmp_path,
            telemetry=False,
        )
        [artifact] = (tmp_path / "capture-10db").glob("cell-*.json")
        assert b'"kind": "sinr"' in artifact.read_bytes()
        cell = load_cell_json(artifact)
        assert all(isinstance(r, SinrReplicateMetrics) for r in cell.results)
        # The study surfaces the capture physics: this seed both
        # rescues overlapped frames and drops receptions mid-air.
        sinr_arm = [c for c in summary if c.capture_db == 10.0]
        assert sum(c.frames_captured for c in sinr_arm) > 0
        assert sum(c.frames_sinr_dropped for c in sinr_arm) > 0

    def test_resume_is_identical(self, tmp_path):
        first = run_sinr_study(
            tiny_sinr_config(),
            capture_db_values=(10.0,),
            directory=tmp_path,
            telemetry=False,
        )
        resumed = run_sinr_study(
            tiny_sinr_config(),
            capture_db_values=(10.0,),
            directory=tmp_path,
            telemetry=False,
        )
        assert first == resumed

    def test_arm_stores_never_mix(self, tmp_path):
        run_sinr_study(
            tiny_sinr_config(),
            capture_db_values=(3.0,),
            directory=tmp_path,
            telemetry=False,
        )
        # A different capture threshold refuses the 3 dB arm's store.
        with pytest.raises(ValueError, match="refusing to mix"):
            run_campaign(
                dataclasses.replace(
                    tiny_sinr_config(), capture_threshold_db=10.0
                ),
                workers=1,
                directory=tmp_path / "capture-3db",
                telemetry=False,
            )
