"""End-to-end reproducibility: identical configs give identical results."""

from repro.dessim import seconds
from repro.experiments import SimStudyConfig, SimStudyRunner
from repro.experiments.io import grid_to_records


def tiny_config():
    return SimStudyConfig(
        n_values=(3,),
        beamwidths_deg=(30.0,),
        schemes=("DRTS-DCTS",),
        topologies=2,
        sim_time_ns=seconds(0.3),
    )


class TestGridReproducibility:
    def test_identical_runs_identical_records(self):
        first = grid_to_records(SimStudyRunner(tiny_config()).run_grid())
        second = grid_to_records(SimStudyRunner(tiny_config()).run_grid())
        assert first == second

    def test_base_seed_changes_results(self):
        base = tiny_config()
        shifted = SimStudyConfig(
            n_values=base.n_values,
            beamwidths_deg=base.beamwidths_deg,
            schemes=base.schemes,
            topologies=base.topologies,
            sim_time_ns=base.sim_time_ns,
            base_seed=base.base_seed + 1,
        )
        a = grid_to_records(SimStudyRunner(base).run_grid())
        b = grid_to_records(SimStudyRunner(shifted).run_grid())
        assert a != b

    def test_slotsim_reproducible(self):
        from repro.core import PAPER_PARAMETERS
        from repro.slotsim import SlotModelConfig, SlotModelEngine

        config = SlotModelConfig(
            params=PAPER_PARAMETERS.with_neighbors(3.0), p=0.03, seed=17
        )
        a = SlotModelEngine(config).run(5_000)
        b = SlotModelEngine(config).run(5_000)
        assert a.successes == b.successes
        assert a.fail_durations == b.fail_durations

    def test_analytical_is_pure(self):
        import math

        from repro.core import PAPER_PARAMETERS, DrtsDcts, maximize_throughput

        params = PAPER_PARAMETERS.with_beamwidth(math.radians(45))
        a = maximize_throughput(DrtsDcts(params))
        b = maximize_throughput(DrtsDcts(params))
        assert a == b
