"""Time units for the discrete-event simulator.

The simulator clock is an **integer number of nanoseconds**.  Every
quantity in Table 1 of the paper (slot 20 us, SIFS 10 us, DIFS 50 us,
sync 192 us, propagation delay 1 us, 2 Mbps bit rate => 500 ns per bit)
is an exact integer in nanoseconds, so the simulation is free of
floating-point time drift by construction.
"""

from __future__ import annotations

__all__ = [
    "NANOSECOND",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "microseconds",
    "milliseconds",
    "seconds",
    "to_seconds",
    "to_microseconds",
]

NANOSECOND: int = 1
MICROSECOND: int = 1_000
MILLISECOND: int = 1_000_000
SECOND: int = 1_000_000_000


def microseconds(value: float) -> int:
    """Convert microseconds to integer nanoseconds (rounded)."""
    return round(value * MICROSECOND)


def milliseconds(value: float) -> int:
    """Convert milliseconds to integer nanoseconds (rounded)."""
    return round(value * MILLISECOND)


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds (rounded)."""
    return round(value * SECOND)


def to_seconds(time_ns: int) -> float:
    """Convert integer nanoseconds to float seconds."""
    return time_ns / SECOND


def to_microseconds(time_ns: int) -> float:
    """Convert integer nanoseconds to float microseconds."""
    return time_ns / MICROSECOND
