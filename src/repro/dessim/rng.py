"""Deterministic random-number streams.

Every stochastic component (topology placement, per-node backoff,
traffic destinations, ...) draws from its own named stream derived from
a single master seed.  Runs are exactly reproducible from the master
seed alone, and adding a new consumer never perturbs the draws seen by
existing ones — the property that makes A/B comparisons between MAC
schemes on *identical* topologies possible.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RngRegistry"]


class RngRegistry:
    """A factory of independent, reproducible ``random.Random`` streams."""

    def __init__(self, master_seed: int) -> None:
        if not isinstance(master_seed, int):
            raise TypeError(
                f"master_seed must be an int, got {type(master_seed).__name__}"
            )
        self.master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The stream seed is a SHA-256 hash of ``(master_seed, name)`` so
        that distinct names yield statistically independent streams and
        the mapping is stable across Python versions (unlike ``hash``).
        """
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode()
            ).digest()
            seed = int.from_bytes(digest[:8], "big")
            self._streams[name] = random.Random(seed)
        return self._streams[name]

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per topology replicate)."""
        digest = hashlib.sha256(
            f"{self.master_seed}/child:{name}".encode()
        ).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RngRegistry(master_seed={self.master_seed}, "
            f"streams={sorted(self._streams)})"
        )
