"""Generator-based processes on top of the event engine.

The MAC layers are written as explicit state machines (faster, and
their states map one-to-one to 802.11's), but test scenarios and
traffic scripts read better as straight-line code.  A *process* is a
generator that yields:

* an ``int`` — sleep that many nanoseconds, or
* another :class:`Process` — wait until it finishes.

Example::

    def scenario(sim, mac):
        yield 1_000_000                  # let the network settle 1 ms
        mac.enqueue(packet_a)
        yield 20_000_000
        mac.enqueue(packet_b)

    spawn(sim, scenario(sim, mac))
"""

from __future__ import annotations

from typing import Generator

from .engine import Event, SimulationError, Simulator

__all__ = ["Process", "spawn"]

Yieldable = "int | Process"


class Process:
    """A running generator coupled to the simulator clock."""

    def __init__(self, sim: Simulator, generator: Generator) -> None:
        self.sim = sim
        self._generator = generator
        self.alive = True
        self.cancelled = False
        self._pending: Event | None = None
        self._waiters: list["Process"] = []

    def cancel(self) -> None:
        """Stop the process; it never resumes and counts as finished."""
        if not self.alive:
            return
        self.cancelled = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self._generator.close()
        self._finish()

    # ------------------------------------------------------------------

    def _resume(self) -> None:
        self._pending = None
        if not self.alive:  # pragma: no cover - cancelled in flight
            return
        try:
            yielded = next(self._generator)
        except StopIteration:
            self._finish()
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded) -> None:
        if isinstance(yielded, bool) or not isinstance(yielded, (int, Process)):
            self.cancel()
            raise SimulationError(
                f"process yielded {yielded!r}; expected an int delay or a Process"
            )
        if isinstance(yielded, int):
            if yielded < 0:
                self.cancel()
                raise SimulationError(f"process yielded negative delay {yielded}")
            self._pending = self.sim.schedule(yielded, self._resume)
        else:
            if yielded.alive:
                yielded._waiters.append(self)
            else:
                self._pending = self.sim.schedule(0, self._resume)

    def _finish(self) -> None:
        self.alive = False
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter._pending = self.sim.schedule(0, waiter._resume)


def spawn(sim: Simulator, generator: Generator) -> Process:
    """Start a process; its first step runs at the current time."""
    process = Process(sim, generator)
    process._pending = sim.schedule(0, process._resume)
    return process
