"""The discrete-event simulation engine.

A minimal, fast, deterministic event scheduler: a binary heap of
``(time, sequence, Event)`` triples.  The sequence number breaks ties so
that events scheduled earlier at the same timestamp fire first —
determinism that the MAC layer's slot-aligned races depend on.

This is our substitute for GloMoSim's kernel: the paper's experiments
need nothing beyond sequential event-driven execution over a few dozen
nodes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only, no runtime dependency
    from ..obs.metrics import MetricsRegistry

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on scheduler misuse (scheduling into the past, etc.)."""


@dataclass(order=False)
class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Hold on to the instance to :meth:`Simulator.cancel` it later.
    """

    time: int
    seq: int
    callback: Callable[..., None]
    args: tuple[Any, ...] = ()
    cancelled: bool = field(default=False, compare=False)
    # Scheduler bookkeeping hook: fires exactly once, on the transition
    # from pending to cancelled, and is detached when the event pops so
    # a late cancel() on an already-fired event cannot double-count.
    _on_cancel: Callable[[], None] | None = field(
        default=None, compare=False, repr=False
    )

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it (idempotent)."""
        if not self.cancelled:
            self.cancelled = True
            if self._on_cancel is not None:
                self._on_cancel()


class Simulator:
    """A deterministic single-threaded discrete-event scheduler.

    Example::

        sim = Simulator()
        sim.schedule(10, print, "fires at t=10ns")
        sim.run()
    """

    def __init__(self, metrics: "MetricsRegistry | None" = None) -> None:
        self._now: int = 0
        self._queue: list[tuple[int, int, Event]] = []
        self._seq: int = 0
        self._events_processed: int = 0
        self._running: bool = False
        self._pending: int = 0
        # Telemetry is harvested (deltas of the existing counters pushed
        # into the registry when run() returns), never incremented per
        # event: the inner loop stays exactly as hot as before whether
        # or not a registry is attached.
        self._metrics = metrics

    # ------------------------------------------------------------------
    # Clock and introspection.
    # ------------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-fired, not-cancelled events.

        A live counter — incremented on schedule, decremented on cancel
        and on pop — rather than a rescan of the whole heap, which made
        every introspection O(queue) including its cancelled garbage.
        """
        return self._pending

    # ------------------------------------------------------------------
    # Scheduling.
    # ------------------------------------------------------------------

    def schedule(self, delay: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: int, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time`` ns."""
        if not isinstance(time, int):
            raise SimulationError(
                f"event times must be integers (ns), got {type(time).__name__}"
            )
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        event = Event(
            time=time,
            seq=self._seq,
            callback=callback,
            args=args,
            _on_cancel=self._note_cancelled,
        )
        heapq.heappush(self._queue, (time, self._seq, event))
        self._seq += 1
        self._pending += 1
        return event

    def _note_cancelled(self) -> None:
        self._pending -= 1

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (idempotent).

        Cancelled events stay in the heap but are skipped when popped —
        O(1) cancellation at the cost of a little heap garbage, the
        standard DES trade-off.
        """
        event.cancel()

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event.

        Returns:
            ``True`` if an event ran, ``False`` if the queue was empty.
        """
        while self._queue:
            time, _seq, event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._pending -= 1
            event._on_cancel = None
            self._now = time
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: int | None = None) -> None:
        """Run until the queue drains or the clock passes ``until`` ns.

        When ``until`` is given, events at ``t <= until`` execute and the
        clock is left at exactly ``until``.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until t={until} before now={self._now}"
            )
        self._running = True
        processed_before = self._events_processed
        scheduled_before = self._seq
        try:
            while self._queue:
                time, _seq, event = self._queue[0]
                if until is not None and time > until:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._pending -= 1
                event._on_cancel = None
                self._now = time
                self._events_processed += 1
                event.callback(*event.args)
            if until is not None:
                self._now = max(self._now, until)
        finally:
            self._running = False
            if self._metrics is not None:
                self._metrics.counter("dessim.runs").inc()
                self._metrics.counter("dessim.events").inc(
                    self._events_processed - processed_before
                )
                self._metrics.counter("dessim.scheduled").inc(
                    self._seq - scheduled_before
                )
                self._metrics.gauge("dessim.pending").set(self._pending)
