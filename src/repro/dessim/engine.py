"""The discrete-event simulation engine.

Two interchangeable schedulers live here, bit-exact to each other:

:class:`Simulator` (the default, ``scheduler="wheel"``)
    A calendar queue keyed by *exact* absolute timestamp: a dict of
    per-timestamp FIFO buckets plus a small int-heap of the distinct
    times.  MAC workloads cluster heavily on slot boundaries, so the
    heap shrinks by the clustering factor and every same-time event
    costs one list append.  FIFO bucket order *is* the ``(time, seq)``
    determinism contract — events scheduled earlier at the same
    timestamp fire first — with no per-event comparison at all.  A
    bucket holding a single event is stored as the event itself (no
    list), which keeps the uncontended case as lean as a heap push.
    Cancellation is an O(1) tombstone reclaimed when its bucket drains,
    so cancelled timers leave no structure the pop path must wade
    through, and :meth:`Simulator.reschedule` re-links a fired event's
    own object in place, which removes allocation from the MAC's
    hottest pattern (the backoff slot timer re-arming itself).
    Anonymous fire-and-forget events (:meth:`Simulator.schedule_anon`)
    recycle through a free-list pool.  The dict has an unbounded
    horizon, so there is no overflow wheel and no promotion step for
    far-future events — a far-future timestamp is just another dict
    key.

:class:`HeapSimulator` (``scheduler="heap"``)
    The original binary heap of ``(time, sequence, Event)`` triples,
    kept as the equivalence oracle: same seed ⇒ identical event order,
    identical stats, byte-identical artifacts (pinned by the fuzz suite
    in ``tests/dessim/test_scheduler_equivalence.py`` and a CI matrix
    leg).  Cancelled events stay in the heap and are skipped on pop.

Use :func:`make_simulator` to choose by name or by the
``REPRO_SCHEDULER`` environment variable.

Resume note: an event fires exactly once because firing flips its
state flag, so a re-scan of a partially swept bucket skips consumed
entries by state.  :meth:`Simulator.step` additionally keeps a cursor
into the head bucket (``_head_pos``) which :meth:`Simulator.run`
honors, so a reused event object re-linked into the *same* timestamp
can never be revisited ahead of lower-sequence entries.

This is our substitute for GloMoSim's kernel: the paper's experiments
need nothing beyond sequential event-driven execution over a few dozen
nodes.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only, no runtime dependency
    from ..obs.metrics import MetricsRegistry

__all__ = [
    "Event",
    "Simulator",
    "HeapSimulator",
    "SimulationError",
    "make_simulator",
    "SCHEDULERS",
]


class SimulationError(RuntimeError):
    """Raised on scheduler misuse (scheduling into the past, etc.)."""


# Event lifecycle states.  One int slot instead of booleans + detachable
# hooks: the sweep decides everything about a bucket entry from a single
# attribute read.  _POOLED marks a pending event owned by the engine's
# free list (no caller holds a handle), so the sweep may recycle it the
# moment it fires.
_PENDING = 0
_FIRED = 1
_CANCELLED = 2
_POOLED = 3

#: Bounds on the recycling pools.  Beyond these sizes the steady-state
#: working set is covered and extra retained objects are dead weight.
_MAX_FREE_LISTS = 64
_MAX_FREE_EVENTS = 512


def _noop() -> None:  # pragma: no cover - pool placeholder, never fired
    return None


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Hold on to the instance to :meth:`Simulator.cancel` it later.
    Cancelling an event that already fired is inert (idempotent), so a
    stale handle can never affect a later event.

    A ``__slots__`` class rather than a dataclass: one Event is
    allocated per scheduled callback (except where the engine reuses
    them), so instance dicts were the kernel's single largest
    allocation cost.
    """

    __slots__ = ("time", "seq", "callback", "args", "_state", "_sim")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
        sim: "Simulator",
        state: int = _PENDING,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self._state = state
        self._sim = sim

    @property
    def cancelled(self) -> bool:
        """Whether the event was cancelled before firing."""
        return self._state == _CANCELLED

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it (idempotent).

        The pending→cancelled transition happens at most once — a late
        cancel on an already-fired event cannot double-decrement the
        pending counter.
        """
        if self._state == _PENDING:
            self._state = _CANCELLED
            sim = self._sim
            sim._pending -= 1
            sim._cancelled_total += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("pending", "fired", "cancelled", "pending")[self._state]
        return (
            f"Event(time={self.time}, seq={self.seq}, "
            f"callback={self.callback!r}, args={self.args!r}, {state})"
        )


class Simulator:
    """A deterministic single-threaded discrete-event scheduler.

    The default calendar-queue ("wheel") engine; see the module
    docstring for the design and :class:`HeapSimulator` for the
    bit-exact oracle.

    Example::

        sim = Simulator()
        sim.schedule(10, print, "fires at t=10ns")
        sim.run()
    """

    scheduler_name = "wheel"

    def __init__(self, metrics: "MetricsRegistry | None" = None) -> None:
        self._now: int = 0
        self._seq: int = 0
        self._events_processed: int = 0
        self._running: bool = False
        self._pending: int = 0
        self._cancelled_total: int = 0
        # The calendar: exact timestamp -> bucket.  A bucket is either a
        # single Event (the uncontended case) or a FIFO list of them;
        # `_times` is a heap of the distinct timestamps, pushed once per
        # bucket rather than once per event.
        self._buckets: dict[int, Event | list[Event]] = {}
        self._times: list[int] = []
        # Cursor into the head bucket, advanced only by step(): events
        # at positions < _head_pos are consumed.  run() drains any
        # partially stepped bucket through a positional sweep before
        # entering its iterator-based fast path (which always starts
        # buckets at position 0).
        self._head_pos: int = 0
        # Recycled empty bucket lists and recycled anonymous events.
        self._free_lists: list[list[Event]] = []
        self._free_events: list[Event] = []
        self._buckets_created: int = 0
        self._event_reuse: int = 0
        # Observational dispatch hook (see
        # repro.obs.profile.CallbackProfiler): when set, run() routes
        # every fire through ``hook(event)`` instead of calling the
        # callback directly.  The hook must invoke the callback exactly
        # once; it exists to *time* dispatch, never to steer it.
        self.dispatch_hook: Callable[[Event], None] | None = None
        # Telemetry is harvested (deltas of the existing counters pushed
        # into the registry when run() returns), never incremented per
        # event: the inner loop stays exactly as hot as before whether
        # or not a registry is attached.
        self._metrics = metrics

    # ------------------------------------------------------------------
    # Clock and introspection.
    # ------------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-fired, not-cancelled events.

        A live counter — incremented on schedule, decremented on cancel
        and on fire — rather than a rescan of the whole structure.
        """
        return self._pending

    # ------------------------------------------------------------------
    # Scheduling.
    # ------------------------------------------------------------------

    def _link(self, event: Event, time: int) -> None:
        """Insert ``event`` into its timestamp bucket (FIFO position).

        Inlined by the hot entry points (:meth:`schedule`,
        :meth:`reschedule`, :meth:`schedule_anon`,
        :meth:`~repro.dessim.Timer.start`) — kept as a method for the
        cold ones and as the reference for what they inline.  When a
        single-event bucket gains a second entry, a consumed first
        entry (fired or cancelled) is dropped rather than carried into
        the list: the sweep has already passed it, and re-listing it
        ahead of newer events would replay it out of sequence order.
        """
        buckets = self._buckets
        cur = buckets.get(time)
        if cur is None:
            buckets[time] = event
            heappush(self._times, time)
            self._buckets_created += 1
        elif type(cur) is list:
            cur.append(event)
        else:
            free = self._free_lists
            lst = free.pop() if free else []
            st = cur._state
            if st == _PENDING or st == _POOLED:
                lst.append(cur)
            lst.append(event)
            buckets[time] = lst

    def schedule(self, delay: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now.

        ``delay`` must be a true ``int`` (``bool`` is explicitly
        rejected even though it subclasses ``int`` — a boolean delay is
        always a bug upstream).
        """
        if type(delay) is not int:
            raise SimulationError(
                f"delay must be an int (ns), got {type(delay).__name__}"
            )
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        time = self._now + delay
        seq = self._seq
        event = Event(time, seq, callback, args, self)
        buckets = self._buckets
        cur = buckets.get(time)
        if cur is None:
            buckets[time] = event
            heappush(self._times, time)
            self._buckets_created += 1
        elif type(cur) is list:
            cur.append(event)
        else:
            free = self._free_lists
            lst = free.pop() if free else []
            st = cur._state
            if st == _PENDING or st == _POOLED:
                lst.append(cur)
            lst.append(event)
            buckets[time] = lst
        self._seq = seq + 1
        self._pending += 1
        return event

    def schedule_at(
        self, time: int, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time`` ns."""
        if type(time) is not int:
            raise SimulationError(
                f"event times must be integers (ns), got {type(time).__name__}"
            )
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        seq = self._seq
        event = Event(time, seq, callback, args, self)
        self._link(event, time)
        self._seq = seq + 1
        self._pending += 1
        return event

    def reschedule(
        self,
        previous: Event | None,
        delay: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
    ) -> Event:
        """Supersede ``previous`` with a fresh arm ``delay`` ns from now.

        The restart-in-place primitive behind :class:`~repro.dessim.Timer`:

        - ``previous`` already fired (the dominant pattern — a slot
          timer re-arming from its own callback): its object is
          re-linked in place with a new ``(time, seq)``, zero
          allocation.  Safe because the sweep consumed the fired bucket
          entry, so the object has exactly one live entry again.
        - ``previous`` still pending: it is tombstoned and a fresh
          object is linked.  Reusing the object here would leave *two*
          live bucket entries pointing at it, so the fresh allocation
          is what keeps the wheel bit-exact with the heap oracle.
        - ``previous`` is ``None`` or cancelled: plain schedule.

        Consumes exactly one sequence number, like the cancel+schedule
        pair it replaces.
        """
        if type(delay) is not int:
            raise SimulationError(
                f"delay must be an int (ns), got {type(delay).__name__}"
            )
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        time = self._now + delay
        seq = self._seq
        if previous is not None and previous._state == _FIRED:
            event = previous
            event.time = time
            event.seq = seq
            event.callback = callback
            event.args = args
            event._state = _PENDING
            self._event_reuse += 1
        else:
            if previous is not None and previous._state == _PENDING:
                previous._state = _CANCELLED
                self._pending -= 1
                self._cancelled_total += 1
            event = Event(time, seq, callback, args, self)
        self._link(event, time)
        self._seq = seq + 1
        self._pending += 1
        return event

    def schedule_anon(
        self, delay: int, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule a fire-and-forget callback (no handle, not cancellable).

        The bulk fan-out path: the event object comes from and returns
        to an engine-owned free list, so per-receiver signal start/end
        scheduling in :meth:`repro.phy.Channel.transmit` allocates
        nothing in steady state.  Use only when no caller needs to
        cancel — there is deliberately no way to reach the event again.
        """
        if type(delay) is not int:
            raise SimulationError(
                f"delay must be an int (ns), got {type(delay).__name__}"
            )
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        time = self._now + delay
        seq = self._seq
        pool = self._free_events
        if pool:
            event = pool.pop()
            event.time = time
            event.seq = seq
            event.callback = callback
            event.args = args
            event._state = _POOLED
            self._event_reuse += 1
        else:
            event = Event(time, seq, callback, args, self, _POOLED)
        self._link(event, time)
        self._seq = seq + 1
        self._pending += 1

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (idempotent).

        O(1): the event becomes a tombstone in its bucket, reclaimed in
        a single skip when the bucket drains — no structure to search,
        no garbage for the pop path to wade through.
        """
        event.cancel()

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event.

        Returns:
            ``True`` if an event ran, ``False`` if the queue was empty.
        """
        if self._running:
            raise SimulationError("cannot step() while run() is active")
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            entry = buckets[t]
            if type(entry) is list:
                pos = self._head_pos
                n = len(entry)
                while pos < n:
                    event = entry[pos]
                    pos += 1
                    st = event._state
                    if st == _PENDING or st == _POOLED:
                        # Cursor saved before the callback runs: the
                        # event is consumed even if the callback raises.
                        self._head_pos = pos
                        event._state = _FIRED
                        self._pending -= 1
                        self._now = t
                        self._events_processed += 1
                        event.callback(*event.args)
                        if st == _POOLED:
                            self._recycle(event)
                        return True
                heappop(times)
                del buckets[t]
                entry.clear()
                if len(self._free_lists) < _MAX_FREE_LISTS:
                    self._free_lists.append(entry)
                self._head_pos = 0
            else:
                # Single-event bucket: drained *before* the callback
                # runs, so a fired event re-linked elsewhere can never
                # linger under this timestamp as a stale dict value.
                heappop(times)
                del buckets[t]
                st = entry._state
                if st == _PENDING or st == _POOLED:
                    entry._state = _FIRED
                    self._pending -= 1
                    self._now = t
                    self._events_processed += 1
                    entry.callback(*entry.args)
                    if st == _POOLED:
                        self._recycle(entry)
                    return True
                # else: a cancelled tombstone, reclaimed with its slot.
        return False

    def _recycle(self, event: Event) -> None:
        """Return a fired pool-owned event to the free list."""
        if len(self._free_events) < _MAX_FREE_EVENTS:
            event.callback = _noop
            event.args = ()
            self._free_events.append(event)

    def _drain_stepped_bucket(self, horizon: int | None) -> None:
        """Finish a bucket partially consumed by :meth:`step`.

        Sweeps positionally from the saved cursor so entries already
        fired through step() are never revisited, then releases the
        bucket and clears the cursor.  If the bucket lies beyond the
        horizon the cursor is kept for a later run.
        """
        times = self._times
        buckets = self._buckets
        if not times:
            self._head_pos = 0
            return
        t = times[0]
        if horizon is not None and t > horizon:
            return
        entry = buckets[t]
        if type(entry) is not list:
            # Defensive: step() only sets the cursor on list buckets.
            self._head_pos = 0
            return
        pos = self._head_pos
        n = len(entry)
        while pos < n:
            event = entry[pos]
            pos += 1
            st = event._state
            if st == _PENDING or st == _POOLED:
                self._head_pos = pos
                event._state = _FIRED
                self._pending -= 1
                self._now = t
                self._events_processed += 1
                event.callback(*event.args)
                if st == _POOLED:
                    self._recycle(event)
                n = len(entry)
        heappop(times)
        del buckets[t]
        entry.clear()
        if len(self._free_lists) < _MAX_FREE_LISTS:
            self._free_lists.append(entry)
        self._head_pos = 0

    def run(self, until: int | None = None) -> None:
        """Run until the queue drains or the clock passes ``until`` ns.

        When ``until`` is given, events at ``t <= until`` execute and the
        clock is left at exactly ``until``.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until t={until} before now={self._now}"
            )
        if self.dispatch_hook is not None:
            self._run_hooked(until)
            return
        self._running = True
        processed_before = self._events_processed
        scheduled_before = self._seq
        cancelled_before = self._cancelled_total
        buckets_before = self._buckets_created
        reuse_before = self._event_reuse
        # Hot loop: the structures and the horizon are hoisted to
        # locals — attribute reads per event add up over millions of
        # events.  ``self._now`` / ``self._events_processed`` stay live
        # on the instance because callbacks read them mid-run.  The
        # bucket sweep is a plain ``for`` over the list: a CPython list
        # iterator picks up elements appended during iteration, which
        # is exactly the semantics same-time events scheduled from a
        # callback need.
        times = self._times
        buckets = self._buckets
        free_lists = self._free_lists
        free_events = self._free_events
        pop = heappop
        horizon = until
        try:
            if self._head_pos:
                # A bucket partially consumed by step(): drain it
                # through the positional slow path so already-fired
                # positions are never revisited, then fall through to
                # the fast loop (which always starts buckets at 0).
                self._drain_stepped_bucket(horizon)
            while times:
                t = times[0]
                if horizon is not None and t > horizon:
                    break
                entry = buckets[t]
                if type(entry) is list:
                    for event in entry:
                        st = event._state
                        if st == _PENDING:
                            event._state = _FIRED
                            self._pending -= 1
                            self._now = t
                            self._events_processed += 1
                            event.callback(*event.args)
                        elif st == _POOLED:
                            event._state = _FIRED
                            self._pending -= 1
                            self._now = t
                            self._events_processed += 1
                            event.callback(*event.args)
                            if len(free_events) < _MAX_FREE_EVENTS:
                                event.callback = _noop
                                event.args = ()
                                free_events.append(event)
                        # else: tombstone or consumed — skipped, and
                        # reclaimed with the bucket right below.
                    pop(times)
                    del buckets[t]
                    entry.clear()
                    if len(free_lists) < _MAX_FREE_LISTS:
                        free_lists.append(entry)
                else:
                    # Single-event bucket: drained *before* the
                    # callback runs, so a fired event re-linked
                    # elsewhere never lingers as a stale dict value,
                    # and a callback scheduling at this same timestamp
                    # simply creates the bucket afresh.
                    pop(times)
                    del buckets[t]
                    st = entry._state
                    if st == _PENDING:
                        entry._state = _FIRED
                        self._pending -= 1
                        self._now = t
                        self._events_processed += 1
                        entry.callback(*entry.args)
                    elif st == _POOLED:
                        entry._state = _FIRED
                        self._pending -= 1
                        self._now = t
                        self._events_processed += 1
                        entry.callback(*entry.args)
                        if len(free_events) < _MAX_FREE_EVENTS:
                            entry.callback = _noop
                            entry.args = ()
                            free_events.append(entry)
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
            if self._metrics is not None:
                self._harvest(
                    processed_before,
                    scheduled_before,
                    cancelled_before,
                    buckets_before,
                    reuse_before,
                )

    def _run_hooked(self, until: int | None) -> None:
        """The instrumented run loop: every fire goes through
        ``dispatch_hook(event)``.  Identical observable semantics to
        :meth:`run`, deliberately unoptimized — profiling runs pay for
        what they measure.
        """
        hook = self.dispatch_hook
        assert hook is not None
        self._running = True
        processed_before = self._events_processed
        scheduled_before = self._seq
        cancelled_before = self._cancelled_total
        buckets_before = self._buckets_created
        reuse_before = self._event_reuse
        times = self._times
        buckets = self._buckets
        try:
            while times:
                t = times[0]
                if until is not None and t > until:
                    break
                entry = buckets[t]
                if type(entry) is list:
                    # Positional sweep from the cursor: identical
                    # consumption order to the fast loop, and resumes a
                    # step()-touched bucket for free.
                    pos = self._head_pos
                    n = len(entry)
                    while pos < n:
                        event = entry[pos]
                        pos += 1
                        st = event._state
                        if st == _PENDING or st == _POOLED:
                            self._head_pos = pos
                            event._state = _FIRED
                            self._pending -= 1
                            self._now = t
                            self._events_processed += 1
                            hook(event)
                            if st == _POOLED:
                                self._recycle(event)
                            n = len(entry)
                    heappop(times)
                    del buckets[t]
                    entry.clear()
                    if len(self._free_lists) < _MAX_FREE_LISTS:
                        self._free_lists.append(entry)
                    self._head_pos = 0
                else:
                    heappop(times)
                    del buckets[t]
                    st = entry._state
                    if st == _PENDING or st == _POOLED:
                        entry._state = _FIRED
                        self._pending -= 1
                        self._now = t
                        self._events_processed += 1
                        hook(entry)
                        if st == _POOLED:
                            self._recycle(entry)
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
            if self._metrics is not None:
                self._harvest(
                    processed_before,
                    scheduled_before,
                    cancelled_before,
                    buckets_before,
                    reuse_before,
                )

    def _harvest(
        self,
        processed_before: int,
        scheduled_before: int,
        cancelled_before: int,
        buckets_before: int,
        reuse_before: int,
    ) -> None:
        metrics = self._metrics
        assert metrics is not None
        metrics.counter("dessim.runs").inc()
        metrics.counter("dessim.events").inc(
            self._events_processed - processed_before
        )
        metrics.counter("dessim.scheduled").inc(self._seq - scheduled_before)
        metrics.counter("dessim.cancelled").inc(
            self._cancelled_total - cancelled_before
        )
        metrics.gauge("dessim.pending").set(self._pending)
        metrics.counter("dessim.wheel.buckets").inc(
            self._buckets_created - buckets_before
        )
        metrics.counter("dessim.wheel.event_reuse").inc(
            self._event_reuse - reuse_before
        )


class HeapSimulator(Simulator):
    """The original binary-heap scheduler, kept as the bit-exactness
    oracle (``scheduler="heap"``).

    Same public API and same observable behavior as :class:`Simulator`
    — identical ``(time, seq)`` firing order, identical
    ``pending_events`` accounting, identical validation — implemented
    as a heap of ``(time, sequence, Event)`` triples where cancelled
    events stay queued and are skipped on pop.  Not optimized further
    on purpose: its job is to stay simple and obviously correct.
    """

    scheduler_name = "heap"

    def __init__(self, metrics: "MetricsRegistry | None" = None) -> None:
        super().__init__(metrics)
        self._queue: list[tuple[int, int, Event]] = []

    def schedule(self, delay: int, callback: Callable[..., None], *args: Any) -> Event:
        if type(delay) is not int:
            raise SimulationError(
                f"delay must be an int (ns), got {type(delay).__name__}"
            )
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        time = self._now + delay
        seq = self._seq
        event = Event(time, seq, callback, args, self)
        heappush(self._queue, (time, seq, event))
        self._seq = seq + 1
        self._pending += 1
        return event

    def schedule_at(
        self, time: int, callback: Callable[..., None], *args: Any
    ) -> Event:
        if type(time) is not int:
            raise SimulationError(
                f"event times must be integers (ns), got {type(time).__name__}"
            )
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        seq = self._seq
        event = Event(time, seq, callback, args, self)
        heappush(self._queue, (time, seq, event))
        self._seq = seq + 1
        self._pending += 1
        return event

    def reschedule(
        self,
        previous: Event | None,
        delay: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
    ) -> Event:
        """Cancel-then-schedule, consuming one sequence number — the
        exact dance :class:`~repro.dessim.Timer` performed by hand on
        this engine before the wheel existed."""
        if previous is not None:
            previous.cancel()
        return self.schedule(delay, callback, *args)

    def schedule_anon(
        self, delay: int, callback: Callable[..., None], *args: Any
    ) -> None:
        """Plain schedule without returning the handle (no pooling: the
        oracle keeps allocation simple and lets garbage collection do
        its thing)."""
        self.schedule(delay, callback, *args)

    def step(self) -> bool:
        if self._running:
            raise SimulationError("cannot step() while run() is active")
        queue = self._queue
        while queue:
            time, _seq, event = heappop(queue)
            if event._state != _PENDING:
                continue
            event._state = _FIRED
            self._pending -= 1
            self._now = time
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: int | None = None) -> None:
        if self._running:
            raise SimulationError("simulator is not reentrant")
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until t={until} before now={self._now}"
            )
        hook = self.dispatch_hook
        self._running = True
        processed_before = self._events_processed
        scheduled_before = self._seq
        cancelled_before = self._cancelled_total
        queue = self._queue
        pop = heappop
        horizon = until
        try:
            while queue:
                time, _seq, event = queue[0]
                if horizon is not None and time > horizon:
                    break
                pop(queue)
                if event._state != _PENDING:
                    continue
                event._state = _FIRED
                self._pending -= 1
                self._now = time
                self._events_processed += 1
                if hook is None:
                    event.callback(*event.args)
                else:
                    hook(event)
            if until is not None:
                self._now = max(self._now, until)
        finally:
            self._running = False
            if self._metrics is not None:
                self._harvest(
                    processed_before,
                    scheduled_before,
                    cancelled_before,
                    self._buckets_created,
                    self._event_reuse,
                )


#: Scheduler registry for :func:`make_simulator` and the CI matrix.
SCHEDULERS: dict[str, type[Simulator]] = {
    "wheel": Simulator,
    "heap": HeapSimulator,
}


def make_simulator(
    metrics: "MetricsRegistry | None" = None, scheduler: str | None = None
) -> Simulator:
    """Build a scheduler by name.

    Resolution order: explicit ``scheduler`` argument, then the
    ``REPRO_SCHEDULER`` environment variable (how the CI matrix runs
    the whole tier-1 suite on both engines), then ``"wheel"``.  Both
    engines are bit-exact, so the choice never changes results — only
    speed.
    """
    name = scheduler or os.environ.get("REPRO_SCHEDULER") or "wheel"
    cls = SCHEDULERS.get(name)
    if cls is None:
        raise SimulationError(
            f"unknown scheduler {name!r} (choose one of {sorted(SCHEDULERS)})"
        )
    return cls(metrics)
