"""The discrete-event simulation engine.

A minimal, fast, deterministic event scheduler: a binary heap of
``(time, sequence, Event)`` triples.  The sequence number breaks ties so
that events scheduled earlier at the same timestamp fire first —
determinism that the MAC layer's slot-aligned races depend on.

This is our substitute for GloMoSim's kernel: the paper's experiments
need nothing beyond sequential event-driven execution over a few dozen
nodes.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only, no runtime dependency
    from ..obs.metrics import MetricsRegistry

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on scheduler misuse (scheduling into the past, etc.)."""


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Hold on to the instance to :meth:`Simulator.cancel` it later.

    A ``__slots__`` class rather than a dataclass: one Event is
    allocated per scheduled callback, so instance dicts were the
    kernel's single largest allocation cost.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_on_cancel")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
        cancelled: bool = False,
        # Scheduler bookkeeping hook: fires exactly once, on the
        # transition from pending to cancelled, and is detached when the
        # event pops so a late cancel() on an already-fired event cannot
        # double-count.
        _on_cancel: Callable[[], None] | None = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = cancelled
        self._on_cancel = _on_cancel

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it (idempotent)."""
        if not self.cancelled:
            self.cancelled = True
            if self._on_cancel is not None:
                self._on_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(time={self.time}, seq={self.seq}, "
            f"callback={self.callback!r}, args={self.args!r}, "
            f"cancelled={self.cancelled})"
        )


class Simulator:
    """A deterministic single-threaded discrete-event scheduler.

    Example::

        sim = Simulator()
        sim.schedule(10, print, "fires at t=10ns")
        sim.run()
    """

    def __init__(self, metrics: "MetricsRegistry | None" = None) -> None:
        self._now: int = 0
        self._queue: list[tuple[int, int, Event]] = []
        self._seq: int = 0
        self._events_processed: int = 0
        self._running: bool = False
        self._pending: int = 0
        # Bound once: attribute access on a method allocates a fresh
        # bound-method object, and schedule() runs once per event.
        self._note_cancelled_ref = self._note_cancelled
        # Telemetry is harvested (deltas of the existing counters pushed
        # into the registry when run() returns), never incremented per
        # event: the inner loop stays exactly as hot as before whether
        # or not a registry is attached.
        self._metrics = metrics

    # ------------------------------------------------------------------
    # Clock and introspection.
    # ------------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-fired, not-cancelled events.

        A live counter — incremented on schedule, decremented on cancel
        and on pop — rather than a rescan of the whole heap, which made
        every introspection O(queue) including its cancelled garbage.
        """
        return self._pending

    # ------------------------------------------------------------------
    # Scheduling.
    # ------------------------------------------------------------------

    def schedule(self, delay: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now.

        The hottest scheduler entry point (timers route every MAC
        timeout through here), so the :meth:`schedule_at` body is
        inlined rather than delegated — one call frame per event saved.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        time = self._now + delay
        if not isinstance(time, int):
            raise SimulationError(
                f"event times must be integers (ns), got {type(time).__name__}"
            )
        seq = self._seq
        event = Event(time, seq, callback, args, False, self._note_cancelled_ref)
        heappush(self._queue, (time, seq, event))
        self._seq = seq + 1
        self._pending += 1
        return event

    def schedule_at(
        self, time: int, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time`` ns."""
        if not isinstance(time, int):
            raise SimulationError(
                f"event times must be integers (ns), got {type(time).__name__}"
            )
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        seq = self._seq
        event = Event(time, seq, callback, args, False, self._note_cancelled_ref)
        heappush(self._queue, (time, seq, event))
        self._seq = seq + 1
        self._pending += 1
        return event

    def _note_cancelled(self) -> None:
        self._pending -= 1

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (idempotent).

        Cancelled events stay in the heap but are skipped when popped —
        O(1) cancellation at the cost of a little heap garbage, the
        standard DES trade-off.
        """
        event.cancel()

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event.

        Returns:
            ``True`` if an event ran, ``False`` if the queue was empty.
        """
        while self._queue:
            time, _seq, event = heappop(self._queue)
            if event.cancelled:
                continue
            self._pending -= 1
            event._on_cancel = None
            self._now = time
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: int | None = None) -> None:
        """Run until the queue drains or the clock passes ``until`` ns.

        When ``until`` is given, events at ``t <= until`` execute and the
        clock is left at exactly ``until``.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until t={until} before now={self._now}"
            )
        self._running = True
        processed_before = self._events_processed
        scheduled_before = self._seq
        # Hot loop: the queue, pop, and the horizon are hoisted to
        # locals — attribute reads per event add up over millions of
        # events.  ``self._now`` / ``self._events_processed`` stay live
        # on the instance because callbacks read them mid-run.
        queue = self._queue
        pop = heappop
        horizon = until
        try:
            while queue:
                time, _seq, event = queue[0]
                if horizon is not None and time > horizon:
                    break
                pop(queue)
                if event.cancelled:
                    continue
                self._pending -= 1
                event._on_cancel = None
                self._now = time
                self._events_processed += 1
                event.callback(*event.args)
            if until is not None:
                self._now = max(self._now, until)
        finally:
            self._running = False
            if self._metrics is not None:
                self._metrics.counter("dessim.runs").inc()
                self._metrics.counter("dessim.events").inc(
                    self._events_processed - processed_before
                )
                self._metrics.counter("dessim.scheduled").inc(
                    self._seq - scheduled_before
                )
                self._metrics.gauge("dessim.pending").set(self._pending)
