"""A from-scratch discrete-event simulation kernel.

Our stand-in for GloMoSim: an integer-nanosecond clock, a deterministic
calendar-queue scheduler (:class:`~repro.dessim.engine.Simulator`, with
the original binary heap kept as the bit-exact
:class:`~repro.dessim.engine.HeapSimulator` oracle — pick via
:func:`~repro.dessim.engine.make_simulator` or ``REPRO_SCHEDULER``),
restartable :class:`~repro.dessim.timers.Timer` objects for MAC
timeouts, named reproducible random streams
(:class:`~repro.dessim.rng.RngRegistry`) and structured tracing
(:class:`~repro.dessim.trace.Tracer`).
"""

from .engine import (
    SCHEDULERS,
    Event,
    HeapSimulator,
    SimulationError,
    Simulator,
    make_simulator,
)
from .process import Process, spawn
from .rng import RngRegistry
from .timers import Timer
from .trace import TraceRecord, Tracer
from .units import (
    MICROSECOND,
    MILLISECOND,
    NANOSECOND,
    SECOND,
    microseconds,
    milliseconds,
    seconds,
    to_microseconds,
    to_seconds,
)

__all__ = [
    "Event",
    "SimulationError",
    "Simulator",
    "HeapSimulator",
    "make_simulator",
    "SCHEDULERS",
    "Process",
    "spawn",
    "Timer",
    "RngRegistry",
    "Tracer",
    "TraceRecord",
    "NANOSECOND",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "microseconds",
    "milliseconds",
    "seconds",
    "to_seconds",
    "to_microseconds",
]
