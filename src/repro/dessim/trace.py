"""Structured event tracing.

A lightweight, allocation-conscious trace facility: components emit
``(time, category, node, event, detail)`` records, tests and debugging
sessions filter them afterwards.  Disabled tracers drop records at the
door so saturated benchmark runs pay (nearly) nothing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: int
    category: str
    node: int
    event: str
    detail: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:>12}ns] n{self.node:<3} {self.category}.{self.event} {extras}".rstrip()


class Tracer:
    """Collects :class:`TraceRecord` objects in a bounded ring buffer."""

    def __init__(self, enabled: bool = False, capacity: int | None = 100_000) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self.enabled = enabled
        self._records: deque[TraceRecord] = deque(maxlen=capacity)

    def record(
        self,
        time: int,
        category: str,
        node: int,
        event: str,
        **detail: Any,
    ) -> None:
        """Store one record if tracing is enabled."""
        if not self.enabled:
            return
        self._records.append(
            TraceRecord(time=time, category=category, node=node, event=event, detail=detail)
        )

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def clear(self) -> None:
        """Drop all stored records."""
        self._records.clear()

    def filter(
        self,
        category: str | None = None,
        node: int | None = None,
        event: str | None = None,
        predicate: Callable[[TraceRecord], bool] | None = None,
    ) -> list[TraceRecord]:
        """Return records matching all given criteria."""
        result = []
        for record in self._records:
            if category is not None and record.category != category:
                continue
            if node is not None and record.node != node:
                continue
            if event is not None and record.event != event:
                continue
            if predicate is not None and not predicate(record):
                continue
            result.append(record)
        return result
