"""Restartable named timers on top of the event engine.

MAC protocols live on timeouts — CTS timeout, ACK timeout, DIFS/SIFS
deferral, backoff slots.  A :class:`Timer` wraps the schedule/cancel
dance so protocol code reads declaratively::

    self.cts_timeout = Timer(sim, "cts-timeout", self._on_cts_timeout)
    self.cts_timeout.start(timeout_ns)
    ...
    self.cts_timeout.cancel()      # CTS arrived in time

Restarting follows :meth:`Simulator.reschedule`, the engine's
restart-in-place primitive: on the wheel engine a timer that re-arms
after firing (the backoff slot loop, the MAC's hottest pattern)
re-links its *own* event object — no allocation, no trampoline.  The
timer's callback is scheduled directly as the event callback; pending
state is derived from the event's lifecycle flag, so there is no
per-fire bookkeeping frame between the engine and protocol code.

:meth:`Timer.start` on the wheel engine is the kernel's single hottest
entry point (one call per backoff slot per contending node), so the
wheel's reschedule body is inlined here rather than called — the
method *is* ``Simulator.reschedule`` minus one stack frame, with the
callback write skipped because a timer's callback never changes.  Any
other engine (the heap oracle, a subclass) goes through its
``reschedule`` method unchanged.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable

from .engine import (
    _CANCELLED,
    _FIRED,
    _PENDING,
    _POOLED,
    Event,
    SimulationError,
    Simulator,
)

__all__ = ["Timer"]


class Timer:
    """A cancellable, restartable one-shot timer.

    Restarting a pending timer cancels the previous expiry; the timer
    fires at most once per :meth:`start`.

    ``__slots__`` matters: the MAC arms a timer per backoff slot,
    making start/cancel churn the kernel's hottest caller after the
    event loop itself.
    """

    __slots__ = ("_sim", "name", "_callback", "_event", "_wheel")

    def __init__(
        self,
        sim: Simulator,
        name: str,
        callback: Callable[..., None],
    ) -> None:
        self._sim = sim
        self.name = name
        self._callback = callback
        # The last event armed for this timer.  Kept after firing so
        # the engine can re-link it in place on the next start(); a
        # cancelled event stays behind as a bucket tombstone and the
        # next start() gets a fresh object.
        self._event: Event | None = None
        # Exact-type check, decided once: the inlined fast path in
        # start() manipulates wheel internals and must never run
        # against the heap oracle or a Simulator subclass.
        self._wheel = type(sim) is Simulator

    @property
    def pending(self) -> bool:
        """Whether the timer is armed and has not yet fired."""
        event = self._event
        return event is not None and event._state == _PENDING

    @property
    def expiry(self) -> int | None:
        """Absolute expiry time in ns, or ``None`` when idle."""
        event = self._event
        if event is not None and event._state == _PENDING:
            return event.time
        return None

    @property
    def remaining(self) -> int | None:
        """Nanoseconds until expiry, or ``None`` when idle."""
        event = self._event
        if event is not None and event._state == _PENDING:
            return event.time - self._sim.now
        return None

    def start(self, delay: int, *args: Any) -> None:
        """Arm (or re-arm) the timer ``delay`` ns from now."""
        if type(delay) is not int:
            raise SimulationError(
                f"delay must be an int (ns), got {type(delay).__name__}"
            )
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        sim = self._sim
        if not self._wheel:
            self._event = sim.reschedule(self._event, delay, self._callback, args)
            return
        # Inlined Simulator.reschedule (validation done above).  A
        # fired event is re-linked in place; a still-pending one is
        # tombstoned and replaced, exactly as the engine method does.
        time = sim._now + delay
        seq = sim._seq
        event = self._event
        if event is not None and event._state == _FIRED:
            event.time = time
            event.seq = seq
            event.args = args
            event._state = _PENDING
            sim._event_reuse += 1
        else:
            if event is not None and event._state == _PENDING:
                event._state = _CANCELLED
                sim._pending -= 1
                sim._cancelled_total += 1
            event = Event(time, seq, self._callback, args, sim)
            self._event = event
        buckets = sim._buckets
        cur = buckets.get(time)
        if cur is None:
            buckets[time] = event
            heappush(sim._times, time)
            sim._buckets_created += 1
        elif type(cur) is list:
            cur.append(event)
        else:
            free = sim._free_lists
            lst = free.pop() if free else []
            st = cur._state
            if st == _PENDING or st == _POOLED:
                lst.append(cur)
            lst.append(event)
            buckets[time] = lst
        sim._seq = seq + 1
        sim._pending += 1

    def cancel(self) -> None:
        """Disarm the timer if pending (idempotent, inert after fire)."""
        event = self._event
        if event is not None:
            event.cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        expiry = self.expiry
        state = f"expires@{expiry}" if expiry is not None else "idle"
        return f"Timer({self.name!r}, {state})"
