"""Restartable named timers on top of the event engine.

MAC protocols live on timeouts — CTS timeout, ACK timeout, DIFS/SIFS
deferral, backoff slots.  A :class:`Timer` wraps the schedule/cancel
dance so protocol code reads declaratively::

    self.cts_timeout = Timer(sim, "cts-timeout", self._on_cts_timeout)
    self.cts_timeout.start(timeout_ns)
    ...
    self.cts_timeout.cancel()      # CTS arrived in time
"""

from __future__ import annotations

from typing import Any, Callable

from .engine import Event, SimulationError, Simulator

__all__ = ["Timer"]


class Timer:
    """A cancellable, restartable one-shot timer.

    Restarting a pending timer cancels the previous expiry; the timer
    fires at most once per :meth:`start`.

    ``__slots__`` and the inlined cancel in :meth:`start` matter: the
    MAC arms a timer per backoff slot, making start/cancel churn the
    kernel's hottest caller after the event loop itself.
    """

    __slots__ = ("_sim", "name", "_callback", "_event", "_expiry", "_fire_ref")

    def __init__(
        self,
        sim: Simulator,
        name: str,
        callback: Callable[..., None],
    ) -> None:
        self._sim = sim
        self.name = name
        self._callback = callback
        self._event: Event | None = None
        self._expiry: int | None = None
        # Bound once: ``start`` passes ``_fire`` to the scheduler on
        # every (re)arm, and a fresh bound method per arm is allocation
        # the backoff slot loop can feel.
        self._fire_ref = self._fire

    @property
    def pending(self) -> bool:
        """Whether the timer is armed and has not yet fired."""
        return self._event is not None and not self._event.cancelled

    @property
    def expiry(self) -> int | None:
        """Absolute expiry time in ns, or ``None`` when idle."""
        return self._expiry if self.pending else None

    @property
    def remaining(self) -> int | None:
        """Nanoseconds until expiry, or ``None`` when idle."""
        if not self.pending:
            return None
        assert self._expiry is not None
        return self._expiry - self._sim.now

    def start(self, delay: int, *args: Any) -> None:
        """Arm (or re-arm) the timer ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(
                f"timer {self.name!r}: negative delay {delay}"
            )
        previous = self._event
        if previous is not None:
            previous.cancel()
        sim = self._sim
        event = sim.schedule(delay, self._fire_ref, args)
        self._expiry = event.time
        self._event = event

    def cancel(self) -> None:
        """Disarm the timer if pending (idempotent)."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
            self._expiry = None

    def _fire(self, args: tuple[Any, ...]) -> None:
        self._event = None
        self._expiry = None
        self._callback(*args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"expires@{self._expiry}" if self.pending else "idle"
        return f"Timer({self.name!r}, {state})"
