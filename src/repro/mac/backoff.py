"""Binary exponential backoff (BEB).

The contention window starts at ``cw_min``, doubles (as
``2*(cw+1) - 1``, staying of the form ``2^k - 1``) after every failed
handshake up to ``cw_max``, and resets after a success or a drop.
Backoff draws are uniform integers on ``[0, cw]``.

Section 4 of the paper leans on BEB's pathology — the node that last
succeeded keeps the smallest window and tends to monopolize the channel
— to explain the fairness results, so this implementation keeps the
exact doubling schedule of IEEE 802.11.
"""

from __future__ import annotations

import random

from .config import MacParameters

__all__ = ["BackoffManager"]


class BackoffManager:
    """Contention-window state plus the uniform slot draw."""

    def __init__(self, params: MacParameters, rng: random.Random) -> None:
        self.params = params
        self._rng = rng
        self._cw = params.cw_min

    @property
    def cw(self) -> int:
        """Current contention window (upper bound of the draw)."""
        return self._cw

    def draw(self) -> int:
        """Draw a fresh backoff duration in whole slots."""
        return self._rng.randint(0, self._cw)

    def double(self) -> None:
        """Escalate after a failed handshake (capped at ``cw_max``)."""
        self._cw = min(2 * (self._cw + 1) - 1, self.params.cw_max)

    def reset(self) -> None:
        """Return to ``cw_min`` after a success or a final drop."""
        self._cw = self.params.cw_min

    @property
    def stage(self) -> int:
        """How many doublings the window has undergone (0-based)."""
        stage = 0
        cw = self.params.cw_min
        while cw < self._cw:
            cw = 2 * (cw + 1) - 1
            stage += 1
        return stage

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BackoffManager(cw={self._cw})"
