"""IEEE 802.11 DCF (DFWMAC) with pluggable antenna policies.

One state machine serves all three schemes of the paper; the
:class:`~repro.mac.policy.AntennaPolicy` decides, per frame type,
whether to beam at the peer or transmit omni-directionally.

Implemented DCF behaviour:

* physical + virtual carrier sense (NAV from overheard Duration fields),
* DIFS deference, EIFS after garbled receptions,
* binary exponential backoff (CW 31-1023), frozen while the medium is
  busy, post-transmission backoff after every handshake,
* RTS -> SIFS -> CTS -> SIFS -> DATA -> SIFS -> ACK with CTS/ACK
  timeouts and a retry limit,
* responder logic: SIFS-spaced CTS/ACK replies that (per the standard)
  do not carrier-sense, suppression of CTS while the NAV is busy, and
  a DATA-expectation timeout.

Known simplification, documented in DESIGN.md: like GloMoSim 2.0's
802.11 model, we do not implement the 802.11 NAV-reset subtlety for
nodes that overheard an RTS whose handshake never continued.
"""

from __future__ import annotations

import enum
import math
import random
from collections import deque
from typing import Callable

from ..dessim.engine import Simulator
from ..dessim.timers import Timer
from ..dessim.trace import Tracer
from ..phy.frames import FRAME_SIZES, Frame, FrameType
from ..phy.radio import Radio
from .backoff import BackoffManager
from .config import MacParameters
from .nav import Nav
from .neighbors import NeighborTable
from .packet import Packet
from .policy import AntennaPolicy, ORTS_OCTS_POLICY
from .stats import MacStats

__all__ = ["DcfMac", "DcfPhase"]


class DcfPhase(enum.Enum):
    """Initiator-side phase of the DCF state machine."""

    NO_PACKET = "no-packet"        # nothing to send
    ACCESS_WAIT = "access-wait"    # have a packet, medium busy
    ACCESS_IFS = "access-ifs"      # DIFS/EIFS running
    ACCESS_BACKOFF = "backoff"     # counting down slots
    AWAIT_CTS = "await-cts"        # RTS on the air / waiting for CTS
    SEND_DATA = "send-data"        # CTS in hand, SIFS before DATA
    AWAIT_ACK = "await-ack"        # DATA on the air / waiting for ACK


_INITIATION_PHASES = frozenset(
    {
        DcfPhase.NO_PACKET,
        DcfPhase.ACCESS_WAIT,
        DcfPhase.ACCESS_IFS,
        DcfPhase.ACCESS_BACKOFF,
    }
)


class DcfMac:
    """One node's MAC entity.  Implements :class:`repro.phy.MacListener`."""

    def __init__(
        self,
        sim: Simulator,
        radio: Radio,
        params: MacParameters,
        neighbor_table: NeighborTable,
        policy: AntennaPolicy = ORTS_OCTS_POLICY,
        beamwidth: float | None = None,
        *,
        rng: random.Random,
        tracer: Tracer | None = None,
    ) -> None:
        """Build one MAC entity.

        Args:
            rng: the node's backoff stream, e.g.
                ``registry.stream(f"mac-{node_id}")``.  Required — a
                silent shared default would let every node draw the
                same backoff sequence and quietly break the paper's
                identical-topology A/B comparisons.
        """
        self.sim = sim
        self.radio = radio
        self.params = params
        self.neighbors = neighbor_table
        self.policy = policy
        self.beamwidth = beamwidth if beamwidth is not None else 2 * math.pi
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.node_id = radio.node_id
        self.stats = MacStats()

        self.backoff = BackoffManager(params, rng)
        self.nav = Nav()
        # Hoisted: the backoff freeze/resume arithmetic runs on every
        # medium transition, and two dataclass-attribute hops add up.
        self._slot_time_ns = params.slot_time_ns

        self.phase = DcfPhase.NO_PACKET
        self.queue: deque[Packet] = deque()
        self._retries = 0
        self._backoff_remaining = 0
        self._use_eifs = False
        self._next_handshake = 0
        self._current_handshake = -1

        # Responder state.
        self._responding = False
        self._response_peer = -1

        # Timers.
        self._ifs_timer = Timer(sim, f"n{self.node_id}-ifs", self._on_ifs_expired)
        self._slot_timer = Timer(
            sim, f"n{self.node_id}-backoff", self._on_backoff_expired
        )
        self._cts_timer = Timer(sim, f"n{self.node_id}-cts-to", self._on_cts_timeout)
        self._ack_timer = Timer(sim, f"n{self.node_id}-ack-to", self._on_ack_timeout)
        self._data_timer = Timer(
            sim, f"n{self.node_id}-data-to", self._on_data_timeout
        )
        self._data_start_probe = Timer(
            sim, f"n{self.node_id}-data-probe", self._on_data_start_timeout
        )
        self._response_timer = Timer(
            sim, f"n{self.node_id}-sifs-resp", self._fire_response
        )
        # The initiator's own SIFS (CTS received -> DATA) runs on a
        # separate timer so a concurrent responder action (e.g. ACKing
        # a stale DATA under capture physics) can never cancel it.
        self._initiator_timer = Timer(
            sim, f"n{self.node_id}-sifs-data", self._fire_send_data
        )
        self._nav_timer = Timer(sim, f"n{self.node_id}-nav", self._on_nav_expired)
        self._pending_response: Callable[[], None] | None = None

        # Hooks: called with (packet, delivered) when service finishes,
        # and with (frame,) when a DATA frame is received for us.
        self.service_listeners: list[Callable[[Packet, bool], None]] = []
        self.delivery_listeners: list[Callable[[Frame], None]] = []

        radio.set_mac(self)

    # ==================================================================
    # Upper-layer API.
    # ==================================================================

    def enqueue(self, packet: Packet) -> None:
        """Accept a packet for transmission."""
        self.stats.packets_enqueued += 1
        self.queue.append(packet)
        if self.phase is DcfPhase.NO_PACKET:
            self.phase = DcfPhase.ACCESS_WAIT
            self._maybe_begin_ifs()

    @property
    def queue_length(self) -> int:
        return len(self.queue)

    # ==================================================================
    # Medium access (initiator side).
    # ==================================================================

    def _virtual_idle(self) -> bool:
        return not self.radio.carrier_busy and not self.nav.busy(self.sim.now)

    def _maybe_begin_ifs(self) -> None:
        """Start the DIFS/EIFS wait if we may contend right now."""
        if self.phase is not DcfPhase.ACCESS_WAIT and self.phase is not DcfPhase.NO_PACKET:
            return
        if self._responding:
            return
        if not self.queue:
            self.phase = DcfPhase.NO_PACKET
            return
        self.phase = DcfPhase.ACCESS_WAIT
        if self.radio.carrier_busy:
            return  # the idle edge will bring us back
        if self.nav.busy(self.sim.now):
            # Physically idle but virtually reserved: wake at NAV expiry.
            self._nav_timer.start(self.nav.remaining(self.sim.now))
            return
        self.phase = DcfPhase.ACCESS_IFS
        ifs = (
            self.params.eifs_ns(self.radio.channel.phy)
            if self._use_eifs
            else self.params.difs_ns
        )
        self._ifs_timer.start(ifs)

    def _interrupt_access(self) -> None:
        """Medium went busy during DIFS/backoff: freeze.

        The countdown runs as a single timer over the remaining slots
        (see :meth:`_on_ifs_expired`), so freezing converts time left
        back into whole slots.  The slot in progress has not completed,
        so it stays owed in full: ceiling division, which lands on the
        same counter value the slot-at-a-time countdown kept.
        """
        if self.phase in (DcfPhase.ACCESS_IFS, DcfPhase.ACCESS_BACKOFF):
            self._ifs_timer.cancel()
            expiry = self._slot_timer.expiry
            if expiry is not None:
                left = expiry - self.sim.now
                self._backoff_remaining = -(-left // self._slot_time_ns)
                self._slot_timer.cancel()
            self.phase = DcfPhase.ACCESS_WAIT

    def _on_ifs_expired(self) -> None:
        remaining = self._backoff_remaining
        if remaining > 0:
            self.phase = DcfPhase.ACCESS_BACKOFF
            # One event for the whole countdown instead of one per
            # slot.  Equivalent to the slot-at-a-time loop because the
            # intermediate slot boundaries had no observable effect —
            # an interruption recomputes the counter in
            # _interrupt_access, and a signal arriving in the final
            # slot was sent after this timer was armed (propagation
            # delay < slot time), so on an exact tie the ``(time,
            # seq)`` order fires this expiry first either way.
            self._slot_timer.start(remaining * self._slot_time_ns)
        else:
            self._transmit_rts()

    def _on_backoff_expired(self) -> None:
        self._backoff_remaining = 0
        self._transmit_rts()

    def _on_nav_expired(self) -> None:
        self._maybe_begin_ifs()

    # ------------------------------------------------------------------

    def _handshake_tail_ns(self, after: FrameType, data_bytes: int) -> int:
        """Duration-field value: medium time left after ``after`` ends."""
        phy = self.radio.channel.phy
        sifs = self.params.sifs_ns
        prop = phy.propagation_delay_ns
        cts = phy.frame_airtime_ns(FrameType.CTS)
        ack = phy.frame_airtime_ns(FrameType.ACK)
        data = phy.airtime_ns(data_bytes)
        if after is FrameType.RTS:
            return 3 * sifs + cts + data + ack + 3 * prop
        if after is FrameType.CTS:
            return 2 * sifs + data + ack + 2 * prop
        if after is FrameType.DATA:
            return sifs + ack + prop
        return 0

    def _pattern(self, ftype: FrameType, peer: int):
        bearing = self.neighbors.bearing_to(peer)
        return self.policy.pattern_for(
            ftype, bearing, self.beamwidth, retries=self._retries
        )

    def _transmit_rts(self) -> None:
        packet = self.queue[0]
        self._current_handshake = (self.node_id << 24) | self._next_handshake
        self._next_handshake += 1
        frame = Frame(
            FrameType.RTS,
            src=self.node_id,
            dst=packet.dst,
            size_bytes=FRAME_SIZES[FrameType.RTS],
            duration_ns=self._handshake_tail_ns(FrameType.RTS, packet.size_bytes),
            handshake_id=self._current_handshake,
        )
        self.phase = DcfPhase.AWAIT_CTS
        self.stats.rts_sent += 1
        self.tracer.record(
            self.sim.now, "mac", self.node_id, "rts-sent",
            dst=packet.dst, retries=self._retries,
        )
        self.radio.transmit(frame, self._pattern(FrameType.RTS, packet.dst))

    def _fire_send_data(self) -> None:
        if self.phase is not DcfPhase.SEND_DATA:  # pragma: no cover
            return
        if self.radio.transmitting:
            # Physically possible only under capture physics (a stale
            # responder ACK still on the air): treat as a failed
            # attempt rather than violating half-duplex.
            self._handshake_failed()
            return
        self._send_data()

    def _send_data(self) -> None:
        packet = self.queue[0]
        frame = Frame(
            FrameType.DATA,
            src=self.node_id,
            dst=packet.dst,
            size_bytes=packet.size_bytes,
            duration_ns=self._handshake_tail_ns(FrameType.DATA, packet.size_bytes),
            handshake_id=self._current_handshake,
            created_ns=packet.created_ns,
            payload=packet.payload,
        )
        self.phase = DcfPhase.AWAIT_ACK
        self.stats.data_sent += 1
        self.radio.transmit(frame, self._pattern(FrameType.DATA, packet.dst))

    # ------------------------------------------------------------------
    # Handshake outcomes.
    # ------------------------------------------------------------------

    def _on_cts_timeout(self) -> None:
        self.stats.cts_timeouts += 1
        self.tracer.record(self.sim.now, "mac", self.node_id, "cts-timeout")
        self._handshake_failed()

    def _on_ack_timeout(self) -> None:
        self.stats.ack_timeouts += 1
        self.tracer.record(self.sim.now, "mac", self.node_id, "ack-timeout")
        self._handshake_failed()

    def _handshake_failed(self) -> None:
        self._initiator_timer.cancel()
        self._retries += 1
        if self._retries >= self.params.retry_limit:
            packet = self.queue.popleft()
            self.stats.packets_dropped += 1
            self.tracer.record(
                self.sim.now, "mac", self.node_id, "packet-dropped", dst=packet.dst
            )
            self._notify_serviced(packet, delivered=False)
            self.backoff.reset()
            self._retries = 0
        else:
            self.backoff.double()
        self._backoff_remaining = self.backoff.draw()
        self.phase = DcfPhase.ACCESS_WAIT if self.queue else DcfPhase.NO_PACKET
        self._maybe_begin_ifs()

    def _handshake_succeeded(self) -> None:
        packet = self.queue.popleft()
        delay = self.sim.now - packet.created_ns
        self.stats.record_delivery(packet.size_bytes * 8, delay)
        self.tracer.record(
            self.sim.now, "mac", self.node_id, "delivered",
            dst=packet.dst, delay_ns=delay,
        )
        self._notify_serviced(packet, delivered=True)
        self.backoff.reset()
        self._retries = 0
        self._backoff_remaining = self.backoff.draw()  # post-TX backoff
        self.phase = DcfPhase.ACCESS_WAIT if self.queue else DcfPhase.NO_PACKET
        self._maybe_begin_ifs()

    def _notify_serviced(self, packet: Packet, delivered: bool) -> None:
        for listener in self.service_listeners:
            listener(packet, delivered)

    # ==================================================================
    # Responder side.
    # ==================================================================

    def _handle_rts(self, frame: Frame) -> None:
        if self._responding:
            return  # already committed to another handshake
        if self.phase not in _INITIATION_PHASES:
            return  # mid own handshake
        if self.nav.busy(self.sim.now):
            return  # 802.11: no CTS while NAV is set
        self._responding = True
        self._response_peer = frame.src
        incoming_handshake = frame.handshake_id
        self.tracer.record(
            self.sim.now, "mac", self.node_id, "rts-accepted", src=frame.src
        )

        def respond() -> None:
            self._send_cts(frame.src, frame.duration_ns, incoming_handshake)

        self._schedule_response(respond)

    def _send_cts(self, peer: int, rts_duration_ns: int, handshake_id: int) -> None:
        if self.radio.transmitting:  # pragma: no cover - defensive
            self._end_response()
            return
        phy = self.radio.channel.phy
        # Whatever the RTS reserved, minus SIFS and our own CTS air time.
        duration = max(
            0,
            rts_duration_ns
            - self.params.sifs_ns
            - phy.frame_airtime_ns(FrameType.CTS),
        )
        frame = Frame(
            FrameType.CTS,
            src=self.node_id,
            dst=peer,
            size_bytes=FRAME_SIZES[FrameType.CTS],
            duration_ns=duration,
            handshake_id=handshake_id,
        )
        self.stats.cts_sent += 1
        self.radio.transmit(frame, self._pattern(FrameType.CTS, peer))

    def _handle_data(self, frame: Frame) -> None:
        self._data_timer.cancel()
        self._data_start_probe.cancel()
        self.stats.data_received += 1
        self.stats.bits_received += frame.size_bytes * 8
        for listener in self.delivery_listeners:
            listener(frame)

        def respond() -> None:
            self._send_ack(frame.src, frame.handshake_id)

        self._responding = True
        self._response_peer = frame.src
        self._schedule_response(respond)

    def _send_ack(self, peer: int, handshake_id: int) -> None:
        if self.radio.transmitting:  # pragma: no cover - defensive
            self._end_response()
            return
        frame = Frame(
            FrameType.ACK,
            src=self.node_id,
            dst=peer,
            size_bytes=FRAME_SIZES[FrameType.ACK],
            duration_ns=0,
            handshake_id=handshake_id,
        )
        self.stats.ack_sent += 1
        self.radio.transmit(frame, self._pattern(FrameType.ACK, peer))

    def _schedule_response(self, action: Callable[[], None]) -> None:
        """Queue a SIFS-spaced response (no carrier sensing, per spec)."""
        self._pending_response = action
        self._response_timer.start(self.params.sifs_ns)

    def _fire_response(self) -> None:
        action = self._pending_response
        self._pending_response = None
        if action is not None:
            action()

    def _on_data_start_timeout(self) -> None:
        """Short probe after our CTS: is a DATA frame arriving at all?

        If the medium is busy something is inbound — allow the full
        data window.  If it is silent the initiator missed our CTS;
        release the responder immediately (the 802.11 behaviour —
        a CTS sender does not idle through a whole data airtime).
        """
        if self.radio.carrier_busy:
            phy = self.radio.channel.phy
            self._data_timer.start(self.params.data_timeout_ns(phy))
        else:
            self._on_data_timeout()

    def _on_data_timeout(self) -> None:
        """CTS sent but the DATA never came: release the responder."""
        self.tracer.record(self.sim.now, "mac", self.node_id, "data-timeout")
        self._end_response()

    def _end_response(self) -> None:
        self._responding = False
        self._response_peer = -1
        self._pending_response = None
        self._response_timer.cancel()
        self._data_timer.cancel()
        self._data_start_probe.cancel()
        self._maybe_begin_ifs()

    # ==================================================================
    # Radio events (MacListener).
    # ==================================================================

    def on_frame_received(self, frame: Frame) -> None:
        self._use_eifs = False  # any clean frame ends the EIFS condition
        if frame.dst == self.node_id:
            if frame.ftype is FrameType.RTS:
                self._handle_rts(frame)
            elif frame.ftype is FrameType.CTS:
                self._handle_cts(frame)
            elif frame.ftype is FrameType.DATA:
                self._handle_data(frame)
            elif frame.ftype is FrameType.ACK:
                self._handle_ack(frame)
        else:
            # Overheard: virtual carrier sense.
            if frame.duration_ns > 0:
                self.nav.update(self.sim.now + frame.duration_ns)
                self._interrupt_access()

    def _handle_cts(self, frame: Frame) -> None:
        if self.phase is not DcfPhase.AWAIT_CTS:
            return
        if frame.src != self.queue[0].dst:
            return
        self._cts_timer.cancel()
        self.phase = DcfPhase.SEND_DATA
        self._initiator_timer.start(self.params.sifs_ns)

    def _handle_ack(self, frame: Frame) -> None:
        if self.phase is not DcfPhase.AWAIT_ACK:
            return
        if frame.src != self.queue[0].dst:
            return
        self._ack_timer.cancel()
        self._handshake_succeeded()

    def on_reception_failed(self) -> None:
        self._use_eifs = True

    def on_medium_busy(self) -> None:
        self._interrupt_access()

    def on_medium_idle(self) -> None:
        if self.phase in (DcfPhase.ACCESS_WAIT, DcfPhase.NO_PACKET):
            self._maybe_begin_ifs()

    def on_transmit_complete(self, frame: Frame) -> None:
        phy = self.radio.channel.phy
        if frame.ftype is FrameType.RTS:
            self._cts_timer.start(self.params.cts_timeout_ns(phy))
        elif frame.ftype is FrameType.CTS:
            self._data_start_probe.start(self.params.data_start_timeout_ns(phy))
        elif frame.ftype is FrameType.DATA:
            self._ack_timer.start(self.params.ack_timeout_ns(phy))
        elif frame.ftype is FrameType.ACK:
            self._end_response()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DcfMac(node={self.node_id}, phase={self.phase.value}, "
            f"queue={len(self.queue)}, policy={self.policy.name})"
        )
