"""Upper-layer packets handed to the MAC for delivery."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Packet"]


@dataclass(frozen=True)
class Packet:
    """One payload awaiting MAC service.

    Attributes:
        dst: destination node id (must be a neighbor; the paper's
            traffic picks a random neighbor per packet).
        size_bytes: payload size on the wire (Table 1: 1460 B).
        created_ns: when the packet entered the MAC queue — the delay
            measurements in Fig. 7 run from here to ACK reception.
        payload: optional upper-layer metadata carried opaquely on the
            DATA frame (e.g. a :class:`~repro.route.FlowPayload`
            routing header).  Excluded from equality — it identifies
            the network-layer packet, not the MAC transmission.
    """

    dst: int
    size_bytes: int
    created_ns: int
    payload: object | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive, got {self.size_bytes}")
        if self.created_ns < 0:
            raise ValueError(f"created_ns must be >= 0, got {self.created_ns}")
