"""Per-frame antenna-mode policies: the three schemes of the paper.

The MAC state machine is identical across schemes; what differs is
*which antenna pattern each frame type uses*:

========== ======= ======= ======= =======
scheme      RTS     CTS     DATA    ACK
========== ======= ======= ======= =======
ORTS-OCTS   omni    omni    omni    omni
DRTS-DCTS   beam    beam    beam    beam
DRTS-OCTS   beam    omni    beam    beam
========== ======= ======= ======= =======

Reception is always omni-directional.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..phy.antenna import AntennaPattern, OmniAntenna, SectorAntenna
from ..phy.frames import FrameType

__all__ = [
    "AntennaPolicy",
    "AlternatingRtsPolicy",
    "ORTS_OCTS_POLICY",
    "DRTS_DCTS_POLICY",
    "DRTS_OCTS_POLICY",
    "NASIPURI_POLICY",
    "KO_ALTERNATING_POLICY",
    "POLICIES",
]


@dataclass(frozen=True)
class AntennaPolicy:
    """Maps each frame type to omni or directional transmission.

    Attributes:
        name: scheme name as used in the paper.
        directional_frames: frame types transmitted with a sector beam
            aimed at the peer; all other types go out omni-directionally.
    """

    name: str
    directional_frames: frozenset[FrameType]

    def is_directional(self, ftype: FrameType, retries: int = 0) -> bool:
        """Whether this scheme beams the given frame type.

        ``retries`` (the current attempt number for RTS frames) lets
        stateful variants like Ko et al.'s alternating scheme switch
        modes between attempts; the paper's three schemes ignore it.
        """
        return ftype in self.directional_frames

    def pattern_for(
        self,
        ftype: FrameType,
        bearing: float,
        beamwidth: float,
        retries: int = 0,
    ) -> AntennaPattern:
        """The antenna pattern for one frame.

        Args:
            ftype: frame type being sent.
            bearing: direction to the peer, in radians.
            beamwidth: the configured beamwidth ``theta``.
            retries: attempt number of the current handshake (0-based).
        """
        if not 0.0 < beamwidth <= 2 * math.pi:
            raise ValueError(f"beamwidth must be in (0, 2*pi], got {beamwidth!r}")
        if self.is_directional(ftype, retries):
            return SectorAntenna(boresight=bearing, beamwidth=beamwidth)
        return OmniAntenna()


@dataclass(frozen=True)
class AlternatingRtsPolicy(AntennaPolicy):
    """Ko et al.'s second scheme (paper Section 1): RTS transmissions
    alternate between directional and omni-directional across attempts
    ("using both directional and omni-directional transmission of RTS
    packets alternately") — a directional first attempt for spatial
    reuse, an omni retry to reach a possibly-moved or blocked receiver.
    CTS stays omni; data and ACK are beamed.
    """

    def is_directional(self, ftype: FrameType, retries: int = 0) -> bool:
        if ftype is FrameType.RTS:
            return retries % 2 == 0  # directional on even attempts
        return ftype in self.directional_frames


#: Plain IEEE 802.11: everything omni-directional.
ORTS_OCTS_POLICY = AntennaPolicy(name="ORTS-OCTS", directional_frames=frozenset())

#: All-directional variant: every frame is beamed at the peer.
DRTS_DCTS_POLICY = AntennaPolicy(
    name="DRTS-DCTS",
    directional_frames=frozenset(
        {FrameType.RTS, FrameType.CTS, FrameType.DATA, FrameType.ACK}
    ),
)

#: Hybrid variant (Ko et al.): omni CTS silences hidden terminals,
#: everything else is beamed.
DRTS_OCTS_POLICY = AntennaPolicy(
    name="DRTS-OCTS",
    directional_frames=frozenset(
        {FrameType.RTS, FrameType.DATA, FrameType.ACK}
    ),
)

#: Nasipuri et al. (WCNC 2000), as described in the paper's Section 1:
#: "omni-directional RTS and CTS packets are first exchanged ... and
#: then directional transmissions of data and acknowledgment packets
#: are used."  Not analysed in Section 2; available in the simulator
#: as an extension scheme.
NASIPURI_POLICY = AntennaPolicy(
    name="ORTS-OCTS-DDATA",
    directional_frames=frozenset({FrameType.DATA, FrameType.ACK}),
)

#: Ko et al. scheme 2: alternating directional/omni RTS, omni CTS,
#: beamed data/ACK.
KO_ALTERNATING_POLICY = AlternatingRtsPolicy(
    name="DORTS-OCTS",
    directional_frames=frozenset({FrameType.DATA, FrameType.ACK}),
)

#: All simulatable schemes keyed by name (the paper's three plus the
#: Nasipuri and Ko-scheme-2 extensions).
POLICIES: dict[str, AntennaPolicy] = {
    policy.name: policy
    for policy in (
        ORTS_OCTS_POLICY,
        DRTS_DCTS_POLICY,
        DRTS_OCTS_POLICY,
        NASIPURI_POLICY,
        KO_ALTERNATING_POLICY,
    )
}
