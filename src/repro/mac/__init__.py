"""IEEE 802.11 DCF MAC and its directional-antenna variants.

The :class:`~repro.mac.dcf.DcfMac` state machine implements the DCF
four-way handshake with physical + virtual carrier sense, BEB and
timeouts; an :class:`~repro.mac.policy.AntennaPolicy` plugs in the
paper's three schemes (ORTS-OCTS / DRTS-DCTS / DRTS-OCTS) by choosing
omni or beamed transmission per frame type.  The
:class:`~repro.mac.neighbors.NeighborTable` is the oracle neighbor
protocol the paper assumes.
"""

from .backoff import BackoffManager
from .config import DSSS_MAC, MacParameters
from .dcf import DcfMac, DcfPhase
from .nav import Nav
from .neighbors import NeighborTable, SnapshotNeighborTable
from .packet import Packet
from .policy import (
    DRTS_DCTS_POLICY,
    DRTS_OCTS_POLICY,
    KO_ALTERNATING_POLICY,
    NASIPURI_POLICY,
    ORTS_OCTS_POLICY,
    POLICIES,
    AlternatingRtsPolicy,
    AntennaPolicy,
)
from .stats import MacStats

__all__ = [
    "BackoffManager",
    "MacParameters",
    "DSSS_MAC",
    "DcfMac",
    "DcfPhase",
    "Nav",
    "NeighborTable",
    "SnapshotNeighborTable",
    "Packet",
    "AntennaPolicy",
    "ORTS_OCTS_POLICY",
    "DRTS_DCTS_POLICY",
    "DRTS_OCTS_POLICY",
    "NASIPURI_POLICY",
    "KO_ALTERNATING_POLICY",
    "AlternatingRtsPolicy",
    "POLICIES",
    "MacStats",
]
