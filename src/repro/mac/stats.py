"""Per-node MAC statistics.

Everything the paper's evaluation measures comes from these counters:

* throughput — ``bits_delivered`` over the measurement window,
* delay — per-packet MAC service delay samples,
* the Section-4 **collision ratio** — RTS transmissions that reached the
  data stage but ended in an ACK timeout, divided by all RTS
  transmissions that reached the data stage (i.e. got their CTS):
  "the ratio ... models imperfectness of collision avoidance".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, no runtime dependency
    from ..obs.metrics import MetricsRegistry

__all__ = ["MacStats"]


@dataclass
class MacStats:
    """Counter bundle for one node's MAC."""

    packets_enqueued: int = 0
    packets_delivered: int = 0
    packets_dropped: int = 0
    bits_delivered: int = 0

    rts_sent: int = 0
    cts_sent: int = 0
    data_sent: int = 0
    ack_sent: int = 0

    cts_timeouts: int = 0
    ack_timeouts: int = 0

    #: MAC service delay (enqueue -> ACK) per delivered packet, in ns.
    delays_ns: list[int] = field(default_factory=list)

    # Receiver-side accounting.
    data_received: int = 0
    bits_received: int = 0

    def record_delivery(self, payload_bits: int, delay_ns: int) -> None:
        """A four-way handshake completed for one of our packets."""
        self.packets_delivered += 1
        self.bits_delivered += payload_bits
        self.delays_ns.append(delay_ns)

    @property
    def handshakes_reaching_data(self) -> int:
        """RTS transmissions whose CTS arrived (the data stage started)."""
        return self.packets_delivered + self.ack_timeouts

    @property
    def collision_ratio(self) -> float:
        """ACK-timeout fraction among handshakes that reached data.

        Returns 0.0 when no handshake reached the data stage.
        """
        total = self.handshakes_reaching_data
        if total == 0:
            return 0.0
        return self.ack_timeouts / total

    @property
    def mean_delay_ns(self) -> float:
        """Average MAC service delay, or 0.0 with no deliveries."""
        if not self.delays_ns:
            return 0.0
        return sum(self.delays_ns) / len(self.delays_ns)

    def reset(self) -> None:
        """Zero every counter (used to discard warm-up transients)."""
        self.packets_enqueued = 0
        self.packets_delivered = 0
        self.packets_dropped = 0
        self.bits_delivered = 0
        self.rts_sent = 0
        self.cts_sent = 0
        self.data_sent = 0
        self.ack_sent = 0
        self.cts_timeouts = 0
        self.ack_timeouts = 0
        self.delays_ns.clear()
        self.data_received = 0
        self.bits_received = 0

    def publish(self, metrics: "MetricsRegistry", prefix: str = "mac") -> None:
        """Accumulate these counters into a telemetry registry.

        The MAC already counts its hot paths in this bundle; telemetry
        harvests the totals after a run rather than double-counting
        inline, so enabling observation costs the MAC nothing.
        """
        counter = metrics.counter
        counter(f"{prefix}.packets_enqueued").inc(self.packets_enqueued)
        counter(f"{prefix}.packets_delivered").inc(self.packets_delivered)
        counter(f"{prefix}.packets_dropped").inc(self.packets_dropped)
        counter(f"{prefix}.bits_delivered").inc(self.bits_delivered)
        counter(f"{prefix}.rts_sent").inc(self.rts_sent)
        counter(f"{prefix}.cts_sent").inc(self.cts_sent)
        counter(f"{prefix}.data_sent").inc(self.data_sent)
        counter(f"{prefix}.ack_sent").inc(self.ack_sent)
        counter(f"{prefix}.cts_timeouts").inc(self.cts_timeouts)
        counter(f"{prefix}.ack_timeouts").inc(self.ack_timeouts)
        counter(f"{prefix}.data_received").inc(self.data_received)
        counter(f"{prefix}.bits_received").inc(self.bits_received)

    def merge(self, other: "MacStats") -> None:
        """Accumulate another node's counters into this one (for sums)."""
        self.packets_enqueued += other.packets_enqueued
        self.packets_delivered += other.packets_delivered
        self.packets_dropped += other.packets_dropped
        self.bits_delivered += other.bits_delivered
        self.rts_sent += other.rts_sent
        self.cts_sent += other.cts_sent
        self.data_sent += other.data_sent
        self.ack_sent += other.ack_sent
        self.cts_timeouts += other.cts_timeouts
        self.ack_timeouts += other.ack_timeouts
        self.delays_ns.extend(other.delays_ns)
        self.data_received += other.data_received
        self.bits_received += other.bits_received
