"""Per-node MAC statistics.

Everything the paper's evaluation measures comes from these counters:

* throughput — ``bits_delivered`` over the measurement window,
* delay — per-packet MAC service delay samples,
* the Section-4 **collision ratio** — RTS transmissions that reached the
  data stage but ended in an ACK timeout, divided by all RTS
  transmissions that reached the data stage (i.e. got their CTS):
  "the ratio ... models imperfectness of collision avoidance".
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MacStats"]


@dataclass
class MacStats:
    """Counter bundle for one node's MAC."""

    packets_enqueued: int = 0
    packets_delivered: int = 0
    packets_dropped: int = 0
    bits_delivered: int = 0

    rts_sent: int = 0
    cts_sent: int = 0
    data_sent: int = 0
    ack_sent: int = 0

    cts_timeouts: int = 0
    ack_timeouts: int = 0

    #: MAC service delay (enqueue -> ACK) per delivered packet, in ns.
    delays_ns: list[int] = field(default_factory=list)

    # Receiver-side accounting.
    data_received: int = 0
    bits_received: int = 0

    def record_delivery(self, payload_bits: int, delay_ns: int) -> None:
        """A four-way handshake completed for one of our packets."""
        self.packets_delivered += 1
        self.bits_delivered += payload_bits
        self.delays_ns.append(delay_ns)

    @property
    def handshakes_reaching_data(self) -> int:
        """RTS transmissions whose CTS arrived (the data stage started)."""
        return self.packets_delivered + self.ack_timeouts

    @property
    def collision_ratio(self) -> float:
        """ACK-timeout fraction among handshakes that reached data.

        Returns 0.0 when no handshake reached the data stage.
        """
        total = self.handshakes_reaching_data
        if total == 0:
            return 0.0
        return self.ack_timeouts / total

    @property
    def mean_delay_ns(self) -> float:
        """Average MAC service delay, or 0.0 with no deliveries."""
        if not self.delays_ns:
            return 0.0
        return sum(self.delays_ns) / len(self.delays_ns)

    def reset(self) -> None:
        """Zero every counter (used to discard warm-up transients)."""
        self.packets_enqueued = 0
        self.packets_delivered = 0
        self.packets_dropped = 0
        self.bits_delivered = 0
        self.rts_sent = 0
        self.cts_sent = 0
        self.data_sent = 0
        self.ack_sent = 0
        self.cts_timeouts = 0
        self.ack_timeouts = 0
        self.delays_ns.clear()
        self.data_received = 0
        self.bits_received = 0

    def merge(self, other: "MacStats") -> None:
        """Accumulate another node's counters into this one (for sums)."""
        self.packets_enqueued += other.packets_enqueued
        self.packets_delivered += other.packets_delivered
        self.packets_dropped += other.packets_dropped
        self.bits_delivered += other.bits_delivered
        self.rts_sent += other.rts_sent
        self.cts_sent += other.cts_sent
        self.data_sent += other.data_sent
        self.ack_sent += other.ack_sent
        self.cts_timeouts += other.cts_timeouts
        self.ack_timeouts += other.ack_timeouts
        self.delays_ns.extend(other.delays_ns)
        self.data_received += other.data_received
        self.bits_received += other.bits_received
