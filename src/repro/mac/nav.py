"""Network Allocation Vector: 802.11's virtual carrier sense.

Overheard RTS/CTS/DATA frames carry a Duration field announcing how
long the rest of their handshake will occupy the medium.  Each node
keeps the farthest such reservation (the NAV) and treats the medium as
busy until it passes — even when the air is physically silent.  The NAV
only ever extends; it never shrinks before expiring.
"""

from __future__ import annotations

__all__ = ["Nav"]


class Nav:
    """Monotone medium reservation."""

    def __init__(self) -> None:
        self._until: int = 0

    @property
    def until(self) -> int:
        """Absolute time (ns) the current reservation runs to."""
        return self._until

    def update(self, until: int) -> bool:
        """Extend the reservation to ``until`` if it is farther out.

        Returns:
            ``True`` if the NAV was extended.
        """
        if until < 0:
            raise ValueError(f"NAV time must be >= 0, got {until}")
        if until > self._until:
            self._until = until
            return True
        return False

    def busy(self, now: int) -> bool:
        """Whether virtual carrier sense holds the medium busy at ``now``."""
        return now < self._until

    def remaining(self, now: int) -> int:
        """Nanoseconds of reservation left (0 when expired)."""
        return max(0, self._until - now)

    def clear(self) -> None:
        """Drop the reservation (used by tests and resets)."""
        self._until = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Nav(until={self._until})"
