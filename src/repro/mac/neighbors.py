"""The neighbor protocol, as the paper assumes it.

Section 4: "we ... implement the directional schemes ... with the
assumption that there is a neighbor protocol that can actively maintain
a list of neighbors as well as their locations."  The paper does not
design that protocol — it grants the MAC a perfect one.  We honour the
same contract with an oracle backed by the channel's ground truth:
queries always return the true neighbor set and true bearings.

Keeping this behind an interface means a lossy/stale neighbor protocol
can be substituted later without touching the MAC.
"""

from __future__ import annotations

from ..phy.channel import Channel

__all__ = ["NeighborTable", "SnapshotNeighborTable"]


class NeighborTable:
    """Perfect neighbor/location knowledge for one node."""

    def __init__(self, channel: Channel, node_id: int) -> None:
        self._channel = channel
        self.node_id = node_id

    def neighbor_ids(self) -> list[int]:
        """Ids of all nodes currently within transmission range."""
        return self._channel.neighbors_of(self.node_id)

    def bearing_to(self, other_id: int) -> float:
        """True bearing from this node to a neighbor, in radians.

        One pair lookup serves both the co-location check and the
        bearing (the channel's link cache makes it a dict hit).
        """
        link = self._channel.link(self.node_id, other_id)
        if link.distance_m == 0.0:
            raise ValueError(
                f"nodes {self.node_id} and {other_id} are co-located; "
                "bearing undefined"
            )
        return link.bearing

    def distance_to(self, other_id: int) -> float:
        """True distance from this node to another, in meters."""
        return self._channel.link(self.node_id, other_id).distance_m


class SnapshotNeighborTable(NeighborTable):
    """A neighbor protocol that refreshes only periodically.

    Between refreshes, bearings and neighbor sets are served from the
    last snapshot — so under mobility, beams get aimed at where the
    peer *was*.  With ``refresh_interval_ns = 0`` behaviour degrades
    gracefully to the live oracle.

    This models the realistic end of the paper's neighbor-protocol
    assumption: Section 4 grants the MAC a perfect protocol; any real
    one (periodic hellos) has exactly this staleness.
    """

    def __init__(
        self,
        channel: Channel,
        node_id: int,
        refresh_interval_ns: int,
        sim=None,
    ) -> None:
        super().__init__(channel, node_id)
        if refresh_interval_ns < 0:
            raise ValueError(
                f"refresh interval must be >= 0, got {refresh_interval_ns}"
            )
        self.refresh_interval_ns = refresh_interval_ns
        self._sim = sim
        self._snapshot_time: int | None = None
        self._snapshot_neighbors: list[int] = []
        self._snapshot_positions: dict[int, "object"] = {}
        self.refreshes = 0

    def _now(self) -> int:
        return self._sim.now if self._sim is not None else 0

    def _maybe_refresh(self) -> None:
        now = self._now()
        if (
            self._snapshot_time is None
            or self.refresh_interval_ns == 0
            or now - self._snapshot_time >= self.refresh_interval_ns
        ):
            self._snapshot_time = now
            self._snapshot_neighbors = self._channel.neighbors_of(self.node_id)
            self._snapshot_positions = {
                other: self._channel.position_of(other)
                for other in self._snapshot_neighbors
            }
            self.refreshes += 1

    def neighbor_ids(self) -> list[int]:
        self._maybe_refresh()
        return list(self._snapshot_neighbors)

    def bearing_to(self, other_id: int) -> float:
        self._maybe_refresh()
        me = self._channel.position_of(self.node_id)  # own position is known
        other = self._snapshot_positions.get(other_id)
        if other is None:
            # Never seen in a snapshot: fall back to the live oracle
            # (the peer initiated contact, so a real protocol would
            # have just learned its position from that frame).
            return super().bearing_to(other_id)
        if me.distance_to(other) == 0.0:
            raise ValueError(
                f"nodes {self.node_id} and {other_id} are co-located; "
                "bearing undefined"
            )
        return me.bearing_to(other)
