"""IEEE 802.11 DCF timing configuration (Table 1 of the paper).

All durations are integer nanoseconds.  Defaults reproduce the paper's
DSSS parameter set: DIFS 50 us, SIFS 10 us, slot 20 us, contention
window 31-1023, 2 Mbps channel with a 192 us sync preamble and 1 us
propagation delay.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dessim.units import microseconds
from ..phy.frames import FrameType, PhyParameters

__all__ = ["MacParameters", "DSSS_MAC"]


@dataclass(frozen=True)
class MacParameters:
    """DCF timing and retry knobs.

    Attributes:
        slot_time_ns: backoff slot duration.
        sifs_ns: short interframe space (between handshake frames).
        difs_ns: DCF interframe space (before contention).
        cw_min: initial contention window (slots); backoff draws are
            uniform on ``[0, cw]``.
        cw_max: contention window ceiling.
        retry_limit: handshake attempts per packet before it is dropped.
    """

    slot_time_ns: int = microseconds(20)
    sifs_ns: int = microseconds(10)
    difs_ns: int = microseconds(50)
    cw_min: int = 31
    cw_max: int = 1023
    retry_limit: int = 7

    def __post_init__(self) -> None:
        for name in ("slot_time_ns", "sifs_ns", "difs_ns"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")
        if self.cw_min < 1:
            raise ValueError(f"cw_min must be >= 1, got {self.cw_min}")
        if self.cw_max < self.cw_min:
            raise ValueError(
                f"cw_max ({self.cw_max}) must be >= cw_min ({self.cw_min})"
            )
        if self.retry_limit < 1:
            raise ValueError(f"retry_limit must be >= 1, got {self.retry_limit}")

    # ------------------------------------------------------------------
    # Derived timeouts.  Each allows SIFS turnaround, the response air
    # time, two propagation delays, and one slot of slack.
    # ------------------------------------------------------------------

    def cts_timeout_ns(self, phy: PhyParameters) -> int:
        """How long to wait for a CTS after our RTS leaves the antenna."""
        return (
            self.sifs_ns
            + phy.frame_airtime_ns(FrameType.CTS)
            + 2 * phy.propagation_delay_ns
            + self.slot_time_ns
        )

    def ack_timeout_ns(self, phy: PhyParameters) -> int:
        """How long to wait for an ACK after our DATA leaves the antenna."""
        return (
            self.sifs_ns
            + phy.frame_airtime_ns(FrameType.ACK)
            + 2 * phy.propagation_delay_ns
            + self.slot_time_ns
        )

    def data_start_timeout_ns(self, phy: PhyParameters) -> int:
        """Responder's wait for the DATA to *start arriving* after its
        CTS leaves the antenna.  If the medium is still idle when this
        expires the initiator never got our CTS; resume normal DCF
        instead of idling through a whole data airtime."""
        return (
            self.sifs_ns
            + 2 * phy.propagation_delay_ns
            + self.slot_time_ns
        )

    def data_timeout_ns(self, phy: PhyParameters) -> int:
        """Responder's full wait for a DATA that has started arriving."""
        return (
            self.sifs_ns
            + phy.frame_airtime_ns(FrameType.DATA)
            + 2 * phy.propagation_delay_ns
            + self.slot_time_ns
        )

    def eifs_ns(self, phy: PhyParameters) -> int:
        """Extended IFS after a garbled reception (802.11-1999 9.2.3.4)."""
        return self.sifs_ns + phy.frame_airtime_ns(FrameType.ACK) + self.difs_ns


#: Table 1 configuration.
DSSS_MAC = MacParameters()
