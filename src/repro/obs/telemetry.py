"""Structured JSONL telemetry: one line per observed unit of work.

The campaign layer emits one ``repro-telemetry-v1`` record per computed
grid cell (see :mod:`repro.experiments.campaign`); the record carries
host-side timings from :class:`~repro.obs.profile.PhaseProfiler` and the
counter snapshot of a :class:`~repro.obs.metrics.MetricsRegistry`.
Telemetry is *observational*: it never enters the campaign fingerprint,
and enabling or disabling it cannot change simulation results (the
determinism guard in ``tests/obs/test_determinism_guard.py`` asserts
exactly that).

Record shape::

    {"format": "repro-telemetry-v1", "kind": "cell",
     "key": "n3-ORTS-OCTS-bw30", "n": 3, "scheme": "ORTS-OCTS",
     "beamwidth_deg": 30.0, "replicates": 2, "sim_ns": 200000000,
     "wall_seconds": 1.83, "events_processed": 412345,
     "events_per_sec": 225325.0,
     "phases": {"topology": 0.01, "build": 0.02, "event loop": 1.79},
     "counters": {...}, "gauges": {...}, "histograms": {...}}
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Iterable

__all__ = [
    "TELEMETRY_FORMAT",
    "telemetry_record",
    "append_telemetry",
    "read_telemetry",
    "summarize_cells",
]

#: Schema tag carried by every JSONL line.
TELEMETRY_FORMAT = "repro-telemetry-v1"


def telemetry_record(kind: str, **fields) -> dict:
    """A schema-tagged record; ``fields`` must be JSON-serializable."""
    if not kind:
        raise ValueError("telemetry records need a non-empty kind")
    return {"format": TELEMETRY_FORMAT, "kind": kind, **fields}


def append_telemetry(path: str | pathlib.Path, record: dict) -> None:
    """Append one record as a single JSON line.

    Multi-writer safe: each record is flushed as one ``O_APPEND``
    ``write`` system call, so concurrent appenders (the sharded
    campaign's workers all write to the same sidecar) interleave whole
    lines, never fragments of them.
    """
    if record.get("format") != TELEMETRY_FORMAT:
        raise ValueError(
            f"refusing to write a record without format={TELEMETRY_FORMAT!r}; "
            "build it with telemetry_record()"
        )
    line = json.dumps(record, sort_keys=True, separators=(",", ":"))
    data = (line + "\n").encode()
    fd = os.open(str(path), os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(fd, data)
    finally:
        os.close(fd)


def read_telemetry(path: str | pathlib.Path) -> list[dict]:
    """Parse a JSONL telemetry file, validating every line's format."""
    records = []
    text = pathlib.Path(path).read_text()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: corrupt telemetry line ({exc})") from exc
        if record.get("format") != TELEMETRY_FORMAT:
            raise ValueError(
                f"{path}:{lineno}: not a telemetry record "
                f"(format={record.get('format')!r})"
            )
        records.append(record)
    return records


def summarize_cells(records: Iterable[dict]) -> dict:
    """Aggregate cell records for the campaign manifest.

    Returns totals over every ``kind == "cell"`` record: cell count,
    host seconds, events processed, and the pooled events/sec.  The
    summary is what ``campaign.json`` embeds so a finished campaign's
    cost is readable without re-parsing the JSONL.

    ``cells`` counts *unique* cell keys: a sharded campaign may
    legitimately compute a cell twice (a lease expired and the retry
    raced the original worker to completion), which appends two
    records for one grid cell.  The wall-seconds and event totals keep
    every record — they measure host cost actually paid, retries
    included.
    """
    cells = 0
    seen_keys: set[str] = set()
    wall_seconds = 0.0
    events = 0
    for record in records:
        if record.get("kind") != "cell":
            continue
        key = record.get("key")
        if key is None or key not in seen_keys:
            cells += 1
            if key is not None:
                seen_keys.add(key)
        wall_seconds += record.get("wall_seconds", 0.0)
        events += record.get("events_processed", 0)
    return {
        "format": TELEMETRY_FORMAT,
        "cells": cells,
        "wall_seconds": wall_seconds,
        "events_processed": events,
        "events_per_sec": events / wall_seconds if wall_seconds > 0 else 0.0,
    }
