"""Observability: metrics, host-side profiling, and JSONL telemetry.

The measurement substrate the ROADMAP's "as fast as the hardware
allows" goal is judged against, in the GloMoSim/Parsec tradition of
per-layer event counters kept strictly apart from simulated time:

* :mod:`repro.obs.metrics` — named counters / gauges / fixed-bucket
  histograms (:class:`MetricsRegistry`); disabled registries hand out
  shared null instruments so hot paths pay (nearly) nothing.
* :mod:`repro.obs.profile` — the one sanctioned wall-clock module
  (lint rule SL002): :class:`PhaseProfiler` times labeled host-side
  phases and reports events/sec and slots/sec.
* :mod:`repro.obs.telemetry` — schema-versioned JSONL records; the
  campaign layer writes one per computed cell.
* :mod:`repro.obs.bench` — the benchmark harness behind the CI
  perf gate (imported explicitly, not re-exported here, because it
  pulls in the whole simulation stack).
"""

from .metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_bounds,
)
from .profile import (
    CallbackProfiler,
    PhaseProfiler,
    PhaseRecord,
    classify_callback,
    format_callback_profile,
    format_profile,
    wall_clock,
)
from .telemetry import (
    TELEMETRY_FORMAT,
    append_telemetry,
    read_telemetry,
    summarize_cells,
    telemetry_record,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "exponential_bounds",
    "CallbackProfiler",
    "PhaseProfiler",
    "PhaseRecord",
    "classify_callback",
    "format_callback_profile",
    "format_profile",
    "wall_clock",
    "TELEMETRY_FORMAT",
    "telemetry_record",
    "append_telemetry",
    "read_telemetry",
    "summarize_cells",
]
