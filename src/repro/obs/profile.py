"""Host-side phase profiling — the one sanctioned wall-clock module.

Simulated time is :attr:`repro.dessim.Simulator.now`; the *host* clock
is banned from simulation code by lint rule SL002 precisely because it
varies between runs and machines.  Profiling, however, is *about* the
host clock — how long topology generation, warm-up, the event loop,
and metrics reduction take in real seconds — so this module is the
single place allowed to read it (``[tool.simlint.rules.SL002]``
whitelists exactly this file; importing ``time.perf_counter`` anywhere
else under ``src/`` is a lint error).

Nothing measured here may feed back into the simulation: profilers
observe runs, they never steer them.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter, time
from typing import Callable, Iterator, Sequence

__all__ = [
    "wall_clock",
    "epoch_seconds",
    "PhaseRecord",
    "PhaseProfiler",
    "CallbackProfiler",
    "classify_callback",
    "format_profile",
    "format_callback_profile",
]


def wall_clock() -> float:
    """Monotonic host seconds (the sanctioned wall-clock read)."""
    return perf_counter()


def epoch_seconds() -> float:
    """Unix-epoch host seconds (the sanctioned cross-process clock).

    :func:`wall_clock` is monotonic but its origin is arbitrary *per
    process*, so it cannot order events between processes or hosts.
    The dispatch layer's lease expiries and event timestamps must be
    comparable across workers that share only a filesystem, which is
    exactly what the epoch clock provides.  Like everything in this
    module it is operator-facing observation and scheduling only —
    simulated time never flows through it.
    """
    return time()


@dataclass(frozen=True)
class PhaseRecord:
    """Accumulated host time of one labeled phase."""

    label: str
    seconds: float
    entries: int


class PhaseProfiler:
    """Accumulates host seconds per labeled phase.

    Phases are accumulating: re-entering ``phase("event loop")`` adds to
    the same bucket, so per-replicate loops sum naturally.  The clock is
    injectable for tests; the default is :func:`wall_clock`.

    Example::

        profiler = PhaseProfiler()
        with profiler.phase("topology"):
            topology = generate_ring_topology(config, stream)
        with profiler.phase("event loop"):
            simulation.run(duration)
        print(format_profile(profiler, [("events/sec", n_events, "event loop")]))
    """

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = wall_clock if clock is None else clock
        self._seconds: dict[str, float] = {}
        self._entries: dict[str, int] = {}

    @contextmanager
    def phase(self, label: str) -> Iterator[None]:
        """Time one ``with`` block under ``label`` (accumulating)."""
        start = self._clock()
        try:
            yield
        finally:
            elapsed = self._clock() - start
            self._seconds[label] = self._seconds.get(label, 0.0) + elapsed
            self._entries[label] = self._entries.get(label, 0) + 1

    def add(self, label: str, seconds: float) -> None:
        """Record externally measured seconds under ``label``."""
        if seconds < 0:
            raise ValueError(f"phase {label!r}: seconds must be >= 0, got {seconds}")
        self._seconds[label] = self._seconds.get(label, 0.0) + seconds
        self._entries[label] = self._entries.get(label, 0) + 1

    def seconds(self, label: str) -> float:
        """Accumulated seconds of ``label`` (0.0 if never entered)."""
        return self._seconds.get(label, 0.0)

    @property
    def total_seconds(self) -> float:
        return sum(self._seconds.values())

    @property
    def phases(self) -> tuple[PhaseRecord, ...]:
        """Phases in first-entered order."""
        return tuple(
            PhaseRecord(label, self._seconds[label], self._entries[label])
            for label in self._seconds
        )

    def rate(self, count: int | float, label: str) -> float:
        """``count`` per accumulated second of ``label`` (0.0 if untimed)."""
        elapsed = self._seconds.get(label, 0.0)
        if elapsed <= 0.0:
            return 0.0
        return count / elapsed

    def as_dict(self) -> dict[str, float]:
        """``{label: seconds}`` in first-entered order (JSON-ready)."""
        return dict(self._seconds)


# Dispatch groups, matched by the callback owner's module prefix.  The
# first hit wins, so list the most specific prefixes first.
_CALLBACK_GROUPS = (
    ("repro.mac", "mac"),
    ("repro.phy", "phy"),
    ("repro.traffic", "traffic"),
    ("repro.route", "route"),
    ("repro.net", "net"),
    ("repro.dessim", "dessim"),
)


def classify_callback(callback: Callable[..., object]) -> str:
    """``group: Qualname`` key for a dispatched event callback.

    Bound methods classify by their *owner's* module (a
    ``DcfMac._on_backoff_expired`` fire is ``mac:`` work no matter
    which module defined the base class); plain functions by their own.
    Anything outside the known layers — test lambdas, ``list.append``
    — lands in ``other``.
    """
    owner = getattr(callback, "__self__", None)
    if owner is not None:
        module = type(owner).__module__ or ""
    else:
        module = getattr(callback, "__module__", None) or ""
    qualname = getattr(callback, "__qualname__", None) or repr(callback)
    for prefix, group in _CALLBACK_GROUPS:
        if module.startswith(prefix):
            return f"{group}: {qualname}"
    return f"other: {qualname}"


class CallbackProfiler:
    """Per-callback-type host-time breakdown of the event loop.

    Attach as the kernel's dispatch hook and run::

        profiler = CallbackProfiler()
        sim.dispatch_hook = profiler
        sim.run()
        print(format_callback_profile(profiler))

    The hook *is* the dispatcher: the kernel hands it each fired
    :class:`~repro.dessim.Event` and this object invokes the callback,
    timing it and accumulating under :func:`classify_callback`'s key.
    The hooked loop is deliberately unoptimized — profiling runs pay
    for what they measure — so compare shares, not absolute seconds.
    """

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = wall_clock if clock is None else clock
        self._seconds: dict[str, float] = {}
        self._counts: dict[str, int] = {}
        # classify_callback is pure string work keyed only on the
        # callback's (module, qualname); memoize so hot callbacks pay
        # for it once.
        self._keys: dict[tuple[str, str], str] = {}

    def __call__(self, event) -> None:
        callback = event.callback
        start = self._clock()
        callback(*event.args)
        elapsed = self._clock() - start
        owner = getattr(callback, "__self__", None)
        module = (
            type(owner).__module__
            if owner is not None
            else getattr(callback, "__module__", None)
        ) or ""
        memo = (module, getattr(callback, "__qualname__", "") or repr(callback))
        key = self._keys.get(memo)
        if key is None:
            key = self._keys[memo] = classify_callback(callback)
        self._seconds[key] = self._seconds.get(key, 0.0) + elapsed
        self._counts[key] = self._counts.get(key, 0) + 1

    @property
    def total_seconds(self) -> float:
        return sum(self._seconds.values())

    @property
    def records(self) -> tuple[PhaseRecord, ...]:
        """Per-callback records, most expensive first."""
        return tuple(
            PhaseRecord(key, self._seconds[key], self._counts[key])
            for key in sorted(
                self._seconds, key=self._seconds.__getitem__, reverse=True
            )
        )

    def as_dict(self) -> dict[str, dict[str, float | int]]:
        """``{key: {"seconds": ..., "calls": ...}}``, most expensive first."""
        return {
            record.label: {"seconds": record.seconds, "calls": record.entries}
            for record in self.records
        }


def format_callback_profile(profiler: CallbackProfiler) -> str:
    """Render the per-callback breakdown as an aligned text table."""
    records = profiler.records
    if not records:
        return "no callbacks dispatched"
    total = profiler.total_seconds
    width = max(len("callback"), *(len(r.label) for r in records))
    lines = [f"{'callback':<{width}}      calls    seconds      share"]
    for record in records:
        share = record.seconds / total if total > 0 else 0.0
        lines.append(
            f"{record.label:<{width}} {record.entries:>10,} "
            f"{record.seconds:10.4f}  {share:8.1%}"
        )
    lines.append(f"{'total':<{width}} {sum(r.entries for r in records):>10,} {total:10.4f}  {1.0:8.1%}")
    return "\n".join(lines)


def format_profile(
    profiler: PhaseProfiler,
    rates: Sequence[tuple[str, int | float, str]] = (),
) -> str:
    """Render a profile as an aligned text table.

    ``rates`` rows are ``(name, count, phase_label)`` — e.g.
    ``("events/sec", 1_200_000, "event loop")`` — appended below the
    phase table as throughput lines.
    """
    records = profiler.phases
    lines = ["phase                    seconds      share"]
    total = profiler.total_seconds
    for record in records:
        share = record.seconds / total if total > 0 else 0.0
        lines.append(
            f"{record.label:<22} {record.seconds:10.4f}  {share:8.1%}"
        )
    lines.append(f"{'total':<22} {total:10.4f}  {1.0:8.1%}" if records else "no phases recorded")
    for name, count, label in rates:
        lines.append(f"{name:<22} {profiler.rate(count, label):12,.0f}")
    return "\n".join(lines)
