"""Counters, gauges, and fixed-bucket histograms for the hot paths.

The same philosophy as :class:`repro.dessim.trace.Tracer`: instrumented
code pays (nearly) nothing when observation is off.  A disabled
:class:`MetricsRegistry` hands out shared null instruments whose
``inc``/``set``/``observe`` are empty methods, so components resolve
their instruments once at construction time and the per-call cost in a
disabled run is a single no-op method call — and the innermost loops
(the event kernel, the slot loop) avoid even that by *harvesting* their
existing counters into the registry when a run ends instead of
incrementing per event (see ``docs/observability.md``).

Determinism: instruments are write-only from the simulation's point of
view — nothing in this module feeds back into event order or RNG
draws, and :meth:`MetricsRegistry.snapshot` iterates names in sorted
order so emitted telemetry is byte-stable for identical runs.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "exponential_bounds",
]


class Counter:
    """A monotonically increasing integer-or-float count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot inc by {amount}")
        self.value += amount


class Gauge:
    """A value that goes up and down (queue depth, node count, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int | float = 0

    def set(self, value: int | float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram: upper-inclusive bounds plus an overflow bin.

    ``bounds`` must be strictly ascending; an observation ``v`` lands in
    the first bucket whose bound satisfies ``v <= bound``, or in the
    overflow bin when it exceeds every bound.  ``counts`` therefore has
    ``len(bounds) + 1`` entries.  Bounds are fixed at creation so two
    runs of the same code always bucket identically.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total")

    def __init__(self, name: str, bounds: Sequence[int | float]) -> None:
        ordered = tuple(bounds)
        if not ordered:
            raise ValueError(f"histogram {name}: need at least one bound")
        if any(b >= c for b, c in zip(ordered, ordered[1:])):
            raise ValueError(
                f"histogram {name}: bounds must be strictly ascending, got {ordered}"
            )
        self.name = name
        self.bounds = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.count = 0
        self.total: int | float = 0

    def observe(self, value: int | float, count: int = 1) -> None:
        """Record ``value`` ``count`` times."""
        if count < 1:
            raise ValueError(f"histogram {self.name}: count must be >= 1, got {count}")
        self.counts[bisect_left(self.bounds, value)] += count
        self.count += count
        self.total += value * count

    @property
    def mean(self) -> float:
        """Mean of all observed values (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count


class _NullCounter(Counter):
    """Shared do-nothing counter handed out by a disabled registry."""

    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: int | float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null", (1,))

    def observe(self, value: int | float, count: int = 1) -> None:
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram()


def exponential_bounds(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` bucket bounds growing geometrically from ``start``."""
    if start <= 0:
        raise ValueError(f"start must be positive, got {start}")
    if factor <= 1:
        raise ValueError(f"factor must be > 1, got {factor}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return tuple(start * factor**i for i in range(count))


class MetricsRegistry:
    """Named instruments, memoized by name.

    ``MetricsRegistry(enabled=False)`` (or the shared
    :data:`NULL_REGISTRY`) returns shared null instruments from every
    accessor: nothing is allocated, nothing is recorded, and
    :meth:`snapshot` is empty.  Asking for the same name with a
    different instrument kind (or a histogram with different bounds) is
    an error — names are a flat, global-per-registry namespace,
    conventionally ``layer.metric`` (``dessim.events``,
    ``phy.transmissions``, ``mac.rts_sent``).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type, factory):
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not kind:
                raise ValueError(
                    f"metric {name!r} is a {type(existing).__name__}, "
                    f"not a {kind.__name__}"
                )
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, bounds: Sequence[int | float]) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        histogram = self._get(name, Histogram, lambda: Histogram(name, bounds))
        if histogram.bounds != tuple(bounds):
            raise ValueError(
                f"histogram {name!r} already registered with bounds "
                f"{histogram.bounds}, not {tuple(bounds)}"
            )
        return histogram

    def __len__(self) -> int:
        return len(self._instruments)

    def clear(self) -> None:
        """Drop every instrument (tests and repeated harness runs)."""
        self._instruments.clear()

    def snapshot(self) -> dict:
        """JSON-ready view: ``{"counters": .., "gauges": .., "histograms": ..}``.

        Names are emitted in sorted order so the snapshot of a
        deterministic run is itself deterministic.
        """
        counters: dict[str, int | float] = {}
        gauges: dict[str, int | float] = {}
        histograms: dict[str, dict] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if type(instrument) is Counter:
                counters[name] = instrument.value
            elif type(instrument) is Gauge:
                gauges[name] = instrument.value
            else:
                assert type(instrument) is Histogram
                histograms[name] = {
                    "bounds": list(instrument.bounds),
                    "counts": list(instrument.counts),
                    "count": instrument.count,
                    "total": instrument.total,
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}


#: Shared disabled registry: the default for instrumented components, so
#: un-instrumented construction costs one attribute read per instrument.
NULL_REGISTRY = MetricsRegistry(enabled=False)
