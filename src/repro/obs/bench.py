"""The telemetry benchmark harness behind the CI perf gate.

Runs a small fixed suite over the simulation substrates — the dessim
event kernel, the slotsim Monte-Carlo loop (scalar and the vectorized
batch engine at ~10^4 nodes), a saturated network cell,
a ~200-node directional cell (the link-cache transmit scan), the same
cell under SINR/capture reception (the reception-subsystem hot path),
a mobility-churn case (link-cache invalidation), and a routed
multi-hop cell (the relay plane) — and writes a
schema-versioned ``BENCH_telemetry.json`` snapshot.  ``--check`` compares the snapshot against a committed
baseline (``benchmarks/baselines/bench_baseline.json``) and exits
non-zero on a >tolerance regression; that exit code *is* the CI
``perf-gate`` job.

Hardware normalization
======================

Raw events/sec differ wildly between a laptop and a CI runner, so the
gate compares *calibrated scores*: every rate is multiplied by the wall
time of a fixed pure-Python calibration loop measured in the same
process.  A score is therefore "simulated events per calibration
quantum" — roughly machine-independent, so a committed baseline
transfers across hosts while a genuine hot-path regression still moves
it.  Cell wall time is gated the same way (``wall / calibration``).

Invoke as ``python benchmarks/telemetry_harness.py`` (thin wrapper) or
``python -m repro.obs.bench``.
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import platform
import random
import sys
from typing import Callable, Sequence

from .metrics import MetricsRegistry
from .profile import wall_clock

__all__ = [
    "BENCH_FORMAT",
    "BASELINE_FORMAT",
    "DEFAULT_TOLERANCE",
    "run_suite",
    "baseline_from_payload",
    "compare_to_baseline",
    "main",
]

BENCH_FORMAT = "repro-bench-v1"
BASELINE_FORMAT = "repro-bench-baseline-v1"

#: Default allowed relative regression before the gate fails (30%).
DEFAULT_TOLERANCE = 0.30

#: Iterations of the pure-Python calibration loop (fixed forever: the
#: committed baseline's scores are denominated in this quantum).
_CALIBRATION_ITERATIONS = 200_000


def _calibration_workload() -> float:
    total = 0.0
    for i in range(_CALIBRATION_ITERATIONS):
        total += math.sqrt(i % 1024 + 1)
    return total


def calibration_seconds(repeats: int = 3) -> float:
    """Best-of-``repeats`` wall time of the fixed calibration loop."""
    best = math.inf
    for _ in range(repeats):
        start = wall_clock()
        _calibration_workload()
        best = min(best, wall_clock() - start)
    return best


def _paired_calibration() -> float:
    """One calibration sample taken adjacent to a case run.

    Pairing matters: measuring calibration once up front and cases
    later lets a mid-suite frequency/load shift move them in opposite
    directions, which reads as a phantom regression.  Sampling the
    quantum immediately before each case repeat makes every score a
    ratio of two measurements under the same conditions.
    """
    start = wall_clock()
    _calibration_workload()
    return wall_clock() - start


# ----------------------------------------------------------------------
# The cases.  Each returns (work_count, result_sanity) and is timed by
# the driver; counts are events for dessim/network, slots for slotsim.
# ----------------------------------------------------------------------


def _case_event_kernel(chains: int, depth: int) -> int:
    from ..dessim import make_simulator

    sim = make_simulator()
    count = 0

    def tick(n: int) -> None:
        nonlocal count
        count += 1
        if n > 0:
            sim.schedule(10, tick, n - 1)

    for _ in range(chains):
        sim.schedule(0, tick, depth - 1)
    sim.run()
    assert count == chains * depth
    return count


def _case_timer_churn(restarts: int) -> int:
    """Timer start/cancel/restart churn: the zero-garbage-cancel bench.

    A bank of timers is restarted long before expiry, so nearly every
    start supersedes a still-pending event — the tombstone path — while
    a driver timer re-arms from its own callback each round (the
    reuse-in-place path).  The case moves when scheduling,
    cancellation, or reschedule cost regresses; the final drain keeps
    bucket reclamation in the measurement.  Work unit: start
    operations.
    """
    from ..dessim import Timer, make_simulator

    sim = make_simulator()

    def ignore() -> None:
        return None

    bank = [Timer(sim, f"churn{i}", ignore) for i in range(8)]
    ops = 0

    def drive() -> None:
        nonlocal ops
        if ops >= restarts:
            return
        for timer in bank:
            # Far expiry, restarted every round: always superseded.
            timer.start(50_000)
            ops += 1
        driver.start(1_000)

    driver = Timer(sim, "churn-driver", drive)
    driver.start(0)
    sim.run()
    assert sim.pending_events == 0
    return ops


def _case_slotsim(slots: int) -> int:
    from ..core import PAPER_PARAMETERS
    from ..slotsim import SlotModelConfig, SlotModelEngine

    config = SlotModelConfig(
        params=PAPER_PARAMETERS.with_neighbors(3.0), p=0.02, seed=3
    )
    results = SlotModelEngine(config).run(slots)
    assert results.initiations > 0
    return slots


def _case_slotsim_batch(slots: int, batch: int = 2) -> int:
    """Vectorized slot engine at the 10^4-node scale.

    Same protocol world as ``slotsim_loop`` (N=3, p=0.02) on a torus
    large enough for ~10^4 nodes, advanced ``batch`` replicates at a
    time by :class:`~repro.slotsim.batch.BatchSlotModelEngine`.  The
    work unit is **node-slots** (``slots * batch * node_count``), not
    slots: one slot here simulates ~300x the nodes of the scalar case,
    and counting node-slots makes the two scores express the same
    per-node cost.  The case moves when the array program (interference
    bincount, checkpoint masks) regresses.
    """
    from ..core import PAPER_PARAMETERS
    from ..slotsim import BatchSlotModelEngine, SlotModelConfig

    config = SlotModelConfig(
        params=PAPER_PARAMETERS.with_neighbors(3.0),
        p=0.02,
        torus_factor=102.0,  # ~10^4 nodes at N=3
        seed=3,
    )
    engine = BatchSlotModelEngine(config, batch=batch)
    results = engine.run(slots)
    assert all(r.initiations > 0 for r in results)
    return slots * batch * engine.geometry.count


def _case_network_cell(sim_seconds: float) -> int:
    from ..dessim import seconds
    from ..net import NetworkSimulation, TopologyConfig, generate_ring_topology

    topology = generate_ring_topology(TopologyConfig(n=3), random.Random(50))  # simlint: disable=SL001 -- fixed bench workload, not an experiment
    metrics = MetricsRegistry()
    net = NetworkSimulation(topology, "ORTS-OCTS", math.pi, seed=1, metrics=metrics)
    result = net.run(seconds(sim_seconds))
    assert result.duration_ns > 0
    assert metrics.counter("dessim.events").value > 0
    # Work unit: simulated nanoseconds.  The workload is fixed by the
    # config, so the unit survives scheduler/MAC changes to how many
    # kernel events the same simulated second takes.
    return result.duration_ns


def _case_network_large(sim_seconds: float) -> int:
    """~200-node directional cell: the link-cache transmit scan bench.

    ``n=8, rings=5`` is the configuration the channel fast path was
    sized against; a narrow beam makes every transmit a sector lookup
    rather than an O(N) trig sweep, so this case moves when the
    :class:`~repro.phy.LinkCache` hot path regresses.
    """
    from ..dessim import seconds
    from ..dessim.rng import RngRegistry
    from ..net import NetworkSimulation, TopologyConfig, generate_ring_topology

    placement = RngRegistry(7).stream("placement")
    topology = generate_ring_topology(TopologyConfig(n=8, rings=5), placement)
    metrics = MetricsRegistry()
    net = NetworkSimulation(
        topology, "DRTS-OCTS", math.pi / 3, seed=1, metrics=metrics
    )
    result = net.run(seconds(sim_seconds))
    assert result.duration_ns > 0
    assert metrics.counter("dessim.events").value > 0
    # Work unit: simulated nanoseconds (see _case_network_cell).
    return result.duration_ns


def _case_network_sinr(sim_seconds: float) -> int:
    """The ~200-node directional cell under SINR/capture reception.

    Identical workload to ``network_large`` but with
    :class:`~repro.phy.reception.SinrCaptureReception` supplying link
    budgets and per-signal SINR tracking, so this case moves when the
    reception subsystem's hot path (linear-power bookkeeping, shadowed
    link budgets through the cache) regresses — separately from the
    unit-disk fast path, which ``network_large`` keeps honest.
    """
    from ..dessim import seconds
    from ..dessim.rng import RngRegistry
    from ..net import NetworkSimulation, TopologyConfig, generate_ring_topology
    from ..phy.reception import PhyConfig

    placement = RngRegistry(7).stream("placement")
    topology = generate_ring_topology(TopologyConfig(n=8, rings=5), placement)
    metrics = MetricsRegistry()
    net = NetworkSimulation(
        topology,
        "DRTS-OCTS",
        math.pi / 3,
        seed=1,
        metrics=metrics,
        phy_config=PhyConfig(model="sinr"),
    )
    result = net.run(seconds(sim_seconds))
    assert result.duration_ns > 0
    assert metrics.counter("dessim.events").value > 0
    # Work unit: simulated nanoseconds (see _case_network_cell).
    return result.duration_ns


def _case_multihop_medium(sim_seconds: float) -> int:
    """Routed flows over a connected two-ring cell: the relay-plane bench.

    Exercises the full multi-hop stack — greedy geographic routing,
    per-node forwarding agents, flow sources — on top of the
    directional MAC, so it moves when the relay plane (queue handling,
    payload plumbing, delivery listeners) regresses in a way the
    single-hop cases cannot see.
    """
    from ..dessim import seconds
    from ..dessim.rng import RngRegistry
    from ..net import (
        MultihopNetworkSimulation,
        TopologyConfig,
        generate_connected_ring_topology,
    )

    placement = RngRegistry(2).stream("placement")
    topology = generate_connected_ring_topology(
        TopologyConfig(n=5, rings=2), placement
    )
    metrics = MetricsRegistry()
    net = MultihopNetworkSimulation(
        topology, "DRTS-OCTS", math.pi / 2, seed=1, metrics=metrics
    )
    result = net.run(seconds(sim_seconds))
    assert result.packets_originated > 0
    assert metrics.counter("dessim.events").value > 0
    # Work unit: simulated nanoseconds (see _case_network_cell).
    return result.duration_ns


def _case_mobility_churn(sim_seconds: float) -> int:
    """Saturated ring with wandering nodes: cache-invalidation bench.

    Half the nodes follow random-waypoint mobility with a 1 ms step, so
    every millisecond of simulated time bumps position epochs and forces
    the link cache to rebuild rows.  This case moves when invalidation
    or rebuild cost regresses, which the static cases cannot see.
    """
    from ..dessim import make_simulator, seconds
    from ..dessim.rng import RngRegistry
    from ..dessim.units import MILLISECOND
    from ..mac.config import DSSS_MAC
    from ..mac.dcf import DcfMac
    from ..mac.neighbors import SnapshotNeighborTable
    from ..mac.policy import POLICIES
    from ..net.mobility import RandomWaypointMobility
    from ..phy.channel import Channel
    from ..phy.propagation import Position, UnitDiskPropagation
    from ..phy.radio import Radio
    from ..traffic.cbr import SaturatedCbrSource

    sim = make_simulator()
    channel = Channel(sim, propagation=UnitDiskPropagation(range_m=250.0))
    rng = RngRegistry(13)
    n = 12
    radios = {
        nid: Radio(
            sim,
            nid,
            Position(
                150.0 * math.cos(2 * math.pi * nid / n),
                150.0 * math.sin(2 * math.pi * nid / n),
            ),
            channel,
        )
        for nid in range(n)
    }
    macs = {
        nid: DcfMac(
            sim,
            radios[nid],
            DSSS_MAC,
            SnapshotNeighborTable(channel, nid, 10 * MILLISECOND, sim=sim),
            POLICIES["DRTS-OCTS"],
            beamwidth=math.pi / 3,
            rng=rng.stream(f"mac{nid}"),
        )
        for nid in range(n)
    }
    movers = [
        RandomWaypointMobility(
            sim,
            radios[nid],
            rng.stream(f"waypoints{nid}"),
            speed_mps=50.0,
            bounds=(-250.0, -250.0, 250.0, 250.0),
            step_ns=MILLISECOND,
        )
        for nid in range(0, n, 2)
    ]
    for mover in movers:
        mover.start()
    for nid in range(n):
        SaturatedCbrSource(
            sim, macs[nid], [(nid + 1) % n], rng.stream(f"traffic{nid}")
        ).start()
    sim.run(until=seconds(sim_seconds))
    cache = channel.cache
    assert cache is not None and cache.move_seq > len(movers)
    assert sim.events_processed > 0
    # Work unit: simulated nanoseconds (see _case_network_cell).
    return sim.now


def _case_lint_full_tree() -> int:
    """Cold + warm whole-repo lint: the incremental-cache bench.

    Lints the package's own source tree twice against a throwaway cache
    — a cold run (parse everything, run every rule, both phases) and a
    warm run (content hashes only).  The case moves when the project
    pass, a rule, or the cache path regresses; the warm-run assertion
    keeps the cache honest (zero misses means zero parsing).
    """
    import tempfile

    from ..lint.config import load_config
    from ..lint.engine import lint_paths

    src_root = pathlib.Path(__file__).resolve().parents[2]
    config = load_config(start=src_root)
    config.use_baseline = False
    with tempfile.TemporaryDirectory() as tmp:
        config.cache = str(pathlib.Path(tmp) / "bench-cache.json")
        cold = lint_paths([src_root / "repro"], config)
        warm = lint_paths([src_root / "repro"], config)
    assert cold.files_checked == warm.files_checked > 0
    assert cold.errors == [] and warm.errors == []
    assert warm.cache_misses == 0
    return cold.files_checked + warm.files_checked


def _timed(fn: Callable[[], int], repeats: int) -> dict:
    """Best paired (calibration, case) measurement over ``repeats`` runs.

    Each repeat samples the calibration quantum right before the case,
    then keeps the repeat with the best calibrated score, so the
    reported score and normalized wall come from the same interval.
    """
    best: dict | None = None
    for _ in range(repeats):
        calibration = _paired_calibration()
        start = wall_clock()
        count = fn()
        wall = wall_clock() - start
        per_sec = count / wall if wall > 0 else 0.0
        sample = {
            "count": count,
            "wall_seconds": wall,
            "per_sec": per_sec,
            # Hardware-normalized: work per calibration quantum.
            "score": per_sec * calibration,
            "normalized_wall": wall / calibration if calibration > 0 else 0.0,
        }
        if best is None or sample["score"] > best["score"]:
            best = sample
    assert best is not None
    return best


def run_suite(
    repeats: int = 3,
    *,
    kernel_events: int = 20_000,
    timer_churn_restarts: int = 30_000,
    slotsim_slots: int = 10_000,
    slotsim_batch_slots: int = 300,
    network_sim_seconds: float = 0.2,
) -> dict:
    """Run every case; return the ``repro-bench-v1`` payload."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    chains = 20
    depth = max(1, kernel_events // chains)
    cases: dict[str, dict] = {}
    suite: Sequence[tuple[str, Callable[[], int]]] = (
        ("dessim_event_kernel", lambda: _case_event_kernel(chains, depth)),
        ("timer_churn", lambda: _case_timer_churn(timer_churn_restarts)),
        ("slotsim_loop", lambda: _case_slotsim(slotsim_slots)),
        ("slotsim_batch", lambda: _case_slotsim_batch(slotsim_batch_slots)),
        ("network_cell", lambda: _case_network_cell(network_sim_seconds)),
        ("network_large", lambda: _case_network_large(network_sim_seconds)),
        ("network_sinr", lambda: _case_network_sinr(network_sim_seconds)),
        ("mobility_churn", lambda: _case_mobility_churn(network_sim_seconds)),
        ("multihop_medium", lambda: _case_multihop_medium(network_sim_seconds)),
        ("lint_full_tree", _case_lint_full_tree),
    )
    for name, fn in suite:
        cases[name] = _timed(fn, repeats)
    return {
        "format": BENCH_FORMAT,
        "python": platform.python_version(),
        "repeats": repeats,
        "calibration_seconds": calibration_seconds(repeats),
        "cases": cases,
    }


def baseline_from_payload(
    payload: dict, tolerance: float = DEFAULT_TOLERANCE
) -> dict:
    """Distill a suite payload into a committable baseline."""
    if payload.get("format") != BENCH_FORMAT:
        raise ValueError(f"not a bench payload (format={payload.get('format')!r})")
    return {
        "format": BASELINE_FORMAT,
        "tolerance": tolerance,
        "cases": {
            name: {
                "score": case["score"],
                "normalized_wall": case["normalized_wall"],
            }
            for name, case in sorted(payload["cases"].items())
        },
    }


def compare_to_baseline(
    payload: dict, baseline: dict, tolerance: float | None = None
) -> list[str]:
    """Regression messages (empty when the payload meets the baseline).

    A case regresses when its calibrated throughput score drops more
    than ``tolerance`` below the baseline, or its normalized wall time
    rises more than ``tolerance`` above it.
    """
    if baseline.get("format") != BASELINE_FORMAT:
        raise ValueError(
            f"not a bench baseline (format={baseline.get('format')!r})"
        )
    if tolerance is None:
        tolerance = float(baseline.get("tolerance", DEFAULT_TOLERANCE))
    if not 0 < tolerance < 1:
        raise ValueError(f"tolerance must be in (0, 1), got {tolerance}")
    failures = []
    for name, base in sorted(baseline["cases"].items()):
        case = payload.get("cases", {}).get(name)
        if case is None:
            failures.append(f"{name}: missing from the measured suite")
            continue
        floor = base["score"] * (1 - tolerance)
        if case["score"] < floor:
            failures.append(
                f"{name}: score {case['score']:.1f} < {floor:.1f} "
                f"(baseline {base['score']:.1f} - {tolerance:.0%})"
            )
        ceiling = base["normalized_wall"] * (1 + tolerance)
        if case["normalized_wall"] > ceiling:
            failures.append(
                f"{name}: normalized wall {case['normalized_wall']:.2f} > "
                f"{ceiling:.2f} (baseline {base['normalized_wall']:.2f} "
                f"+ {tolerance:.0%})"
            )
    return failures


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Telemetry benchmark harness: snapshot + perf-gate check.",
    )
    parser.add_argument(
        "--out", default="BENCH_telemetry.json", metavar="PATH",
        help="write the repro-bench-v1 snapshot here (default %(default)s)",
    )
    parser.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="compare against a committed baseline; exit 1 on regression",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="PATH",
        help="distill this run into a committable baseline file",
    )
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help="override the baseline's allowed regression fraction",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--kernel-events", type=int, default=20_000)
    parser.add_argument("--timer-churn-restarts", type=int, default=30_000)
    parser.add_argument("--slotsim-slots", type=int, default=10_000)
    parser.add_argument("--slotsim-batch-slots", type=int, default=300)
    parser.add_argument("--network-sim-seconds", type=float, default=0.2)
    args = parser.parse_args(argv)

    payload = run_suite(
        args.repeats,
        kernel_events=args.kernel_events,
        timer_churn_restarts=args.timer_churn_restarts,
        slotsim_slots=args.slotsim_slots,
        slotsim_batch_slots=args.slotsim_batch_slots,
        network_sim_seconds=args.network_sim_seconds,
    )
    pathlib.Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    for name, case in sorted(payload["cases"].items()):
        print(
            f"{name:<22} {case['count']:>10,} in {case['wall_seconds']:.3f}s "
            f"({case['per_sec']:,.0f}/s, score {case['score']:.1f})"
        )
    print(f"calibration quantum    {payload['calibration_seconds']:.4f}s")

    if args.write_baseline:
        baseline = baseline_from_payload(
            payload,
            DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance,
        )
        pathlib.Path(args.write_baseline).write_text(
            json.dumps(baseline, indent=2) + "\n"
        )
        print(f"baseline written to {args.write_baseline}")

    if args.check:
        baseline = json.loads(pathlib.Path(args.check).read_text())
        failures = compare_to_baseline(payload, baseline, args.tolerance)
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"perf gate OK against {args.check}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
