"""Slot-model Monte-Carlo study: the paper grid on the slotsim engines.

Runs the ``(N, scheme, beamwidth)`` grid of the analytical model's
*simulated world* (:mod:`repro.slotsim`) as a campaign: each cell is
``topologies`` independent torus draws, each replicate a pure function
of ``(config, n, replicate)`` exactly like the 802.11 studies, with
cell artifacts persisted under ``"kind": "slotsim"``.

The engine is part of the configuration — ``engine="scalar"`` runs the
oracle :class:`~repro.slotsim.engine.SlotModelEngine`, ``engine="batch"``
the vectorized :class:`~repro.slotsim.batch.BatchSlotModelEngine` — and
therefore part of the campaign fingerprint: artifacts produced by the
two engines can never be silently mixed in one campaign directory, even
though the batch engine is validated as statistically identical (see
``tests/slotsim/test_batch.py``).
"""

from __future__ import annotations

import math
import pathlib
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, ClassVar, Sequence

from ..core.params import PAPER_PARAMETERS
from ..metrics.summary import ReplicateSummary, summarize
from ..net.topology import Topology
from ..obs.metrics import MetricsRegistry
from ..obs.profile import PhaseProfiler
from ..slotsim import (
    BatchSlotModelEngine,
    SlotModelConfig,
    SlotModelEngine,
    SlotModelResults,
)
from .campaign import (
    CampaignProgress,
    CellResult,
    CellSpec,
    cell_telemetry,
    replicate_seed,
    run_campaign,
)
from .config import SimStudyConfig

__all__ = [
    "SLOT_ENGINES",
    "SlotStudyConfig",
    "SlotReplicateMetrics",
    "SlotCell",
    "run_slot_cell_spec",
    "run_slot_cell_spec_telemetry",
    "run_slot_study",
    "summarize_slotsim",
    "format_slotsim_table",
]

#: Selectable slot-model engines.
SLOT_ENGINES = ("scalar", "batch")


@dataclass(frozen=True)
class SlotStudyConfig(SimStudyConfig):
    """The slot-model sweep: the grid axes plus slotsim knobs.

    Inherits ``n_values`` × ``schemes`` × ``beamwidths_deg``,
    ``topologies`` and ``base_seed`` from
    :class:`~repro.experiments.config.SimStudyConfig` (the 802.11-only
    fields ``sim_time_ns``/``retry_limit``/``capture_threshold`` ride
    along unused), so the campaign fingerprint covers every field —
    including ``engine``, which makes artifacts from the scalar and
    batch engines distinguishable by construction.
    """

    #: Per-slot handshake-initiation probability of a waiting node.
    p: float = 0.05
    #: Slots simulated per replicate.
    slots: int = 5_000
    #: Torus side length as a multiple of the range ``R``.
    torus_factor: float = 6.0
    #: Which engine advances the world: ``"scalar"`` (the oracle) or
    #: ``"batch"`` (vectorized; statistically identical outcomes).
    engine: str = "batch"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.p < 1.0:
            raise ValueError(f"p must be in (0, 1), got {self.p!r}")
        if self.slots < 1:
            raise ValueError(f"slots must be >= 1, got {self.slots}")
        if self.torus_factor < 3.0:
            raise ValueError(
                f"torus_factor must be >= 3, got {self.torus_factor!r}"
            )
        if self.engine not in SLOT_ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {SLOT_ENGINES}"
            )


@dataclass(frozen=True)
class SlotReplicateMetrics:
    """Outcome ledger of one slot-model replicate (JSON-exact).

    Counts are integers (the engines keep the payload ledger
    integer-exact precisely so these survive JSON round-trips with
    ``==`` semantics); the derived ratios are stored too so summaries
    never need the engine.
    """

    kind: ClassVar[str] = "slotsim"

    replicate: int
    seed: int
    engine: str
    slots: int
    node_count: int
    mean_degree: float
    initiations: int
    successes: int
    failures: int
    payload_slots: int
    success_ratio: float
    throughput_per_node: float
    mean_fail_duration: float
    fail_durations: dict[int, int]

    @classmethod
    def from_results(
        cls, replicate: int, seed: int, engine: str, results: SlotModelResults
    ) -> "SlotReplicateMetrics":
        return cls(
            replicate=replicate,
            seed=seed,
            engine=engine,
            slots=results.slots,
            node_count=results.node_count,
            mean_degree=results.mean_degree,
            initiations=results.initiations,
            successes=results.successes,
            failures=results.failures,
            payload_slots=results.payload_slots,
            success_ratio=results.success_ratio,
            throughput_per_node=results.throughput_per_node,
            mean_fail_duration=results.mean_fail_duration,
            fail_durations=dict(sorted(results.fail_durations.items())),
        )

    @classmethod
    def from_record(cls, record: dict) -> "SlotReplicateMetrics":
        """Rebuild from the ``dataclasses.asdict`` JSON form (JSON
        stringifies the integer duration keys)."""
        data = dict(record)
        data["fail_durations"] = {
            int(duration): count
            for duration, count in data["fail_durations"].items()
        }
        return cls(**data)


# ----------------------------------------------------------------------
# Worker functions — the campaign plugs, pure in (spec).
# ----------------------------------------------------------------------


def run_slot_cell_spec(
    spec: CellSpec,
    topology: Callable[[int, int], Topology] | None = None,
    metrics: MetricsRegistry | None = None,
    profiler: PhaseProfiler | None = None,
) -> CellResult:
    """Run all replicates of one slot-model grid cell.

    Same purity contract as
    :func:`~repro.experiments.campaign.run_cell_spec`: a pure function
    of ``spec`` regardless of process or order, with ``metrics`` and
    ``profiler`` strictly observational.  ``topology`` is accepted for
    campaign-runner compatibility but ignored — the slot model draws
    its own torus placement from the replicate seed (``config.seed``
    roots both placement and traffic), so topologies are per-replicate
    by construction.  ``spec.config`` must be a
    :class:`SlotStudyConfig`.
    """
    cfg = spec.config
    if not isinstance(cfg, SlotStudyConfig):
        raise TypeError(
            f"slot-model cells need a SlotStudyConfig, got {type(cfg).__name__}"
        )
    params = PAPER_PARAMETERS.with_neighbors(float(spec.n)).with_beamwidth(
        math.radians(spec.beamwidth_deg)
    )
    results = []
    for replicate in range(cfg.topologies):
        seed = replicate_seed(cfg.base_seed, spec.n, replicate)
        model = SlotModelConfig(
            params=params,
            scheme=spec.scheme,
            p=cfg.p,
            torus_factor=cfg.torus_factor,
            seed=seed,
        )
        with profiler.phase("build") if profiler else nullcontext():
            if cfg.engine == "batch":
                engine = BatchSlotModelEngine(model, metrics=metrics)
            else:
                engine = SlotModelEngine(model, metrics=metrics)
        with profiler.phase("event loop") if profiler else nullcontext():
            run = engine.run(cfg.slots)
        outcome = run[0] if cfg.engine == "batch" else run
        results.append(
            SlotReplicateMetrics.from_results(replicate, seed, cfg.engine, outcome)
        )
    return CellResult(
        n=spec.n,
        scheme=spec.scheme,
        beamwidth_deg=spec.beamwidth_deg,
        results=tuple(results),
    )


def run_slot_cell_spec_telemetry(
    spec: CellSpec,
    topology: Callable[[int, int], Topology] | None = None,
) -> tuple[CellResult, dict]:
    """Measuring variant: (cell result, ``repro-telemetry-v1`` record)."""
    metrics = MetricsRegistry()
    profiler = PhaseProfiler()
    cell = run_slot_cell_spec(
        spec, topology=topology, metrics=metrics, profiler=profiler
    )
    return cell, cell_telemetry(spec, metrics, profiler)


# ----------------------------------------------------------------------
# The study driver and its presentation.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SlotCell:
    """Cross-replicate summary for one (N, scheme, beamwidth) cell."""

    n: int
    scheme: str
    beamwidth_deg: float
    engine: str
    success_ratio: ReplicateSummary
    throughput_per_node: ReplicateSummary
    mean_fail_duration: ReplicateSummary


def summarize_slotsim(cells: Sequence[CellResult]) -> list[SlotCell]:
    """Summarize raw slot-model campaign cells for presentation."""
    summary = []
    for cell in cells:
        summary.append(
            SlotCell(
                n=cell.n,
                scheme=cell.scheme,
                beamwidth_deg=cell.beamwidth_deg,
                engine=cell.results[0].engine,
                success_ratio=summarize(cell.metric("success_ratio")),
                throughput_per_node=summarize(
                    cell.metric("throughput_per_node")
                ),
                mean_fail_duration=summarize(
                    cell.metric("mean_fail_duration")
                ),
            )
        )
    return summary


def run_slot_study(
    config: SlotStudyConfig,
    *,
    workers: int | None = 1,
    directory: str | pathlib.Path | None = None,
    progress: CampaignProgress | None = None,
    telemetry: bool = True,
) -> list[SlotCell]:
    """Run the slot-model grid as a (resumable, parallelizable) campaign.

    Same execution semantics as the other campaigns: with a
    ``directory`` the run persists/resumes per-cell artifacts
    (``"kind": "slotsim"``); serial and parallel runs are
    byte-identical because every replicate is a pure function of
    ``(config, n, replicate)``.
    """
    cells = run_campaign(
        config,
        workers=workers,
        directory=directory,
        progress=progress,
        telemetry=telemetry,
        worker=run_slot_cell_spec,
        worker_telemetry=run_slot_cell_spec_telemetry,
    )
    return summarize_slotsim(cells)


def format_slotsim_table(cells: Sequence[SlotCell]) -> str:
    """Aligned text table grouped by N, one row per beamwidth."""
    lines = []
    schemes = sorted({c.scheme for c in cells}, key=str)
    engines = sorted({c.engine for c in cells})
    for n in sorted({c.n for c in cells}):
        lines.append(
            f"N = {n}  (throughput per node per slot / success ratio, "
            f"engine: {', '.join(engines)})"
        )
        header = "  beamwidth  " + "  ".join(f"{s:>18}" for s in schemes)
        lines.append(header)
        for beamwidth in sorted({c.beamwidth_deg for c in cells if c.n == n}):
            row = [f"  {beamwidth:7.0f}dg "]
            for scheme in schemes:
                match = [
                    c
                    for c in cells
                    if c.n == n
                    and c.scheme == scheme
                    and c.beamwidth_deg == beamwidth
                ]
                if match:
                    cell = match[0]
                    row.append(
                        f"{cell.throughput_per_node.mean:8.4f} / "
                        f"{cell.success_ratio.mean:7.4f}"
                    )
                else:
                    row.append(" " * 18)
            lines.append("  ".join(row))
        lines.append("")
    return "\n".join(lines)
