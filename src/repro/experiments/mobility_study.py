"""Extension study: directional MACs under mobility and stale bearings.

The paper assumes a neighbor protocol with perfect location knowledge
and simulates static topologies; its Section 1 discussion (Ko et al.,
Nasipuri et al.) and Section 5 future work both orbit the question of
what movement does to beam pointing.  This study quantifies it: a
saturated sender beams at a receiver that wanders under random-waypoint
mobility, while the sender's neighbor table refreshes only every ``T``
seconds.  Narrow beams miss a receiver whose bearing has drifted more
than ``theta/2`` since the last refresh; omni transmission is immune.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..dessim.engine import make_simulator
from ..dessim.rng import RngRegistry
from ..dessim.units import SECOND
from ..mac.config import DSSS_MAC
from ..mac.dcf import DcfMac
from ..mac.neighbors import SnapshotNeighborTable
from ..mac.policy import POLICIES
from ..net.mobility import RandomWaypointMobility
from ..phy.channel import Channel
from ..phy.propagation import Position, UnitDiskPropagation
from ..phy.radio import Radio
from ..traffic.cbr import SaturatedCbrSource

__all__ = ["MobilityPoint", "run_mobility_study", "format_mobility_table"]


@dataclass(frozen=True)
class MobilityPoint:
    """One (scheme, refresh interval) measurement."""

    scheme: str
    refresh_s: float
    speed_mps: float
    packets_delivered: int
    packets_dropped: int

    @property
    def delivery_ratio(self) -> float:
        total = self.packets_delivered + self.packets_dropped
        if total == 0:
            return 0.0
        return self.packets_delivered / total


def _run_pair(
    scheme: str,
    refresh_ns: int,
    speed_mps: float,
    beamwidth_deg: float,
    sim_time_ns: int,
    seed: int,
):
    sim = make_simulator()
    channel = Channel(sim, propagation=UnitDiskPropagation(range_m=300.0))
    rng = RngRegistry(seed)
    radios = {
        0: Radio(sim, 0, Position(0, 0), channel),
        1: Radio(sim, 1, Position(150, 0), channel),
    }
    macs = {
        nid: DcfMac(
            sim,
            radios[nid],
            DSSS_MAC,
            SnapshotNeighborTable(channel, nid, refresh_ns, sim=sim),
            POLICIES[scheme],
            beamwidth=math.radians(beamwidth_deg),
            rng=rng.stream(f"mac{nid}"),
        )
        for nid in (0, 1)
    }
    RandomWaypointMobility(
        sim,
        radios[1],
        rng.stream("waypoints"),
        speed_mps=speed_mps,
        bounds=(100, -200, 250, 200),
    ).start()
    SaturatedCbrSource(sim, macs[0], [1], rng.stream("traffic")).start()
    sim.run(until=sim_time_ns)
    return macs[0].stats


def run_mobility_study(
    schemes: Sequence[str] = ("ORTS-OCTS", "DRTS-DCTS"),
    refresh_seconds: Sequence[float] = (0.0, 1.0, 3.0),
    speed_mps: float = 25.0,
    beamwidth_deg: float = 15.0,
    sim_time_ns: int = 5 * SECOND,
    seed: int = 11,
) -> list[MobilityPoint]:
    """Sweep neighbor-table refresh intervals per scheme.

    ``refresh_seconds = 0`` is the paper's perfect oracle.
    """
    if any(r < 0 for r in refresh_seconds):
        raise ValueError(f"refresh intervals must be >= 0, got {refresh_seconds!r}")
    points = []
    for scheme in schemes:
        for refresh in refresh_seconds:
            stats = _run_pair(
                scheme,
                round(refresh * SECOND),
                speed_mps,
                beamwidth_deg,
                sim_time_ns,
                seed,
            )
            points.append(
                MobilityPoint(
                    scheme=scheme,
                    refresh_s=refresh,
                    speed_mps=speed_mps,
                    packets_delivered=stats.packets_delivered,
                    packets_dropped=stats.packets_dropped,
                )
            )
    return points


def format_mobility_table(points: Sequence[MobilityPoint]) -> str:
    """Aligned rendering of the mobility sweep."""
    lines = [
        "scheme      refresh(s)  delivered  dropped  delivery-ratio",
        "-" * 58,
    ]
    for pt in points:
        lines.append(
            f"{pt.scheme:10s}  {pt.refresh_s:9.1f}  {pt.packets_delivered:9d}  "
            f"{pt.packets_dropped:7d}  {pt.delivery_ratio:14.3f}"
        )
    return "\n".join(lines)
