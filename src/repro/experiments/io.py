"""Persistence for experiment results.

Benches and long campaigns want artifacts: this module round-trips the
simulation grid (``CellResult`` lists) and the analytical Fig. 5 rows
through JSON, and exports flat CSVs for external plotting.  Only
summary-level data is stored (per-replicate metrics, not event traces).
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Sequence

from .fig5 import Fig5Row
from .runner import CellResult

__all__ = [
    "grid_to_records",
    "save_grid_json",
    "load_grid_records",
    "save_grid_csv",
    "save_fig5_csv",
]

#: The SimulationResult properties exported per replicate.
_METRICS = (
    "inner_throughput_bps",
    "inner_mean_delay_s",
    "inner_collision_ratio",
    "inner_fairness",
    "inner_packets_delivered",
)


def grid_to_records(cells: Sequence[CellResult]) -> list[dict]:
    """Flatten grid cells into one record per replicate."""
    records = []
    for cell in cells:
        for replicate, result in enumerate(cell.results):
            record = {
                "n": cell.n,
                "scheme": cell.scheme,
                "beamwidth_deg": cell.beamwidth_deg,
                "replicate": replicate,
                "duration_ns": result.duration_ns,
            }
            for metric in _METRICS:
                record[metric] = getattr(result, metric)
            records.append(record)
    return records


def save_grid_json(cells: Sequence[CellResult], path: str | pathlib.Path) -> None:
    """Write the flattened grid to a JSON file."""
    payload = {"format": "repro-grid-v1", "records": grid_to_records(cells)}
    pathlib.Path(path).write_text(json.dumps(payload, indent=2))


def load_grid_records(path: str | pathlib.Path) -> list[dict]:
    """Read records written by :func:`save_grid_json`."""
    payload = json.loads(pathlib.Path(path).read_text())
    if payload.get("format") != "repro-grid-v1":
        raise ValueError(
            f"{path}: not a repro grid file (format={payload.get('format')!r})"
        )
    return payload["records"]


def save_grid_csv(cells: Sequence[CellResult], path: str | pathlib.Path) -> None:
    """Write the flattened grid to a CSV file."""
    records = grid_to_records(cells)
    if not records:
        raise ValueError("cannot write an empty grid")
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(records[0]))
        writer.writeheader()
        writer.writerows(records)


def save_fig5_csv(rows: Sequence[Fig5Row], path: str | pathlib.Path) -> None:
    """Write Fig. 5 rows (beamwidth x scheme throughputs) to CSV."""
    if not rows:
        raise ValueError("cannot write an empty Fig. 5 table")
    schemes = sorted(rows[0].throughput)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["beamwidth_deg", *schemes])
        for row in rows:
            writer.writerow(
                [row.beamwidth_deg, *(row.throughput[s] for s in schemes)]
            )
