"""Persistence for experiment results.

Benches and long campaigns want artifacts: this module round-trips the
simulation grid (``CellResult`` lists) and the analytical Fig. 5 rows
through JSON, and exports flat CSVs for external plotting.  Only
summary-level data is stored (per-replicate metrics, not event traces).

Two schema-versioned JSON formats live here:

* ``repro-grid-v1`` — one file for a whole grid, flattened to one
  record per replicate (:func:`save_grid_json`);
* ``repro-cell-v1`` — one file per grid cell, the unit the campaign
  result store persists and resumes from (:func:`save_cell_json`).
  Values survive the round-trip exactly (ints, and floats via
  ``repr``-exact JSON), so a resumed campaign reports byte-identical
  metrics to the run that produced the artifact.
"""

from __future__ import annotations

import csv
import dataclasses
import json
import pathlib
from typing import Sequence

from .campaign import CellResult, ReplicateMetrics
from .fig5 import Fig5Row

__all__ = [
    "grid_to_records",
    "save_grid_json",
    "load_grid_records",
    "save_grid_csv",
    "save_fig5_csv",
    "cell_to_payload",
    "cell_from_payload",
    "save_cell_json",
    "load_cell_json",
]

#: The SimulationResult properties exported per replicate.
_METRICS = (
    "inner_throughput_bps",
    "inner_mean_delay_s",
    "inner_collision_ratio",
    "inner_fairness",
    "inner_packets_delivered",
)


def grid_to_records(cells: Sequence[CellResult]) -> list[dict]:
    """Flatten grid cells into one record per replicate."""
    records = []
    for cell in cells:
        for replicate, result in enumerate(cell.results):
            record = {
                "n": cell.n,
                "scheme": cell.scheme,
                "beamwidth_deg": cell.beamwidth_deg,
                "replicate": replicate,
                "duration_ns": result.duration_ns,
            }
            for metric in _METRICS:
                record[metric] = getattr(result, metric)
            records.append(record)
    return records


def save_grid_json(cells: Sequence[CellResult], path: str | pathlib.Path) -> None:
    """Write the flattened grid to a JSON file."""
    payload = {"format": "repro-grid-v1", "records": grid_to_records(cells)}
    pathlib.Path(path).write_text(json.dumps(payload, indent=2))


def load_grid_records(path: str | pathlib.Path) -> list[dict]:
    """Read records written by :func:`save_grid_json`."""
    payload = json.loads(pathlib.Path(path).read_text())
    if payload.get("format") != "repro-grid-v1":
        raise ValueError(
            f"{path}: not a repro grid file (format={payload.get('format')!r})"
        )
    return payload["records"]


def save_grid_csv(cells: Sequence[CellResult], path: str | pathlib.Path) -> None:
    """Write the flattened grid to a CSV file."""
    records = grid_to_records(cells)
    if not records:
        raise ValueError("cannot write an empty grid")
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(records[0]))
        writer.writeheader()
        writer.writerows(records)


#: Schema tag for per-cell campaign artifacts.
CELL_FORMAT = "repro-cell-v1"


def _replicate_decoder(kind: str):
    """The record-rebuild function for one replicate ``kind``.

    Deferred imports keep this module importable from
    :mod:`repro.experiments.campaign`'s methods without a cycle.
    """
    if kind == "sim":
        return lambda record: ReplicateMetrics(**record)
    if kind == "multihop":
        from .multihop import MultihopReplicateMetrics

        return MultihopReplicateMetrics.from_record
    if kind == "slotsim":
        from .slotsim_study import SlotReplicateMetrics

        return SlotReplicateMetrics.from_record
    if kind == "sinr":
        from .sinr_study import SinrReplicateMetrics

        return SinrReplicateMetrics.from_record
    raise ValueError(f"unknown replicate kind {kind!r}")


def cell_to_payload(cell: CellResult) -> dict:
    """The JSON-serializable form of one grid cell.

    The single-hop study's cells omit the ``"kind"`` key (so artifacts
    written before the multi-hop subsystem stay loadable unchanged);
    other replicate classes declare a ``kind`` tag that is stored and
    dispatched on at load time.
    """
    kinds = sorted({getattr(r, "kind", "sim") for r in cell.results})
    if len(kinds) > 1:
        raise ValueError(f"cell mixes replicate kinds: {kinds}")
    payload = {
        "format": CELL_FORMAT,
        "n": cell.n,
        "scheme": cell.scheme,
        "beamwidth_deg": cell.beamwidth_deg,
        "replicates": [dataclasses.asdict(r) for r in cell.results],
    }
    if kinds and kinds[0] != "sim":
        payload["kind"] = kinds[0]
    return payload


def cell_from_payload(payload: dict) -> CellResult:
    """Rebuild a :class:`CellResult` from :func:`cell_to_payload` output."""
    if payload.get("format") != CELL_FORMAT:
        raise ValueError(
            f"not a repro cell payload (format={payload.get('format')!r})"
        )
    decode = _replicate_decoder(payload.get("kind", "sim"))
    return CellResult(
        n=payload["n"],
        scheme=payload["scheme"],
        beamwidth_deg=payload["beamwidth_deg"],
        results=tuple(decode(record) for record in payload["replicates"]),
    )


def save_cell_json(cell: CellResult, path: str | pathlib.Path) -> None:
    """Write one cell's replicate metrics to a JSON artifact."""
    pathlib.Path(path).write_text(json.dumps(cell_to_payload(cell), indent=2))


def load_cell_json(path: str | pathlib.Path) -> CellResult:
    """Read a cell artifact written by :func:`save_cell_json`."""
    try:
        payload = json.loads(pathlib.Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: corrupt cell artifact ({exc})") from exc
    try:
        return cell_from_payload(payload)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from exc


def save_fig5_csv(rows: Sequence[Fig5Row], path: str | pathlib.Path) -> None:
    """Write Fig. 5 rows (beamwidth x scheme throughputs) to CSV."""
    if not rows:
        raise ValueError("cannot write an empty Fig. 5 table")
    schemes = sorted(rows[0].throughput)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["beamwidth_deg", *schemes])
        for row in rows:
            writer.writerow(
                [row.beamwidth_deg, *(row.throughput[s] for s in schemes)]
            )
