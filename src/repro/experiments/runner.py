"""Shared orchestration for the simulation experiments.

The cardinal rule, inherited from the paper: **compare schemes on
identical topologies**.  Topologies are generated once per ``(N, seed)``
and cached; every scheme/beamwidth combination then runs on the same
placements, so differences are attributable to the MAC, not the draw.

Execution lives in :mod:`~repro.experiments.campaign`; this module
keeps the serial, in-process facade (:class:`SimStudyRunner`) that the
tests and benches drive directly.  Replicate seeds come from
:func:`~repro.experiments.campaign.replicate_seed` — the SHA-256
registry derivation, not seed arithmetic — so adjacent base seeds can
never alias replicate streams.
"""

from __future__ import annotations

import pathlib

from ..net.topology import Topology
from .campaign import (
    CellResult,
    CellSpec,
    ReplicateMetrics,
    replicate_topology,
    run_campaign,
    run_cell_spec,
)
from .config import SimStudyConfig

__all__ = ["CellResult", "ReplicateMetrics", "SimStudyRunner"]


class SimStudyRunner:
    """Runs the (N, scheme, beamwidth) grid with cached topologies.

    ``workers`` and ``directory`` turn the grid run into a campaign:
    parallel fan-out over worker processes and/or an on-disk result
    store that makes the run resumable.  The defaults preserve the
    historical serial in-process behaviour (including the cross-scheme
    topology cache held on this instance).
    """

    def __init__(
        self,
        config: SimStudyConfig,
        *,
        workers: int = 1,
        directory: str | pathlib.Path | None = None,
    ) -> None:
        self.config = config
        self.workers = workers
        self.directory = directory
        self._topologies: dict[tuple[int, int], Topology] = {}

    def topology(self, n: int, replicate: int) -> Topology:
        """The cached topology for (N, replicate).

        Placement draws come from a named child registry per (N,
        replicate), so adding densities or replicates never perturbs
        the topologies of existing cells.
        """
        key = (n, replicate)
        if key not in self._topologies:
            self._topologies[key] = replicate_topology(
                self.config.base_seed, n, replicate
            )
        return self._topologies[key]

    def run_cell(self, n: int, scheme: str, beamwidth_deg: float) -> CellResult:
        """Run all replicates of one grid cell (in-process)."""
        spec = CellSpec(n=n, scheme=scheme, beamwidth_deg=beamwidth_deg,
                        config=self.config)
        return run_cell_spec(spec, topology=self.topology)

    def run_grid(self) -> list[CellResult]:
        """Run every (N, scheme, beamwidth) combination.

        Serial with no store runs in-process through this instance's
        topology cache; otherwise the grid executes as a campaign.
        """
        if self.workers == 1 and self.directory is None:
            return [
                self.run_cell(n, scheme, beamwidth)
                for n in self.config.n_values
                for scheme in self.config.schemes
                for beamwidth in self.config.beamwidths_deg
            ]
        return run_campaign(
            self.config, workers=self.workers, directory=self.directory
        )
