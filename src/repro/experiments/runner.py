"""Shared orchestration for the simulation experiments.

The cardinal rule, inherited from the paper: **compare schemes on
identical topologies**.  Topologies are generated once per ``(N, seed)``
and cached; every scheme/beamwidth combination then runs on the same
placements, so differences are attributable to the MAC, not the draw.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..dessim.rng import RngRegistry
from ..net.network import NetworkSimulation, SimulationResult
from ..net.topology import Topology, TopologyConfig, generate_ring_topology
from .config import SimStudyConfig

__all__ = ["CellResult", "SimStudyRunner"]


@dataclass(frozen=True)
class CellResult:
    """All replicate results for one (N, scheme, beamwidth) grid cell."""

    n: int
    scheme: str
    beamwidth_deg: float
    results: tuple[SimulationResult, ...]

    def metric(self, name: str) -> list[float]:
        """Extract one metric across replicates by property name."""
        return [getattr(result, name) for result in self.results]


class SimStudyRunner:
    """Runs the (N, scheme, beamwidth) grid with cached topologies."""

    def __init__(self, config: SimStudyConfig) -> None:
        self.config = config
        self._registry = RngRegistry(config.base_seed)
        self._topologies: dict[tuple[int, int], Topology] = {}

    def topology(self, n: int, replicate: int) -> Topology:
        """The cached topology for (N, replicate).

        Placement draws come from a named child registry per (N,
        replicate), so adding densities or replicates never perturbs
        the topologies of existing cells.
        """
        key = (n, replicate)
        if key not in self._topologies:
            rng = self._registry.spawn(f"topology-n{n}-r{replicate}")
            self._topologies[key] = generate_ring_topology(
                TopologyConfig(n=n), rng.stream("placement")
            )
        return self._topologies[key]

    def run_cell(self, n: int, scheme: str, beamwidth_deg: float) -> CellResult:
        """Run all replicates of one grid cell."""
        results = []
        for replicate in range(self.config.topologies):
            topology = self.topology(n, replicate)
            simulation = NetworkSimulation(
                topology,
                scheme,
                math.radians(beamwidth_deg),
                seed=self.config.base_seed + replicate,
                mac_params=self.config.mac_params,
                phy_params=self.config.phy_params,
            )
            results.append(simulation.run(self.config.sim_time_ns))
        return CellResult(
            n=n,
            scheme=scheme,
            beamwidth_deg=beamwidth_deg,
            results=tuple(results),
        )

    def run_grid(self) -> list[CellResult]:
        """Run every (N, scheme, beamwidth) combination."""
        cells = []
        for n in self.config.n_values:
            for scheme in self.config.schemes:
                for beamwidth in self.config.beamwidths_deg:
                    cells.append(self.run_cell(n, scheme, beamwidth))
        return cells
