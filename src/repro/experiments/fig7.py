"""Fig. 7 — simulated average delay comparison.

Regenerates the paper's Figure 7: mean MAC service delay (enqueue to
ACK) of packets originated by the innermost ``N`` nodes, for the same
grid as Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..metrics.summary import ReplicateSummary, summarize
from .campaign import CampaignProgress, run_campaign
from .config import SimStudyConfig, from_environment

__all__ = ["Fig7Cell", "run_fig7", "format_fig7_table"]


@dataclass(frozen=True)
class Fig7Cell:
    """Delay summary for one (N, scheme, beamwidth) cell."""

    n: int
    scheme: str
    beamwidth_deg: float
    delay_s: ReplicateSummary


def run_fig7(
    config: SimStudyConfig | None = None,
    *,
    workers: int | None = 1,
    directory=None,
    progress: CampaignProgress | None = None,
) -> list[Fig7Cell]:
    """Run the Fig. 7 grid (optionally as a parallel, resumable campaign)
    and summarize mean delay per cell."""
    cfg = config if config is not None else from_environment()
    cells = []
    for cell in run_campaign(
        cfg, workers=workers, directory=directory, progress=progress
    ):
        cells.append(
            Fig7Cell(
                n=cell.n,
                scheme=cell.scheme,
                beamwidth_deg=cell.beamwidth_deg,
                delay_s=summarize(cell.metric("inner_mean_delay_s")),
            )
        )
    return cells


def format_fig7_table(cells: Sequence[Fig7Cell]) -> str:
    """Aligned text table grouped by N, delays in milliseconds."""
    lines = []
    schemes = sorted({c.scheme for c in cells}, key=str)
    for n in sorted({c.n for c in cells}):
        lines.append(f"N = {n}  (mean MAC service delay of inner nodes, ms)")
        header = "  beamwidth  " + "  ".join(f"{s:>24}" for s in schemes)
        lines.append(header)
        for beamwidth in sorted({c.beamwidth_deg for c in cells if c.n == n}):
            row = [f"  {beamwidth:7.0f}dg "]
            for scheme in schemes:
                match = [
                    c
                    for c in cells
                    if c.n == n
                    and c.scheme == scheme
                    and c.beamwidth_deg == beamwidth
                ]
                if match:
                    s = match[0].delay_s
                    row.append(
                        f"{s.mean * 1e3:6.1f} [{s.minimum * 1e3:5.1f},{s.maximum * 1e3:5.1f}]"
                    )
                else:
                    row.append(" " * 24)
            lines.append("  ".join(row))
        lines.append("")
    return "\n".join(lines)
