"""Extension study: behaviour below saturation.

The paper evaluates only the saturated regime ("all nodes are always
backloged").  A natural question for adopters: where does each scheme's
advantage kick in as offered load rises?  This sweep drives the same
ring networks with fixed-interval CBR sources at increasing rates and
reports delivered throughput and delay per scheme.

Expected shape: at light load all schemes deliver the offered load with
near-identical one-handshake delays; as load approaches saturation the
curves separate toward the Fig. 6 ordering.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..dessim.rng import RngRegistry
from ..dessim.units import SECOND
from ..net.network import NetworkSimulation
from ..net.topology import TopologyConfig, generate_ring_topology

__all__ = ["LoadPoint", "run_load_sweep", "format_load_sweep_table"]


@dataclass(frozen=True)
class LoadPoint:
    """One (scheme, offered load) measurement."""

    scheme: str
    packets_per_second: float
    offered_bps: float
    delivered_bps: float
    mean_delay_s: float

    @property
    def delivery_ratio(self) -> float:
        """Delivered over offered (per inner node, aggregate)."""
        if self.offered_bps == 0.0:
            return 1.0
        return min(1.0, self.delivered_bps / self.offered_bps)


def run_load_sweep(
    n: int = 5,
    beamwidth_deg: float = 30.0,
    schemes: Sequence[str] = ("ORTS-OCTS", "DRTS-DCTS"),
    rates_pps: Sequence[float] = (2.0, 5.0, 10.0, 20.0),
    sim_time_ns: int = 2 * SECOND,
    packet_bytes: int = 1460,
    topology_seed: int = 77,
    seed: int = 0,
) -> list[LoadPoint]:
    """Sweep offered load on one shared topology.

    Args:
        rates_pps: per-node packet generation rates (packets/second).
    """
    if not rates_pps or any(rate <= 0 for rate in rates_pps):
        raise ValueError(f"rates must be positive, got {rates_pps!r}")
    topology = generate_ring_topology(
        TopologyConfig(n=n),
        RngRegistry(topology_seed).stream("placement"),
    )
    inner_count = len(topology.inner_ids)
    points = []
    for scheme in schemes:
        for rate in rates_pps:
            interval_ns = round(SECOND / rate)
            simulation = NetworkSimulation(
                topology,
                scheme,
                math.radians(beamwidth_deg),
                seed=seed,
                cbr_interval_ns=interval_ns,
                packet_bytes=packet_bytes,
            )
            result = simulation.run(sim_time_ns)
            offered = rate * packet_bytes * 8 * inner_count
            points.append(
                LoadPoint(
                    scheme=scheme,
                    packets_per_second=rate,
                    offered_bps=offered,
                    delivered_bps=result.inner_throughput_bps,
                    mean_delay_s=result.inner_mean_delay_s,
                )
            )
    return points


def format_load_sweep_table(points: Sequence[LoadPoint]) -> str:
    """Aligned text rendering of the sweep."""
    lines = [
        "scheme      rate(pps)  offered(Mbps)  delivered(Mbps)  ratio   delay(ms)",
        "-" * 74,
    ]
    for pt in points:
        lines.append(
            f"{pt.scheme:10s}  {pt.packets_per_second:8.1f}  "
            f"{pt.offered_bps / 1e6:13.3f}  {pt.delivered_bps / 1e6:15.3f}  "
            f"{pt.delivery_ratio:5.2f}  {pt.mean_delay_s * 1e3:9.1f}"
        )
    return "\n".join(lines)
