"""Fig. 5 — analytical maximum throughput versus antenna beamwidth.

Regenerates the paper's Figure 5: for beamwidths 15..180 degrees (15
degree steps) and the Section-3 packet lengths (RTS = CTS = ACK = 5
slots, data = 100 slots), the maximum achievable throughput of the
three collision-avoidance schemes, maximised over the per-slot
transmission probability ``p``.

The paper plots one density; since Fig. 5's ``N`` is not stated, we
expose it as a parameter and default to ``N = 5`` (mid-range of the
simulated densities).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.params import PAPER_PARAMETERS, ProtocolParameters
from ..core.sweep import SCHEME_FACTORIES, SweepSeries, fig5_series, paper_beamwidths

__all__ = ["Fig5Row", "run_fig5", "format_fig5_table"]

import math


@dataclass(frozen=True)
class Fig5Row:
    """One beamwidth row of the Fig. 5 data."""

    beamwidth_deg: float
    throughput: dict[str, float]


def run_fig5(
    n_neighbors: float = 5.0,
    beamwidths: Sequence[float] | None = None,
    params: ProtocolParameters | None = None,
) -> list[Fig5Row]:
    """Compute the Fig. 5 series.

    Args:
        n_neighbors: mean neighbor count ``N``.
        beamwidths: beamwidths in radians (paper grid by default).
        params: packet lengths (paper's Section 3 values by default).
    """
    base = params if params is not None else PAPER_PARAMETERS
    base = base.with_neighbors(n_neighbors)
    widths = tuple(beamwidths) if beamwidths is not None else paper_beamwidths()
    series: dict[str, SweepSeries] = fig5_series(base, widths)
    rows = []
    for index, width in enumerate(widths):
        rows.append(
            Fig5Row(
                beamwidth_deg=math.degrees(width),
                throughput={
                    name: series[name].points[index].throughput
                    for name in SCHEME_FACTORIES
                },
            )
        )
    return rows


def format_fig5_table(rows: Sequence[Fig5Row]) -> str:
    """Render rows as the aligned text table printed by the bench."""
    schemes = list(SCHEME_FACTORIES)
    header = "beamwidth_deg  " + "  ".join(f"{s:>10}" for s in schemes)
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = "  ".join(f"{row.throughput[s]:10.4f}" for s in schemes)
        lines.append(f"{row.beamwidth_deg:13.0f}  {cells}")
    return "\n".join(lines)
