"""Fig. 5 — analytical maximum throughput versus antenna beamwidth.

Regenerates the paper's Figure 5: for beamwidths 15..180 degrees (15
degree steps) and the Section-3 packet lengths (RTS = CTS = ACK = 5
slots, data = 100 slots), the maximum achievable throughput of the
three collision-avoidance schemes, maximised over the per-slot
transmission probability ``p``.

The paper plots one density; since Fig. 5's ``N`` is not stated, we
expose it as a parameter and default to ``N = 5`` (mid-range of the
simulated densities).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

from ..core.params import PAPER_PARAMETERS, ProtocolParameters
from ..core.sweep import SCHEME_FACTORIES, SweepSeries, fig5_series, paper_beamwidths
from ..metrics.summary import ReplicateSummary, summarize

__all__ = [
    "Fig5Row",
    "run_fig5",
    "format_fig5_table",
    "Fig5MeasuredRow",
    "run_fig5_measured",
    "format_fig5_measured_table",
]

import math


@dataclass(frozen=True)
class Fig5Row:
    """One beamwidth row of the Fig. 5 data."""

    beamwidth_deg: float
    throughput: dict[str, float]


def run_fig5(
    n_neighbors: float = 5.0,
    beamwidths: Sequence[float] | None = None,
    params: ProtocolParameters | None = None,
) -> list[Fig5Row]:
    """Compute the Fig. 5 series.

    Args:
        n_neighbors: mean neighbor count ``N``.
        beamwidths: beamwidths in radians (paper grid by default).
        params: packet lengths (paper's Section 3 values by default).
    """
    base = params if params is not None else PAPER_PARAMETERS
    base = base.with_neighbors(n_neighbors)
    widths = tuple(beamwidths) if beamwidths is not None else paper_beamwidths()
    series: dict[str, SweepSeries] = fig5_series(base, widths)
    rows = []
    for index, width in enumerate(widths):
        rows.append(
            Fig5Row(
                beamwidth_deg=math.degrees(width),
                throughput={
                    name: series[name].points[index].throughput
                    for name in SCHEME_FACTORIES
                },
            )
        )
    return rows


def format_fig5_table(rows: Sequence[Fig5Row]) -> str:
    """Render rows as the aligned text table printed by the bench."""
    schemes = list(SCHEME_FACTORIES)
    header = "beamwidth_deg  " + "  ".join(f"{s:>10}" for s in schemes)
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = "  ".join(f"{row.throughput[s]:10.4f}" for s in schemes)
        lines.append(f"{row.beamwidth_deg:13.0f}  {cells}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Measured Fig. 5 — the slot-model engines re-measure the curve.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Fig5MeasuredRow:
    """One (beamwidth, scheme) point: closed form versus slot model.

    ``analytical`` is the model's maximum throughput at the optimum
    ``p_opt``; ``measured`` summarizes the slot-model engine's
    per-node throughput at that same ``p`` across replicate topologies.
    """

    beamwidth_deg: float
    scheme: str
    p: float
    analytical: float
    measured: ReplicateSummary
    engine: str


def run_fig5_measured(
    n_neighbors: float = 5.0,
    beamwidths: Sequence[float] | None = None,
    params: ProtocolParameters | None = None,
    *,
    schemes: Sequence[str] | None = None,
    slots: int = 3_000,
    replicates: int = 3,
    engine: str = "batch",
    torus_factor: float = 6.0,
    base_seed: int = 2003,
) -> list[Fig5MeasuredRow]:
    """Re-measure the Fig. 5 optima with a slot-model engine.

    For each (scheme, beamwidth) point the analytical optimum
    ``(p_opt, Th_max)`` is computed as in :func:`run_fig5`, then the
    slot model is run at that ``p_opt`` on ``replicates`` independent
    torus draws (seeded through the campaign registry, common random
    numbers across schemes).  ``engine`` selects the scalar oracle or
    the vectorized batch engine (statistically identical; see
    ``tests/slotsim/test_batch.py``).
    """
    from ..slotsim import BatchSlotModelEngine, SlotModelConfig, SlotModelEngine
    from .campaign import replicate_seed
    from .slotsim_study import SLOT_ENGINES

    if engine not in SLOT_ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {SLOT_ENGINES}"
        )
    base = params if params is not None else PAPER_PARAMETERS
    base = base.with_neighbors(n_neighbors)
    widths = tuple(beamwidths) if beamwidths is not None else paper_beamwidths()
    names = tuple(schemes) if schemes is not None else tuple(SCHEME_FACTORIES)
    series = fig5_series(base, widths)
    rows = []
    for index, width in enumerate(widths):
        for name in names:
            point = series[name].points[index]
            config = SlotModelConfig(
                params=base.with_beamwidth(width),
                scheme=name,
                p=point.p_opt,
                torus_factor=torus_factor,
                seed=0,  # placeholder; replaced per replicate below
            )
            samples = []
            for replicate in range(replicates):
                seed = replicate_seed(base_seed, int(round(n_neighbors)), replicate)
                model = dataclasses.replace(config, seed=seed)
                if engine == "batch":
                    outcome = BatchSlotModelEngine(model).run(slots)[0]
                else:
                    outcome = SlotModelEngine(model).run(slots)
                samples.append(outcome.throughput_per_node)
            rows.append(
                Fig5MeasuredRow(
                    beamwidth_deg=math.degrees(width),
                    scheme=name,
                    p=point.p_opt,
                    analytical=point.throughput,
                    measured=summarize(samples),
                    engine=engine,
                )
            )
    return rows


def format_fig5_measured_table(rows: Sequence[Fig5MeasuredRow]) -> str:
    """Aligned analytical-vs-measured table, one row per point."""
    header = (
        f"{'beamwidth':>9}  {'scheme':>10}  {'p_opt':>7}  "
        f"{'analytical':>10}  {'measured':>9}  {'std':>7}  {'engine':>7}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.beamwidth_deg:8.0f}d  {row.scheme:>10}  {row.p:7.4f}  "
            f"{row.analytical:10.4f}  {row.measured.mean:9.4f}  "
            f"{row.measured.std:7.4f}  {row.engine:>7}"
        )
    return "\n".join(lines)
