"""Resolving a campaign manifest back into runnable study code.

A CLI-launched worker shard (``repro campaign-worker --store DIR``)
joins a campaign knowing only the store directory.  Everything else is
in the manifest: the config dict rebuilds the study configuration, and
the ``study`` tag (written by :class:`~repro.experiments.campaign.
CampaignStore` from the config's class) selects the worker functions —
the same plug points :func:`~repro.experiments.campaign.run_campaign`
takes as keyword arguments.  Manifests written before the tag existed
are single-hop sims (``"sim"``), matching how their artifacts load.

Imports of the study modules are deferred inside :func:`resolve_study`
so this module can sit below :mod:`repro.experiments.multihop` and
:mod:`repro.experiments.slotsim_study` without an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = ["StudyKind", "resolve_study", "study_tag", "config_from_manifest"]

#: Config class name -> manifest study tag.  The single source of
#: truth for tagging — :func:`repro.experiments.campaign.study_tag`
#: (which stamps manifests) delegates here, so registering a study
#: means adding it to this table *and* a :func:`resolve_study` branch,
#: in this one file.  Unknown subclasses fall back to their class
#: name, which :func:`resolve_study` rejects with a pointer at the
#: Python API (plugged-in studies are joined via
#: :class:`~repro.experiments.dispatch.ShardRunner`, not the CLI).
_TAGS = {
    "SimStudyConfig": "sim",
    "MultihopStudyConfig": "multihop",
    "SlotStudyConfig": "slotsim",
    "SinrStudyConfig": "sinr",
}


@dataclass(frozen=True)
class StudyKind:
    """The runnable pieces of one registered study family."""

    tag: str
    config_cls: type
    worker: Callable
    worker_telemetry: Callable


def study_tag(config) -> str:
    """The manifest ``study`` tag for a config instance."""
    name = type(config).__name__
    return _TAGS.get(name, name)


def resolve_study(tag: str) -> StudyKind:
    """The registered :class:`StudyKind` for a manifest ``study`` tag."""
    if tag == "sim":
        from ..campaign import run_cell_spec, run_cell_spec_telemetry
        from ..config import SimStudyConfig

        return StudyKind("sim", SimStudyConfig, run_cell_spec, run_cell_spec_telemetry)
    if tag == "multihop":
        from ..multihop import (
            MultihopStudyConfig,
            run_multihop_cell_spec,
            run_multihop_cell_spec_telemetry,
        )

        return StudyKind(
            "multihop",
            MultihopStudyConfig,
            run_multihop_cell_spec,
            run_multihop_cell_spec_telemetry,
        )
    if tag == "slotsim":
        from ..slotsim_study import (
            SlotStudyConfig,
            run_slot_cell_spec,
            run_slot_cell_spec_telemetry,
        )

        return StudyKind(
            "slotsim",
            SlotStudyConfig,
            run_slot_cell_spec,
            run_slot_cell_spec_telemetry,
        )
    if tag == "sinr":
        from ..sinr_study import (
            SinrStudyConfig,
            run_sinr_cell_spec,
            run_sinr_cell_spec_telemetry,
        )

        return StudyKind(
            "sinr",
            SinrStudyConfig,
            run_sinr_cell_spec,
            run_sinr_cell_spec_telemetry,
        )
    raise ValueError(
        f"unknown study {tag!r}: this store was built by a study plugged "
        "in through the Python API; join it with ShardRunner(config=..., "
        "worker=...) instead of the CLI"
    )


def _tuplify(value):
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    return value


def config_from_manifest(manifest: dict) -> tuple[object, StudyKind]:
    """Rebuild ``(config, study)`` from a campaign manifest payload.

    JSON demotes the config's tuples to lists; rebuilding converts them
    back recursively, then cross-checks the rebuilt config's
    fingerprint against the manifest's — a mismatch means the manifest
    was edited or the config schema drifted, either of which must stop
    a worker before it computes a single wrong cell.
    """
    from ..campaign import config_fingerprint

    study = resolve_study(manifest.get("study", "sim"))
    raw = manifest.get("config")
    if not isinstance(raw, dict):
        raise ValueError("manifest has no config record to rebuild")
    config = study.config_cls(**{k: _tuplify(v) for k, v in raw.items()})
    if config_fingerprint(config) != manifest.get("fingerprint"):
        raise ValueError(
            "rebuilt config does not match the manifest fingerprint; "
            "refusing to join (was the manifest edited?)"
        )
    return config, study
