"""Streaming campaign results: an append-only JSONL event log.

Every shard appends scheduling events — shard lifecycle, per-cell
completions, retries, dedup imports — to ``events.jsonl`` next to the
cell artifacts, and any process may *tail* the file to watch a sweep
that is still running (``repro campaign-watch``, or the single-host
facade's live progress lines).  Figures can therefore render
incrementally: a cell-completed event names an artifact that is already
durably on disk by the time the line appears.

Writes are one ``O_APPEND`` ``write`` system call per event, so
concurrent shards interleave whole lines; readers skip anything else
defensively.  Each shard stamps its events with a per-shard ``seq``
counter — within one shard, event order is total and gap-free (the
ordering the scheduler tests pin); across shards, file order is arrival
order.

Like telemetry, the event log is observational sidecar data: it never
enters the campaign fingerprint, and its timestamps (epoch seconds, the
cross-process clock) make it host-dependent by nature — byte-identity
contracts cover manifests and cell artifacts, not this file.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass
from typing import Callable, Iterator

from ...obs.profile import epoch_seconds

__all__ = [
    "EVENTS_FILENAME",
    "EventLog",
    "read_events",
    "tail_events",
    "follow_events",
    "watch_campaign",
    "WatchSummary",
]

#: The event log's filename inside a campaign directory.
EVENTS_FILENAME = "events.jsonl"


class EventLog:
    """Appends schema-light event lines for one shard.

    ``emit`` returns the record it wrote, already stamped with the
    shard id, a monotonically increasing per-shard ``seq``, and an
    epoch timestamp from the injectable clock.
    """

    def __init__(
        self,
        path: str | pathlib.Path,
        *,
        shard: str | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.path = pathlib.Path(path)
        self.shard = shard
        self._clock = epoch_seconds if clock is None else clock
        self._seq = 0

    def emit(self, event: str, **fields) -> dict:
        """Append one event line atomically; returns the record."""
        if not event:
            raise ValueError("events need a non-empty name")
        self._seq += 1
        record = {"event": event, "ts": round(self._clock(), 6), **fields}
        if self.shard is not None:
            record["shard"] = self.shard
            record["seq"] = self._seq
        data = (
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode()
        fd = os.open(str(self.path), os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, data)
        finally:
            os.close(fd)
        return record


def _parse_lines(text: str) -> list[dict]:
    records = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn or foreign line; the log is best-effort
        if isinstance(record, dict) and "event" in record:
            records.append(record)
    return records


def read_events(path: str | pathlib.Path) -> list[dict]:
    """Every event currently in the log, in append order (empty if none)."""
    path = pathlib.Path(path)
    if not path.exists():
        return []
    return _parse_lines(path.read_text())


def tail_events(
    path: str | pathlib.Path, offset: int = 0
) -> tuple[list[dict], int]:
    """Events appended after byte ``offset``: ``(events, new offset)``.

    The incremental form of :func:`read_events`: a poll loop threads
    the returned offset back in and never re-parses the log's prefix,
    so following a long sweep costs O(new events) per poll instead of
    O(whole file).  Only complete lines are consumed — the offset never
    advances past a line still being appended, so a torn tail is
    re-read (whole) on the next call.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return [], offset
    with open(path, "rb") as handle:
        handle.seek(offset)
        chunk = handle.read()
    cut = chunk.rfind(b"\n")
    if cut < 0:
        return [], offset
    complete = chunk[: cut + 1].decode(errors="replace")
    return _parse_lines(complete), offset + cut + 1


def follow_events(
    path: str | pathlib.Path,
    *,
    poll_seconds: float = 0.2,
    sleep: Callable[[float], None] | None = None,
    done: Callable[[], bool] | None = None,
) -> Iterator[dict]:
    """Tail the event log: yield events as shards append them.

    Yields every complete line from the start of the file, then polls
    for growth (via :func:`tail_events`, so each poll reads only what
    was appended).  Stops when ``done()`` returns true *and* the log
    has been drained past its current end (so a consumer never misses
    the final events of a finishing sweep).  With no ``done`` callback
    the generator follows forever — callers bound it
    (``campaign-watch`` stops on grid completion or timeout).
    """
    import time

    path = pathlib.Path(path)
    sleep = time.sleep if sleep is None else sleep
    offset = 0
    while True:
        events, offset = tail_events(path, offset)
        yield from events
        if done is not None and done():
            return
        sleep(poll_seconds)


@dataclass(frozen=True)
class WatchSummary:
    """What a watch saw: unique completions vs the grid total."""

    total: int
    completed: int
    imported: int
    retries: int

    @property
    def finished(self) -> bool:
        return self.completed >= self.total


def watch_campaign(
    directory: str | pathlib.Path,
    *,
    follow: bool = True,
    poll_seconds: float = 0.5,
    timeout: float | None = None,
    echo: Callable[[str], None] = print,
    clock: Callable[[], float] | None = None,
    sleep: Callable[[float], None] | None = None,
) -> WatchSummary:
    """Stream a campaign's progress from its event log.

    Reads the grid size from the store manifest, then prints one line
    per *unique* cell completion (double completions from lease races
    are folded away) with a completion-rate ETA computed purely from
    event timestamps — a watcher on another host needs no shared clock.
    ``follow=False`` drains the log once and returns; otherwise the
    watch ends when every grid cell has completed or ``timeout`` host
    seconds elapse.
    """
    from ..campaign import CampaignStore

    directory = pathlib.Path(directory)
    manifest_path = directory / CampaignStore.MANIFEST
    if not manifest_path.exists():
        raise ValueError(f"{directory}: no campaign manifest to watch")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format") != CampaignStore.MANIFEST_FORMAT:
        raise ValueError(
            f"{directory}: not a campaign store "
            f"(format={manifest.get('format')!r})"
        )
    config = manifest.get("config", {})
    total = (
        len(config.get("n_values", ()))
        * len(config.get("schemes", ()))
        * len(config.get("beamwidths_deg", ()))
    )
    clock = epoch_seconds if clock is None else clock
    started = clock()
    completed: set[str] = set()
    imported = retries = 0
    first_ts: float | None = None

    def expired() -> bool:
        return timeout is not None and clock() - started >= timeout

    def finished() -> bool:
        return not follow or len(completed) >= total or expired()

    for record in follow_events(
        directory / EVENTS_FILENAME,
        poll_seconds=poll_seconds,
        sleep=sleep,
        done=finished,
    ):
        event = record.get("event")
        ts = record.get("ts")
        if first_ts is None and isinstance(ts, (int, float)):
            first_ts = float(ts)
        if event == "shard-start":
            echo(
                f"watch: shard {record.get('shard')} joined "
                f"({record.get('cells', '?')} cells in grid)"
            )
        elif event == "cell-retry":
            retries += 1
            echo(
                f"watch: {record.get('key')} re-queued "
                f"(attempt {record.get('attempt')}, lease expired) "
                f"by shard {record.get('shard')}"
            )
        elif event in ("cell-completed", "cell-imported"):
            key = record.get("key")
            if key in completed:
                continue  # the losing side of a double completion
            completed.add(key)
            if event == "cell-imported":
                imported += 1
            eta = ""
            if isinstance(ts, (int, float)) and first_ts is not None:
                elapsed = float(ts) - first_ts
                remaining = total - len(completed)
                if elapsed > 0 and remaining > 0:
                    eta = f"  eta {elapsed / len(completed) * remaining:.1f}s"
            origin = (
                f"imported by shard {record.get('shard')}"
                if event == "cell-imported"
                else f"shard {record.get('shard')}"
            )
            echo(f"[{len(completed)}/{total}] {key}  {origin}{eta}")
        elif event == "shard-done":
            echo(
                f"watch: shard {record.get('shard')} done "
                f"(computed {record.get('completed', '?')}, "
                f"steals {record.get('steals', '?')})"
            )
    summary = WatchSummary(
        total=total,
        completed=len(completed),
        imported=imported,
        retries=retries,
    )
    echo(
        f"watch: {summary.completed}/{summary.total} cells"
        + (f", {summary.imported} imported" if summary.imported else "")
        + (f", {summary.retries} retries" if summary.retries else "")
        + ("" if summary.finished else "  (sweep still incomplete)")
    )
    return summary
