"""Worker shards: join a campaign store, lease cells, compute, stream.

A :class:`ShardRunner` is one worker's whole lifecycle against a shared
campaign directory: scan the grid in a shard-rotated order (spreading
initial contention), lease pending cells through the
:class:`~repro.experiments.dispatch.queue.WorkQueue`, compute them with
the study's worker function, persist artifacts first-writer-wins, and
stream events.  Any number of runners — in one process pool, or as
``repro campaign-worker`` processes on many hosts sharing a filesystem
— cooperate on one grid; a shard that dies mid-cell loses its lease to
the survivors when it expires.

Idempotency is the load-bearing property at every step: cells are pure
functions of their spec, artifact writes are atomic and skipped when
the file already exists, and event consumers deduplicate by key.  A
retried cell therefore costs wasted compute but can never corrupt the
store or change the campaign's results — a sharded, crash-riddled run
of a grid produces cell artifacts and a manifest byte-identical to a
serial run (the acceptance contract in ``tests/experiments/
test_dispatch_faults.py`` and CI's fault-injection job).
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Callable, Sequence

from ...obs.metrics import MetricsRegistry
from ...obs.profile import epoch_seconds
from ...obs.telemetry import telemetry_record
from ..campaign import CampaignStore, CellSpec
from .events import EVENTS_FILENAME, EventLog
from .queue import DEFAULT_LEASE_SECONDS, WorkQueue, backoff_seconds
from .registry import config_from_manifest

__all__ = ["ShardReport", "ShardRunner", "grid_specs", "run_shard"]


def grid_specs(config) -> list[CellSpec]:
    """Every grid cell of ``config`` in canonical (N, scheme, θ) order."""
    return [
        CellSpec(n, scheme, beamwidth, config)
        for n in config.n_values
        for scheme in config.schemes
        for beamwidth in config.beamwidths_deg
    ]


@dataclass(frozen=True)
class ShardReport:
    """What one shard did, picklable for pool fan-in."""

    shard: str
    cells_total: int
    computed: int
    imported: int
    skipped: int
    steals: int
    retries: int


class ShardRunner:
    """One worker shard's run loop over a shared campaign store.

    Args:
        directory: the campaign store directory (shared filesystem).
        config: the study configuration.  ``None`` loads it from the
            store manifest and resolves the worker functions from the
            manifest's ``study`` tag — how CLI workers join without
            re-stating the grid.
        shard_id: this worker's identity in leases and events.
        worker / worker_telemetry: the study's cell functions (same
            plug points as ``run_campaign``); default to the single-hop
            sim workers when a ``config`` is given explicitly.
        telemetry: write per-cell ``repro-telemetry-v1`` lines and a
            final shard record with the scheduler counters.  Strictly
            observational — cell artifacts are identical either way.
        lease_seconds: how long a leased cell may go uncompleted
            before other shards steal it.
        poll_seconds: idle sleep between scans while waiting on cells
            leased to other (live) shards.
        attached: read-only sibling stores for fingerprint dedup.
        clock / sleep: injectable for deterministic scheduler tests.
    """

    def __init__(
        self,
        directory: str | pathlib.Path,
        config=None,
        *,
        shard_id: str | int,
        worker: Callable | None = None,
        worker_telemetry: Callable | None = None,
        telemetry: bool = True,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        poll_seconds: float = 0.2,
        attached: Sequence[str | pathlib.Path] = (),
        clock: Callable[[], float] | None = None,
        sleep: Callable[[float], None] | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        import json
        import time

        self.shard = str(shard_id)
        if config is None:
            manifest_path = pathlib.Path(directory) / CampaignStore.MANIFEST
            if not manifest_path.exists():
                raise ValueError(
                    f"{directory}: no campaign manifest; create the store "
                    "first (run_campaign with a directory, or CampaignStore)"
                )
            config, study = config_from_manifest(
                json.loads(manifest_path.read_text())
            )
            worker = study.worker if worker is None else worker
            worker_telemetry = (
                study.worker_telemetry
                if worker_telemetry is None
                else worker_telemetry
            )
        elif worker is None or worker_telemetry is None:
            from ..campaign import run_cell_spec, run_cell_spec_telemetry

            worker = run_cell_spec if worker is None else worker
            worker_telemetry = (
                run_cell_spec_telemetry
                if worker_telemetry is None
                else worker_telemetry
            )
        self.config = config
        self.worker = worker
        self.worker_telemetry = worker_telemetry
        self.telemetry = telemetry
        self.poll_seconds = poll_seconds
        self._clock = epoch_seconds if clock is None else clock
        self._sleep = time.sleep if sleep is None else sleep
        self.store = CampaignStore(directory, config)
        self.metrics = MetricsRegistry() if metrics is None else metrics
        self.queue = WorkQueue(
            self.store,
            shard=self.shard,
            lease_seconds=lease_seconds,
            clock=self._clock,
            metrics=self.metrics,
            attached=attached,
        )
        self.events = EventLog(
            self.store.directory / EVENTS_FILENAME,
            shard=self.shard,
            clock=self._clock,
        )

    def _scan_order(self, specs: list[CellSpec]) -> list[CellSpec]:
        """Rotate the canonical order by a stable per-shard offset.

        Pure contention spreading: shards starting together begin
        their scans at different grid cells, so the lease protocol
        sees fewer collisions.  Correctness never depends on it.
        """
        if not specs:
            return specs
        if self.shard.isdigit():
            offset = int(self.shard) % len(specs)
        else:
            offset = sum(self.shard.encode()) % len(specs)
        return specs[offset:] + specs[:offset]

    def run(self) -> ShardReport:
        """Work the grid until every cell has an artifact on disk."""
        specs = grid_specs(self.config)
        order = self._scan_order(specs)
        self.events.emit("shard-start", cells=len(specs))
        computed = imported = skipped = 0
        start = self._clock()
        while True:
            progress = False
            for spec in order:
                key = spec.key
                if self.store.has(key):
                    continue
                if self.queue.import_cell(key):
                    imported += 1
                    progress = True
                    self.events.emit("cell-imported", key=key)
                    continue
                lease = self.queue.try_acquire(key)
                if lease is None:
                    continue
                if lease.attempt > 0:
                    self.events.emit(
                        "cell-retry", key=key, attempt=lease.attempt
                    )
                    self.queue.note_retry()
                    self._sleep(backoff_seconds(key, lease.attempt))
                    if self.store.has(key):
                        # The presumed-dead owner finished during the
                        # backoff — nothing left to recompute.
                        self.queue.release(key)
                        skipped += 1
                        progress = True
                        continue
                cell_start = self._clock()
                try:
                    if self.telemetry:
                        cell, record = self.worker_telemetry(spec)
                    else:
                        cell, record = self.worker(spec), None
                    wrote = self.store.save_if_absent(spec, cell)
                    if record is not None:
                        self.store.record_telemetry(record)
                    self.events.emit(
                        "cell-completed",
                        key=key,
                        attempt=lease.attempt,
                        recomputed=not wrote,
                        wall_seconds=round(self._clock() - cell_start, 6),
                    )
                finally:
                    # Never exit holding the lease: a worker error
                    # would otherwise park the cell for lease_seconds
                    # before survivors could steal it.  Releasing here
                    # lets them retry (or hit the same failure and
                    # surface it) immediately.
                    self.queue.release(key)
                computed += 1
                progress = True
            if all(self.store.has(spec.key) for spec in specs):
                break
            if not progress:
                # Everything pending is leased to live shards; wait for
                # their artifacts (or their leases) to turn over.
                self._sleep(self.poll_seconds)
        report = ShardReport(
            shard=self.shard,
            cells_total=len(specs),
            computed=computed,
            imported=imported,
            skipped=skipped,
            steals=int(self.metrics.counter("dispatch.steals").value),
            retries=int(self.metrics.counter("dispatch.retries").value),
        )
        self.events.emit(
            "shard-done",
            completed=report.computed,
            imported=report.imported,
            steals=report.steals,
            retries=report.retries,
        )
        if self.telemetry:
            snapshot = self.metrics.snapshot()
            self.store.record_telemetry(
                telemetry_record(
                    "shard",
                    shard=self.shard,
                    cells_computed=computed,
                    cells_imported=imported,
                    wall_seconds=round(self._clock() - start, 6),
                    scheduler=snapshot["counters"],
                )
            )
            # Folding the summary into the manifest is the *caller's*
            # post-grid step (the facade parent, or the CLI worker
            # entrypoint): shards finishing near-simultaneously would
            # race the read-modify-write and lose each other's records.
        return report


def run_shard(
    directory: str,
    config,
    shard_id: str,
    worker: Callable | None,
    worker_telemetry: Callable | None,
    telemetry: bool,
    lease_seconds: float,
    poll_seconds: float,
) -> ShardReport:
    """Top-level pool entrypoint (picklable) for the single-host facade."""
    return ShardRunner(
        directory,
        config,
        shard_id=shard_id,
        worker=worker,
        worker_telemetry=worker_telemetry,
        telemetry=telemetry,
        lease_seconds=lease_seconds,
        poll_seconds=poll_seconds,
    ).run()
