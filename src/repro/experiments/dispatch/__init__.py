"""Service-shaped campaign execution: shards, leases, event streams.

The campaign layer (PR 2) made study grids parallel and resumable on
one host; this package makes them *distributable*.  The pieces:

* :mod:`~repro.experiments.dispatch.queue` — the crash-tolerant
  :class:`WorkQueue`: per-cell lease files with expiry, atomic steal of
  leases whose workers died, deterministic retry backoff, and
  fingerprint dedup against attached sibling stores;
* :mod:`~repro.experiments.dispatch.shard` — :class:`ShardRunner`, one
  worker's run loop (``repro campaign-worker`` is a thin wrapper), and
  the pool entrypoint the single-host facade fans out to;
* :mod:`~repro.experiments.dispatch.events` — the append-only
  ``events.jsonl`` result stream and :func:`watch_campaign`
  (``repro campaign-watch``) for rendering progress mid-sweep;
* :mod:`~repro.experiments.dispatch.registry` — manifest ``study`` tag
  to config-class/worker resolution, so CLI workers join a store
  without re-stating its grid.

Determinism contract, unchanged from the serial runner: same config and
seed produce byte-identical cell artifacts and manifest no matter how
many shards ran, crashed, or raced.
"""

from .events import (
    EVENTS_FILENAME,
    EventLog,
    WatchSummary,
    follow_events,
    read_events,
    tail_events,
    watch_campaign,
)
from .queue import DEFAULT_LEASE_SECONDS, Lease, WorkQueue, backoff_seconds
from .registry import StudyKind, config_from_manifest, resolve_study, study_tag
from .shard import ShardReport, ShardRunner, grid_specs, run_shard

__all__ = [
    "DEFAULT_LEASE_SECONDS",
    "EVENTS_FILENAME",
    "EventLog",
    "Lease",
    "ShardReport",
    "ShardRunner",
    "StudyKind",
    "WatchSummary",
    "WorkQueue",
    "backoff_seconds",
    "config_from_manifest",
    "follow_events",
    "grid_specs",
    "read_events",
    "resolve_study",
    "study_tag",
    "run_shard",
    "tail_events",
    "watch_campaign",
]
