"""Crash-tolerant work-queue scheduling over a shared campaign store.

The campaign layer's correctness substrate — pure, fingerprinted cells
written atomically — already makes distributed execution *safe*; this
module adds the scheduling that makes it *work*: any number of worker
shards (processes on one host, or hosts sharing a filesystem) lease
cells from the same campaign directory, and a shard that crashes, hangs,
or is SIGKILLed simply loses its leases to the survivors when they
expire.

The lease protocol
==================

One lease file per in-flight cell, ``leases/<key>.json``, holding the
owning shard, acquisition/expiry epoch timestamps, and the attempt
number:

* **Acquire** — the lease is materialized with ``os.link`` from a fully
  written temp file, so creation is atomic *with its content*: either
  the link wins (the shard owns the cell) or ``FileExistsError`` says
  another shard got there first.  Readers never observe a partial
  lease.
* **Steal** — a lease whose ``expires`` is in the past belongs to a
  worker presumed dead.  The stealing shard ``os.replace``-s its own
  lease over it (attempt + 1) and reads the file back; owning the cell
  means seeing your own nonce after the replace.  Two shards racing an
  expired lease resolve to one owner in all but a vanishingly small
  window — and if both *do* compute the cell, determinism makes the
  duplicates byte-identical and the store's first-writer-wins save
  keeps exactly one artifact.  Leases prevent wasted work; purity
  prevents corruption.
* **Release** — completion (or an abandoned claim) unlinks the lease.

Retries back off deterministically: :func:`backoff_seconds` is a pure
function of ``(key, attempt)``, so the schedule is reproducible in
tests and desynchronized across cells without host entropy.

Clocks are epoch seconds (:func:`repro.obs.profile.epoch_seconds` — the
sanctioned cross-process clock) and injectable throughout; nothing here
touches simulated time or simulation results.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
from dataclasses import dataclass
from typing import Callable, Sequence

from ...obs.metrics import MetricsRegistry, NULL_REGISTRY
from ...obs.profile import epoch_seconds
from ..campaign import CampaignStore

__all__ = [
    "DEFAULT_LEASE_SECONDS",
    "Lease",
    "WorkQueue",
    "backoff_seconds",
]

#: How long a shard may sit on a cell before the others assume it died.
#: Generous relative to a cell's compute time; fault-injection tests
#: and CI shrink it to seconds.
DEFAULT_LEASE_SECONDS = 300.0

#: Schema tag carried by every lease file.
LEASE_FORMAT = "repro-lease-v1"


def backoff_seconds(
    key: str, attempt: int, *, base: float = 0.1, cap: float = 30.0
) -> float:
    """Deterministic retry backoff before recomputing a stolen cell.

    Exponential in ``attempt`` (the number of times the cell's lease
    has already expired), capped at ``cap``, and scaled by a stable
    per-``key`` fraction in ``[0.5, 1.0]`` derived from SHA-256 — so
    concurrent retries of *different* cells desynchronize without any
    host entropy, and the whole schedule is a pure function of its
    arguments (regression-tested as such).  ``attempt == 0`` (a fresh
    claim, nothing to back off from) is 0.0.
    """
    if attempt < 0:
        raise ValueError(f"attempt must be >= 0, got {attempt}")
    if attempt == 0:
        return 0.0
    delay = min(cap, base * (2.0 ** (attempt - 1)))
    digest = hashlib.sha256(key.encode()).hexdigest()
    fraction = 0.5 + 0.5 * (int(digest[:8], 16) / 0xFFFFFFFF)
    return delay * fraction


@dataclass(frozen=True)
class Lease:
    """One shard's claim on one cell, as persisted in ``leases/``."""

    key: str
    shard: str
    acquired: float
    expires: float
    #: How many earlier leases on this cell expired before this one —
    #: i.e. how many presumed-dead workers the cell has outlived.
    attempt: int
    #: Uniquifies the record so a stealing shard can recognize its own
    #: write when two shards race the same expired lease.
    nonce: str

    def to_json(self) -> str:
        return json.dumps(
            {"format": LEASE_FORMAT, **dataclasses.asdict(self)},
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "Lease":
        payload = json.loads(text)
        if payload.pop("format", None) != LEASE_FORMAT:
            raise ValueError("not a lease record")
        return cls(**payload)


class WorkQueue:
    """Leases cells of one campaign store to competing worker shards.

    Scheduler telemetry lands in ``metrics`` under the ``dispatch.*``
    names (leases acquired, expirations observed, steals won, retries
    run, dedup hits); pass a disabled registry to observe nothing.

    ``attached`` names read-only sibling stores (earlier sweeps, other
    hosts' result directories).  They must carry the *same* config
    fingerprint — the fingerprint is the cell's identity, so a cell
    artifact found in any attached store is byte-for-byte the artifact
    this campaign would compute, and :meth:`import_cell` just copies
    it in instead of computing.
    """

    LEASE_DIR = "leases"

    def __init__(
        self,
        store: CampaignStore,
        *,
        shard: str,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        clock: Callable[[], float] | None = None,
        metrics: MetricsRegistry | None = None,
        attached: Sequence[str | pathlib.Path] = (),
    ) -> None:
        if lease_seconds <= 0:
            raise ValueError(f"lease_seconds must be positive, got {lease_seconds}")
        self.store = store
        self.shard = str(shard)
        self.lease_seconds = lease_seconds
        self._clock = epoch_seconds if clock is None else clock
        metrics = NULL_REGISTRY if metrics is None else metrics
        self._leases_acquired = metrics.counter("dispatch.leases")
        self._expirations = metrics.counter("dispatch.lease_expirations")
        self._steals = metrics.counter("dispatch.steals")
        self._retries = metrics.counter("dispatch.retries")
        self._dedup_hits = metrics.counter("dispatch.dedup_hits")
        self.lease_dir = store.directory / self.LEASE_DIR
        self.lease_dir.mkdir(parents=True, exist_ok=True)
        self.attached = tuple(pathlib.Path(p) for p in attached)
        for directory in self.attached:
            self._validate_attached(directory)

    def _validate_attached(self, directory: pathlib.Path) -> None:
        manifest_path = directory / CampaignStore.MANIFEST
        if not manifest_path.exists():
            raise ValueError(f"{directory}: attached store has no manifest")
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("format") != CampaignStore.MANIFEST_FORMAT:
            raise ValueError(
                f"{directory}: not a campaign store "
                f"(format={manifest.get('format')!r})"
            )
        if manifest.get("fingerprint") != self.store.fingerprint:
            raise ValueError(
                f"{directory}: attached store was built from a different "
                "configuration; its cells are not this campaign's cells"
            )

    # -- lease mechanics ----------------------------------------------

    def lease_path(self, key: str) -> pathlib.Path:
        return self.lease_dir / f"{key}.json"

    def read_lease(self, key: str) -> Lease | None:
        """The current lease on ``key``, or ``None`` (absent/corrupt)."""
        try:
            return Lease.from_json(self.lease_path(key).read_text())
        except (OSError, ValueError):
            return None

    def _new_lease(self, key: str, attempt: int, now: float) -> Lease:
        return Lease(
            key=key,
            shard=self.shard,
            acquired=now,
            expires=now + self.lease_seconds,
            attempt=attempt,
            nonce=f"{self.shard}:{now:.6f}:{attempt}",
        )

    def try_acquire(self, key: str) -> Lease | None:
        """Claim ``key``, stealing an expired lease if one is found.

        Returns the lease this shard now holds, or ``None`` when the
        cell is already completed or validly leased elsewhere.  A
        returned lease with ``attempt > 0`` was stolen from a presumed
        crashed worker — callers should honour
        :func:`backoff_seconds` before recomputing.
        """
        if self.store.has(key):
            return None
        path = self.lease_path(key)
        now = self._clock()
        lease = self._new_lease(key, 0, now)
        tmp = path.with_name(f"{path.name}.{self.shard}.tmp")
        tmp.write_text(lease.to_json())
        try:
            os.link(tmp, path)
        except FileExistsError:
            tmp.unlink(missing_ok=True)
            existing = self.read_lease(key)
            if existing is None:
                # Vanished (owner released) or unreadable mid-write:
                # treat as contested and let the next pass retry.
                return None
            if existing.expires > now:
                return None
            return self._steal(key, existing, now)
        tmp.unlink(missing_ok=True)
        self._leases_acquired.inc()
        return lease

    def _steal(self, key: str, expired: Lease, now: float) -> Lease | None:
        """Replace an expired lease with our own; None if outraced."""
        self._expirations.inc()
        lease = self._new_lease(key, expired.attempt + 1, now)
        path = self.lease_path(key)
        tmp = path.with_name(f"{path.name}.{self.shard}.tmp")
        tmp.write_text(lease.to_json())
        os.replace(tmp, path)
        check = self.read_lease(key)
        if check is None or check.nonce != lease.nonce:
            return None
        self._leases_acquired.inc()
        self._steals.inc()
        return lease

    def note_retry(self) -> None:
        """Count one re-queued cell actually being recomputed."""
        self._retries.inc()

    def release(self, key: str) -> None:
        """Drop this shard's claim (idempotent; also used on completion)."""
        self.lease_path(key).unlink(missing_ok=True)

    # -- cross-store dedup --------------------------------------------

    def import_cell(self, key: str) -> bool:
        """Copy ``key``'s artifact from an attached store, if any has it.

        Byte-preserving (the artifact is copied verbatim, atomically),
        so the serial-equivalence contract survives dedup.  Returns
        whether the cell was imported.
        """
        if self.store.has(key):
            return False
        for directory in self.attached:
            source = directory / f"cell-{key}.json"
            if not source.exists():
                continue
            target = self.store.path_for_key(key)
            tmp = target.with_name(f"{target.name}.{self.shard}.tmp")
            tmp.write_bytes(source.read_bytes())
            os.replace(tmp, target)
            self._dedup_hits.inc()
            return True
        return False
