"""Extension study: the Nasipuri et al. scheme alongside the paper's three.

The paper's Section 1 describes Nasipuri et al.'s protocol — omni RTS
and CTS followed by *directional* data and ACK — but does not simulate
it.  This study runs all four schemes on identical topologies.  The
interesting comparison is against ORTS-OCTS: the handshake coordination
is identical, so any difference isolates the value of beaming just the
data phase (less exposure of long frames to third parties, at the cost
of not refreshing distant NAVs with data energy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..dessim.units import SECOND
from .campaign import CampaignProgress, run_campaign
from .config import SimStudyConfig

__all__ = ["SchemeComparison", "run_scheme_comparison", "format_scheme_comparison"]

ALL_SCHEMES = (
    "ORTS-OCTS",
    "DRTS-DCTS",
    "DRTS-OCTS",
    "ORTS-OCTS-DDATA",
    "DORTS-OCTS",
)


@dataclass(frozen=True)
class SchemeComparison:
    """Mean metrics for one scheme over shared topologies."""

    scheme: str
    throughput_bps: float
    mean_delay_s: float
    collision_ratio: float


def run_scheme_comparison(
    n: int = 8,
    beamwidth_deg: float = 30.0,
    topologies: int = 2,
    sim_time_ns: int = SECOND,
    schemes: Sequence[str] = ALL_SCHEMES,
    base_seed: int = 900,
    *,
    workers: int | None = 1,
    directory=None,
    progress: CampaignProgress | None = None,
) -> list[SchemeComparison]:
    """All schemes on identical ring topologies, run as a campaign.

    Replicate seeds are registry-derived from ``base_seed`` (the old
    code seeded replicate ``i`` with literally ``i``, ignoring
    ``base_seed`` for everything but placement), and the single-row
    grid goes through :func:`~repro.experiments.campaign.run_campaign`,
    so the comparison parallelizes and resumes like any other study.
    """
    config = SimStudyConfig(
        n_values=(n,),
        beamwidths_deg=(beamwidth_deg,),
        schemes=tuple(schemes),
        topologies=topologies,
        sim_time_ns=sim_time_ns,
        base_seed=base_seed,
    )
    rows = []
    for cell in run_campaign(
        config, workers=workers, directory=directory, progress=progress
    ):
        count = len(cell.results)
        rows.append(
            SchemeComparison(
                scheme=cell.scheme,
                throughput_bps=sum(cell.metric("inner_throughput_bps")) / count,
                mean_delay_s=sum(cell.metric("inner_mean_delay_s")) / count,
                collision_ratio=sum(cell.metric("inner_collision_ratio")) / count,
            )
        )
    return rows


def format_scheme_comparison(rows: Sequence[SchemeComparison]) -> str:
    """Aligned text rendering."""
    lines = [
        "scheme           thr(Mbps)  delay(ms)  collisions",
        "-" * 50,
    ]
    for row in rows:
        lines.append(
            f"{row.scheme:15s}  {row.throughput_bps / 1e6:9.3f}  "
            f"{row.mean_delay_s * 1e3:9.1f}  {row.collision_ratio:10.3f}"
        )
    return "\n".join(lines)
