"""Extension study: the Nasipuri et al. scheme alongside the paper's three.

The paper's Section 1 describes Nasipuri et al.'s protocol — omni RTS
and CTS followed by *directional* data and ACK — but does not simulate
it.  This study runs all four schemes on identical topologies.  The
interesting comparison is against ORTS-OCTS: the handshake coordination
is identical, so any difference isolates the value of beaming just the
data phase (less exposure of long frames to third parties, at the cost
of not refreshing distant NAVs with data energy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..dessim.rng import RngRegistry
from ..dessim.units import SECOND
from ..net.network import NetworkSimulation
from ..net.topology import TopologyConfig, generate_ring_topology

__all__ = ["SchemeComparison", "run_scheme_comparison", "format_scheme_comparison"]

ALL_SCHEMES = (
    "ORTS-OCTS",
    "DRTS-DCTS",
    "DRTS-OCTS",
    "ORTS-OCTS-DDATA",
    "DORTS-OCTS",
)


@dataclass(frozen=True)
class SchemeComparison:
    """Mean metrics for one scheme over shared topologies."""

    scheme: str
    throughput_bps: float
    mean_delay_s: float
    collision_ratio: float


def run_scheme_comparison(
    n: int = 8,
    beamwidth_deg: float = 30.0,
    topologies: int = 2,
    sim_time_ns: int = SECOND,
    schemes: Sequence[str] = ALL_SCHEMES,
    base_seed: int = 900,
) -> list[SchemeComparison]:
    """All four schemes on identical ring topologies."""
    if topologies < 1:
        raise ValueError(f"topologies must be >= 1, got {topologies}")
    registry = RngRegistry(base_seed)
    topos = [
        generate_ring_topology(
            TopologyConfig(n=n),
            registry.spawn(f"topology-{i}").stream("placement"),
        )
        for i in range(topologies)
    ]
    rows = []
    for scheme in schemes:
        throughput, delay, collision = [], [], []
        for i, topology in enumerate(topos):
            result = NetworkSimulation(
                topology, scheme, math.radians(beamwidth_deg), seed=i
            ).run(sim_time_ns)
            throughput.append(result.inner_throughput_bps)
            delay.append(result.inner_mean_delay_s)
            collision.append(result.inner_collision_ratio)
        count = len(topos)
        rows.append(
            SchemeComparison(
                scheme=scheme,
                throughput_bps=sum(throughput) / count,
                mean_delay_s=sum(delay) / count,
                collision_ratio=sum(collision) / count,
            )
        )
    return rows


def format_scheme_comparison(rows: Sequence[SchemeComparison]) -> str:
    """Aligned text rendering."""
    lines = [
        "scheme           thr(Mbps)  delay(ms)  collisions",
        "-" * 50,
    ]
    for row in rows:
        lines.append(
            f"{row.scheme:15s}  {row.throughput_bps / 1e6:9.3f}  "
            f"{row.mean_delay_s * 1e3:9.1f}  {row.collision_ratio:10.3f}"
        )
    return "\n".join(lines)
