"""Table 1 — the IEEE 802.11 DSSS configuration used in Section 4.

Table 1 is a configuration table, not a measurement; "reproducing" it
means showing that our PHY/MAC constants are those values and deriving
the frame air times they imply (which every simulated handshake then
exhibits — the DCF tests pin the resulting 6884 us handshake).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dessim.units import to_microseconds
from ..mac.config import DSSS_MAC, MacParameters
from ..phy.frames import DSSS_PHY, FRAME_SIZES, FrameType, PhyParameters

__all__ = ["Table1Entry", "table1_entries", "format_table1"]


@dataclass(frozen=True)
class Table1Entry:
    """One parameter row: paper value and the value this repo uses."""

    name: str
    paper_value: str
    repo_value: str

    @property
    def matches(self) -> bool:
        return self.paper_value == self.repo_value


def table1_entries(
    mac: MacParameters = DSSS_MAC, phy: PhyParameters = DSSS_PHY
) -> list[Table1Entry]:
    """Every Table 1 parameter alongside what the repo is configured to."""

    def us(value_ns: int) -> str:
        return f"{to_microseconds(value_ns):g}us"

    return [
        Table1Entry("RTS size", "20B", f"{FRAME_SIZES[FrameType.RTS]}B"),
        Table1Entry("CTS size", "14B", f"{FRAME_SIZES[FrameType.CTS]}B"),
        Table1Entry("data size", "1460B", f"{FRAME_SIZES[FrameType.DATA]}B"),
        Table1Entry("ACK size", "14B", f"{FRAME_SIZES[FrameType.ACK]}B"),
        Table1Entry("DIFS", "50us", us(mac.difs_ns)),
        Table1Entry("SIFS", "10us", us(mac.sifs_ns)),
        Table1Entry(
            "contention window", "31-1023", f"{mac.cw_min}-{mac.cw_max}"
        ),
        Table1Entry("slot time", "20us", us(mac.slot_time_ns)),
        Table1Entry("sync time", "192us", us(phy.sync_time_ns)),
        Table1Entry("propagation delay", "1us", us(phy.propagation_delay_ns)),
        Table1Entry(
            "raw channel bit rate", "2Mbps", f"{phy.bitrate_bps // 1_000_000}Mbps"
        ),
    ]


def format_table1(entries: list[Table1Entry] | None = None) -> str:
    """Aligned text rendering with derived air times appended."""
    rows = entries if entries is not None else table1_entries()
    width = max(len(e.name) for e in rows)
    lines = [f"{'parameter':<{width}}  {'paper':>10}  {'repo':>10}  ok"]
    for entry in rows:
        mark = "yes" if entry.matches else "NO"
        lines.append(
            f"{entry.name:<{width}}  {entry.paper_value:>10}  "
            f"{entry.repo_value:>10}  {mark}"
        )
    lines.append("")
    lines.append("derived frame air times (sync + bits at 2 Mbps):")
    for ftype in FrameType:
        airtime_us = to_microseconds(DSSS_PHY.frame_airtime_ns(ftype))
        lines.append(f"  {ftype.value:>4}: {airtime_us:g}us")
    return "\n".join(lines)
