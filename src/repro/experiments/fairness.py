"""Section 4's fairness discussion, quantified.

The paper observes (results omitted for space) that BEB "always favors
the node that succeeds last", that starvation is "much more unfair when
transmission beamwidth is wider", and that "when N is larger, the
fairness problem is less severe".  This experiment quantifies all three
claims with Jain's fairness index over the inner nodes' individual
throughputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..metrics.summary import ReplicateSummary, summarize
from .campaign import CampaignProgress, run_campaign
from .config import SimStudyConfig, from_environment

__all__ = ["FairnessCell", "run_fairness", "format_fairness_table"]


@dataclass(frozen=True)
class FairnessCell:
    """Jain-index summary for one (N, scheme, beamwidth) cell."""

    n: int
    scheme: str
    beamwidth_deg: float
    jain: ReplicateSummary


def run_fairness(
    config: SimStudyConfig | None = None,
    *,
    workers: int | None = 1,
    directory=None,
    progress: CampaignProgress | None = None,
) -> list[FairnessCell]:
    """Run the grid and summarize inner-node fairness."""
    cfg = config if config is not None else from_environment()
    cells = []
    for cell in run_campaign(
        cfg, workers=workers, directory=directory, progress=progress
    ):
        cells.append(
            FairnessCell(
                n=cell.n,
                scheme=cell.scheme,
                beamwidth_deg=cell.beamwidth_deg,
                jain=summarize(cell.metric("inner_fairness")),
            )
        )
    return cells


def format_fairness_table(cells: Sequence[FairnessCell]) -> str:
    """Aligned text table grouped by N."""
    lines = []
    schemes = sorted({c.scheme for c in cells}, key=str)
    for n in sorted({c.n for c in cells}):
        lines.append(f"N = {n}  (Jain fairness index of inner-node throughputs)")
        lines.append("  beamwidth  " + "  ".join(f"{s:>12}" for s in schemes))
        for beamwidth in sorted({c.beamwidth_deg for c in cells if c.n == n}):
            row = [f"  {beamwidth:7.0f}dg "]
            for scheme in schemes:
                match = [
                    c
                    for c in cells
                    if c.n == n
                    and c.scheme == scheme
                    and c.beamwidth_deg == beamwidth
                ]
                row.append(f"{match[0].jain.mean:12.3f}" if match else " " * 12)
            lines.append("  ".join(row))
        lines.append("")
    return "\n".join(lines)
