"""Experiment harness: one module per paper table/figure.

* :mod:`~repro.experiments.fig5` — analytical throughput vs beamwidth,
* :mod:`~repro.experiments.fig6` — simulated throughput grid,
* :mod:`~repro.experiments.fig7` — simulated delay grid,
* :mod:`~repro.experiments.table1` — the DSSS configuration check,
* :mod:`~repro.experiments.collision_ratio` — the Section-4 statistic,
* :mod:`~repro.experiments.fairness` — the Section-4 fairness claims,
* :mod:`~repro.experiments.ablation` — design-choice ablations,
* :mod:`~repro.experiments.campaign` — parallel, resumable grid
  execution (worker fan-out, per-cell result store, progress/ETA),
* :mod:`~repro.experiments.multihop` — end-to-end multi-hop study over
  the routing subsystem (same campaign machinery, ``"multihop"`` cells),
* :mod:`~repro.experiments.slotsim_study` — slot-model Monte-Carlo
  study with engine selection (same campaign machinery, ``"slotsim"``
  cells).
"""

from .campaign import (
    CampaignProgress,
    CampaignRunner,
    CampaignStore,
    CellSpec,
    ReplicateMetrics,
    cell_telemetry,
    replicate_seed,
    replicate_topology,
    run_campaign,
    run_cell_spec,
    run_cell_spec_telemetry,
)
from .ablation import (
    Area3SpanRow,
    EngineCheckRow,
    FixedPRow,
    TFailRow,
    format_area3_span_table,
    format_engine_check_table,
    format_fixed_p_table,
    format_tfail_table,
    run_area3_span_ablation,
    run_engine_ablation,
    run_fixed_p_ablation,
    run_tfail_ablation,
)
from .baselines import BaselineRow, format_baseline_table, run_baseline_ladder
from .collision_ratio import CollisionCell, format_collision_table, run_collision_ratio
from .config import SimStudyConfig, from_environment, workers_from_environment
from .fairness import FairnessCell, format_fairness_table, run_fairness
from .extension_schemes import (
    SchemeComparison,
    format_scheme_comparison,
    run_scheme_comparison,
)
from .fig5 import (
    Fig5MeasuredRow,
    Fig5Row,
    format_fig5_measured_table,
    format_fig5_table,
    run_fig5,
    run_fig5_measured,
)
from .load_sweep import LoadPoint, format_load_sweep_table, run_load_sweep
from .mobility_study import (
    MobilityPoint,
    format_mobility_table,
    run_mobility_study,
)
from .fig6 import Fig6Cell, format_fig6_table, run_fig6
from .fig7 import Fig7Cell, format_fig7_table, run_fig7
from .multihop import (
    MultihopCell,
    MultihopReplicateMetrics,
    MultihopStudyConfig,
    format_multihop_table,
    multihop_replicate_topology,
    normalize_scheme,
    run_multihop,
    run_multihop_cell_spec,
    run_multihop_cell_spec_telemetry,
    summarize_multihop,
)
from .runner import CellResult, SimStudyRunner
from .slotsim_study import (
    SlotCell,
    SlotReplicateMetrics,
    SlotStudyConfig,
    format_slotsim_table,
    run_slot_cell_spec,
    run_slot_cell_spec_telemetry,
    run_slot_study,
    summarize_slotsim,
)
from .table1 import Table1Entry, format_table1, table1_entries

__all__ = [
    "SimStudyConfig",
    "from_environment",
    "workers_from_environment",
    "SimStudyRunner",
    "CellResult",
    "CellSpec",
    "ReplicateMetrics",
    "CampaignProgress",
    "CampaignRunner",
    "CampaignStore",
    "replicate_seed",
    "replicate_topology",
    "run_campaign",
    "run_cell_spec",
    "run_cell_spec_telemetry",
    "cell_telemetry",
    "Fig5Row",
    "run_fig5",
    "format_fig5_table",
    "Fig5MeasuredRow",
    "run_fig5_measured",
    "format_fig5_measured_table",
    "SlotCell",
    "SlotReplicateMetrics",
    "SlotStudyConfig",
    "run_slot_study",
    "run_slot_cell_spec",
    "run_slot_cell_spec_telemetry",
    "summarize_slotsim",
    "format_slotsim_table",
    "Fig6Cell",
    "run_fig6",
    "format_fig6_table",
    "Fig7Cell",
    "run_fig7",
    "format_fig7_table",
    "MultihopCell",
    "MultihopReplicateMetrics",
    "MultihopStudyConfig",
    "normalize_scheme",
    "multihop_replicate_topology",
    "run_multihop",
    "run_multihop_cell_spec",
    "run_multihop_cell_spec_telemetry",
    "summarize_multihop",
    "format_multihop_table",
    "Table1Entry",
    "table1_entries",
    "format_table1",
    "CollisionCell",
    "run_collision_ratio",
    "format_collision_table",
    "FairnessCell",
    "run_fairness",
    "format_fairness_table",
    "LoadPoint",
    "MobilityPoint",
    "run_mobility_study",
    "format_mobility_table",
    "run_load_sweep",
    "format_load_sweep_table",
    "SchemeComparison",
    "run_scheme_comparison",
    "format_scheme_comparison",
    "FixedPRow",
    "run_fixed_p_ablation",
    "TFailRow",
    "run_tfail_ablation",
    "Area3SpanRow",
    "run_area3_span_ablation",
    "EngineCheckRow",
    "run_engine_ablation",
    "format_engine_check_table",
    "BaselineRow",
    "run_baseline_ladder",
    "format_baseline_table",
    "format_fixed_p_table",
    "format_tfail_table",
    "format_area3_span_table",
]
