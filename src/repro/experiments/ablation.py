"""Ablations over the design choices DESIGN.md calls out.

Three studies, all cheap and analytical unless noted:

1. **p-optimisation vs fixed p** — Fig. 5 plots *maximum achievable*
   throughput; how much of each scheme's ranking depends on tuning
   ``p`` per point rather than fixing one value for all schemes?
2. **DRTS-OCTS T_fail lower bound** — Section 2.3 deliberately uses
   ``l_rts + l_cts + 2`` (not ``l_rts + 1``) as the truncated-geometric
   lower bound to charge the omni-CTS for its disruptiveness.  How much
   does that choice move the curve?
3. **802.11 retry limit** (simulation) — the paper's BEB-starvation
   argument implies throughput is sensitive to how long losers stay in
   high-CW states; the retry limit caps exactly that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..core.drts_octs import DrtsOcts
from ..core.optimize import maximize_throughput
from ..core.params import PAPER_PARAMETERS, ProtocolParameters
from ..core.sweep import SCHEME_FACTORIES
from ..core.truncgeom import truncated_geometric_mean

__all__ = [
    "FixedPRow",
    "run_fixed_p_ablation",
    "TFailRow",
    "run_tfail_ablation",
    "Area3SpanRow",
    "run_area3_span_ablation",
    "EngineCheckRow",
    "run_engine_ablation",
    "format_fixed_p_table",
    "format_tfail_table",
    "format_area3_span_table",
    "format_engine_check_table",
]


@dataclass(frozen=True)
class FixedPRow:
    """Throughput at several fixed p values vs the optimised p."""

    scheme: str
    beamwidth_deg: float
    fixed: dict[float, float]
    optimised: float


def run_fixed_p_ablation(
    n_neighbors: float = 5.0,
    beamwidth_deg: float = 30.0,
    p_values: Sequence[float] = (0.01, 0.03, 0.05, 0.1),
) -> list[FixedPRow]:
    """Compare fixed-p throughput against the per-point optimum."""
    params = PAPER_PARAMETERS.with_neighbors(n_neighbors).with_beamwidth(
        math.radians(beamwidth_deg)
    )
    rows = []
    for name, factory in SCHEME_FACTORIES.items():
        scheme = factory(params)
        rows.append(
            FixedPRow(
                scheme=name,
                beamwidth_deg=beamwidth_deg,
                fixed={p: scheme.throughput(p) for p in p_values},
                optimised=maximize_throughput(scheme).throughput,
            )
        )
    return rows


class _DrtsOctsEarlyFail(DrtsOcts):
    """DRTS-OCTS with the *optimistic* T_fail bound (``l_rts + 1``)."""

    name = "DRTS-OCTS(early-fail)"

    def t_fail(self, p: float) -> float:
        self._check_p(p)
        return truncated_geometric_mean(
            p, self.params.l_rts + 1.0, self.params.t_succeed
        )


@dataclass(frozen=True)
class TFailRow:
    """Paper bound vs optimistic bound for DRTS-OCTS."""

    beamwidth_deg: float
    paper_bound: float
    early_bound: float

    @property
    def relative_change(self) -> float:
        if self.paper_bound == 0.0:
            return 0.0
        return (self.early_bound - self.paper_bound) / self.paper_bound


def run_tfail_ablation(
    n_neighbors: float = 5.0,
    beamwidths_deg: Sequence[float] = (30.0, 90.0, 150.0),
) -> list[TFailRow]:
    """Quantify the Section-2.3 T_fail lower-bound choice."""
    rows = []
    for beamwidth in beamwidths_deg:
        params = PAPER_PARAMETERS.with_neighbors(n_neighbors).with_beamwidth(
            math.radians(beamwidth)
        )
        rows.append(
            TFailRow(
                beamwidth_deg=beamwidth,
                paper_bound=maximize_throughput(DrtsOcts(params)).throughput,
                early_bound=maximize_throughput(
                    _DrtsOctsEarlyFail(params)
                ).throughput,
            )
        )
    return rows


@dataclass(frozen=True)
class Area3SpanRow:
    """DRTS-DCTS throughput under the two Area-III span bounds.

    Section 2.2 item 3: the direction span ``theta'`` of the Area-III
    constraint truly lies in ``[theta, 2*theta]``; the paper picks
    ``theta`` "for simplicity".  The two bounds bracket the truth.
    """

    beamwidth_deg: float
    paper_span: float  # theta' = theta (the paper's choice)
    upper_span: float  # theta' = 2*theta (conservative bound)

    @property
    def bracket_width(self) -> float:
        """Relative width of the bracket (how much the choice matters)."""
        if self.paper_span == 0.0:
            return 0.0
        return (self.paper_span - self.upper_span) / self.paper_span


def run_area3_span_ablation(
    n_neighbors: float = 5.0,
    beamwidths_deg: Sequence[float] = (15.0, 30.0, 90.0, 150.0),
) -> list[Area3SpanRow]:
    """Bracket the paper's ``theta' = theta`` simplification."""
    from ..core.drts_dcts import DrtsDcts

    rows = []
    for beamwidth in beamwidths_deg:
        params = PAPER_PARAMETERS.with_neighbors(n_neighbors).with_beamwidth(
            math.radians(beamwidth)
        )
        rows.append(
            Area3SpanRow(
                beamwidth_deg=beamwidth,
                paper_span=maximize_throughput(
                    DrtsDcts(params, area3_span_factor=1.0)
                ).throughput,
                upper_span=maximize_throughput(
                    DrtsDcts(params, area3_span_factor=2.0)
                ).throughput,
            )
        )
    return rows


def format_area3_span_table(rows: Sequence[Area3SpanRow]) -> str:
    """Aligned rendering of the Area-III span bracket."""
    lines = [
        "beamwidth  theta'=theta  theta'=2theta  bracket",
        "-----------------------------------------------",
    ]
    for row in rows:
        lines.append(
            f"{row.beamwidth_deg:7.0f}dg  {row.paper_span:12.4f}  "
            f"{row.upper_span:13.4f}  {row.bracket_width:+7.2%}"
        )
    return "\n".join(lines)


def format_fixed_p_table(rows: Sequence[FixedPRow]) -> str:
    """Aligned rendering of the fixed-p ablation."""
    if not rows:
        return "(no rows)"
    p_values = sorted(rows[0].fixed)
    header = "scheme      " + "  ".join(f"p={p:<6g}" for p in p_values) + "  optimised"
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = "  ".join(f"{row.fixed[p]:8.4f}" for p in p_values)
        lines.append(f"{row.scheme:10s}  {cells}  {row.optimised:9.4f}")
    return "\n".join(lines)


@dataclass(frozen=True)
class EngineCheckRow:
    """Scalar-oracle vs vectorized-batch slot engine on one cell.

    ``oracle_exact`` is the strongest check: the batch engine in its
    RNG-order-pinned oracle mode produced a *bit-identical* outcome
    ledger to the scalar engine.  The throughput columns compare the
    scalar run against the batch engine's own (numpy-stream) draws —
    independent randomness on the same configuration, so they agree
    statistically, not exactly.
    """

    scheme: str
    p: float
    oracle_exact: bool
    scalar_throughput: float
    batch_throughput: float
    scalar_success_ratio: float
    batch_success_ratio: float


def run_engine_ablation(
    n_neighbors: float = 3.0,
    beamwidth_deg: float = 60.0,
    p_values: Sequence[float] = (0.02, 0.05),
    schemes: Sequence[str] | None = None,
    slots: int = 1_500,
    seed: int = 2003,
    batch: int = 4,
) -> list[EngineCheckRow]:
    """Cross-check the two slot-model engines (simulation, not analytical).

    For every (scheme, p) cell: run the scalar engine, run the batch
    engine in oracle mode (must match bit-for-bit), and run a numpy-mode
    batch averaging ``batch`` replicates on the same geometry.
    """
    from ..slotsim import BatchSlotModelEngine, SlotModelConfig, SlotModelEngine

    params = PAPER_PARAMETERS.with_neighbors(n_neighbors).with_beamwidth(
        math.radians(beamwidth_deg)
    )
    names = tuple(schemes) if schemes is not None else tuple(SCHEME_FACTORIES)
    rows = []
    for name in names:
        for p in p_values:
            config = SlotModelConfig(params=params, scheme=name, p=p, seed=seed)
            scalar = SlotModelEngine(config).run(slots)
            oracle = BatchSlotModelEngine(config, rng_mode="oracle").run(slots)[0]
            exact = (
                oracle.initiations == scalar.initiations
                and oracle.successes == scalar.successes
                and oracle.failures == scalar.failures
                and oracle.payload_slots == scalar.payload_slots
                and dict(oracle.fail_durations) == dict(scalar.fail_durations)
            )
            replicates = BatchSlotModelEngine(config, batch=batch).run(slots)
            rows.append(
                EngineCheckRow(
                    scheme=name,
                    p=p,
                    oracle_exact=exact,
                    scalar_throughput=scalar.throughput_per_node,
                    batch_throughput=sum(
                        r.throughput_per_node for r in replicates
                    )
                    / len(replicates),
                    scalar_success_ratio=scalar.success_ratio,
                    batch_success_ratio=sum(
                        r.success_ratio for r in replicates
                    )
                    / len(replicates),
                )
            )
    return rows


def format_engine_check_table(rows: Sequence[EngineCheckRow]) -> str:
    """Aligned rendering of the engine cross-check."""
    header = (
        f"{'scheme':10}  {'p':>5}  {'oracle':>6}  "
        f"{'Th(scalar)':>10}  {'Th(batch)':>9}  "
        f"{'sr(scalar)':>10}  {'sr(batch)':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.scheme:10}  {row.p:5.3f}  "
            f"{'exact' if row.oracle_exact else 'MISMATCH':>6}  "
            f"{row.scalar_throughput:10.4f}  {row.batch_throughput:9.4f}  "
            f"{row.scalar_success_ratio:10.4f}  {row.batch_success_ratio:9.4f}"
        )
    return "\n".join(lines)


def format_tfail_table(rows: Sequence[TFailRow]) -> str:
    """Aligned rendering of the T_fail-bound ablation."""
    lines = [
        "beamwidth  paper-bound  early-bound  change",
        "-------------------------------------------",
    ]
    for row in rows:
        lines.append(
            f"{row.beamwidth_deg:7.0f}dg  {row.paper_bound:11.4f}  "
            f"{row.early_bound:11.4f}  {row.relative_change:+6.2%}"
        )
    return "\n".join(lines)
