"""SINR/capture study: the paper's grid under interference physics.

The paper's unit-disk model makes collisions binary; the
:mod:`repro.phy.reception` subsystem's SINR model makes them a power
contest.  This study asks what that does to the directional-MAC
comparison: the same ``(N, scheme, beamwidth)`` grid is swept once
under the unit-disk baseline and once per capture threshold under
:class:`~repro.phy.reception.SinrCaptureReception`, so the comparison
table shows where capture rescues collisions (and asymmetric shadowed
links hurt) as the beam narrows.

The campaign machinery is reused unchanged — cells are
:class:`~repro.experiments.campaign.CellSpec` work units with this
module's worker plugged in, so parallel/sharded execution, persistence
and resume all apply.  The unit-disk arm of the study emits plain
:class:`~repro.experiments.campaign.ReplicateMetrics` records: its
cell artifacts are byte-identical to a single-hop study's (the CI
equivalence smoke diffs them), while the SINR arms carry
``"kind": "sinr"`` records with the capture/drop counters.

Determinism contract: every replicate is a pure function of
``(config, n, replicate)`` — shadowing draws come from the replicate
seed's registry, so serial, parallel and resumed runs are
byte-identical.
"""

from __future__ import annotations

import dataclasses
import math
import pathlib
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, ClassVar, Sequence

from ..metrics.summary import ReplicateSummary, summarize
from ..net.network import NetworkSimulation, SimulationResult
from ..net.topology import Topology
from ..obs.metrics import MetricsRegistry
from ..obs.profile import PhaseProfiler
from ..phy.reception import PhyConfig
from .campaign import (
    CampaignProgress,
    CellResult,
    CellSpec,
    ReplicateMetrics,
    cell_telemetry,
    replicate_seed,
    replicate_topology,
    run_campaign,
)
from .config import SimStudyConfig, from_environment

__all__ = [
    "SinrStudyConfig",
    "SinrReplicateMetrics",
    "SinrArmCell",
    "run_sinr_cell_spec",
    "run_sinr_cell_spec_telemetry",
    "run_sinr_study",
    "sinr_from_environment",
    "summarize_sinr_arm",
    "format_sinr_table",
]


@dataclass(frozen=True)
class SinrStudyConfig(SimStudyConfig):
    """The paper's grid with a reception model on the config axis.

    Inherits the grid axes, replicate count, duration and seed from
    :class:`~repro.experiments.config.SimStudyConfig`; adds the
    :class:`~repro.phy.reception.PhyConfig` knobs as flat fields so
    every one of them lands in the campaign store's config fingerprint
    (stores refuse to mix reception models or knob values).
    """

    #: Reception model tag: ``"sinr"``, or ``"unitdisk"`` for the
    #: baseline arm (whose artifacts are byte-identical to the
    #: single-hop study's).
    phy_model: str = "sinr"
    tx_power_dbm: float = 20.0
    pathloss_exponent: float = 3.0
    reference_distance_m: float = 1.0
    reference_loss_db: float = 40.0
    shadowing_sigma_db: float = 6.0
    sensitivity_dbm: float = -94.0
    noise_dbm: float = -104.0
    capture_threshold_db: float = 10.0

    def __post_init__(self) -> None:
        super().__post_init__()
        # Fail at config time, not mid-campaign in a worker process:
        # PhyConfig validates the model tag, the reception model's own
        # constructor the knob ranges.  Cheap invariants repeated here.
        if not self.pathloss_exponent > 0:
            raise ValueError(
                f"pathloss exponent must be positive, got {self.pathloss_exponent!r}"
            )
        if not self.reference_distance_m > 0:
            raise ValueError(
                "reference distance must be positive, "
                f"got {self.reference_distance_m!r}"
            )
        if self.shadowing_sigma_db < 0:
            raise ValueError(
                f"shadowing sigma must be >= 0, got {self.shadowing_sigma_db!r}"
            )
        if self.sensitivity_dbm < self.noise_dbm:
            raise ValueError(
                f"sensitivity ({self.sensitivity_dbm} dBm) must not sit below "
                f"the noise floor ({self.noise_dbm} dBm)"
            )
        self.phy_config  # noqa: B018 - validates the model tag

    @property
    def phy_config(self) -> PhyConfig:
        """The per-run reception configuration these fields describe."""
        return PhyConfig(
            model=self.phy_model,
            tx_power_dbm=self.tx_power_dbm,
            pathloss_exponent=self.pathloss_exponent,
            reference_distance_m=self.reference_distance_m,
            reference_loss_db=self.reference_loss_db,
            shadowing_sigma_db=self.shadowing_sigma_db,
            sensitivity_dbm=self.sensitivity_dbm,
            noise_dbm=self.noise_dbm,
            capture_threshold_db=self.capture_threshold_db,
        )


@dataclass(frozen=True)
class SinrReplicateMetrics:
    """One SINR-model replicate: the single-hop metrics plus capture counters.

    Campaign cell artifacts carry these under ``"kind": "sinr"``.
    """

    kind: ClassVar[str] = "sinr"

    replicate: int
    seed: int
    duration_ns: int
    inner_throughput_bps: float
    inner_mean_delay_s: float
    inner_collision_ratio: float
    inner_fairness: float
    inner_packets_delivered: int
    #: Frames delivered despite overlapping interference, all nodes.
    frames_captured: int
    #: Receptions killed mid-air by a later interferer, all nodes.
    frames_sinr_dropped: int

    @classmethod
    def from_result(
        cls, replicate: int, seed: int, result: SimulationResult
    ) -> "SinrReplicateMetrics":
        return cls(
            replicate=replicate,
            seed=seed,
            duration_ns=result.duration_ns,
            inner_throughput_bps=result.inner_throughput_bps,
            inner_mean_delay_s=result.inner_mean_delay_s,
            inner_collision_ratio=result.inner_collision_ratio,
            inner_fairness=result.inner_fairness,
            inner_packets_delivered=result.inner_packets_delivered,
            frames_captured=result.frames_captured,
            frames_sinr_dropped=result.frames_sinr_dropped,
        )

    @classmethod
    def from_record(cls, record: dict) -> "SinrReplicateMetrics":
        """Rebuild from the ``dataclasses.asdict`` JSON form."""
        return cls(**record)


# ----------------------------------------------------------------------
# Worker functions — the campaign plugs, pure in (spec).
# ----------------------------------------------------------------------

# Per-process memo, as in campaign.py: topologies are scheme- and
# model-blind (same ring derivation as the single-hop study, so the
# unit-disk arm really is an A/B of physics on identical draws).
_TOPOLOGY_MEMO: dict[tuple[int, int, int], Topology] = {}


def run_sinr_cell_spec(
    spec: CellSpec,
    topology: Callable[[int, int], Topology] | None = None,
    metrics: MetricsRegistry | None = None,
    profiler: PhaseProfiler | None = None,
) -> CellResult:
    """Run all replicates of one grid cell under the configured model.

    Same purity contract as :func:`~repro.experiments.campaign.
    run_cell_spec`; ``spec.config`` must be a :class:`SinrStudyConfig`.
    Under ``phy_model="unitdisk"`` the replicates are plain
    :class:`~repro.experiments.campaign.ReplicateMetrics` — the cell
    artifact is byte-identical to the single-hop study's for the same
    grid cell and seed.
    """
    cfg = spec.config
    if not isinstance(cfg, SinrStudyConfig):
        raise TypeError(
            f"sinr cells need a SinrStudyConfig, got {type(cfg).__name__}"
        )
    phy_config = cfg.phy_config
    results: list[ReplicateMetrics | SinrReplicateMetrics] = []
    for replicate in range(cfg.topologies):
        with profiler.phase("topology gen") if profiler else nullcontext():
            if topology is not None:
                topo = topology(spec.n, replicate)
            else:
                memo_key = (cfg.base_seed, spec.n, replicate)
                if memo_key not in _TOPOLOGY_MEMO:
                    _TOPOLOGY_MEMO[memo_key] = replicate_topology(
                        cfg.base_seed, spec.n, replicate
                    )
                topo = _TOPOLOGY_MEMO[memo_key]
        seed = replicate_seed(cfg.base_seed, spec.n, replicate)
        with profiler.phase("build") if profiler else nullcontext():
            simulation = NetworkSimulation(
                topo,
                spec.scheme,
                math.radians(spec.beamwidth_deg),
                seed=seed,
                mac_params=cfg.mac_params,
                phy_params=cfg.phy_params,
                metrics=metrics,
                phy_config=phy_config,
            )
        result = simulation.run(cfg.sim_time_ns, profiler=profiler)
        if cfg.phy_model == "unitdisk":
            results.append(ReplicateMetrics.from_result(replicate, seed, result))
        else:
            results.append(SinrReplicateMetrics.from_result(replicate, seed, result))
    return CellResult(
        n=spec.n,
        scheme=spec.scheme,
        beamwidth_deg=spec.beamwidth_deg,
        results=tuple(results),
    )


def run_sinr_cell_spec_telemetry(
    spec: CellSpec,
    topology: Callable[[int, int], Topology] | None = None,
) -> tuple[CellResult, dict]:
    """Measuring variant: (cell result, ``repro-telemetry-v1`` record)."""
    metrics = MetricsRegistry()
    profiler = PhaseProfiler()
    cell = run_sinr_cell_spec(
        spec, topology=topology, metrics=metrics, profiler=profiler
    )
    return cell, cell_telemetry(spec, metrics, profiler)


# ----------------------------------------------------------------------
# The study driver and its presentation.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SinrArmCell:
    """Cross-replicate summary of one grid cell in one study arm."""

    #: Capture threshold of the arm in dB, or ``None`` for the
    #: unit-disk baseline.
    capture_db: float | None
    n: int
    scheme: str
    beamwidth_deg: float
    throughput_bps: ReplicateSummary
    #: Capture/drop totals across replicates (both 0 for the baseline).
    frames_captured: int
    frames_sinr_dropped: int


def summarize_sinr_arm(
    cells: Sequence[CellResult], capture_db: float | None
) -> list[SinrArmCell]:
    """Summarize one arm's raw campaign cells for presentation."""
    summary = []
    for cell in cells:
        captured = sum(
            getattr(r, "frames_captured", 0) for r in cell.results
        )
        dropped = sum(
            getattr(r, "frames_sinr_dropped", 0) for r in cell.results
        )
        summary.append(
            SinrArmCell(
                capture_db=capture_db,
                n=cell.n,
                scheme=cell.scheme,
                beamwidth_deg=cell.beamwidth_deg,
                throughput_bps=summarize(cell.metric("inner_throughput_bps")),
                frames_captured=captured,
                frames_sinr_dropped=dropped,
            )
        )
    return summary


def run_sinr_study(
    config: SinrStudyConfig | None = None,
    *,
    capture_db_values: Sequence[float] = (3.0, 10.0),
    workers: int | None = 1,
    directory: str | pathlib.Path | None = None,
    progress: CampaignProgress | None = None,
    telemetry: bool = True,
) -> list[SinrArmCell]:
    """Sweep capture threshold x the grid against the unit-disk baseline.

    Runs one campaign per arm — the unit-disk baseline plus one SINR
    campaign per entry of ``capture_db_values`` — each in its own
    subdirectory of ``directory`` (``unitdisk/``, ``capture-<v>db/``),
    so every arm resumes independently and no store ever mixes models.
    Returns the concatenated per-arm summaries, baseline first.
    """
    cfg = config if config is not None else sinr_from_environment()
    base = pathlib.Path(directory) if directory is not None else None
    arms: list[tuple[float | None, SinrStudyConfig]] = [
        (None, dataclasses.replace(cfg, phy_model="unitdisk"))
    ]
    for value in capture_db_values:
        arms.append(
            (value, dataclasses.replace(cfg, phy_model="sinr",
                                        capture_threshold_db=value))
        )
    summary: list[SinrArmCell] = []
    for capture_db, arm_cfg in arms:
        name = "unitdisk" if capture_db is None else f"capture-{capture_db:g}db"
        cells = run_campaign(
            arm_cfg,
            workers=workers,
            directory=None if base is None else base / name,
            progress=progress,
            telemetry=telemetry,
            worker=run_sinr_cell_spec,
            worker_telemetry=run_sinr_cell_spec_telemetry,
        )
        summary.extend(summarize_sinr_arm(cells, capture_db))
    return summary


def sinr_from_environment() -> SinrStudyConfig:
    """Environment-sized SINR config (same ``REPRO_*`` knobs)."""
    base = from_environment()
    return SinrStudyConfig(**dataclasses.asdict(base))


def format_sinr_table(cells: Sequence[SinrArmCell]) -> str:
    """Aligned text table: arms as columns, (N, scheme, beamwidth) rows.

    Per SINR arm the cell shows mean inner throughput plus the
    capture/mid-air-drop totals — the events the unit-disk model
    cannot express (its column shows throughput only).
    """
    arm_keys = sorted(
        {c.capture_db for c in cells},
        key=lambda v: (v is not None, v if v is not None else 0.0),
    )

    def arm_label(value: float | None) -> str:
        return "unit-disk" if value is None else f"sinr {value:g} dB"

    lines = []
    schemes = sorted({c.scheme for c in cells}, key=str)
    for n in sorted({c.n for c in cells}):
        lines.append(
            f"N = {n}  (inner throughput Mbps; sinr arms: +captured/-dropped)"
        )
        header = "  scheme      beamwidth  " + "  ".join(
            f"{arm_label(a):>24}" for a in arm_keys
        )
        lines.append(header)
        for scheme in schemes:
            beamwidths = sorted(
                {
                    c.beamwidth_deg
                    for c in cells
                    if c.n == n and c.scheme == scheme
                }
            )
            for beamwidth in beamwidths:
                row = [f"  {scheme:<10}  {beamwidth:6.0f}dg "]
                for arm in arm_keys:
                    match = [
                        c
                        for c in cells
                        if c.n == n
                        and c.scheme == scheme
                        and c.beamwidth_deg == beamwidth
                        and c.capture_db == arm
                    ]
                    if not match:
                        row.append(" " * 24)
                        continue
                    cell = match[0]
                    text = f"{cell.throughput_bps.mean / 1e6:6.3f}"
                    if arm is not None:
                        text += (
                            f" +{cell.frames_captured}"
                            f"/-{cell.frames_sinr_dropped}"
                        )
                    row.append(f"{text:>24}")
                lines.append("  ".join(row))
        lines.append("")
    return "\n".join(lines)
