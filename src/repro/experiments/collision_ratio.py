"""Section 4's collision-ratio statistic.

The paper collected "the number of transmitted RTS packets that lead to
ACK timeouts due to collisions of data packets as well as the total
number of transmitted RTS packets that can lead to either an incomplete
RTS-CTS-data handshake or a successful four-way handshake", reporting
their ratio as a measure of the *imperfectness of collision avoidance*.
The figure was omitted from the paper for space; the finding was:
DRTS-DCTS and DRTS-OCTS have higher collision occurrences than
ORTS-OCTS, and the ratio stays rather high when ``N`` is large.

This module regenerates that statistic on the Fig. 6 grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..metrics.summary import ReplicateSummary, summarize
from .campaign import CampaignProgress, run_campaign
from .config import SimStudyConfig, from_environment

__all__ = ["CollisionCell", "run_collision_ratio", "format_collision_table"]


@dataclass(frozen=True)
class CollisionCell:
    """Collision-ratio summary for one (N, scheme, beamwidth) cell."""

    n: int
    scheme: str
    beamwidth_deg: float
    collision_ratio: ReplicateSummary


def run_collision_ratio(
    config: SimStudyConfig | None = None,
    *,
    workers: int | None = 1,
    directory=None,
    progress: CampaignProgress | None = None,
) -> list[CollisionCell]:
    """Run the grid and summarize the inner-node collision ratio."""
    cfg = config if config is not None else from_environment()
    cells = []
    for cell in run_campaign(
        cfg, workers=workers, directory=directory, progress=progress
    ):
        cells.append(
            CollisionCell(
                n=cell.n,
                scheme=cell.scheme,
                beamwidth_deg=cell.beamwidth_deg,
                collision_ratio=summarize(cell.metric("inner_collision_ratio")),
            )
        )
    return cells


def format_collision_table(cells: Sequence[CollisionCell]) -> str:
    """Aligned text table grouped by N."""
    lines = []
    schemes = sorted({c.scheme for c in cells}, key=str)
    for n in sorted({c.n for c in cells}):
        lines.append(f"N = {n}  (ACK-timeout fraction of data-stage handshakes)")
        lines.append("  beamwidth  " + "  ".join(f"{s:>12}" for s in schemes))
        for beamwidth in sorted({c.beamwidth_deg for c in cells if c.n == n}):
            row = [f"  {beamwidth:7.0f}dg "]
            for scheme in schemes:
                match = [
                    c
                    for c in cells
                    if c.n == n
                    and c.scheme == scheme
                    and c.beamwidth_deg == beamwidth
                ]
                row.append(
                    f"{match[0].collision_ratio.mean:12.3f}" if match else " " * 12
                )
            lines.append("  ".join(row))
        lines.append("")
    return "\n".join(lines)
