"""Multi-hop end-to-end study: throughput/delay vs beamwidth, relayed.

The paper measures single-hop saturation throughput; this driver asks
the follow-on question with the same grid shape: when traffic must be
*relayed* across the ring topology (via :mod:`repro.route`), how do the
directional schemes compare end to end?  Each grid cell runs the
``(N, scheme, beamwidth)`` configuration with one far-destination flow
per node and reports per-flow goodput, origination-to-delivery delay,
and hop counts.

The campaign machinery is shared with the single-hop study: cells are
:class:`~repro.experiments.campaign.CellSpec` work units (so the PR-2
runner's parallelism, persistence, and resume apply unchanged), with
this module's worker functions and topology derivation plugged in.

Determinism contract: every replicate is a pure function of
``(config, n, replicate)`` — serial and parallel campaigns, and
telemetry on or off, produce identical artifacts.
"""

from __future__ import annotations

import dataclasses
import math
import pathlib
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, ClassVar, Sequence

from ..dessim.rng import RngRegistry
from ..dessim.units import milliseconds
from ..mac.policy import POLICIES
from ..metrics.flows import FlowRecord
from ..metrics.summary import ReplicateSummary, summarize
from ..net.multihop import (
    ROUTERS,
    MultihopNetworkSimulation,
    MultihopSimulationResult,
)
from ..net.topology import Topology, TopologyConfig, generate_connected_ring_topology
from ..obs.metrics import MetricsRegistry
from ..obs.profile import PhaseProfiler
from .campaign import (
    CampaignProgress,
    CellResult,
    CellSpec,
    cell_telemetry,
    replicate_seed,
    run_campaign,
)
from .config import SimStudyConfig, from_environment

__all__ = [
    "MultihopStudyConfig",
    "MultihopReplicateMetrics",
    "MultihopCell",
    "normalize_scheme",
    "multihop_replicate_topology",
    "run_multihop_cell_spec",
    "run_multihop_cell_spec_telemetry",
    "run_multihop",
    "multihop_from_environment",
    "summarize_multihop",
    "format_multihop_table",
]


def normalize_scheme(name: str) -> str:
    """Canonicalize a scheme name (``"drts_octs"`` → ``"DRTS-OCTS"``).

    CLI surfaces accept lowercase/underscore spellings; everything
    internal uses the paper's hyphenated uppercase names (the
    :data:`~repro.mac.policy.POLICIES` keys).
    """
    canonical = name.strip().upper().replace("_", "-")
    if canonical not in POLICIES:
        raise ValueError(
            f"unknown scheme {name!r}; expected one of {sorted(POLICIES)} "
            "(case/underscore-insensitive)"
        )
    return canonical


@dataclass(frozen=True)
class MultihopStudyConfig(SimStudyConfig):
    """The multi-hop sweep: the single-hop grid plus routing knobs.

    Inherits the grid axes (``n_values`` × ``schemes`` ×
    ``beamwidths_deg``), replicate count, duration, and seed from
    :class:`~repro.experiments.config.SimStudyConfig`, so the campaign
    store's config fingerprint covers every field of both layers.
    """

    #: Next-hop strategy: see :data:`repro.net.multihop.ROUTERS`.
    router: str = "greedy"
    #: Per-flow packet inter-arrival (Table-1 1460 B payloads).
    flow_interval_ns: int = milliseconds(40)
    #: Flow destinations are >= this many hops from the origin.
    min_flow_hops: int = 2
    #: Per-node relay-queue bound.
    relay_queue: int = 50
    #: Per-packet hop budget.
    ttl: int = 32
    #: Ring count of the generated topologies.
    rings: int = 3

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.router not in ROUTERS:
            raise ValueError(
                f"unknown router {self.router!r}; expected one of {ROUTERS}"
            )
        if self.flow_interval_ns <= 0:
            raise ValueError(
                f"flow_interval_ns must be positive, got {self.flow_interval_ns}"
            )
        if self.min_flow_hops < 1:
            raise ValueError(
                f"min_flow_hops must be >= 1, got {self.min_flow_hops}"
            )
        if self.relay_queue < 1:
            raise ValueError(f"relay_queue must be >= 1, got {self.relay_queue}")
        if self.ttl < 1:
            raise ValueError(f"ttl must be >= 1, got {self.ttl}")
        if self.rings < 2:
            raise ValueError(
                f"multi-hop study needs rings >= 2, got {self.rings}"
            )


@dataclass(frozen=True)
class MultihopReplicateMetrics:
    """End-to-end summary of one multi-hop replicate (JSON-exact).

    The multi-hop analogue of
    :class:`~repro.experiments.campaign.ReplicateMetrics`; campaign
    cell artifacts carry these under ``"kind": "multihop"``.
    """

    kind: ClassVar[str] = "multihop"

    replicate: int
    seed: int
    duration_ns: int
    goodput_bps: float
    mean_delay_s: float
    mean_hop_count: float
    delivery_ratio: float
    packets_originated: int
    packets_delivered: int
    forwarded: int
    dropped_queue_full: int
    dropped_dead_end: int
    dropped_ttl: int
    dropped_mac: int
    flows: tuple[FlowRecord, ...]

    @classmethod
    def from_result(
        cls, replicate: int, seed: int, result: MultihopSimulationResult
    ) -> "MultihopReplicateMetrics":
        totals = result.route_totals()
        return cls(
            replicate=replicate,
            seed=seed,
            duration_ns=result.duration_ns,
            goodput_bps=result.total_goodput_bps,
            mean_delay_s=result.mean_delay_s,
            mean_hop_count=result.mean_hop_count,
            delivery_ratio=result.delivery_ratio,
            packets_originated=result.packets_originated,
            packets_delivered=result.packets_delivered_e2e,
            forwarded=totals.forwarded,
            dropped_queue_full=totals.dropped_queue_full,
            dropped_dead_end=totals.dropped_dead_end,
            dropped_ttl=totals.dropped_ttl,
            dropped_mac=totals.dropped_mac,
            flows=result.flows,
        )

    @classmethod
    def from_record(cls, record: dict) -> "MultihopReplicateMetrics":
        """Rebuild from the ``dataclasses.asdict`` JSON form."""
        data = dict(record)
        data["flows"] = tuple(FlowRecord(**flow) for flow in data["flows"])
        return cls(**data)


# ----------------------------------------------------------------------
# Worker functions — the campaign plugs, pure in (spec).
# ----------------------------------------------------------------------


def multihop_replicate_topology(
    base_seed: int, n: int, replicate: int, rings: int = 3
) -> Topology:
    """The *connected-preferred* topology for ``(base_seed, N, replicate)``.

    Same registry-named stream derivation as
    :func:`~repro.experiments.campaign.replicate_topology` — per-
    ``(N, replicate)``, scheme-blind, so common random numbers across
    schemes hold for the multi-hop study too — but routed through
    :func:`~repro.net.topology.generate_connected_ring_topology`, which
    resamples toward a single component and warns (rather than fails)
    when the geometry won't give one.
    """
    registry = RngRegistry(base_seed).spawn(f"topology-n{n}-r{replicate}")
    return generate_connected_ring_topology(
        TopologyConfig(n=n, rings=rings), registry.stream("placement")
    )


# Per-process memo, as in campaign.py: pool workers run many cells of
# the same campaign, and topologies are scheme-blind by design.
_TOPOLOGY_MEMO: dict[tuple[int, int, int, int], Topology] = {}


def run_multihop_cell_spec(
    spec: CellSpec,
    topology: Callable[[int, int], Topology] | None = None,
    metrics: MetricsRegistry | None = None,
    profiler: PhaseProfiler | None = None,
) -> CellResult:
    """Run all replicates of one multi-hop grid cell.

    The multi-hop counterpart of
    :func:`~repro.experiments.campaign.run_cell_spec`, with the same
    purity contract: a pure function of ``spec`` regardless of process
    or order, with ``metrics``/``profiler`` strictly observational.
    ``spec.config`` must be a :class:`MultihopStudyConfig`.
    """
    cfg = spec.config
    if not isinstance(cfg, MultihopStudyConfig):
        raise TypeError(
            f"multi-hop cells need a MultihopStudyConfig, got {type(cfg).__name__}"
        )
    results = []
    for replicate in range(cfg.topologies):
        with profiler.phase("topology gen") if profiler else nullcontext():
            if topology is not None:
                topo = topology(spec.n, replicate)
            else:
                memo_key = (cfg.base_seed, spec.n, replicate, cfg.rings)
                if memo_key not in _TOPOLOGY_MEMO:
                    _TOPOLOGY_MEMO[memo_key] = multihop_replicate_topology(
                        cfg.base_seed, spec.n, replicate, rings=cfg.rings
                    )
                topo = _TOPOLOGY_MEMO[memo_key]
        seed = replicate_seed(cfg.base_seed, spec.n, replicate)
        with profiler.phase("build") if profiler else nullcontext():
            simulation = MultihopNetworkSimulation(
                topo,
                spec.scheme,
                math.radians(spec.beamwidth_deg),
                seed=seed,
                router=cfg.router,
                mac_params=cfg.mac_params,
                phy_params=cfg.phy_params,
                flow_interval_ns=cfg.flow_interval_ns,
                min_flow_hops=cfg.min_flow_hops,
                relay_queue=cfg.relay_queue,
                ttl=cfg.ttl,
                metrics=metrics,
            )
        result = simulation.run(cfg.sim_time_ns, profiler=profiler)
        results.append(MultihopReplicateMetrics.from_result(replicate, seed, result))
    return CellResult(
        n=spec.n,
        scheme=spec.scheme,
        beamwidth_deg=spec.beamwidth_deg,
        results=tuple(results),
    )


def run_multihop_cell_spec_telemetry(
    spec: CellSpec,
    topology: Callable[[int, int], Topology] | None = None,
) -> tuple[CellResult, dict]:
    """Measuring variant: (cell result, ``repro-telemetry-v1`` record)."""
    metrics = MetricsRegistry()
    profiler = PhaseProfiler()
    cell = run_multihop_cell_spec(
        spec, topology=topology, metrics=metrics, profiler=profiler
    )
    return cell, cell_telemetry(spec, metrics, profiler)


# ----------------------------------------------------------------------
# The study driver and its presentation.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MultihopCell:
    """Cross-replicate summary for one (N, scheme, beamwidth) cell."""

    n: int
    scheme: str
    beamwidth_deg: float
    goodput_bps: ReplicateSummary
    mean_delay_s: ReplicateSummary
    mean_hop_count: float
    delivery_ratio: float


def summarize_multihop(cells: Sequence[CellResult]) -> list[MultihopCell]:
    """Summarize raw multi-hop campaign cells for presentation."""
    summary = []
    for cell in cells:
        hops = cell.metric("mean_hop_count")
        ratios = cell.metric("delivery_ratio")
        summary.append(
            MultihopCell(
                n=cell.n,
                scheme=cell.scheme,
                beamwidth_deg=cell.beamwidth_deg,
                goodput_bps=summarize(cell.metric("goodput_bps")),
                mean_delay_s=summarize(cell.metric("mean_delay_s")),
                mean_hop_count=sum(hops) / len(hops),
                delivery_ratio=sum(ratios) / len(ratios),
            )
        )
    return summary


def run_multihop(
    config: MultihopStudyConfig | None = None,
    *,
    workers: int | None = 1,
    directory: str | pathlib.Path | None = None,
    progress: CampaignProgress | None = None,
    telemetry: bool = True,
) -> list[MultihopCell]:
    """Run the multi-hop grid as a (resumable, parallelizable) campaign.

    Same execution semantics as the single-hop campaign — with a
    ``directory`` the run persists/resumes per-cell artifacts
    (``"kind": "multihop"``) plus telemetry; serial and parallel runs
    are byte-identical.
    """
    cfg = config if config is not None else multihop_from_environment()

    def topology_fn(base_seed: int, n: int, replicate: int) -> Topology:
        return multihop_replicate_topology(base_seed, n, replicate, rings=cfg.rings)

    cells = run_campaign(
        cfg,
        workers=workers,
        directory=directory,
        progress=progress,
        telemetry=telemetry,
        worker=run_multihop_cell_spec,
        worker_telemetry=run_multihop_cell_spec_telemetry,
        topology_fn=topology_fn,
    )
    return summarize_multihop(cells)


def multihop_from_environment() -> MultihopStudyConfig:
    """Environment-sized multi-hop config (same ``REPRO_*`` knobs)."""
    base = from_environment()
    return MultihopStudyConfig(**dataclasses.asdict(base))


def format_multihop_table(cells: Sequence[MultihopCell]) -> str:
    """Aligned text table grouped by N, one row per beamwidth."""
    lines = []
    schemes = sorted({c.scheme for c in cells}, key=str)
    for n in sorted({c.n for c in cells}):
        lines.append(
            f"N = {n}  (end-to-end goodput Mbps / mean delay ms, all flows)"
        )
        header = "  beamwidth  " + "  ".join(f"{s:>22}" for s in schemes)
        lines.append(header)
        for beamwidth in sorted({c.beamwidth_deg for c in cells if c.n == n}):
            row = [f"  {beamwidth:7.0f}dg "]
            for scheme in schemes:
                match = [
                    c
                    for c in cells
                    if c.n == n
                    and c.scheme == scheme
                    and c.beamwidth_deg == beamwidth
                ]
                if match:
                    cell = match[0]
                    row.append(
                        f"{cell.goodput_bps.mean / 1e6:7.3f} / "
                        f"{cell.mean_delay_s.mean * 1e3:8.2f}ms"
                    )
                else:
                    row.append(" " * 22)
            lines.append("  ".join(row))
        lines.append("")
    return "\n".join(lines)
