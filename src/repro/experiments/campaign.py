"""The campaign layer: parallel, resumable execution of study grids.

A *campaign* is the full ``(N, scheme, beamwidth)`` grid of a
:class:`~repro.experiments.config.SimStudyConfig`, decomposed into
self-contained :class:`CellSpec` work units.  Cells are embarrassingly
parallel — the paper's Section-4 study ran 50 topologies per cell on a
cluster — so the :class:`CampaignRunner` fans them out, persists one
JSON artifact per completed cell (so interrupted campaigns resume by
skipping finished cells), and reports progress with a crude ETA.

Execution itself lives in :mod:`repro.experiments.dispatch`: with more
than one worker the runner is a single-host facade that launches shard
processes against the shared store's crash-tolerant work queue, and the
same store can simultaneously be worked by ``repro campaign-worker``
shards on other hosts.  This module keeps the substrate those layers
stand on: seed/topology derivation, the pure cell workers, the atomic
:class:`CampaignStore`, and progress reporting.

Seed discipline
===============

Every replicate's master seed is derived through
:class:`~repro.dessim.rng.RngRegistry`'s SHA-256 naming scheme rather
than by arithmetic on the base seed.  The old ``base_seed + replicate``
rule made adjacent base seeds alias (base 42 / replicate 1 drove the
very same draws as base 43 / replicate 0); the named derivation in
:func:`replicate_seed` keeps base seeds statistically disjoint.  The
stream name deliberately spans ``(N, replicate)`` but *not* the scheme
or beamwidth: every scheme in a cell-row sees identical topologies and
identical MAC/traffic draws, so common random numbers across schemes —
the paper's A/B methodology — stay a design decision, not an accident
of seed arithmetic.

Determinism contract: serial and parallel execution of the same config
produce identical per-cell results, because every replicate is a pure
function of ``(config, n, replicate)``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
import pathlib
import sys
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, ClassVar

from ..dessim.rng import RngRegistry
from ..net.network import NetworkSimulation, SimulationResult
from ..net.topology import Topology, TopologyConfig, generate_ring_topology
from ..obs.metrics import MetricsRegistry
from ..obs.profile import PhaseProfiler, wall_clock
from ..obs.telemetry import (
    append_telemetry,
    read_telemetry,
    summarize_cells,
    telemetry_record,
)
from .config import SimStudyConfig, workers_from_environment

__all__ = [
    "ReplicateMetrics",
    "CellResult",
    "CellSpec",
    "replicate_seed",
    "replicate_topology",
    "run_cell_spec",
    "run_cell_spec_telemetry",
    "cell_telemetry",
    "config_fingerprint",
    "study_tag",
    "CampaignStore",
    "CampaignProgress",
    "CampaignRunner",
    "run_campaign",
]


# ----------------------------------------------------------------------
# Seed and topology derivation — pure functions of (config, n, replicate).
# ----------------------------------------------------------------------


def replicate_seed(base_seed: int, n: int, replicate: int) -> int:
    """Registry-derived master seed for one simulation replicate.

    Derived via the SHA-256 ``(master_seed, name)`` scheme so distinct
    base seeds yield disjoint replicate streams.  The name spans ``(N,
    replicate)`` but not the scheme/beamwidth — common random numbers
    across schemes on the same topology are deliberate (the paper
    compares schemes on identical draws).
    """
    return RngRegistry(base_seed).spawn(f"sim-n{n}-r{replicate}").master_seed


def replicate_topology(
    base_seed: int, n: int, replicate: int, rings: int = 3
) -> Topology:
    """The ring topology for ``(base_seed, N, replicate)``.

    Same derivation the serial runner has always used — a named child
    registry per ``(N, replicate)`` — exposed as a pure function so
    worker processes can regenerate topologies without shared state.
    ``rings`` widens the layout beyond the paper's 3 (e.g. the
    200-node ``n=8, rings=5`` profile/bench configuration) without
    disturbing the rings=3 stream derivation.
    """
    registry = RngRegistry(base_seed).spawn(f"topology-n{n}-r{replicate}")
    return generate_ring_topology(
        TopologyConfig(n=n, rings=rings), registry.stream("placement")
    )


# ----------------------------------------------------------------------
# Data model: what a worker returns and what the store persists.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ReplicateMetrics:
    """Summary metrics of one replicate, exact under JSON round-trips.

    This is the unit the campaign layer ships between processes and to
    disk: the :class:`~repro.net.network.SimulationResult` scalar
    properties plus provenance (replicate index and derived seed), with
    the per-node event counters left behind in the worker.
    """

    #: Artifact dispatch tag: ``repro-cell-v1`` payloads carry it as
    #: their ``"kind"`` key so :mod:`repro.experiments.io` knows which
    #: replicate class to rebuild (multi-hop cells use ``"multihop"``).
    kind: ClassVar[str] = "sim"

    replicate: int
    seed: int
    duration_ns: int
    inner_throughput_bps: float
    inner_mean_delay_s: float
    inner_collision_ratio: float
    inner_fairness: float
    inner_packets_delivered: int

    @classmethod
    def from_result(
        cls, replicate: int, seed: int, result: SimulationResult
    ) -> "ReplicateMetrics":
        return cls(
            replicate=replicate,
            seed=seed,
            duration_ns=result.duration_ns,
            inner_throughput_bps=result.inner_throughput_bps,
            inner_mean_delay_s=result.inner_mean_delay_s,
            inner_collision_ratio=result.inner_collision_ratio,
            inner_fairness=result.inner_fairness,
            inner_packets_delivered=result.inner_packets_delivered,
        )


@dataclass(frozen=True)
class CellResult:
    """All replicate results for one (N, scheme, beamwidth) grid cell."""

    n: int
    scheme: str
    beamwidth_deg: float
    results: tuple[ReplicateMetrics, ...]

    def metric(self, name: str) -> list[float]:
        """Extract one metric across replicates by property name."""
        return [getattr(result, name) for result in self.results]


@dataclass(frozen=True)
class CellSpec:
    """A self-contained work unit: one grid cell plus its config.

    Picklable by construction so it can be shipped to worker processes;
    everything a worker needs (seeds, durations, MAC/PHY parameters) is
    derivable from these four fields.
    """

    n: int
    scheme: str
    beamwidth_deg: float
    config: SimStudyConfig

    @property
    def key(self) -> str:
        """Stable identifier used for artifact filenames."""
        return f"n{self.n}-{self.scheme}-bw{self.beamwidth_deg:g}"


# Per-process memo for worker-side topology generation: pool workers
# run many cells of the same campaign, so replicates regenerate only
# once per (base_seed, n, replicate) per process.  Safe because
# replicate_topology is pure.
_TOPOLOGY_MEMO: dict[tuple[int, int, int], Topology] = {}


def run_cell_spec(
    spec: CellSpec,
    topology: Callable[[int, int], Topology] | None = None,
    metrics: MetricsRegistry | None = None,
    profiler: PhaseProfiler | None = None,
) -> CellResult:
    """Run all replicates of one grid cell.

    Args:
        spec: the cell to run.
        topology: optional ``(n, replicate) -> Topology`` provider (the
            serial runner passes its cross-scheme cache); defaults to a
            per-process memo over :func:`replicate_topology`.
        metrics: optional telemetry registry threaded through to every
            replicate's :class:`NetworkSimulation`.
        profiler: optional phase profiler; accumulates "topology gen",
            "build", "event loop", and "metrics reduction" host time
            across replicates.

    This is the campaign's worker function: a pure function of ``spec``
    regardless of which process runs it or in what order, which is what
    makes serial and parallel campaigns byte-identical.  ``metrics``
    and ``profiler`` are strictly observational: passing them cannot
    change the returned :class:`CellResult` (the determinism guard in
    ``tests/obs`` asserts this).
    """
    cfg = spec.config
    results = []
    for replicate in range(cfg.topologies):
        with profiler.phase("topology gen") if profiler else nullcontext():
            if topology is not None:
                topo = topology(spec.n, replicate)
            else:
                memo_key = (cfg.base_seed, spec.n, replicate)
                if memo_key not in _TOPOLOGY_MEMO:
                    _TOPOLOGY_MEMO[memo_key] = replicate_topology(
                        cfg.base_seed, spec.n, replicate
                    )
                topo = _TOPOLOGY_MEMO[memo_key]
        seed = replicate_seed(cfg.base_seed, spec.n, replicate)
        with profiler.phase("build") if profiler else nullcontext():
            simulation = NetworkSimulation(
                topo,
                spec.scheme,
                math.radians(spec.beamwidth_deg),
                seed=seed,
                mac_params=cfg.mac_params,
                phy_params=cfg.phy_params,
                metrics=metrics,
            )
        result = simulation.run(cfg.sim_time_ns, profiler=profiler)
        results.append(ReplicateMetrics.from_result(replicate, seed, result))
    return CellResult(
        n=spec.n,
        scheme=spec.scheme,
        beamwidth_deg=spec.beamwidth_deg,
        results=tuple(results),
    )


def cell_telemetry(
    spec: CellSpec, metrics: MetricsRegistry, profiler: PhaseProfiler
) -> dict:
    """The ``repro-telemetry-v1`` record for one computed cell."""
    snapshot = metrics.snapshot()
    events = snapshot["counters"].get("dessim.events", 0)
    wall_seconds = profiler.total_seconds
    return telemetry_record(
        "cell",
        key=spec.key,
        n=spec.n,
        scheme=spec.scheme,
        beamwidth_deg=spec.beamwidth_deg,
        replicates=spec.config.topologies,
        sim_ns=spec.config.sim_time_ns,
        wall_seconds=wall_seconds,
        events_processed=events,
        events_per_sec=events / wall_seconds if wall_seconds > 0 else 0.0,
        phases=profiler.as_dict(),
        **snapshot,
    )


def run_cell_spec_telemetry(
    spec: CellSpec,
    topology: Callable[[int, int], Topology] | None = None,
) -> tuple[CellResult, dict]:
    """Worker variant that also measures: (cell result, telemetry record).

    Same purity contract as :func:`run_cell_spec` for the *result*; the
    telemetry record carries host-dependent timings and is excluded
    from resume/equality semantics.
    """
    metrics = MetricsRegistry()
    profiler = PhaseProfiler()
    cell = run_cell_spec(spec, topology=topology, metrics=metrics, profiler=profiler)
    return cell, cell_telemetry(spec, metrics, profiler)


# ----------------------------------------------------------------------
# The on-disk result store.
# ----------------------------------------------------------------------


def config_fingerprint(config: SimStudyConfig) -> str:
    """Stable hash of a study config, for campaign-directory validation."""
    record = dataclasses.asdict(config)
    blob = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def study_tag(config: SimStudyConfig) -> str:
    """The manifest ``study`` tag for a config instance.

    Delegates to the dispatch registry's tag table (deferred import —
    the dispatch package sits above this module), so a study family is
    registered in exactly one place and a tag this store writes is
    always one :func:`~repro.experiments.dispatch.registry.
    resolve_study` can join.
    """
    from .dispatch.registry import study_tag as registry_study_tag

    return registry_study_tag(config)


class CampaignStore:
    """One JSON artifact per completed cell under a campaign directory.

    Layout::

        <directory>/campaign.json            # manifest: format + config fingerprint
        <directory>/cell-<key>.json          # one per completed cell
        <directory>/telemetry.jsonl          # repro-telemetry-v1, one line per computed cell

    The manifest pins the config fingerprint so a directory can only be
    resumed with the exact configuration that started it; cell writes
    are atomic (temp file + rename), so a killed campaign never leaves
    a truncated artifact behind.  Telemetry is observational sidecar
    data: it never enters the fingerprint, and
    :meth:`merge_telemetry_summary` folds its totals back into the
    manifest when a campaign finishes.
    """

    MANIFEST = "campaign.json"
    MANIFEST_FORMAT = "repro-campaign-v1"
    TELEMETRY = "telemetry.jsonl"

    def __init__(self, directory: str | pathlib.Path, config: SimStudyConfig) -> None:
        self.directory = pathlib.Path(directory)
        self.config = config
        self.fingerprint = config_fingerprint(config)
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest_path = self.directory / self.MANIFEST
        if manifest_path.exists():
            manifest = json.loads(manifest_path.read_text())
            if manifest.get("format") != self.MANIFEST_FORMAT:
                raise ValueError(
                    f"{manifest_path}: not a campaign manifest "
                    f"(format={manifest.get('format')!r})"
                )
            if manifest.get("fingerprint") != self.fingerprint:
                raise ValueError(
                    f"{self.directory}: campaign was started with a different "
                    "SimStudyConfig; refusing to mix results (use a fresh "
                    "directory or the original configuration)"
                )
        else:
            payload = {
                "format": self.MANIFEST_FORMAT,
                "study": study_tag(config),
                "fingerprint": self.fingerprint,
                "config": dataclasses.asdict(config),
            }
            _atomic_write_text(manifest_path, json.dumps(payload, indent=2))

    def path_for_key(self, key: str) -> pathlib.Path:
        return self.directory / f"cell-{key}.json"

    def path_for(self, spec: CellSpec) -> pathlib.Path:
        return self.path_for_key(spec.key)

    def has(self, key: str) -> bool:
        """Whether the cell with this key already has an artifact."""
        return self.path_for_key(key).exists()

    def load(self, spec: CellSpec) -> CellResult | None:
        """The stored result for ``spec``, or ``None`` if not completed."""
        from .io import load_cell_json  # deferred: io imports this module

        path = self.path_for(spec)
        if not path.exists():
            return None
        return load_cell_json(path)

    def save(self, spec: CellSpec, cell: CellResult) -> None:
        from .io import cell_to_payload  # deferred: io imports this module

        _atomic_write_text(
            self.path_for(spec), json.dumps(cell_to_payload(cell), indent=2)
        )

    def save_if_absent(self, spec: CellSpec, cell: CellResult) -> bool:
        """Persist ``cell`` unless an artifact already exists.

        First-writer-wins completion for competing shards: the loser of
        a double computation leaves the winner's artifact (and its
        mtime, which the resume tests pin) untouched.  Safe because
        cells are pure — both writers hold byte-identical payloads, so
        even the unlocked check-then-write race cannot corrupt the
        store.  Returns whether this call wrote the artifact.
        """
        if self.has(spec.key):
            return False
        self.save(spec, cell)
        return True

    def completed_keys(self) -> set[str]:
        """Keys of every cell with a stored artifact."""
        return {
            path.stem.removeprefix("cell-")
            for path in sorted(self.directory.glob("cell-*.json"))
        }

    # -- telemetry sidecar --------------------------------------------

    @property
    def telemetry_path(self) -> pathlib.Path:
        return self.directory / self.TELEMETRY

    def record_telemetry(self, record: dict) -> None:
        """Append one cell's telemetry line (parent process only)."""
        append_telemetry(self.telemetry_path, record)

    def load_telemetry(self) -> list[dict]:
        """Every telemetry record written so far (empty if none)."""
        if not self.telemetry_path.exists():
            return []
        return read_telemetry(self.telemetry_path)

    def merge_telemetry_summary(self) -> dict | None:
        """Fold telemetry totals into the manifest; returns the summary.

        Re-run safe: the summary is recomputed from the whole JSONL
        file, so a resumed campaign's manifest reflects every cell ever
        computed in the directory.  Returns ``None`` (and leaves the
        manifest untouched) when no telemetry exists.

        This is a read-modify-write of the manifest, so it belongs to
        whoever *finishes* a campaign — the single-host facade merges
        once after all its shards exit, and a CLI worker merges after
        its grid-complete run loop returns.  Shards never merge
        mid-sweep.  Concurrent finishers (several CLI workers ending
        near-simultaneously) stay safe — each write is atomic and last
        writer wins — but the loser's late telemetry lines may be
        missing from the embedded summary until the next merge (any
        resume, or calling this again) recomputes it from the file.
        """
        records = self.load_telemetry()
        if not records:
            return None
        summary = summarize_cells(records)
        manifest_path = self.directory / self.MANIFEST
        manifest = json.loads(manifest_path.read_text())
        manifest["telemetry"] = summary
        _atomic_write_text(manifest_path, json.dumps(manifest, indent=2))
        return summary


def _atomic_write_text(path: pathlib.Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically via a writer-unique temp file.

    The temp name embeds the pid so concurrent writers — shards
    double-completing a cell, or several finishers folding the manifest
    summary — never share a temp file: each ``os.replace`` installs its
    own fully written bytes, and the target is always some writer's
    complete payload (last writer wins).  A shared temp name would let
    one writer rename the file out from under another mid-write,
    installing a truncated artifact or crashing on the lost rename.
    """
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


# ----------------------------------------------------------------------
# Progress reporting.
# ----------------------------------------------------------------------


class CampaignProgress:
    """Per-cell completion lines with elapsed wall time and a crude ETA.

    Lease-aware: sharded campaigns may report the same cell more than
    once (a lease expired, the retry and the original both finished)
    and may report retries that are pure re-queued work.  The rate
    estimate divides elapsed time by *unique* completed cells — a
    duplicate completion neither advances the count nor skews the ETA,
    and :meth:`cell_retried` lines are informational only.

    The clock is injectable for tests; the default is the sanctioned
    host clock from :mod:`repro.obs.profile`, which is operator-facing
    reporting only — simulated time never flows through this class.
    """

    def __init__(
        self,
        *,
        clock: Callable[[], float] | None = None,
        echo: Callable[[str], None] | None = None,
    ) -> None:
        self._clock = wall_clock if clock is None else clock
        self._echo = _echo_stderr if echo is None else echo
        self._total = 0
        self._done = 0
        self._computed_keys: set[str] = set()
        self._start = 0.0

    def start(self, total: int) -> None:
        self._total = total
        self._done = 0
        self._computed_keys = set()
        self._start = self._clock()
        self._echo(f"campaign: {total} cells")

    def cell_done(self, spec: CellSpec, *, skipped: bool) -> None:
        label = f"n={spec.n} {spec.scheme} {spec.beamwidth_deg:g}dg"
        if skipped:
            self._done += 1
            self._echo(f"[{self._done}/{self._total}] {label}  cached, skipped")
            return
        if spec.key in self._computed_keys:
            # The losing half of a double completion: the cell is
            # already counted, so neither the progress fraction nor
            # the rate estimate may move.
            self._echo(f"{label}  duplicate completion (lease retry), ignored")
            return
        self._done += 1
        self._computed_keys.add(spec.key)
        elapsed = self._clock() - self._start
        remaining = self._total - self._done
        eta = (elapsed / len(self._computed_keys)) * remaining
        self._echo(
            f"[{self._done}/{self._total}] {label}  "
            f"elapsed {elapsed:.1f}s  eta {eta:.1f}s"
        )

    def cell_retried(self, spec: CellSpec, *, attempt: int) -> None:
        """Note a cell re-queued after its worker's lease expired."""
        label = f"n={spec.n} {spec.scheme} {spec.beamwidth_deg:g}dg"
        self._echo(f"{label}  re-queued (attempt {attempt}, lease expired)")


def _echo_stderr(message: str) -> None:
    print(message, file=sys.stderr)


# ----------------------------------------------------------------------
# The executor.
# ----------------------------------------------------------------------


class CampaignRunner:
    """Executes a study grid: fan-out, persistence, resume, progress.

    With ``workers == 1`` cells run in-process (sharing one topology
    cache across schemes, as the serial runner always has); with more,
    this is a thin single-host facade over the dispatch subsystem:
    worker processes each run a :class:`~repro.experiments.dispatch.
    ShardRunner` against the shared store (a temporary directory when
    none was given), leasing cells, streaming events, and surviving
    each other's crashes.  Either way, results are identical — every
    cell is a pure function of its :class:`CellSpec`.
    """

    def __init__(
        self,
        config: SimStudyConfig,
        *,
        workers: int | None = 1,
        directory: str | pathlib.Path | None = None,
        progress: CampaignProgress | None = None,
        telemetry: bool = True,
        worker: Callable[..., CellResult] | None = None,
        worker_telemetry: Callable[..., tuple[CellResult, dict]] | None = None,
        topology_fn: Callable[[int, int, int], Topology] | None = None,
        lease_seconds: float | None = None,
        poll_seconds: float = 0.2,
    ) -> None:
        """Build the runner.

        Args:
            worker: cell worker, ``(spec, topology=...) -> CellResult``;
                defaults to :func:`run_cell_spec`.  Must be a top-level
                module function — parallel campaigns pickle it to worker
                processes.  Other studies (e.g. the multi-hop driver in
                :mod:`repro.experiments.multihop`) plug their own in.
            worker_telemetry: measuring variant, ``(spec, topology=...)
                -> (CellResult, telemetry record)``; defaults to
                :func:`run_cell_spec_telemetry`.
            topology_fn: ``(base_seed, n, replicate) -> Topology`` used
                by the serial path's cross-scheme topology cache;
                defaults to :func:`replicate_topology`.  Must match the
                derivation the worker uses internally, or serial and
                parallel runs would diverge.
            lease_seconds: lease expiry for the sharded (``workers >
                1``) path; default is the dispatch layer's.  Workers on
                one healthy host rarely need tuning — the knob exists
                so crash tests can shrink the takeover window.
            poll_seconds: shard idle-rescan interval on the sharded
                path.
        """
        if workers is None:
            workers = workers_from_environment()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if lease_seconds is None:
            from .dispatch.queue import DEFAULT_LEASE_SECONDS

            lease_seconds = DEFAULT_LEASE_SECONDS
        self.config = config
        self.workers = workers
        self.lease_seconds = lease_seconds
        self.poll_seconds = poll_seconds
        self.store = None if directory is None else CampaignStore(directory, config)
        self.progress = progress
        self.telemetry = telemetry
        self.worker = run_cell_spec if worker is None else worker
        self.worker_telemetry = (
            run_cell_spec_telemetry if worker_telemetry is None else worker_telemetry
        )
        self.topology_fn = replicate_topology if topology_fn is None else topology_fn
        #: Telemetry records of the cells *this* run computed (skipped
        #: cells re-emit nothing; their lines are already on disk).
        self.telemetry_records: list[dict] = []

    def specs(self) -> list[CellSpec]:
        """Every grid cell, in the canonical (N, scheme, beamwidth) order."""
        return [
            CellSpec(n, scheme, beamwidth, self.config)
            for n in self.config.n_values
            for scheme in self.config.schemes
            for beamwidth in self.config.beamwidths_deg
        ]

    def run(self) -> list[CellResult]:
        """Run (or resume) the campaign; results follow ``specs()`` order."""
        specs = self.specs()
        if self.progress is not None:
            self.progress.start(len(specs))
        results: dict[CellSpec, CellResult] = {}
        pending: list[CellSpec] = []
        for spec in specs:
            cached = None if self.store is None else self.store.load(spec)
            if cached is not None:
                results[spec] = cached
                if self.progress is not None:
                    self.progress.cell_done(spec, skipped=True)
            else:
                pending.append(spec)
        if self.workers == 1 or len(pending) <= 1:
            cache: dict[tuple[int, int], Topology] = {}

            def provider(n: int, replicate: int) -> Topology:
                key = (n, replicate)
                if key not in cache:
                    cache[key] = self.topology_fn(
                        self.config.base_seed, n, replicate
                    )
                return cache[key]

            for spec in pending:
                if self.telemetry:
                    cell, record = self.worker_telemetry(spec, topology=provider)
                else:
                    cell, record = self.worker(spec, topology=provider), None
                self._finish(spec, cell, results, record)
        else:
            self._run_sharded(pending, results)
        if self.store is not None and self.telemetry:
            self.store.merge_telemetry_summary()
        return [results[spec] for spec in specs]

    def _run_sharded(
        self, pending: list[CellSpec], results: dict[CellSpec, CellResult]
    ) -> None:
        """Fan pending cells out to shard processes over a shared store.

        Each pool worker is a full :class:`~repro.experiments.dispatch.
        ShardRunner` leasing cells from the (given or temporary) store;
        the parent tails the store's event stream to drive per-cell
        progress lines while the sweep runs, then loads the results
        back.  The study's ``topology_fn`` closure never crosses the
        process boundary — shards use their worker-side topology memos,
        exactly as the pool path always has.
        """
        import tempfile
        import time
        from concurrent.futures import ProcessPoolExecutor
        from contextlib import ExitStack

        from .dispatch.events import EVENTS_FILENAME, tail_events
        from .dispatch.shard import run_shard

        with ExitStack() as stack:
            if self.store is None:
                store = CampaignStore(
                    stack.enter_context(
                        tempfile.TemporaryDirectory(prefix="repro-campaign-")
                    ),
                    self.config,
                )
            else:
                store = self.store
            events_path = store.directory / EVENTS_FILENAME
            # Resumed stores keep old logs: start tailing at the current
            # end of file, so only this run's events drive progress.
            offset = events_path.stat().st_size if events_path.exists() else 0
            by_key = {spec.key: spec for spec in pending}
            shards = min(self.workers, len(pending))
            pool = stack.enter_context(ProcessPoolExecutor(max_workers=shards))
            futures = [
                pool.submit(
                    run_shard,
                    str(store.directory),
                    self.config,
                    str(index),
                    self.worker,
                    self.worker_telemetry,
                    self.telemetry,
                    self.lease_seconds,
                    self.poll_seconds,
                )
                for index in range(shards)
            ]
            while True:
                failed = next(
                    (
                        future
                        for future in futures
                        if future.done() and future.exception() is not None
                    ),
                    None,
                )
                finished = all(future.done() for future in futures)
                events, offset = tail_events(events_path, offset)
                for record in events:
                    self._observe_event(record, by_key)
                if failed is not None:
                    # A shard raised a real error (not a crash the lease
                    # protocol absorbs): surface it now instead of
                    # letting survivors grind on.  Failed workers
                    # release their leases, so peers retrying the same
                    # cell fail fast too rather than idling out a
                    # lease expiry; unstarted shards are cancelled.
                    for future in futures:
                        future.cancel()
                    raise failed.exception()
                if finished:
                    break
                time.sleep(0.05)
            for future in futures:
                future.result()  # surface shard exceptions
            for spec in pending:
                cell = store.load(spec)
                if cell is None:  # pragma: no cover - shards cannot exit early
                    raise RuntimeError(f"shards finished but {spec.key} is missing")
                results[spec] = cell
            if self.telemetry:
                seen: set[str] = set()
                for record in store.load_telemetry():
                    key = record.get("key")
                    if (
                        record.get("kind") == "cell"
                        and key in by_key
                        and key not in seen
                    ):
                        seen.add(key)
                        self.telemetry_records.append(record)

    def _observe_event(self, record: dict, by_key: dict[str, CellSpec]) -> None:
        """Relay one shard event to the progress reporter, if any."""
        if self.progress is None:
            return
        spec = by_key.get(record.get("key"))
        if spec is None:
            return
        event = record.get("event")
        if event in ("cell-completed", "cell-imported"):
            self.progress.cell_done(spec, skipped=False)
        elif event == "cell-retry":
            self.progress.cell_retried(spec, attempt=record.get("attempt", 1))

    def _finish(
        self,
        spec: CellSpec,
        cell: CellResult,
        results: dict[CellSpec, CellResult],
        record: dict | None = None,
    ) -> None:
        if self.store is not None:
            self.store.save(spec, cell)
        if record is not None:
            self.telemetry_records.append(record)
            if self.store is not None:
                self.store.record_telemetry(record)
        results[spec] = cell
        if self.progress is not None:
            self.progress.cell_done(spec, skipped=False)


def run_campaign(
    config: SimStudyConfig,
    *,
    workers: int | None = 1,
    directory: str | pathlib.Path | None = None,
    progress: CampaignProgress | None = None,
    telemetry: bool = True,
    worker: Callable[..., CellResult] | None = None,
    worker_telemetry: Callable[..., tuple[CellResult, dict]] | None = None,
    topology_fn: Callable[[int, int, int], Topology] | None = None,
    lease_seconds: float | None = None,
    poll_seconds: float = 0.2,
) -> list[CellResult]:
    """Convenience wrapper: build a :class:`CampaignRunner` and run it.

    ``workers=None`` reads ``REPRO_WORKERS`` (default 1).  With a
    ``directory``, per-cell telemetry JSONL accumulates next to the
    cell artifacts and its totals are merged into the manifest;
    ``telemetry=False`` switches all observation off (results are
    identical either way).  ``worker``/``worker_telemetry``/
    ``topology_fn`` plug an alternate study in, and
    ``lease_seconds``/``poll_seconds`` tune the sharded path's crash
    takeover (see :class:`CampaignRunner`).
    """
    return CampaignRunner(
        config,
        workers=workers,
        directory=directory,
        progress=progress,
        telemetry=telemetry,
        worker=worker,
        worker_telemetry=worker_telemetry,
        topology_fn=topology_fn,
        lease_seconds=lease_seconds,
        poll_seconds=poll_seconds,
    ).run()
