"""Experiment configuration, overridable from the environment.

The paper averaged 50 random topologies per configuration on a compute
cluster-class budget; the default here is laptop-sized.  Environment
variables scale everything back up:

======================== ======================================= =======
variable                 meaning                                 default
======================== ======================================= =======
``REPRO_TOPOLOGIES``     random topologies per configuration     3
``REPRO_SIM_SECONDS``    simulated seconds per run               2.0
``REPRO_N_VALUES``       comma-separated N list                  3,5,8
``REPRO_BEAMWIDTHS_DEG`` comma-separated beamwidth list          30,90,150
``REPRO_RETRY_LIMIT``    802.11 retry limit                      7
``REPRO_CAPTURE``        SNR capture threshold ("none" disables) none
``REPRO_WORKERS``        parallel campaign worker processes      1
======================== ======================================= =======

``REPRO_WORKERS`` is deliberately *not* part of
:class:`SimStudyConfig`: how many processes execute a campaign is an
execution detail, not part of the experiment's identity, so it never
enters the campaign-directory fingerprint and cannot change results.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..dessim.units import seconds
from ..mac.config import MacParameters
from ..phy.frames import PhyParameters

__all__ = ["SimStudyConfig", "from_environment", "workers_from_environment"]

#: Scheme names in the paper's presentation order.
SCHEMES = ("ORTS-OCTS", "DRTS-DCTS", "DRTS-OCTS")


@dataclass(frozen=True)
class SimStudyConfig:
    """One Fig. 6/7-style simulation sweep."""

    n_values: tuple[int, ...] = (3, 5, 8)
    beamwidths_deg: tuple[float, ...] = (30.0, 90.0, 150.0)
    schemes: tuple[str, ...] = SCHEMES
    topologies: int = 3
    sim_time_ns: int = seconds(2)
    base_seed: int = 2003  # ICDCS 2003
    retry_limit: int = 7
    capture_threshold: float | None = None

    def __post_init__(self) -> None:
        if not self.n_values:
            raise ValueError("need at least one N value")
        if any(n < 2 for n in self.n_values):
            raise ValueError(f"N values must be >= 2, got {self.n_values}")
        if not self.beamwidths_deg:
            raise ValueError("need at least one beamwidth")
        if any(not 0 < b <= 360 for b in self.beamwidths_deg):
            raise ValueError(
                f"beamwidths must be in (0, 360] degrees, got {self.beamwidths_deg}"
            )
        if self.topologies < 1:
            raise ValueError(f"topologies must be >= 1, got {self.topologies}")
        if self.sim_time_ns <= 0:
            raise ValueError(f"sim time must be positive, got {self.sim_time_ns}")

    @property
    def mac_params(self) -> MacParameters:
        return MacParameters(retry_limit=self.retry_limit)

    @property
    def phy_params(self) -> PhyParameters:
        return PhyParameters(capture_threshold=self.capture_threshold)


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    return default if raw is None else int(raw)


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    return default if raw is None else float(raw)


def _env_tuple(name: str, default: tuple, cast) -> tuple:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return tuple(cast(part.strip()) for part in raw.split(",") if part.strip())


def from_environment() -> SimStudyConfig:
    """Build the study configuration, honouring ``REPRO_*`` overrides."""
    capture_raw = os.environ.get("REPRO_CAPTURE", "none").strip().lower()
    capture = None if capture_raw in ("", "none", "off") else float(capture_raw)
    return SimStudyConfig(
        n_values=_env_tuple("REPRO_N_VALUES", (3, 5, 8), int),
        beamwidths_deg=_env_tuple("REPRO_BEAMWIDTHS_DEG", (30.0, 90.0, 150.0), float),
        topologies=_env_int("REPRO_TOPOLOGIES", 3),
        sim_time_ns=seconds(_env_float("REPRO_SIM_SECONDS", 2.0)),
        retry_limit=_env_int("REPRO_RETRY_LIMIT", 7),
        capture_threshold=capture,
    )


def workers_from_environment() -> int:
    """Campaign worker-process count from ``REPRO_WORKERS`` (default 1)."""
    workers = _env_int("REPRO_WORKERS", 1)
    if workers < 1:
        raise ValueError(f"REPRO_WORKERS must be >= 1, got {workers}")
    return workers
