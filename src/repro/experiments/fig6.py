"""Fig. 6 — simulated throughput comparison.

Regenerates the paper's Figure 6: aggregate saturation throughput of
the innermost ``N`` nodes for IEEE 802.11 (ORTS-OCTS) and its
directional variants, for ``N`` in {3, 5, 8} and beamwidths
{30, 90, 150} degrees, averaged over random ring topologies with the
min-max range (the paper's vertical bars).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..metrics.summary import ReplicateSummary, summarize
from .campaign import CampaignProgress, run_campaign
from .config import SimStudyConfig, from_environment

__all__ = ["Fig6Cell", "run_fig6", "format_fig6_table"]


@dataclass(frozen=True)
class Fig6Cell:
    """Throughput summary for one (N, scheme, beamwidth) cell."""

    n: int
    scheme: str
    beamwidth_deg: float
    throughput_bps: ReplicateSummary


def run_fig6(
    config: SimStudyConfig | None = None,
    *,
    workers: int | None = 1,
    directory=None,
    progress: CampaignProgress | None = None,
) -> list[Fig6Cell]:
    """Run the Fig. 6 grid (optionally as a parallel, resumable campaign)
    and summarize throughput per cell."""
    cfg = config if config is not None else from_environment()
    cells = []
    for cell in run_campaign(
        cfg, workers=workers, directory=directory, progress=progress
    ):
        cells.append(
            Fig6Cell(
                n=cell.n,
                scheme=cell.scheme,
                beamwidth_deg=cell.beamwidth_deg,
                throughput_bps=summarize(cell.metric("inner_throughput_bps")),
            )
        )
    return cells


def format_fig6_table(cells: Sequence[Fig6Cell]) -> str:
    """Aligned text table grouped by N, one row per beamwidth."""
    lines = []
    schemes = sorted({c.scheme for c in cells}, key=str)
    for n in sorted({c.n for c in cells}):
        lines.append(f"N = {n}  (throughput of inner {n} nodes, Mbps)")
        header = "  beamwidth  " + "  ".join(f"{s:>24}" for s in schemes)
        lines.append(header)
        for beamwidth in sorted({c.beamwidth_deg for c in cells if c.n == n}):
            row = [f"  {beamwidth:7.0f}dg "]
            for scheme in schemes:
                match = [
                    c
                    for c in cells
                    if c.n == n
                    and c.scheme == scheme
                    and c.beamwidth_deg == beamwidth
                ]
                if match:
                    s = match[0].throughput_bps
                    row.append(
                        f"{s.mean / 1e6:6.3f} [{s.minimum / 1e6:5.3f},{s.maximum / 1e6:5.3f}]"
                    )
                else:
                    row.append(" " * 24)
            lines.append("  ".join(row))
        lines.append("")
    return "\n".join(lines)
