"""Analytical baseline ladder: why handshakes, why beams.

Places the paper's schemes in their historical context within the same
model: non-persistent CSMA (Takagi-Kleinrock lineage), idealized busy
tones (Tobagi-Kleinrock's hidden-terminal cure), the RTS/CTS handshake
(ORTS-OCTS) and finally directional transmission (DRTS-DCTS).  Swept
over the data-packet length, the table shows the two classic
crossovers:

1. CSMA -> coordination (BTMA / RTS/CTS) as hidden-terminal losses grow
   with packet length,
2. coordination -> spatial reuse (DRTS-DCTS with narrow beams), which
   wins regardless of packet length in dense networks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..core.btma import IdealizedBtma
from ..core.csma import NonPersistentCsma
from ..core.drts_dcts import DrtsDcts
from ..core.optimize import maximize_throughput
from ..core.orts_octs import OrtsOcts
from ..core.params import ProtocolParameters

__all__ = ["BaselineRow", "run_baseline_ladder", "format_baseline_table"]

LADDER = ("NP-CSMA", "BTMA-ideal", "ORTS-OCTS", "DRTS-DCTS")


@dataclass(frozen=True)
class BaselineRow:
    """Max throughput of every rung at one data length."""

    l_data: float
    throughput: dict[str, float]

    def winner(self) -> str:
        return max(self.throughput, key=self.throughput.__getitem__)


def run_baseline_ladder(
    n_neighbors: float = 5.0,
    beamwidth_deg: float = 30.0,
    data_lengths: Sequence[float] = (10.0, 25.0, 50.0, 100.0, 200.0),
) -> list[BaselineRow]:
    """Sweep data length across the baseline ladder."""
    if not data_lengths or any(length <= 0 for length in data_lengths):
        raise ValueError(f"data lengths must be positive, got {data_lengths!r}")
    rows = []
    for l_data in data_lengths:
        params = ProtocolParameters(
            l_data=float(l_data),
            n_neighbors=n_neighbors,
            beamwidth=math.radians(beamwidth_deg),
        )
        throughput = {
            "NP-CSMA": maximize_throughput(NonPersistentCsma(params)).throughput,
            "BTMA-ideal": maximize_throughput(IdealizedBtma(params)).throughput,
            "ORTS-OCTS": maximize_throughput(OrtsOcts(params)).throughput,
            "DRTS-DCTS": maximize_throughput(DrtsDcts(params)).throughput,
        }
        rows.append(BaselineRow(l_data=float(l_data), throughput=throughput))
    return rows


def format_baseline_table(rows: Sequence[BaselineRow]) -> str:
    """Aligned rendering of the ladder sweep."""
    header = "l_data  " + "  ".join(f"{name:>10}" for name in LADDER) + "  winner"
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = "  ".join(f"{row.throughput[name]:10.4f}" for name in LADDER)
        lines.append(f"{row.l_data:6.0f}  {cells}  {row.winner()}")
    return "\n".join(lines)
