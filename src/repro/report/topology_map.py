"""ASCII rendering of ring topologies.

Quickly eyeball a generated placement: inner (measured) nodes render as
``#``, middle-ring nodes as ``+``, outer-ring nodes as ``.``, with the
origin marked.  Aspect ratio is roughly corrected for terminal cells.
"""

from __future__ import annotations

from ..net.topology import Topology

__all__ = ["topology_map"]

_RING_MARKERS = "#+.~"


def topology_map(topology: Topology, width: int = 61) -> str:
    """Render a topology as an ASCII scatter map.

    Args:
        topology: the placement to draw.
        width: map width in characters (height follows, halved for the
            ~2:1 character aspect ratio).
    """
    if width < 21:
        raise ValueError(f"width must be >= 21, got {width}")
    extent = topology.config.rings * topology.config.range_m
    height = max(11, width // 2)
    if height % 2 == 0:
        height += 1
    if width % 2 == 0:
        width += 1
    grid = [[" "] * width for _ in range(height)]

    def to_cell(x: float, y: float) -> tuple[int, int]:
        col = round((x + extent) / (2 * extent) * (width - 1))
        row = round((extent - y) / (2 * extent) * (height - 1))
        return row, col

    center_row, center_col = to_cell(0.0, 0.0)
    grid[center_row][center_col] = "o"

    for node_id, position in sorted(topology.positions.items()):
        ring = topology.ring_of[node_id]
        marker = _RING_MARKERS[min(ring, len(_RING_MARKERS) - 1)]
        row, col = to_cell(position.x, position.y)
        grid[row][col] = marker

    lines = ["".join(row).rstrip() for row in grid]
    legend = (
        f"o origin | # inner ({len(topology.ids_in_ring(0))} measured) | "
        f"+ ring 2 | . ring 3 | extent {extent:g} m"
    )
    return "\n".join([*lines, legend])
