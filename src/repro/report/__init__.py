"""Terminal reporting helpers (ASCII charts and topology maps)."""

from .ascii_chart import line_chart
from .topology_map import topology_map

__all__ = ["line_chart", "topology_map"]
