"""Terminal line charts.

The paper's results are *figures*; with no plotting stack available
offline, this module renders multi-series line charts on a character
grid so benches and the CLI can show curve shapes, not just tables.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["line_chart"]

#: Series markers, assigned in iteration order.
MARKERS = "ox+*#@%&"


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1000 or magnitude < 0.01:
        return f"{value:.1e}"
    return f"{value:.3g}"


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: str | None = None,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series as an ASCII line chart.

    Args:
        series: mapping of series name to (x, y) points.
        width: plot-area width in characters.
        height: plot-area height in rows.
        title: optional title line.
        x_label: label under the x axis.
        y_label: label above the y axis.

    Returns:
        The chart as a multi-line string.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 10 or height < 4:
        raise ValueError(f"chart too small: {width}x{height}")
    if len(series) > len(MARKERS):
        raise ValueError(f"at most {len(MARKERS)} series supported")

    points = [pt for pts in series.values() for pt in pts]
    if not points:
        raise ValueError("series contain no points")
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if not all(map(math.isfinite, (x_min, x_max, y_min, y_max))):
        raise ValueError("series contain non-finite values")
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0

    grid = [[" "] * width for _ in range(height)]

    def plot(x: float, y: float, marker: str) -> None:
        col = round((x - x_min) / x_span * (width - 1))
        row = round((y - y_min) / y_span * (height - 1))
        grid[height - 1 - row][col] = marker

    for marker, (name, pts) in zip(MARKERS, series.items()):
        for x, y in pts:
            plot(x, y, marker)

    left_pad = max(len(_format_tick(y_max)), len(_format_tick(y_min))) + 1
    lines: list[str] = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(f"{y_label}")
    for i, row in enumerate(grid):
        if i == 0:
            tick = _format_tick(y_max)
        elif i == height - 1:
            tick = _format_tick(y_min)
        else:
            tick = ""
        lines.append(f"{tick:>{left_pad}} |" + "".join(row))
    lines.append(" " * left_pad + " +" + "-" * width)
    x_axis = (
        f"{_format_tick(x_min)}"
        + " " * max(1, width - len(_format_tick(x_min)) - len(_format_tick(x_max)))
        + f"{_format_tick(x_max)}"
    )
    lines.append(" " * (left_pad + 2) + x_axis)
    if x_label:
        lines.append(" " * (left_pad + 2) + x_label)
    legend = "   ".join(
        f"{marker}={name}" for marker, name in zip(MARKERS, series)
    )
    lines.append(" " * (left_pad + 2) + legend)
    return "\n".join(lines)
