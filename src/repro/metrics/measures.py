"""Per-run metrics over a set of node MAC statistics.

These are the quantities the paper's evaluation reports for the
innermost ``N`` nodes of each topology:

* aggregate **throughput** (Fig. 6) — delivered payload bits per second,
* average **delay** (Fig. 7) — mean MAC service delay of delivered
  packets,
* the **collision ratio** (Section 4, figure omitted in the paper) —
  ACK timeouts over handshakes that reached the data stage,
* per-node throughput vector — input to the fairness analysis.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..dessim.units import SECOND
from ..mac.stats import MacStats

__all__ = [
    "aggregate_throughput_bps",
    "per_node_throughput_bps",
    "mean_delay_seconds",
    "aggregate_collision_ratio",
]


def _select(
    stats: Mapping[int, MacStats], node_ids: Iterable[int] | None
) -> list[MacStats]:
    if node_ids is None:
        return list(stats.values())
    return [stats[node_id] for node_id in node_ids]


def aggregate_throughput_bps(
    stats: Mapping[int, MacStats],
    duration_ns: int,
    node_ids: Iterable[int] | None = None,
) -> float:
    """Total delivered payload bits per second over the selected nodes."""
    if duration_ns <= 0:
        raise ValueError(f"duration must be positive, got {duration_ns}")
    bits = sum(s.bits_delivered for s in _select(stats, node_ids))
    return bits * SECOND / duration_ns


def per_node_throughput_bps(
    stats: Mapping[int, MacStats],
    duration_ns: int,
    node_ids: Iterable[int] | None = None,
) -> list[float]:
    """Delivered bits/s per node, in the iteration order of ``node_ids``."""
    if duration_ns <= 0:
        raise ValueError(f"duration must be positive, got {duration_ns}")
    return [
        s.bits_delivered * SECOND / duration_ns
        for s in _select(stats, node_ids)
    ]


def mean_delay_seconds(
    stats: Mapping[int, MacStats],
    node_ids: Iterable[int] | None = None,
) -> float:
    """Mean MAC service delay (s) over all deliveries of selected nodes.

    Returns 0.0 when nothing was delivered.
    """
    delays: list[int] = []
    for node_stats in _select(stats, node_ids):
        delays.extend(node_stats.delays_ns)
    if not delays:
        return 0.0
    return sum(delays) / len(delays) / SECOND


def delay_percentiles(
    stats: Mapping[int, MacStats],
    quantiles: Iterable[float] = (0.5, 0.9, 0.99),
    node_ids: Iterable[int] | None = None,
) -> dict[float, float]:
    """Delay quantiles in seconds over all deliveries of selected nodes.

    Tail delay is where saturation pain lives — means hide the
    starvation episodes the paper's fairness discussion describes.
    Returns an empty dict when nothing was delivered.
    """
    delays: list[int] = []
    for node_stats in _select(stats, node_ids):
        delays.extend(node_stats.delays_ns)
    if not delays:
        return {}
    delays.sort()
    result: dict[float, float] = {}
    for q in quantiles:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        index = min(len(delays) - 1, max(0, round(q * (len(delays) - 1))))
        result[q] = delays[index] / SECOND
    return result


def aggregate_collision_ratio(
    stats: Mapping[int, MacStats],
    node_ids: Iterable[int] | None = None,
) -> float:
    """Pooled collision ratio: sum of ACK timeouts over sum of
    handshakes that reached the data stage.  0.0 when none did."""
    selected = _select(stats, node_ids)
    timeouts = sum(s.ack_timeouts for s in selected)
    reaching = sum(s.handshakes_reaching_data for s in selected)
    if reaching == 0:
        return 0.0
    return timeouts / reaching
