"""Metrics: throughput, delay, collision ratio, fairness, aggregation."""

from .confidence import ConfidenceInterval, mean_confidence_interval
from .fairness import jain_index
from .flows import FlowMetrics, FlowRecord, FlowStats
from .measures import (
    aggregate_collision_ratio,
    delay_percentiles,
    aggregate_throughput_bps,
    mean_delay_seconds,
    per_node_throughput_bps,
)
from .summary import ReplicateSummary, summarize
from .utilization import UtilizationReport, utilization_report

__all__ = [
    "jain_index",
    "FlowMetrics",
    "FlowRecord",
    "FlowStats",
    "ConfidenceInterval",
    "mean_confidence_interval",
    "delay_percentiles",
    "aggregate_throughput_bps",
    "per_node_throughput_bps",
    "mean_delay_seconds",
    "aggregate_collision_ratio",
    "ReplicateSummary",
    "summarize",
    "UtilizationReport",
    "utilization_report",
]
