"""Aggregation across topology replicates.

Figures 6 and 7 of the paper plot, for each configuration, the mean
over 50 random topologies together with a vertical bar showing the
min-max range.  :class:`ReplicateSummary` carries exactly those three
numbers (plus the sample count and standard deviation for good
measure).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["ReplicateSummary", "summarize"]


@dataclass(frozen=True)
class ReplicateSummary:
    """Mean and range of one metric across topology replicates."""

    mean: float
    minimum: float
    maximum: float
    std: float
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if not self.minimum <= self.mean <= self.maximum:
            raise ValueError(
                f"mean {self.mean} outside [{self.minimum}, {self.maximum}]"
            )


def summarize(samples: Sequence[float]) -> ReplicateSummary:
    """Summarize one metric over replicates (paper-style mean + range)."""
    values = list(samples)
    if not values:
        raise ValueError("cannot summarize zero samples")
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return ReplicateSummary(
        mean=mean,
        minimum=min(values),
        maximum=max(values),
        std=math.sqrt(variance),
        count=len(values),
    )
