"""Fairness measures.

Section 4 of the paper discusses how BEB "always favors the node that
succeeds last", starving competitors — worse with wide beams and few
contenders.  The standard scalar for this is Jain's fairness index::

    J(x) = (sum x_i)^2 / (n * sum x_i^2)

``J = 1`` means perfectly equal allocations; ``J = 1/n`` means one node
monopolizes the channel.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["jain_index"]


def jain_index(allocations: Sequence[float]) -> float:
    """Jain's fairness index of a non-negative allocation vector.

    Returns 1.0 for an empty or all-zero vector (nothing is unfairly
    shared when nothing is allocated).
    """
    values = list(allocations)
    if any(v < 0 for v in values):
        raise ValueError(f"allocations must be non-negative, got {values!r}")
    total = sum(values)
    if not values or total == 0.0:
        return 1.0
    squares = sum(v * v for v in values)
    if squares == 0.0:  # subnormal underflow: treat as all-zero
        return 1.0
    return min(1.0, (total * total) / (len(values) * squares))
