"""Channel-utilization accounting.

Where did the air time go?  For a single shared channel, the split of
transmitted air time between control overhead (RTS/CTS/ACK + sync
preambles) and data payload explains *why* a scheme's throughput is
what it is: conservative collision avoidance spends air time silencing
nodes; aggressive reuse spends it on retransmitted data.

``offered_airtime_fraction`` can exceed 1.0 in a spatially-reused
network — that is the point of directional transmissions: the sum of
per-transmitter air time is not bounded by wall-clock time when
transmissions are concurrent.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..phy.channel import ChannelStats
from ..phy.frames import FrameType

__all__ = ["UtilizationReport", "utilization_report"]


@dataclass(frozen=True)
class UtilizationReport:
    """Air-time decomposition of one simulation run."""

    duration_ns: int
    total_airtime_ns: int
    control_airtime_ns: int
    data_airtime_ns: int
    transmissions: int

    @property
    def offered_airtime_fraction(self) -> float:
        """Sum of all transmission air time over wall-clock duration.

        Exceeds 1.0 exactly when transmissions overlapped in space.
        """
        return self.total_airtime_ns / self.duration_ns

    @property
    def control_overhead_fraction(self) -> float:
        """Control frames' share of all transmitted air time."""
        if self.total_airtime_ns == 0:
            return 0.0
        return self.control_airtime_ns / self.total_airtime_ns

    def __str__(self) -> str:
        return (
            f"airtime: {self.offered_airtime_fraction:.2f}x wall clock, "
            f"{self.control_overhead_fraction:.1%} control overhead, "
            f"{self.transmissions} transmissions"
        )


def utilization_report(stats: ChannelStats, duration_ns: int) -> UtilizationReport:
    """Decompose a channel's recorded air time.

    Args:
        stats: the channel's transmission counters.
        duration_ns: simulated wall-clock duration.
    """
    if duration_ns <= 0:
        raise ValueError(f"duration must be positive, got {duration_ns}")
    control = sum(
        airtime
        for ftype, airtime in stats.airtime_by_type_ns.items()
        if ftype is not FrameType.DATA
    )
    data = stats.airtime_by_type_ns.get(FrameType.DATA, 0)
    return UtilizationReport(
        duration_ns=duration_ns,
        total_airtime_ns=stats.airtime_ns,
        control_airtime_ns=control,
        data_airtime_ns=data,
        transmissions=stats.transmissions,
    )
