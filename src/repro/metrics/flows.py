"""Per-flow end-to-end metrics for the multi-hop workload.

The single-hop metrics in :mod:`repro.metrics.measures` stop at MAC
service; a relayed packet is "delivered" there once per hop.  This
module measures what the *flow* sees: end-to-end goodput (payload bits
that reached the final destination), origination-to-destination delay,
and the hop count each delivered packet actually took.

:class:`FlowMetrics` is the live accumulator wired into the forwarding
agents during a run; :class:`FlowRecord` is the frozen, JSON-exact
summary that campaign artifacts persist (ints, and floats that
round-trip exactly through ``repr``-exact JSON).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dessim.units import SECOND

__all__ = ["FlowStats", "FlowRecord", "FlowMetrics"]


@dataclass
class FlowStats:
    """Live accumulator for one flow."""

    flow_id: str
    src: int
    dst: int
    packets_sent: int = 0
    packets_delivered: int = 0
    bits_delivered: int = 0
    #: End-to-end delay per delivered packet (origination -> final rx).
    delays_ns: list[int] = field(default_factory=list)
    #: MAC hops per delivered packet.
    hop_counts: list[int] = field(default_factory=list)

    def record_delivery(self, payload_bits: int, delay_ns: int, hops: int) -> None:
        self.packets_delivered += 1
        self.bits_delivered += payload_bits
        self.delays_ns.append(delay_ns)
        self.hop_counts.append(hops)

    @property
    def mean_delay_s(self) -> float:
        """Mean end-to-end delay in seconds (0.0 with no deliveries)."""
        if not self.delays_ns:
            return 0.0
        return sum(self.delays_ns) / len(self.delays_ns) / SECOND

    @property
    def mean_hops(self) -> float:
        """Mean hop count of delivered packets (0.0 with no deliveries)."""
        if not self.hop_counts:
            return 0.0
        return sum(self.hop_counts) / len(self.hop_counts)

    def goodput_bps(self, duration_ns: int) -> float:
        """Delivered payload bits per second over the window."""
        if duration_ns <= 0:
            raise ValueError(f"duration must be positive, got {duration_ns}")
        return self.bits_delivered * SECOND / duration_ns


@dataclass(frozen=True)
class FlowRecord:
    """Frozen per-flow summary, exact under JSON round-trips."""

    flow_id: str
    src: int
    dst: int
    packets_sent: int
    packets_delivered: int
    goodput_bps: float
    mean_delay_s: float
    mean_hops: float

    @classmethod
    def from_stats(cls, stats: FlowStats, duration_ns: int) -> "FlowRecord":
        return cls(
            flow_id=stats.flow_id,
            src=stats.src,
            dst=stats.dst,
            packets_sent=stats.packets_sent,
            packets_delivered=stats.packets_delivered,
            goodput_bps=stats.goodput_bps(duration_ns),
            mean_delay_s=stats.mean_delay_s,
            mean_hops=stats.mean_hops,
        )

    @property
    def delivery_ratio(self) -> float:
        """Delivered fraction of sent packets (0.0 when nothing sent)."""
        if self.packets_sent == 0:
            return 0.0
        return self.packets_delivered / self.packets_sent


class FlowMetrics:
    """The network-wide flow table: one :class:`FlowStats` per flow.

    Iteration and summaries run over flows sorted by ``(src, dst)`` so
    emitted artifacts are byte-stable for identical runs.
    """

    def __init__(self) -> None:
        self._flows: dict[str, FlowStats] = {}

    def register(self, flow_id: str, src: int, dst: int) -> FlowStats:
        """Create (or return) the accumulator for one flow."""
        stats = self._flows.get(flow_id)
        if stats is None:
            stats = FlowStats(flow_id=flow_id, src=src, dst=dst)
            self._flows[flow_id] = stats
        return stats

    def __len__(self) -> int:
        return len(self._flows)

    def __getitem__(self, flow_id: str) -> FlowStats:
        return self._flows[flow_id]

    def flows(self) -> list[FlowStats]:
        """All flows, sorted by (src, dst) for deterministic output."""
        return sorted(self._flows.values(), key=lambda f: (f.src, f.dst))

    def records(self, duration_ns: int) -> tuple[FlowRecord, ...]:
        """Frozen per-flow summaries in deterministic order."""
        return tuple(
            FlowRecord.from_stats(stats, duration_ns) for stats in self.flows()
        )

    def reset(self) -> None:
        """Zero every flow's counters (used to discard warm-up)."""
        for stats in self._flows.values():
            stats.packets_sent = 0
            stats.packets_delivered = 0
            stats.bits_delivered = 0
            stats.delays_ns.clear()
            stats.hop_counts.clear()
