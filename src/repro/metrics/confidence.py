"""Confidence intervals for replicate summaries.

The paper plots the mean and min-max range over 50 topologies; for a
production-quality harness we add Student-t confidence intervals on the
mean, so users running fewer replicates can see whether a scheme
comparison is resolved or still noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import stats as _scipy_stats

__all__ = ["ConfidenceInterval", "mean_confidence_interval"]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided CI on a mean."""

    mean: float
    lower: float
    upper: float
    level: float
    count: int

    def __post_init__(self) -> None:
        if not self.lower <= self.mean <= self.upper:
            raise ValueError(
                f"mean {self.mean} outside [{self.lower}, {self.upper}]"
            )
        if not 0.0 < self.level < 1.0:
            raise ValueError(f"level must be in (0, 1), got {self.level}")

    @property
    def half_width(self) -> float:
        return (self.upper - self.lower) / 2.0

    def overlaps(self, other: "ConfidenceInterval") -> bool:
        """Whether two CIs overlap (an unresolved comparison)."""
        return self.lower <= other.upper and other.lower <= self.upper


def mean_confidence_interval(
    samples: Sequence[float], level: float = 0.95
) -> ConfidenceInterval:
    """Student-t CI on the mean of i.i.d. replicates.

    With a single sample the interval is degenerate (zero width) —
    callers should treat ``count == 1`` as "no uncertainty estimate".
    """
    values = list(samples)
    if not values:
        raise ValueError("cannot build a CI from zero samples")
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be in (0, 1), got {level!r}")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return ConfidenceInterval(
            mean=mean, lower=mean, upper=mean, level=level, count=1
        )
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    std_error = math.sqrt(variance / n)
    t_crit = float(_scipy_stats.t.ppf(0.5 + level / 2.0, df=n - 1))
    half = t_crit * std_error
    # Clamp the bounds to the mean: with near-identical samples the
    # half-width underflows, and float rounding in ``mean ± half`` must
    # not land an endpoint on the wrong side of the mean — that would
    # violate ConfidenceInterval's lower <= mean <= upper invariant.
    return ConfidenceInterval(
        mean=mean,
        lower=min(mean, mean - half),
        upper=max(mean, mean + half),
        level=level,
        count=n,
    )
