"""Multi-hop flow traffic.

Where :class:`~repro.traffic.cbr.CbrSource` hands single-hop packets
straight to a MAC, :class:`FlowTrafficSource` originates *end-to-end*
packets through a :class:`~repro.route.ForwardingAgent`: each source
owns one flow to a randomly drawn far destination (a node at least
``min_hops`` away in the connectivity graph) and generates Table-1
1460-byte packets at a fixed interval.

The destination draw is the source's only RNG use, taken once at
:meth:`start` from the injected stream — generation itself is a
deterministic fixed-interval process, so flow traffic perturbs no
other stream in the run.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..dessim.engine import Simulator
from ..route.forwarding import FlowPayload, ForwardingAgent
from .cbr import DEFAULT_PACKET_BYTES

__all__ = ["FlowTrafficSource"]


class FlowTrafficSource:
    """One node's end-to-end flow: fixed-interval packets to a far node.

    Args:
        sim: the shared simulator.
        agent: the origin node's forwarding agent.
        candidates: admissible far destinations; the flow's destination
            is drawn uniformly from this sequence at :meth:`start`.
        rng: the flow's destination stream, e.g.
            ``registry.stream(f"flow-{node_id}")``.  Required so flow
            draws are explicit, per the repo's seed-plumbing rule.
        interval_ns: packet inter-arrival time.
        packet_bytes: payload size (Table 1: 1460 B).
    """

    def __init__(
        self,
        sim: Simulator,
        agent: ForwardingAgent,
        candidates: Sequence[int],
        rng: random.Random,
        interval_ns: int,
        packet_bytes: int = DEFAULT_PACKET_BYTES,
    ) -> None:
        if not candidates:
            raise ValueError(
                f"node {agent.node_id}: flow source needs >= 1 candidate "
                "destination"
            )
        if any(c == agent.node_id for c in candidates):
            raise ValueError(
                f"node {agent.node_id} cannot be its own flow destination"
            )
        if interval_ns <= 0:
            raise ValueError(f"interval_ns must be positive, got {interval_ns}")
        if packet_bytes <= 0:
            raise ValueError(f"packet_bytes must be positive, got {packet_bytes}")
        self.sim = sim
        self.agent = agent
        self.candidates = list(candidates)
        self.rng = rng
        self.interval_ns = interval_ns
        self.packet_bytes = packet_bytes
        self.dst: int | None = None
        self.flow_id: str | None = None
        self.packets_generated = 0

    def start(self) -> None:
        """Draw the flow destination and begin periodic generation."""
        if self.dst is not None:
            raise RuntimeError(f"flow at node {self.agent.node_id} already started")
        self.dst = self.rng.choice(self.candidates)
        self.flow_id = f"{self.agent.node_id}->{self.dst}"
        self._tick()

    def _tick(self) -> None:
        assert self.dst is not None and self.flow_id is not None
        self.agent.originate(
            FlowPayload(
                flow_id=self.flow_id,
                src=self.agent.node_id,
                dst=self.dst,
                seq=self.packets_generated,
                created_ns=self.sim.now,
            ),
            self.packet_bytes,
        )
        self.packets_generated += 1
        self.sim.schedule(self.interval_ns, self._tick)
