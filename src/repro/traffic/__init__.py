"""Traffic generators: the paper's saturated CBR workload, a
fixed-rate CBR variant for below-saturation studies, and end-to-end
multi-hop flow sources for the routing subsystem."""

from .cbr import DEFAULT_PACKET_BYTES, CbrSource, SaturatedCbrSource
from .flows import FlowTrafficSource

__all__ = [
    "SaturatedCbrSource",
    "CbrSource",
    "FlowTrafficSource",
    "DEFAULT_PACKET_BYTES",
]
