"""Traffic generators: the paper's saturated CBR workload and a
fixed-rate CBR variant for below-saturation studies."""

from .cbr import DEFAULT_PACKET_BYTES, CbrSource, SaturatedCbrSource

__all__ = ["SaturatedCbrSource", "CbrSource", "DEFAULT_PACKET_BYTES"]
