"""Traffic sources.

The paper's workload: "each node has a constant-bit-rate (CBR) traffic
generator with data packet size of 1460 bytes, and one of its neighbors
is randomly chosen as the destination for each packet generated.  All
nodes are always backlogged."

:class:`SaturatedCbrSource` reproduces that — it keeps exactly one
packet in the MAC queue at all times, drawing a fresh uniform-random
neighbor for every packet.  :class:`CbrSource` is the non-saturated
variant (fixed inter-arrival interval) used by examples that study the
network below saturation.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..dessim.engine import Simulator
from ..mac.dcf import DcfMac
from ..mac.packet import Packet

__all__ = ["SaturatedCbrSource", "CbrSource"]

#: Table 1 data packet size.
DEFAULT_PACKET_BYTES = 1460


class SaturatedCbrSource:
    """Always-backlogged source: a new packet the instant one is serviced."""

    def __init__(
        self,
        sim: Simulator,
        mac: DcfMac,
        destinations: Sequence[int],
        rng: random.Random,
        packet_bytes: int = DEFAULT_PACKET_BYTES,
    ) -> None:
        if not destinations:
            raise ValueError(
                f"node {mac.node_id}: saturated source needs >= 1 destination"
            )
        if packet_bytes <= 0:
            raise ValueError(f"packet_bytes must be positive, got {packet_bytes}")
        self.sim = sim
        self.mac = mac
        self.destinations = list(destinations)
        self.rng = rng
        self.packet_bytes = packet_bytes
        self.packets_generated = 0
        mac.service_listeners.append(self._on_serviced)

    def start(self) -> None:
        """Inject the first packet (call once after construction)."""
        self._generate()

    def _generate(self) -> None:
        dst = self.rng.choice(self.destinations)
        self.mac.enqueue(
            Packet(dst=dst, size_bytes=self.packet_bytes, created_ns=self.sim.now)
        )
        self.packets_generated += 1

    def _on_serviced(self, _packet: Packet, _delivered: bool) -> None:
        self._generate()


class CbrSource:
    """Fixed-interval CBR source (below-saturation studies)."""

    def __init__(
        self,
        sim: Simulator,
        mac: DcfMac,
        destinations: Sequence[int],
        rng: random.Random,
        interval_ns: int,
        packet_bytes: int = DEFAULT_PACKET_BYTES,
        max_queue: int = 50,
    ) -> None:
        if not destinations:
            raise ValueError(
                f"node {mac.node_id}: CBR source needs >= 1 destination"
            )
        if interval_ns <= 0:
            raise ValueError(f"interval_ns must be positive, got {interval_ns}")
        if packet_bytes <= 0:
            raise ValueError(f"packet_bytes must be positive, got {packet_bytes}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.sim = sim
        self.mac = mac
        self.destinations = list(destinations)
        self.rng = rng
        self.interval_ns = interval_ns
        self.packet_bytes = packet_bytes
        self.max_queue = max_queue
        self.packets_generated = 0
        self.packets_dropped_at_queue = 0

    def start(self) -> None:
        """Begin periodic generation (call once)."""
        self._tick()

    def _tick(self) -> None:
        if self.mac.queue_length < self.max_queue:
            dst = self.rng.choice(self.destinations)
            self.mac.enqueue(
                Packet(
                    dst=dst, size_bytes=self.packet_bytes, created_ns=self.sim.now
                )
            )
            self.packets_generated += 1
        else:
            self.packets_dropped_at_queue += 1
        self.sim.schedule(self.interval_ns, self._tick)
