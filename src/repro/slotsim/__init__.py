"""Slot-level simulator of the analytical model's world.

The middle rung of the repository's three-fidelity ladder:

1. :mod:`repro.core` — closed forms under full slot-independence,
2. :mod:`repro.slotsim` — the *same* abstract protocol world simulated
   faithfully (fixed node draw, persistent interferers, checkpointed
   failure detection) on a torus,
3. :mod:`repro.net` + :mod:`repro.mac` — the full IEEE 802.11 DES.

Comparing 1 vs 2 isolates the model's independence assumptions;
comparing 2 vs 3 isolates everything 802.11 adds (carrier sense, NAV,
BEB).
"""

from .batch import BatchGeometry, BatchSlotModelEngine
from .engine import SlotModelEngine, SlotModelResults
from .model import SlotModelConfig, TorusGeometry

__all__ = [
    "BatchGeometry",
    "BatchSlotModelEngine",
    "SlotModelConfig",
    "SlotModelEngine",
    "SlotModelResults",
    "TorusGeometry",
]
