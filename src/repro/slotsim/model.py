"""Configuration and geometry for the slot-level model simulator.

:mod:`repro.slotsim` simulates the *analytical model's world* — not
IEEE 802.11.  Nodes live on a torus (periodic plane, so every node sees
the same infinite-Poisson-like environment and there are no boundary
effects), time advances in slots, and every waiting node independently
starts a four-way handshake with probability ``p`` per slot, exactly as
Section 2 assumes.  What the closed forms idealize away — the node set
is a *fixed integer draw*, a node's interference is *persistent across
slots*, failures are detected at *protocol checkpoints* rather than
geometrically distributed — is simulated faithfully here, so the gap
between this simulator and the formulas measures the model's
independence assumptions (the discrepancy source the paper's Section 4
itself discusses).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..core.params import ProtocolParameters
from ..mac.policy import AntennaPolicy, POLICIES

__all__ = ["SlotModelConfig", "TorusGeometry"]


@dataclass(frozen=True)
class SlotModelConfig:
    """Inputs of one slot-model run.

    Attributes:
        params: packet lengths, density ``N`` and beamwidth.
        scheme: which antenna policy the handshake frames use (any key
            of :data:`repro.mac.policy.POLICIES`).
        p: per-slot handshake-initiation probability of a waiting node.
        torus_factor: torus side length as a multiple of the range
            ``R``.  The node count follows from the density:
            ``K = round(lambda * L^2) = round(N * L^2 / (pi R^2))``.
        seed: RNG seed (placement and all per-slot draws).
    """

    params: ProtocolParameters
    scheme: str = "ORTS-OCTS"
    p: float = 0.05
    torus_factor: float = 6.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.scheme not in POLICIES:
            raise ValueError(
                f"unknown scheme {self.scheme!r}; expected one of "
                f"{sorted(POLICIES)}"
            )
        if not 0.0 < self.p < 1.0:
            raise ValueError(f"p must be in (0, 1), got {self.p!r}")
        if self.torus_factor < 3.0:
            raise ValueError(
                "torus_factor below 3 would wrap interference around the "
                f"torus; got {self.torus_factor!r}"
            )

    @property
    def policy(self) -> AntennaPolicy:
        return POLICIES[self.scheme]

    @property
    def node_count(self) -> int:
        """``K = round(N * L^2 / (pi R^2))`` with ``L = factor * R``."""
        return max(
            2,
            round(
                self.params.n_neighbors
                * self.torus_factor**2
                / math.pi
            ),
        )


class TorusGeometry:
    """Node placement and minimum-image geometry on a periodic square.

    The range is normalized to ``R = 1``; the torus side is
    ``L = torus_factor``.
    """

    def __init__(self, config: SlotModelConfig, rng: random.Random) -> None:
        self.side = config.torus_factor
        self.count = config.node_count
        self.xs = [rng.random() * self.side for _ in range(self.count)]
        self.ys = [rng.random() * self.side for _ in range(self.count)]
        # Precomputed pairwise minimum-image displacement geometry.
        self._distance: list[list[float]] = [
            [0.0] * self.count for _ in range(self.count)
        ]
        self._bearing: list[list[float]] = [
            [0.0] * self.count for _ in range(self.count)
        ]
        half = self.side / 2.0
        for i in range(self.count):
            for j in range(self.count):
                if i == j:
                    continue
                dx = (self.xs[j] - self.xs[i] + half) % self.side - half
                dy = (self.ys[j] - self.ys[i] + half) % self.side - half
                self._distance[i][j] = math.hypot(dx, dy)
                self._bearing[i][j] = math.atan2(dy, dx)
        self.neighbors: list[list[int]] = [
            [j for j in range(self.count) if j != i and self._distance[i][j] <= 1.0]
            for i in range(self.count)
        ]

    def distance(self, i: int, j: int) -> float:
        """Minimum-image distance between two nodes (R = 1 units)."""
        return self._distance[i][j]

    def bearing(self, i: int, j: int) -> float:
        """Minimum-image bearing from node ``i`` to node ``j``."""
        return self._bearing[i][j]

    def in_range(self, i: int, j: int) -> bool:
        return i != j and self._distance[i][j] <= 1.0

    def covers(
        self, transmitter: int, aimed_at: int, listener: int, beamwidth: float
    ) -> bool:
        """Whether a beam from ``transmitter`` toward ``aimed_at``
        (full width ``beamwidth``) covers ``listener``."""
        if not self.in_range(transmitter, listener):
            return False
        if beamwidth >= 2 * math.pi:
            return True
        delta = abs(
            self._wrap(
                self._bearing[transmitter][listener]
                - self._bearing[transmitter][aimed_at]
            )
        )
        return delta <= beamwidth / 2.0

    @staticmethod
    def _wrap(angle: float) -> float:
        wrapped = math.fmod(angle, 2 * math.pi)
        if wrapped > math.pi:
            wrapped -= 2 * math.pi
        elif wrapped <= -math.pi:
            wrapped += 2 * math.pi
        return wrapped

    def mean_degree(self) -> float:
        """Average neighbor count (should approximate ``N``)."""
        return sum(len(n) for n in self.neighbors) / self.count
