"""Vectorized batch slot-model engine: replicate batches in lockstep.

:class:`BatchSlotModelEngine` advances ``batch`` independent traffic
replicates of the slotted protocol world as one numpy array program.
Per-node state lives in ``[batch, nodes]`` vectors (engaged/active
flags, handshake start slot, receiver choice, leg-integrity bits),
initiation draws and receiver choices come from per-replicate
:class:`numpy.random.Generator` streams, and interference resolves
against a precomputed torus coverage tensor
(node x aim-sector x listener) held by :class:`BatchGeometry` — so one
slot of the whole batch costs a handful of array operations instead of
a Python loop over nodes and handshakes.

The scalar :class:`~repro.slotsim.engine.SlotModelEngine` stays the
oracle.  Two equivalence regimes back that claim:

* **Bit-identical** (``rng_mode="oracle"``, ``batch=1``): the engine
  consumes a :class:`random.Random` in exactly the scalar engine's
  order (geometry placement first, then one uniform per free node per
  slot plus one ``choice`` per initiation), so every
  :class:`~repro.slotsim.engine.SlotModelResults` field — including
  the integer failure-duration ledger — equals the scalar run's
  exactly.
* **Distributional** (``rng_mode="numpy"``, the default): each replicate
  owns a PCG64 stream at a fixed :class:`~numpy.random.SeedSequence`
  spawn key, consuming exactly ``2 * nodes`` uniforms per slot
  regardless of state.  Outcomes are seed-stable, independent of how a
  sweep is split into batches, and statistically indistinguishable
  from scalar runs on the same geometry (see
  ``tests/slotsim/test_batch.py``).

A batch shares one topology: the engine models ``batch`` traffic
replicates on a single node placement (the coverage tensor is
precomputed once per geometry).  Topology replication is expressed as
multiple engines with different seeds, exactly as the campaign layer
does for the scalar engine.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from typing import TYPE_CHECKING

import numpy as np

from ..phy.frames import FrameType
from .engine import SlotModelResults
from .model import SlotModelConfig, TorusGeometry

if TYPE_CHECKING:  # pragma: no cover - typing only, no runtime dependency
    from ..obs.metrics import MetricsRegistry

__all__ = ["BatchGeometry", "BatchSlotModelEngine"]

_TWO_PI = 2.0 * math.pi

#: Spawn-key prefixes under ``SeedSequence(config.seed)``: geometry
#: placement and replicate traffic never share a stream, so adding
#: replicates can never perturb the node layout.
_GEOMETRY_KEY = 0
_REPLICATE_KEY = 1


def _generator(entropy: int, spawn_key: tuple[int, ...]) -> np.random.Generator:
    """One PCG64 stream at a fixed spawn key under the config seed.

    Deriving every stream from ``SeedSequence(entropy, spawn_key)``
    rather than spawning sequentially makes each replicate stream a
    pure function of its index: a batch of four equals two batches of
    two at offsets 0 and 2, draw for draw.
    """
    seq = np.random.SeedSequence(entropy=entropy, spawn_key=spawn_key)  # simlint: disable=SL001 -- batch kernel: every stream is a fixed spawn of SlotModelConfig.seed
    return np.random.Generator(np.random.PCG64(seq))  # simlint: disable=SL001 -- constructs the derived stream seeded above


class BatchGeometry:
    """Array-form torus geometry: padded neighbor table + coverage tensor.

    Attributes:
        side: torus side length (``R = 1`` units).
        count: node count ``K``.
        beamwidth: the directional beamwidth the coverage tensor was
            baked for (``config.params.beamwidth``).
        nbr: ``int32 [K, D]`` neighbor ids, ascending per row, padded
            with ``-1`` to the maximum degree ``D``.
        deg: ``int64 [K]`` neighbor counts.
        valid: ``bool [K, D]`` — which slots of ``nbr`` are real.
        rev: ``int32 [K, D]`` — ``rev[k, d]`` is the slot of ``k`` in
            the row of its ``d``-th neighbor (neighborhood is
            symmetric, so the reverse entry always exists).
        cov: ``bool [K, D, D]`` — ``cov[k, a, l]`` is whether a beam
            from ``k`` toward its ``a``-th neighbor (full width
            ``beamwidth``) covers its ``l``-th neighbor.  Omni frames
            use ``valid`` instead (an omni transmission reaches every
            neighbor and nothing else — the unit-disk model).
    """

    def __init__(
        self,
        side: float,
        beamwidth: float,
        nbr: np.ndarray,
        deg: np.ndarray,
        cov: np.ndarray,
    ) -> None:
        self.side = float(side)
        self.beamwidth = float(beamwidth)
        self.nbr = nbr
        self.deg = deg
        self.cov = cov
        self.count = int(nbr.shape[0])
        self.valid = nbr >= 0
        # rev: rows are ascending, so k's slot in neighbor j's row is
        # the number of j's neighbors with id below k.
        safe = np.where(self.valid, nbr, 0)
        nbr_of_nbr = nbr[safe]  # [K, D, D]
        ids = np.arange(self.count, dtype=np.int32)[:, None, None]
        rev = ((nbr_of_nbr >= 0) & (nbr_of_nbr < ids)).sum(axis=2)
        self.rev = np.where(self.valid, rev, 0).astype(np.int32)

    # ------------------------------------------------------------------

    @classmethod
    def from_torus(cls, geo: TorusGeometry, beamwidth: float) -> "BatchGeometry":
        """Adopt a scalar :class:`TorusGeometry` verbatim.

        Neighbor sets and the coverage tensor are evaluated through
        ``geo.covers`` itself, so a batch run on the adopted geometry
        resolves every interference question exactly as the scalar
        engine would — the foundation of the bit-identical oracle mode
        and of tight paired equivalence tests.
        """
        count = geo.count
        degrees = [len(row) for row in geo.neighbors]
        width = max(degrees, default=0) or 1
        nbr = np.full((count, width), -1, dtype=np.int32)
        for i, row in enumerate(geo.neighbors):
            nbr[i, : len(row)] = row
        deg = np.array(degrees, dtype=np.int64)
        cov = np.zeros((count, width, width), dtype=bool)
        for k in range(count):
            row = geo.neighbors[k]
            for a, aimed in enumerate(row):
                for l, listener in enumerate(row):
                    cov[k, a, l] = geo.covers(k, aimed, listener, beamwidth)
        return cls(geo.side, beamwidth, nbr, deg, cov)

    @classmethod
    def generate(
        cls, config: SlotModelConfig, rng: np.random.Generator
    ) -> "BatchGeometry":
        """Draw a fresh placement and build the tables in array form.

        Neighbor search is cell-binned: ``torus_factor >= 3``
        guarantees at least a 3x3 grid of cells with edge ``>= 1``, so
        every range-1 neighbor lives in the node's own or an adjacent
        cell and the nine gathered cells are all distinct (no
        duplicate pairs).  This keeps construction near-linear in the
        node count — the O(K^2) pairwise tables of the scalar
        :class:`TorusGeometry` are infeasible at the 10^4-node scale
        this engine exists for.
        """
        side = float(config.torus_factor)
        count = config.node_count
        xs = rng.random(count) * side
        ys = rng.random(count) * side
        ncell = int(side)
        edge = side / ncell
        cx = np.minimum((xs / edge).astype(np.int64), ncell - 1)
        cy = np.minimum((ys / edge).astype(np.int64), ncell - 1)
        cell = cx * ncell + cy
        order = np.argsort(cell, kind="stable")
        counts = np.bincount(cell, minlength=ncell * ncell)
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        half = side / 2.0

        pair_i: list[np.ndarray] = []
        pair_j: list[np.ndarray] = []
        pair_dx: list[np.ndarray] = []
        pair_dy: list[np.ndarray] = []
        all_nodes = np.arange(count)
        for ox in (-1, 0, 1):
            for oy in (-1, 0, 1):
                cid = ((cx + ox) % ncell) * ncell + (cy + oy) % ncell
                cnt = counts[cid]
                total = int(cnt.sum())
                if total == 0:
                    continue
                ii = np.repeat(all_nodes, cnt)
                run = np.concatenate(([0], np.cumsum(cnt)[:-1]))
                local = np.arange(total) - np.repeat(run, cnt)
                jj = order[np.repeat(starts[cid], cnt) + local]
                dx = np.mod(xs[jj] - xs[ii] + half, side) - half
                dy = np.mod(ys[jj] - ys[ii] + half, side) - half
                keep = (dx * dx + dy * dy <= 1.0) & (ii != jj)
                pair_i.append(ii[keep])
                pair_j.append(jj[keep])
                pair_dx.append(dx[keep])
                pair_dy.append(dy[keep])

        ii = np.concatenate(pair_i) if pair_i else np.zeros(0, dtype=np.int64)
        jj = np.concatenate(pair_j) if pair_j else np.zeros(0, dtype=np.int64)
        dx = np.concatenate(pair_dx) if pair_dx else np.zeros(0)
        dy = np.concatenate(pair_dy) if pair_dy else np.zeros(0)
        by_row = np.lexsort((jj, ii))
        ii, jj = ii[by_row], jj[by_row]
        bearing = np.arctan2(dy[by_row], dx[by_row])

        deg = np.bincount(ii, minlength=count).astype(np.int64)
        width = int(deg.max()) if count and deg.max() > 0 else 1
        row_start = np.concatenate(([0], np.cumsum(deg)[:-1]))
        slot = np.arange(ii.size) - np.repeat(row_start, deg)
        nbr = np.full((count, width), -1, dtype=np.int32)
        nbr[ii, slot] = jj
        bear = np.zeros((count, width))
        bear[ii, slot] = bearing

        valid = nbr >= 0
        # cov[k, a, l] = |wrap(bearing[k,l] - bearing[k,a])| <= theta/2.
        delta = bear[:, None, :] - bear[:, :, None]
        wrapped = np.mod(delta + math.pi, _TWO_PI) - math.pi
        beamwidth = float(config.params.beamwidth)
        cov = (
            (np.abs(wrapped) <= beamwidth / 2.0)
            & valid[:, None, :]
            & valid[:, :, None]
        )
        geometry = cls(side, beamwidth, nbr, deg, cov)
        geometry.xs = xs
        geometry.ys = ys
        return geometry

    # ------------------------------------------------------------------

    #: Node coordinates, populated by :meth:`generate` (adopted
    #: geometries keep them on the scalar object instead).
    xs: np.ndarray | None = None
    ys: np.ndarray | None = None

    def mean_degree(self) -> float:
        """Average neighbor count (should approximate ``N``)."""
        if self.count == 0:
            return 0.0
        return float(self.deg.sum()) / self.count


class BatchSlotModelEngine:
    """Runs ``batch`` lockstep replicates of the slotted protocol.

    Args:
        config: the same :class:`SlotModelConfig` the scalar engine
            takes; ``config.seed`` roots every stream.
        batch: number of independent traffic replicates advanced in
            lockstep on the shared geometry.
        replicate_offset: index of the first replicate's traffic
            stream.  Running ``batch=2, replicate_offset=2`` continues
            exactly where ``batch=2, replicate_offset=0`` left off, so
            a sweep can be split across engine instances (or campaign
            workers) without changing any outcome.
        geometry: a :class:`BatchGeometry`, a scalar
            :class:`TorusGeometry` to adopt, or ``None`` to draw a
            placement from the geometry stream.
        metrics: optional registry; harvested once per :meth:`run`
            with the same ``slotsim.*`` instruments as the scalar
            engine, summed over the batch.
        rng_mode: ``"numpy"`` (default) for per-replicate PCG64
            streams, or ``"oracle"`` to consume a :class:`random.Random` in the
            scalar engine's exact draw order (requires ``batch=1``,
            ``replicate_offset=0``) for bit-identical comparisons.
    """

    def __init__(
        self,
        config: SlotModelConfig,
        *,
        batch: int = 1,
        replicate_offset: int = 0,
        geometry: "BatchGeometry | TorusGeometry | None" = None,
        metrics: "MetricsRegistry | None" = None,
        rng_mode: str = "numpy",
    ) -> None:
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        if replicate_offset < 0:
            raise ValueError(
                f"replicate_offset must be >= 0, got {replicate_offset}"
            )
        if rng_mode not in ("numpy", "oracle"):
            raise ValueError(
                f"rng_mode must be 'numpy' or 'oracle', got {rng_mode!r}"
            )
        if rng_mode == "oracle" and (batch != 1 or replicate_offset != 0):
            raise ValueError(
                "oracle mode replays one scalar RNG stream: it requires "
                "batch=1 and replicate_offset=0"
            )
        self.config = config
        self.batch = batch
        self.replicate_offset = replicate_offset
        self.rng_mode = rng_mode
        self._metrics = metrics

        prm = config.params
        self._l = {
            FrameType.RTS: int(prm.l_rts),
            FrameType.CTS: int(prm.l_cts),
            FrameType.DATA: int(prm.l_data),
            FrameType.ACK: int(prm.l_ack),
        }
        # Phase boundaries relative to the start slot — identical to
        # the scalar engine's.
        self.rts_end = self._l[FrameType.RTS]
        self.cts_start = self.rts_end + 1
        self.cts_end = self.cts_start + self._l[FrameType.CTS]
        self.data_start = self.cts_end + 1
        self.data_end = self.data_start + self._l[FrameType.DATA]
        self.ack_start = self.data_end + 1
        self.ack_end = self.ack_start + self._l[FrameType.ACK]
        self.t_succeed = self.ack_end + 1
        self.t_fail_early = self.cts_end + 1

        policy = config.policy
        # The slot model never retries, so retries=0 resolves the
        # policy completely (including the alternating-RTS variant).
        self._directional = {
            ftype: policy.is_directional(ftype) for ftype in self._l
        }

        self._oracle_rng: random.Random | None = None
        self._oracle_state: object | None = None
        self._py_neighbors: list[list[int]] | None = None
        if rng_mode == "oracle":
            py_rng = random.Random(config.seed)  # simlint: disable=SL001 -- oracle mode replays the scalar engine's single config-seeded stream
            if geometry is None:
                geometry = TorusGeometry(config, py_rng)
            self._oracle_rng = py_rng
            # run() rewinds to here, mirroring the scalar engine's
            # post-construction snapshot.
            self._oracle_state = py_rng.getstate()

        if geometry is None:
            self.geometry = BatchGeometry.generate(
                config, _generator(config.seed, (_GEOMETRY_KEY,))
            )
        elif isinstance(geometry, TorusGeometry):
            self.geometry = BatchGeometry.from_torus(geometry, prm.beamwidth)
        else:
            if any(self._directional.values()) and (
                geometry.beamwidth != prm.beamwidth
            ):
                raise ValueError(
                    "geometry coverage tensor was baked for beamwidth "
                    f"{geometry.beamwidth!r}, config wants {prm.beamwidth!r}"
                )
            self.geometry = geometry

        if rng_mode == "oracle":
            if isinstance(geometry, TorusGeometry):
                self._py_neighbors = geometry.neighbors
            else:
                geo = self.geometry
                self._py_neighbors = [
                    [int(n) for n in geo.nbr[k, : geo.deg[k]]]
                    for k in range(geo.count)
                ]
            # Receiver id -> slot in the node's neighbor row, for
            # translating rng.choice results into table coordinates.
            self._py_slot_of = [
                {node: slot for slot, node in enumerate(row)}
                for row in self._py_neighbors
            ]

    # ------------------------------------------------------------------

    def _streams(self) -> list[np.random.Generator]:
        """Fresh per-replicate generators — recreated every run so
        ``run()`` stays a pure function of the configuration."""
        return [
            _generator(
                self.config.seed,
                (_REPLICATE_KEY, self.replicate_offset + i),
            )
            for i in range(self.batch)
        ]

    def run(self, slots: int) -> list[SlotModelResults]:
        """Advance every replicate ``slots`` slots; one result each.

        Like the scalar engine's :meth:`~SlotModelEngine.run`, every
        call is a pure function of the configuration: all per-run
        state is local and the RNG streams are re-derived (numpy mode)
        or rewound (oracle mode) on entry.
        """
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        geo = self.geometry
        nreps, count = self.batch, geo.count
        nbr, valid, deg = geo.nbr, geo.valid, geo.deg
        cov, rev = geo.cov, geo.rev
        p = self.config.p
        dirs = self._directional

        if self.rng_mode == "numpy":
            gens = self._streams()
        else:
            assert self._oracle_rng is not None
            self._oracle_rng.setstate(self._oracle_state)

        engaged = np.zeros((nreps, count), dtype=bool)
        active = np.zeros((nreps, count), dtype=bool)
        start = np.zeros((nreps, count), dtype=np.int64)
        recv = np.zeros((nreps, count), dtype=np.int32)
        recv_slot = np.zeros((nreps, count), dtype=np.int32)
        rts_ok = np.zeros((nreps, count), dtype=bool)
        cts_ok = np.zeros((nreps, count), dtype=bool)
        data_ok = np.zeros((nreps, count), dtype=bool)
        ack_ok = np.zeros((nreps, count), dtype=bool)
        responded = np.zeros((nreps, count), dtype=bool)
        proceeded = np.zeros((nreps, count), dtype=bool)

        initiations = np.zeros(nreps, dtype=np.int64)
        successes = np.zeros(nreps, dtype=np.int64)
        early_fails = np.zeros(nreps, dtype=np.int64)
        late_fails = np.zeros(nreps, dtype=np.int64)

        can_init = deg > 0

        for now in range(slots):
            # 1. New initiations by free nodes.
            if self.rng_mode == "numpy":
                # Fixed consumption — 2K uniforms per replicate per
                # slot regardless of state — keeps the streams
                # seed-stable and batch-split invariant.
                draws = np.stack([g.random((2, count)) for g in gens])
                init = ~engaged & can_init[None, :] & (draws[:, 0, :] < p)
                irep, inode = np.nonzero(init)
                if irep.size:
                    d = deg[inode]
                    islot = np.minimum(
                        (draws[irep, 1, inode] * d).astype(np.int64), d - 1
                    ).astype(np.int32)
            else:
                irep, inode, islot = self._oracle_initiations(engaged[0], p)
            if irep.size:
                active[irep, inode] = True
                engaged[irep, inode] = True
                start[irep, inode] = now
                recv[irep, inode] = nbr[inode, islot]
                recv_slot[irep, inode] = islot
                rts_ok[irep, inode] = True
                cts_ok[irep, inode] = True
                data_ok[irep, inode] = True
                ack_ok[irep, inode] = True
                responded[irep, inode] = False
                proceeded[irep, inode] = False
                initiations += np.bincount(irep, minlength=nreps)

            # 2. Frames on the air this slot (offset = now - start;
            # `active` masks the stale starts of finished handshakes).
            off = now - start
            in_rts = active & (off < self.rts_end)
            in_cts = (
                active
                & responded
                & (off >= self.cts_start)
                & (off < self.cts_end)
            )
            in_data = (
                active
                & proceeded
                & (off >= self.data_start)
                & (off < self.data_end)
            )
            # The receiver only radiates an ACK for a DATA it decoded.
            in_ack = (
                active
                & proceeded
                & data_ok
                & (off >= self.ack_start)
                & (off < self.ack_end)
            )

            r1, s1 = np.nonzero(in_rts)
            r2, s2 = np.nonzero(in_cts)
            r3, s3 = np.nonzero(in_data)
            r4, s4 = np.nonzero(in_ack)
            if r1.size or r2.size or r3.size or r4.size:
                t2 = recv[r2, s2]
                t4 = recv[r4, s4]
                transmitting = np.zeros((nreps, count), dtype=bool)
                transmitting[r1, s1] = True
                transmitting[r3, s3] = True
                transmitting[r2, t2] = True
                transmitting[r4, t4] = True

                # 3. Interference.  Every frame's beam always covers
                # its own aim target (zero angular offset, in range)
                # and never the transmitter itself, so a listener's
                # reception is clean exactly when it is not itself
                # transmitting and precisely one beam — its peer's —
                # covers it.
                f_rep = np.concatenate((r1, r2, r3, r4))
                f_tx = np.concatenate((s1, t2, s3, t4))
                f_aim = np.concatenate(
                    (
                        recv_slot[r1, s1],
                        rev[s2, recv_slot[r2, s2]],
                        recv_slot[r3, s3],
                        rev[s4, recv_slot[r4, s4]],
                    )
                )
                f_dir = np.concatenate(
                    (
                        np.full(r1.size, dirs[FrameType.RTS]),
                        np.full(r2.size, dirs[FrameType.CTS]),
                        np.full(r3.size, dirs[FrameType.DATA]),
                        np.full(r4.size, dirs[FrameType.ACK]),
                    )
                )
                covered = np.where(
                    f_dir[:, None], cov[f_tx, f_aim], valid[f_tx]
                )
                listeners = nbr[f_tx]
                flat = f_rep[:, None] * count + listeners
                beams = np.bincount(
                    flat[covered], minlength=nreps * count
                ).reshape(nreps, count)
                dirty = transmitting | (beams != 1)

                l1 = recv[r1, s1]
                bad = dirty[r1, l1]
                rts_ok[r1[bad], s1[bad]] = False
                bad = dirty[r2, s2]
                cts_ok[r2[bad], s2[bad]] = False
                l3 = recv[r3, s3]
                bad = dirty[r3, l3]
                data_ok[r3[bad], s3[bad]] = False
                bad = dirty[r4, s4]
                ack_ok[r4[bad], s4[bad]] = False

            # 4. Checkpoint decisions and completions.
            crep, csend = np.nonzero(active & (off == self.rts_end - 1))
            if crep.size:
                # End of the RTS: the receiver replies iff it heard
                # the RTS cleanly and is free.  Same-slot contenders
                # for one receiver resolve first-wins by sender id —
                # np.nonzero is row-major, so within a replicate the
                # candidate order matches the scalar engine's
                # insertion order, and np.unique keeps the first.
                ok = rts_ok[crep, csend] & ~engaged[crep, recv[crep, csend]]
                crep, csend = crep[ok], csend[ok]
                if crep.size:
                    key = crep.astype(np.int64) * count + recv[crep, csend]
                    _, first = np.unique(key, return_index=True)
                    wrep, wsend = crep[first], csend[first]
                    responded[wrep, wsend] = True
                    engaged[wrep, recv[wrep, wsend]] = True

            gate = active & (off == self.cts_end - 1)
            proceeded[gate] = responded[gate] & cts_ok[gate]

            early = active & (off == self.t_fail_early - 1) & ~proceeded
            late = active & (off == self.t_succeed - 1)
            drep, dsend = np.nonzero(early | late)
            if drep.size:
                won = (
                    late[drep, dsend]
                    & proceeded[drep, dsend]
                    & data_ok[drep, dsend]
                    & ack_ok[drep, dsend]
                )
                was_early = early[drep, dsend]
                successes += np.bincount(drep[won], minlength=nreps)
                early_fails += np.bincount(drep[was_early], minlength=nreps)
                late_fails += np.bincount(
                    drep[~won & ~was_early], minlength=nreps
                )
                engaged[drep, dsend] = False
                had_cts = responded[drep, dsend]
                engaged[
                    drep[had_cts], recv[drep[had_cts], dsend[had_cts]]
                ] = False
                active[drep, dsend] = False

        results = [
            self._replicate_results(
                slots,
                int(initiations[i]),
                int(successes[i]),
                int(early_fails[i]),
                int(late_fails[i]),
            )
            for i in range(nreps)
        ]
        if self._metrics is not None:
            self._harvest(results)
        return results

    # ------------------------------------------------------------------

    def _oracle_initiations(
        self, engaged_row: np.ndarray, p: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One slot of initiation draws in the scalar engine's order.

        Consumes the replayed :class:`random.Random` exactly as
        :meth:`SlotModelEngine.run` step 1 does — one uniform per
        free node that has neighbors, one ``choice`` per initiation —
        so the stream stays aligned draw for draw.
        """
        rng = self._oracle_rng
        neighbors = self._py_neighbors
        assert rng is not None and neighbors is not None
        nodes: list[int] = []
        slots_: list[int] = []
        for node, row in enumerate(neighbors):
            if engaged_row[node] or not row:
                continue
            if rng.random() >= p:
                continue
            receiver = rng.choice(row)
            nodes.append(node)
            slots_.append(self._py_slot_of[node][receiver])
        inode = np.array(nodes, dtype=np.int64)
        return np.zeros(inode.size, dtype=np.int64), inode, np.array(
            slots_, dtype=np.int32
        )

    def _replicate_results(
        self,
        slots: int,
        initiations: int,
        successes: int,
        early_fails: int,
        late_fails: int,
    ) -> SlotModelResults:
        fail_durations: Counter = Counter()
        if early_fails:
            fail_durations[self.t_fail_early] = early_fails
        if late_fails:
            fail_durations[self.t_succeed] = late_fails
        return SlotModelResults(
            slots=slots,
            node_count=self.geometry.count,
            mean_degree=self.geometry.mean_degree(),
            initiations=initiations,
            successes=successes,
            failures=early_fails + late_fails,
            payload_slots=successes * self._l[FrameType.DATA],
            fail_durations=fail_durations,
        )

    def _harvest(self, results: list[SlotModelResults]) -> None:
        """Push the batch's outcome counts into the attached registry,
        under the same instrument names as the scalar engine."""
        metrics = self._metrics
        assert metrics is not None
        metrics.counter("slotsim.slots").inc(sum(r.slots for r in results))
        metrics.counter("slotsim.initiations").inc(
            sum(r.initiations for r in results)
        )
        metrics.counter("slotsim.successes").inc(
            sum(r.successes for r in results)
        )
        metrics.counter("slotsim.failures").inc(
            sum(r.failures for r in results)
        )
        metrics.counter("slotsim.payload_slots").inc(
            sum(r.payload_slots for r in results)
        )
        histogram = metrics.histogram(
            "slotsim.fail_duration_slots", (self.t_fail_early, self.t_succeed)
        )
        totals: Counter = Counter()
        for r in results:
            totals.update(r.fail_durations)
        for duration, count in sorted(totals.items()):
            histogram.observe(duration, count)
