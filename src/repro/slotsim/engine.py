"""The slot-model engine: scripted four-way handshakes in slot time.

Each handshake follows the analytical model's timeline exactly::

    RTS (l_rts) | 1 | CTS (l_cts) | 1 | DATA (l_data) | 1 | ACK (l_ack) | 1
    => T_succeed = l_rts + l_cts + l_data + l_ack + 4 slots

with protocol checkpoints: if the RTS or CTS leg fails, the initiator
gives up after ``l_rts + l_cts + 2`` slots (the paper's omni ``T_fail``);
if the DATA or ACK leg fails, the full ``T_succeed`` is spent.  A
reception slot is corrupted when the listener itself transmits or any
third transmission is audible at it (omni reception, no capture —
Section 2's assumptions).
"""

from __future__ import annotations

import math
import random
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..phy.frames import FrameType
from .model import SlotModelConfig, TorusGeometry

if TYPE_CHECKING:  # pragma: no cover - typing only, no runtime dependency
    from ..obs.metrics import MetricsRegistry

__all__ = ["SlotModelEngine", "SlotModelResults"]


@dataclass
class _Handshake:
    sender: int
    receiver: int
    start: int
    # Leg integrity, falsified by per-slot interference checks.
    rts_ok: bool = True
    cts_ok: bool = True
    data_ok: bool = True
    ack_ok: bool = True
    responded: bool = False  # receiver decided to send the CTS
    proceeded: bool = False  # sender decided to send the DATA
    end: int = -1  # filled when the outcome is known


@dataclass
class SlotModelResults:
    """Measured outcomes of one slot-model run."""

    slots: int
    node_count: int
    mean_degree: float
    initiations: int = 0
    successes: int = 0
    failures: int = 0
    #: Delivered payload, in whole slots.  Kept integer-exact (packet
    #: lengths are integral slot counts) so equivalence checks between
    #: engines can compare ledgers with ``==`` instead of a tolerance.
    payload_slots: int = 0
    fail_durations: Counter = field(default_factory=Counter)

    @property
    def throughput_per_node(self) -> float:
        """Delivered payload slots per node per slot — the empirical
        counterpart of the analytical ``Th``."""
        if self.slots == 0:
            return 0.0
        return self.payload_slots / (self.slots * self.node_count)

    @property
    def success_ratio(self) -> float:
        """Completed handshakes over initiated handshakes."""
        if self.initiations == 0:
            return 0.0
        return self.successes / self.initiations

    @property
    def mean_fail_duration(self) -> float:
        """Empirical ``T_fail`` (compare the truncated-geometric mean)."""
        total = sum(self.fail_durations.values())
        if total == 0:
            return 0.0
        return sum(d * c for d, c in self.fail_durations.items()) / total


class SlotModelEngine:
    """Runs the abstract slotted protocol on a torus."""

    def __init__(
        self,
        config: SlotModelConfig,
        geometry: TorusGeometry | None = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.config = config
        # Harvested into the registry when run() returns (never per
        # slot), so the slot loop costs the same with telemetry off.
        self._metrics = metrics
        # One seed drives placement and all per-slot draws; the slot
        # model is a single-stream Monte-Carlo kernel, not a network of
        # components, so a registry of named streams buys nothing here.
        self.rng = random.Random(config.seed)  # simlint: disable=SL001 -- single-stream kernel, seed owned by SlotModelConfig
        self.geometry = (
            geometry if geometry is not None else TorusGeometry(config, self.rng)
        )
        prm = config.params
        self._l = {
            FrameType.RTS: int(prm.l_rts),
            FrameType.CTS: int(prm.l_cts),
            FrameType.DATA: int(prm.l_data),
            FrameType.ACK: int(prm.l_ack),
        }
        # Phase boundaries relative to the start slot.
        self.rts_end = self._l[FrameType.RTS]
        self.cts_start = self.rts_end + 1
        self.cts_end = self.cts_start + self._l[FrameType.CTS]
        self.data_start = self.cts_end + 1
        self.data_end = self.data_start + self._l[FrameType.DATA]
        self.ack_start = self.data_end + 1
        self.ack_end = self.ack_start + self._l[FrameType.ACK]
        self.t_succeed = self.ack_end + 1
        self.t_fail_early = self.cts_end + 1  # l_rts + l_cts + 2

        # Effective beamwidth per frame type, resolved once: the policy
        # dispatch ran per interfering frame per listener per slot, on
        # the hottest line of the kernel.  The slot model never retries
        # a handshake, so the retries=0 resolution is total.
        policy = config.policy
        self._beamwidths: dict[FrameType, float] = {
            ftype: (
                config.params.beamwidth
                if policy.is_directional(ftype)
                else 2 * math.pi
            )
            for ftype in self._l
        }

        self._engaged: dict[int, _Handshake] = {}
        self._active: list[_Handshake] = []
        # Post-construction RNG state: run() rewinds to here so every
        # run is a pure function of the configuration (see run()).
        self._rng_run_state = self.rng.getstate()

    # ------------------------------------------------------------------

    def _beamwidth_for(self, ftype: FrameType, retries: int = 0) -> float:
        """Effective beamwidth of one frame under the configured policy."""
        return self._beamwidths[ftype]

    def _frame_on_air(
        self, hs: _Handshake, offset: int
    ) -> tuple[int, int, FrameType] | None:
        """(transmitter, aimed_at, ftype) if this handshake radiates at
        the given slot offset, else None."""
        if offset < self.rts_end:
            return (hs.sender, hs.receiver, FrameType.RTS)
        if hs.responded and self.cts_start <= offset < self.cts_end:
            return (hs.receiver, hs.sender, FrameType.CTS)
        if hs.proceeded:
            if self.data_start <= offset < self.data_end:
                return (hs.sender, hs.receiver, FrameType.DATA)
            # The receiver only radiates an ACK for a DATA it decoded.
            if (
                hs.responded
                and hs.data_ok
                and self.ack_start <= offset < self.ack_end
            ):
                return (hs.receiver, hs.sender, FrameType.ACK)
        return None

    # ------------------------------------------------------------------

    def run(self, slots: int) -> SlotModelResults:
        """Advance the world ``slots`` slots and return the measurements.

        Every call is a pure function of the configuration: per-run
        state (engaged nodes, in-flight handshakes) is cleared and the
        RNG rewound to its post-construction state, so ``run()`` called
        twice returns identical results, equal to a fresh engine's.
        Without the reset, handshakes surviving a previous run kept
        their old ``start`` slots while ``now`` restarted at 0 — stale
        negative offsets that radiated RTS forever and corrupted every
        statistic of the second run.
        """
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        self._engaged = {}
        self._active = []
        self.rng.setstate(self._rng_run_state)
        geo = self.geometry
        cfg = self.config
        results = SlotModelResults(
            slots=slots,
            node_count=geo.count,
            mean_degree=geo.mean_degree(),
        )

        for now in range(slots):
            # 1. New initiations by free nodes.
            for node in range(geo.count):
                if node in self._engaged:
                    continue
                if not geo.neighbors[node]:
                    continue
                if self.rng.random() >= cfg.p:
                    continue
                receiver = self.rng.choice(geo.neighbors[node])
                hs = _Handshake(sender=node, receiver=receiver, start=now)
                self._engaged[node] = hs
                self._active.append(hs)
                results.initiations += 1

            # 2. Collect transmissions on the air this slot.
            on_air: list[tuple[int, int, FrameType]] = []
            transmitting: set[int] = set()
            for hs in self._active:
                frame = self._frame_on_air(hs, now - hs.start)
                if frame is not None:
                    on_air.append(frame)
                    transmitting.add(frame[0])

            # 3. Interference checks for every listening leg.
            for hs in self._active:
                offset = now - hs.start
                frame = self._frame_on_air(hs, offset)
                if frame is None:
                    continue
                transmitter, _aimed, ftype = frame
                listener = (
                    hs.receiver if transmitter == hs.sender else hs.sender
                )
                if not self._slot_clean(listener, transmitter, on_air, transmitting):
                    if ftype is FrameType.RTS:
                        hs.rts_ok = False
                    elif ftype is FrameType.CTS:
                        hs.cts_ok = False
                    elif ftype is FrameType.DATA:
                        hs.data_ok = False
                    else:
                        hs.ack_ok = False

            # 4. Checkpoint decisions and completions.
            self._advance(now, results)

        if self._metrics is not None:
            self._harvest(results)
        return results

    def _harvest(self, results: SlotModelResults) -> None:
        """Push one run's outcome counts into the attached registry."""
        metrics = self._metrics
        assert metrics is not None
        metrics.counter("slotsim.slots").inc(results.slots)
        metrics.counter("slotsim.initiations").inc(results.initiations)
        metrics.counter("slotsim.successes").inc(results.successes)
        metrics.counter("slotsim.failures").inc(results.failures)
        metrics.counter("slotsim.payload_slots").inc(results.payload_slots)
        # Handshake failure durations bucket naturally at the model's
        # two checkpoints: the early RTS/CTS give-up and the full
        # T_succeed spent on a DATA/ACK loss.
        histogram = metrics.histogram(
            "slotsim.fail_duration_slots", (self.t_fail_early, self.t_succeed)
        )
        for duration, count in sorted(results.fail_durations.items()):
            histogram.observe(duration, count)

    def _slot_clean(
        self,
        listener: int,
        peer: int,
        on_air: list[tuple[int, int, FrameType]],
        transmitting: set[int],
    ) -> bool:
        """No interference at ``listener`` for the frame from ``peer``."""
        if listener in transmitting:
            return False  # deaf while transmitting
        geo = self.geometry
        beamwidths = self._beamwidths
        for transmitter, aimed, ftype in on_air:
            if transmitter in (peer, listener):
                continue
            if geo.covers(transmitter, aimed, listener, beamwidths[ftype]):
                return False
        return True

    def _advance(self, now: int, results: SlotModelResults) -> None:
        finished: list[_Handshake] = []
        for hs in self._active:
            offset = now - hs.start

            if offset == self.rts_end - 1:
                # End of the RTS: the receiver replies iff it heard the
                # RTS cleanly and is not otherwise occupied.
                receiver_free = hs.receiver not in self._engaged
                hs.responded = hs.rts_ok and receiver_free
                if hs.responded:
                    self._engaged[hs.receiver] = hs

            elif offset == self.cts_end - 1:
                hs.proceeded = hs.responded and hs.cts_ok

            elif offset == self.t_fail_early - 1 and not hs.proceeded:
                # No (clean) CTS: the initiator gives up now.
                hs.end = now + 1
                finished.append(hs)

            elif offset == self.t_succeed - 1:
                hs.end = now + 1
                finished.append(hs)

        for hs in finished:
            duration = hs.end - hs.start
            success = (
                hs.proceeded and hs.data_ok and hs.ack_ok
            )
            if success:
                results.successes += 1
                results.payload_slots += self._l[FrameType.DATA]
            else:
                results.failures += 1
                results.fail_durations[duration] += 1
            del self._engaged[hs.sender]
            if hs.responded:
                del self._engaged[hs.receiver]
        if finished:
            # One filtered sweep instead of per-handshake list.remove():
            # remove() rescans the list, turning completion into
            # O(active^2) per slot at high p.  ``end`` is only ever set
            # on the handshakes collected into ``finished`` above.
            self._active = [hs for hs in self._active if hs.end < 0]
