"""Command-line interface: regenerate any paper artifact from a shell.

Examples::

    python -m repro table1
    python -m repro fig5 --n 5
    python -m repro fig6 --n-values 3 --beamwidths 30,150 --topologies 2 \
        --sim-seconds 1
    python -m repro ablation
    python -m repro validate --scheme DRTS-DCTS --p 0.05
"""

from __future__ import annotations

import argparse
import math
import random
import sys
from typing import Sequence

from .core import (
    PAPER_PARAMETERS,
    SCHEME_FACTORIES,
    estimate_p_ws,
    simulate_node_chain,
)
from .dessim.units import seconds
from .experiments import (
    SimStudyConfig,
    format_collision_table,
    format_fairness_table,
    format_fig5_table,
    format_fig6_table,
    format_fig7_table,
    format_fixed_p_table,
    format_table1,
    format_tfail_table,
    run_collision_ratio,
    run_fairness,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fixed_p_ablation,
    run_tfail_ablation,
)

__all__ = ["main", "build_parser"]


def _int_tuple(raw: str) -> tuple[int, ...]:
    return tuple(int(part) for part in raw.split(",") if part.strip())


def _float_tuple(raw: str) -> tuple[float, ...]:
    return tuple(float(part) for part in raw.split(",") if part.strip())


def _str_tuple(raw: str) -> tuple[str, ...]:
    return tuple(part.strip() for part in raw.split(",") if part.strip())


def _add_sim_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--n-values", type=_int_tuple, default=(3, 8),
        help="comma-separated densities N (default 3,8)",
    )
    parser.add_argument(
        "--beamwidths", type=_float_tuple, default=(30.0, 150.0),
        help="comma-separated beamwidths in degrees (default 30,150)",
    )
    parser.add_argument(
        "--topologies", type=int, default=2,
        help="random topologies per configuration (paper: 50)",
    )
    parser.add_argument(
        "--sim-seconds", type=float, default=1.0,
        help="simulated seconds per run",
    )
    parser.add_argument(
        "--retry-limit", type=int, default=7, help="802.11 retry limit"
    )
    parser.add_argument(
        "--capture", type=float, default=None,
        help="SNR capture threshold (linear ratio); omit for the paper's "
        "no-capture model",
    )
    parser.add_argument("--seed", type=int, default=2003, help="base seed")
    parser.add_argument(
        "--workers", type=int, default=None,
        help="campaign worker processes (default: REPRO_WORKERS or 1)",
    )
    parser.add_argument(
        "--campaign-dir", default=None, metavar="DIR",
        help="persist one JSON artifact per completed cell under DIR; "
        "rerunning with the same configuration skips finished cells",
    )


def _campaign_options(args: argparse.Namespace) -> dict:
    """Campaign execution options (worker count, store, progress)."""
    from .experiments import CampaignProgress

    return {
        "workers": args.workers,
        "directory": args.campaign_dir,
        "progress": CampaignProgress(),  # per-cell lines + ETA on stderr
    }


def _sim_config(args: argparse.Namespace) -> SimStudyConfig:
    return SimStudyConfig(
        n_values=args.n_values,
        beamwidths_deg=args.beamwidths,
        topologies=args.topologies,
        sim_time_ns=seconds(args.sim_seconds),
        base_seed=args.seed,
        retry_limit=args.retry_limit,
        capture_threshold=args.capture,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce Wang & Garcia-Luna-Aceves (ICDCS 2003): "
        "collision avoidance with directional antennas.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the Table 1 configuration check")

    fig5 = sub.add_parser("fig5", help="analytical throughput vs beamwidth")
    fig5.add_argument(
        "--n", type=float, default=5.0, help="mean neighbor count N"
    )
    fig5.add_argument(
        "--chart", action="store_true", help="render an ASCII line chart too"
    )
    fig5.add_argument(
        "--measure", action="store_true",
        help="also re-measure each optimum with the slot-model engine",
    )
    fig5.add_argument(
        "--measure-beamwidths", type=_float_tuple, default=(30.0, 90.0, 150.0),
        metavar="LIST",
        help="beamwidths (degrees) measured with --measure (default 30,90,150)",
    )
    fig5.add_argument(
        "--engine", choices=("scalar", "batch"), default="batch",
        help="slot-model engine used with --measure (default batch)",
    )
    fig5.add_argument(
        "--slots", type=int, default=3_000,
        help="slots per measured replicate (--measure)",
    )
    fig5.add_argument(
        "--replicates", type=int, default=3,
        help="topology replicates per measured point (--measure)",
    )
    fig5.add_argument("--seed", type=int, default=2003, help="base seed (--measure)")

    for name, help_text in (
        ("fig6", "simulated throughput grid"),
        ("fig7", "simulated delay grid"),
        ("collision", "Section-4 collision-ratio statistic"),
        ("fairness", "Section-4 fairness statistic"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        _add_sim_options(cmd)

    multihop = sub.add_parser(
        "multihop",
        help="end-to-end multi-hop study: routed flows over the relay plane",
    )
    multihop.add_argument(
        "--scheme", type=_str_tuple, default=None, metavar="LIST",
        help="comma-separated schemes, case/underscore-insensitive "
        "(e.g. drts_octs); default: all three",
    )
    multihop.add_argument(
        "--beamwidth", type=_float_tuple, default=(30.0, 90.0, 150.0),
        metavar="LIST", help="comma-separated beamwidths in degrees",
    )
    multihop.add_argument(
        "--router", choices=("greedy", "shortest-path"), default="greedy",
        help="next-hop strategy (default greedy geographic)",
    )
    multihop.add_argument(
        "--n-values", type=_int_tuple, default=(3,),
        help="comma-separated densities N (default 3)",
    )
    multihop.add_argument(
        "--rings", type=int, default=3,
        help="concentric rings in each topology (default 3)",
    )
    multihop.add_argument(
        "--topologies", type=int, default=2,
        help="random topologies per configuration",
    )
    multihop.add_argument(
        "--sim-seconds", type=float, default=0.5,
        help="simulated seconds per run",
    )
    multihop.add_argument(
        "--flow-interval-ms", type=float, default=40.0,
        help="per-flow packet inter-arrival in milliseconds",
    )
    multihop.add_argument(
        "--min-hops", type=int, default=2,
        help="flow destinations are at least this many hops away",
    )
    multihop.add_argument(
        "--relay-queue", type=int, default=50, help="per-node relay-queue bound"
    )
    multihop.add_argument("--ttl", type=int, default=32, help="per-packet hop budget")
    multihop.add_argument("--seed", type=int, default=2003, help="base seed")
    multihop.add_argument(
        "--workers", type=int, default=None,
        help="campaign worker processes (default: REPRO_WORKERS or 1)",
    )
    multihop.add_argument(
        "--campaign-dir", default=None, metavar="DIR",
        help="persist one JSON artifact per completed cell under DIR; "
        "rerunning with the same configuration skips finished cells",
    )

    ablation = sub.add_parser(
        "ablation",
        help="design-choice ablations (analytical) + slot-engine cross-check",
    )
    ablation.add_argument(
        "--skip-engine-check", action="store_true",
        help="omit the scalar-vs-batch slot-engine cross-check (simulation)",
    )

    slotsim = sub.add_parser(
        "slotsim",
        help="slot-model Monte-Carlo study over the (N, scheme, beamwidth) "
        "grid; --engine selects the scalar oracle or the batch engine",
    )
    slotsim.add_argument(
        "--n-values", type=_int_tuple, default=(3, 8),
        help="comma-separated densities N (default 3,8)",
    )
    slotsim.add_argument(
        "--beamwidths", type=_float_tuple, default=(30.0, 150.0),
        help="comma-separated beamwidths in degrees (default 30,150)",
    )
    slotsim.add_argument(
        "--scheme", type=_str_tuple, default=None, metavar="LIST",
        help="comma-separated schemes (default: the paper's three)",
    )
    slotsim.add_argument(
        "--topologies", type=int, default=3,
        help="random topologies per configuration",
    )
    slotsim.add_argument(
        "--p", type=float, default=0.05,
        help="per-slot handshake-initiation probability",
    )
    slotsim.add_argument(
        "--slots", type=int, default=5_000, help="slots per replicate"
    )
    slotsim.add_argument(
        "--torus-factor", type=float, default=6.0,
        help="torus side length in range units (>= 3)",
    )
    slotsim.add_argument(
        "--engine", choices=("scalar", "batch"), default="batch",
        help="slot-model engine (default batch; scalar is the oracle)",
    )
    slotsim.add_argument("--seed", type=int, default=2003, help="base seed")
    slotsim.add_argument(
        "--workers", type=int, default=None,
        help="campaign worker processes (default: REPRO_WORKERS or 1)",
    )
    slotsim.add_argument(
        "--campaign-dir", default=None, metavar="DIR",
        help="persist one JSON artifact per completed cell under DIR; "
        "rerunning with the same configuration skips finished cells",
    )

    sinr = sub.add_parser(
        "sinr",
        help="SINR/capture reception study: capture threshold x beamwidth "
        "vs the unit-disk baseline (one campaign arm per threshold)",
    )
    sinr.add_argument(
        "--n-values", type=_int_tuple, default=(3,),
        help="comma-separated densities N (default 3)",
    )
    sinr.add_argument(
        "--beamwidths", type=_float_tuple, default=(30.0, 90.0, 150.0),
        help="comma-separated beamwidths in degrees (default 30,90,150)",
    )
    sinr.add_argument(
        "--scheme", type=_str_tuple, default=None, metavar="LIST",
        help="comma-separated schemes (default: the paper's three)",
    )
    sinr.add_argument(
        "--capture-db", type=_float_tuple, default=(3.0, 10.0),
        metavar="LIST",
        help="comma-separated capture thresholds in dB, one SINR "
        "campaign arm each (default 3,10)",
    )
    sinr.add_argument(
        "--pathloss-exponent", type=float, default=3.0,
        help="log-distance path-loss exponent (default 3.0)",
    )
    sinr.add_argument(
        "--shadowing-sigma-db", type=float, default=6.0,
        help="lognormal shadowing sigma in dB (0 disables; default 6)",
    )
    sinr.add_argument(
        "--sensitivity-dbm", type=float, default=-94.0,
        help="receiver sensitivity floor in dBm (default -94)",
    )
    sinr.add_argument(
        "--topologies", type=int, default=2,
        help="random topologies per configuration",
    )
    sinr.add_argument(
        "--sim-seconds", type=float, default=0.5,
        help="simulated seconds per run",
    )
    sinr.add_argument("--seed", type=int, default=2003, help="base seed")
    sinr.add_argument(
        "--workers", type=int, default=None,
        help="campaign worker processes (default: REPRO_WORKERS or 1)",
    )
    sinr.add_argument(
        "--campaign-dir", default=None, metavar="DIR",
        help="persist each study arm as a campaign under DIR/unitdisk "
        "and DIR/capture-<v>db; rerunning resumes finished cells",
    )

    baselines = sub.add_parser(
        "baselines",
        help="analytical ladder: CSMA / busy tone / RTS-CTS / directional",
    )
    baselines.add_argument("--n", type=float, default=5.0)
    baselines.add_argument("--beamwidth", type=float, default=30.0)

    topo = sub.add_parser("topology", help="generate and draw a ring topology")
    topo.add_argument("--n", type=int, default=3)
    topo.add_argument("--seed", type=int, default=0)
    topo.add_argument("--width", type=int, default=61)

    p0 = sub.add_parser(
        "p0",
        help="solve the p <-> p0 channel-feedback fixed point",
    )
    p0.add_argument(
        "--scheme", choices=sorted(SCHEME_FACTORIES), default="ORTS-OCTS"
    )
    p0.add_argument("--n", type=float, default=5.0)
    p0.add_argument("--beamwidth", type=float, default=30.0)
    p0.add_argument(
        "--p0", dest="p0_values", type=_float_tuple,
        default=(0.01, 0.05, 0.1, 0.2, 0.5),
        help="comma-separated offered-load probabilities",
    )

    curve = sub.add_parser(
        "curve",
        help="throughput vs p for one scheme (vectorized; ASCII chart)",
    )
    curve.add_argument(
        "--scheme", choices=sorted(SCHEME_FACTORIES), default="DRTS-DCTS"
    )
    curve.add_argument("--n", type=float, default=5.0)
    curve.add_argument("--beamwidth", type=float, default=30.0)
    curve.add_argument("--p-max", type=float, default=0.3)
    curve.add_argument("--points", type=int, default=120)

    fidelity = sub.add_parser(
        "fidelity",
        help="slot-level simulation of the model's world vs the closed forms",
    )
    fidelity.add_argument("--n", type=float, default=3.0)
    fidelity.add_argument("--beamwidth", type=float, default=30.0)
    fidelity.add_argument("--p", type=float, default=0.02)
    fidelity.add_argument("--slots", type=int, default=30_000)
    fidelity.add_argument("--seed", type=int, default=5)

    profile = sub.add_parser(
        "profile",
        help="host-time profile of one simulation cell: per-phase wall "
        "time plus events/sec (network kernel) or slots/sec (slotsim)",
    )
    profile.add_argument(
        "--kernel", choices=("network", "slotsim"), default="network",
        help="which substrate to profile (default network)",
    )
    profile.add_argument(
        "--scheme", choices=sorted(SCHEME_FACTORIES), default="ORTS-OCTS"
    )
    profile.add_argument("--n", type=int, default=3, help="density N")
    profile.add_argument(
        "--rings", type=int, default=3,
        help="concentric rings in the topology (network kernel); "
        "--n 8 --rings 5 is the ~200-node link-cache bench configuration",
    )
    profile.add_argument("--beamwidth", type=float, default=90.0)
    profile.add_argument(
        "--sim-seconds", type=float, default=0.5,
        help="simulated seconds (network kernel)",
    )
    profile.add_argument(
        "--warmup-seconds", type=float, default=0.0,
        help="warm-up transient before the measured window (network kernel)",
    )
    profile.add_argument(
        "--slots", type=int, default=20_000, help="slot count (slotsim kernel)"
    )
    profile.add_argument(
        "--p", type=float, default=0.05,
        help="per-slot transmission probability (slotsim kernel)",
    )
    profile.add_argument(
        "--engine", choices=("scalar", "batch"), default="scalar",
        help="slot-model engine (slotsim kernel; default scalar)",
    )
    profile.add_argument(
        "--batch", type=int, default=1,
        help="replicates advanced in lockstep (slotsim kernel, batch engine)",
    )
    profile.add_argument(
        "--torus-factor", type=float, default=6.0,
        help="torus side length in range units (slotsim kernel)",
    )
    profile.add_argument("--seed", type=int, default=2003)
    profile.add_argument(
        "--by-callback", action="store_true",
        help="per-callback-type breakdown of the event loop (network "
        "kernel): hooks the kernel dispatcher and times each fired "
        "callback, grouped by layer and method; the hooked loop is "
        "slower, so compare shares, not absolute seconds",
    )
    profile.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write a repro-profile-v1 JSON snapshot",
    )

    worker = sub.add_parser(
        "campaign-worker",
        help="join a campaign store as one worker shard; any number of "
        "these (across processes or hosts sharing the store) cooperate "
        "on the grid and survive each other's crashes",
    )
    worker.add_argument(
        "--store", required=True, metavar="DIR",
        help="campaign directory with a repro-campaign-v1 manifest; the "
        "worker rebuilds the study from it (no grid flags needed)",
    )
    worker.add_argument(
        "--shard-id", required=True, metavar="ID",
        help="this worker's identity in leases and the event stream",
    )
    worker.add_argument(
        "--lease-seconds", type=float, default=None, metavar="SECS",
        help="lease expiry before other shards may steal a cell "
        "(default 300)",
    )
    worker.add_argument(
        "--poll-seconds", type=float, default=0.2, metavar="SECS",
        help="idle rescan interval while waiting on other shards' cells",
    )
    worker.add_argument(
        "--attach", action="append", default=[], metavar="DIR",
        help="read-only sibling store with the same fingerprint; its "
        "finished cells are imported byte-for-byte instead of recomputed "
        "(repeatable)",
    )
    worker.add_argument(
        "--no-telemetry", action="store_true",
        help="skip per-cell telemetry lines (cell artifacts are "
        "identical either way)",
    )

    watch = sub.add_parser(
        "campaign-watch",
        help="tail a campaign's event stream: per-cell completion lines, "
        "progress fraction, and ETA while shards work the grid",
    )
    watch.add_argument(
        "--store", required=True, metavar="DIR",
        help="campaign directory whose events.jsonl to follow",
    )
    watch.add_argument(
        "--once", action="store_true",
        help="print events seen so far and exit instead of following",
    )
    watch.add_argument(
        "--interval", type=float, default=0.2, metavar="SECS",
        help="poll interval while following (default 0.2)",
    )
    watch.add_argument(
        "--timeout", type=float, default=None, metavar="SECS",
        help="stop following after this many seconds even if unfinished",
    )

    validate = sub.add_parser(
        "validate",
        help="Monte-Carlo check of the closed-form P_ws and throughput",
    )
    validate.add_argument(
        "--scheme", choices=sorted(SCHEME_FACTORIES), default="DRTS-DCTS"
    )
    validate.add_argument("--n", type=float, default=5.0)
    validate.add_argument("--beamwidth", type=float, default=30.0)
    validate.add_argument("--p", type=float, default=0.05)
    validate.add_argument("--samples", type=int, default=30_000)
    return parser


def _run_profile(args: argparse.Namespace) -> int:
    """The ``repro profile`` subcommand: phases + throughput rates."""
    import json

    from .obs import (
        CallbackProfiler,
        MetricsRegistry,
        PhaseProfiler,
        format_callback_profile,
        format_profile,
    )

    metrics = MetricsRegistry()
    profiler = PhaseProfiler()
    callback_profiler = None
    rates: list[tuple[str, int, str]] = []
    if args.by_callback and args.kernel != "network":
        raise SystemExit("--by-callback requires --kernel network")
    if args.kernel == "network":
        from .experiments import replicate_seed, replicate_topology
        from .net.network import NetworkSimulation

        with profiler.phase("topology gen"):
            topology = replicate_topology(args.seed, args.n, 0, rings=args.rings)
        with profiler.phase("build"):
            simulation = NetworkSimulation(
                topology,
                args.scheme,
                math.radians(args.beamwidth),
                seed=replicate_seed(args.seed, args.n, 0),
                metrics=metrics,
            )
        if args.by_callback:
            callback_profiler = CallbackProfiler()
            simulation.sim.dispatch_hook = callback_profiler
        simulation.run(
            seconds(args.sim_seconds),
            warmup_ns=seconds(args.warmup_seconds) if args.warmup_seconds else 0,
            profiler=profiler,
        )
        events = int(metrics.counter("dessim.events").value)
        rates.append(("events/sec", events, "event loop"))
        print(
            f"profile: network kernel, N={args.n}, rings={args.rings}, "
            f"{args.scheme}, {args.beamwidth:g}dg, "
            f"{args.sim_seconds:g}s simulated ({events:,} events)"
        )
    else:
        from .slotsim import BatchSlotModelEngine, SlotModelConfig, SlotModelEngine

        params = PAPER_PARAMETERS.with_neighbors(float(args.n)).with_beamwidth(
            math.radians(args.beamwidth)
        )
        config = SlotModelConfig(
            params=params,
            scheme=args.scheme,
            p=args.p,
            torus_factor=args.torus_factor,
            seed=args.seed,
        )
        with profiler.phase("build"):
            if args.engine == "batch":
                engine = BatchSlotModelEngine(
                    config, batch=args.batch, metrics=metrics
                )
            else:
                if args.batch != 1:
                    raise SystemExit("--batch requires --engine batch")
                engine = SlotModelEngine(config, metrics=metrics)
        with profiler.phase("event loop"):
            engine.run(args.slots)
        # The batch engine harvests slots * batch (one count per
        # replicate-slot), so the rate is comparable across engines.
        slots = int(metrics.counter("slotsim.slots").value)
        rates.append(("slots/sec", slots, "event loop"))
        print(
            f"profile: slotsim kernel ({args.engine}), N={args.n}, "
            f"{args.scheme}, {args.beamwidth:g}dg, p={args.p:g}, "
            f"{args.slots:,} slots x {args.batch} replicate(s)"
        )
    print(format_profile(profiler, rates))
    if callback_profiler is not None:
        print()
        print(format_callback_profile(callback_profiler))
    if args.json:
        payload = {
            "format": "repro-profile-v1",
            "kernel": args.kernel,
            **({"engine": args.engine} if args.kernel == "slotsim" else {}),
            "phases": profiler.as_dict(),
            "rates": {
                name: profiler.rate(count, label) for name, count, label in rates
            },
            **(
                {"callbacks": callback_profiler.as_dict()}
                if callback_profiler is not None
                else {}
            ),
            **metrics.snapshot(),
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    return 0


def watch_campaign_cli(args: argparse.Namespace):
    """The ``repro campaign-watch`` subcommand body."""
    from .experiments.dispatch import watch_campaign

    return watch_campaign(
        args.store,
        follow=not args.once,
        poll_seconds=args.interval,
        timeout=args.timeout,
    )


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "table1":
        print(format_table1())
    elif args.command == "fig5":
        print(f"Fig. 5 (N = {args.n:g}): max throughput vs beamwidth")
        rows = run_fig5(n_neighbors=args.n)
        print(format_fig5_table(rows))
        if args.chart:
            from .report import line_chart

            series = {
                scheme: [(r.beamwidth_deg, r.throughput[scheme]) for r in rows]
                for scheme in sorted(SCHEME_FACTORIES)
            }
            print()
            print(
                line_chart(
                    series,
                    title=f"Fig. 5 (N = {args.n:g})",
                    x_label="beamwidth (deg)",
                    y_label="max throughput",
                )
            )
        if args.measure:
            from .experiments import format_fig5_measured_table, run_fig5_measured

            print()
            print(
                f"Slot-model measurement at each optimum "
                f"({args.engine} engine, {args.replicates} topologies x "
                f"{args.slots:,} slots):"
            )
            print(
                format_fig5_measured_table(
                    run_fig5_measured(
                        n_neighbors=args.n,
                        beamwidths=tuple(
                            math.radians(b) for b in args.measure_beamwidths
                        ),
                        slots=args.slots,
                        replicates=args.replicates,
                        engine=args.engine,
                        base_seed=args.seed,
                    )
                )
            )
    elif args.command == "fig6":
        print(format_fig6_table(run_fig6(_sim_config(args), **_campaign_options(args))))
    elif args.command == "fig7":
        print(format_fig7_table(run_fig7(_sim_config(args), **_campaign_options(args))))
    elif args.command == "collision":
        print(
            format_collision_table(
                run_collision_ratio(_sim_config(args), **_campaign_options(args))
            )
        )
    elif args.command == "fairness":
        print(
            format_fairness_table(
                run_fairness(_sim_config(args), **_campaign_options(args))
            )
        )
    elif args.command == "multihop":
        from .dessim.units import milliseconds
        from .experiments.multihop import (
            MultihopStudyConfig,
            format_multihop_table,
            normalize_scheme,
            run_multihop,
        )

        schemes = (
            tuple(normalize_scheme(s) for s in args.scheme)
            if args.scheme
            else ("ORTS-OCTS", "DRTS-DCTS", "DRTS-OCTS")
        )
        config = MultihopStudyConfig(
            n_values=args.n_values,
            beamwidths_deg=args.beamwidth,
            schemes=schemes,
            topologies=args.topologies,
            sim_time_ns=seconds(args.sim_seconds),
            base_seed=args.seed,
            router=args.router,
            flow_interval_ns=milliseconds(args.flow_interval_ms),
            min_flow_hops=args.min_hops,
            relay_queue=args.relay_queue,
            ttl=args.ttl,
            rings=args.rings,
        )
        print(
            f"Multi-hop study: router={args.router}, "
            f"{config.topologies} topologies, {args.sim_seconds:g}s simulated"
        )
        print(format_multihop_table(run_multihop(config, **_campaign_options(args))))
    elif args.command == "ablation":
        print("Fixed p vs optimised p (N=5, theta=30dg):")
        print(format_fixed_p_table(run_fixed_p_ablation()))
        print()
        print("DRTS-OCTS T_fail lower bound:")
        print(format_tfail_table(run_tfail_ablation()))
        if not args.skip_engine_check:
            from .experiments import format_engine_check_table, run_engine_ablation

            print()
            print("Slot-engine cross-check (scalar oracle vs vectorized batch):")
            print(format_engine_check_table(run_engine_ablation()))
    elif args.command == "slotsim":
        from .experiments import (
            SlotStudyConfig,
            format_slotsim_table,
            run_slot_study,
        )
        from .experiments.multihop import normalize_scheme

        schemes = (
            tuple(normalize_scheme(s) for s in args.scheme)
            if args.scheme
            else ("ORTS-OCTS", "DRTS-DCTS", "DRTS-OCTS")
        )
        config = SlotStudyConfig(
            n_values=args.n_values,
            beamwidths_deg=args.beamwidths,
            schemes=schemes,
            topologies=args.topologies,
            base_seed=args.seed,
            p=args.p,
            slots=args.slots,
            torus_factor=args.torus_factor,
            engine=args.engine,
        )
        print(
            f"Slot-model study ({args.engine} engine): p={args.p:g}, "
            f"{config.topologies} topologies x {args.slots:,} slots"
        )
        print(format_slotsim_table(run_slot_study(config, **_campaign_options(args))))
    elif args.command == "sinr":
        from .experiments.multihop import normalize_scheme
        from .experiments.sinr_study import (
            SinrStudyConfig,
            format_sinr_table,
            run_sinr_study,
        )

        schemes = (
            tuple(normalize_scheme(s) for s in args.scheme)
            if args.scheme
            else ("ORTS-OCTS", "DRTS-DCTS", "DRTS-OCTS")
        )
        config = SinrStudyConfig(
            n_values=args.n_values,
            beamwidths_deg=args.beamwidths,
            schemes=schemes,
            topologies=args.topologies,
            sim_time_ns=seconds(args.sim_seconds),
            base_seed=args.seed,
            pathloss_exponent=args.pathloss_exponent,
            shadowing_sigma_db=args.shadowing_sigma_db,
            sensitivity_dbm=args.sensitivity_dbm,
        )
        print(
            f"SINR/capture study: thresholds {args.capture_db} dB, "
            f"sigma={args.shadowing_sigma_db:g} dB, "
            f"{config.topologies} topologies, {args.sim_seconds:g}s simulated"
        )
        print(
            format_sinr_table(
                run_sinr_study(
                    config,
                    capture_db_values=args.capture_db,
                    **_campaign_options(args),
                )
            )
        )
    elif args.command == "baselines":
        from .experiments import format_baseline_table, run_baseline_ladder

        rows = run_baseline_ladder(
            n_neighbors=args.n, beamwidth_deg=args.beamwidth
        )
        print(
            f"Baseline ladder (N={args.n:g}, theta={args.beamwidth:g}dg): "
            "max throughput vs data length"
        )
        print(format_baseline_table(rows))
    elif args.command == "topology":
        from .net import TopologyConfig, generate_ring_topology
        from .report import topology_map

        topology = generate_ring_topology(
            TopologyConfig(n=args.n), random.Random(args.seed)
        )
        print(topology_map(topology, width=args.width))
    elif args.command == "p0":
        from .core import attempt_probability

        params = PAPER_PARAMETERS.with_neighbors(args.n).with_beamwidth(
            math.radians(args.beamwidth)
        )
        scheme = SCHEME_FACTORIES[args.scheme](params)
        print(
            f"p = p0 * exp(-N*u(p)) for {args.scheme}, N={args.n:g}, "
            f"theta={args.beamwidth:g}dg"
        )
        print("      p0         p    idle-prob  throughput(p)")
        for p0_value in args.p0_values:
            fb = attempt_probability(scheme, p0_value)
            print(
                f"{fb.p0:8.4f}  {fb.p:8.5f}  {fb.idle_probability:9.4f}  "
                f"{scheme.throughput(fb.p):13.4f}"
            )
    elif args.command == "curve":
        import numpy as np

        from .core.fastpath import throughput_curve
        from .report import line_chart

        if not 0.0 < args.p_max < 1.0:
            raise SystemExit(f"--p-max must be in (0, 1), got {args.p_max}")
        params = PAPER_PARAMETERS.with_neighbors(args.n).with_beamwidth(
            math.radians(args.beamwidth)
        )
        scheme = SCHEME_FACTORIES[args.scheme](params)
        grid = np.linspace(args.p_max / args.points, args.p_max, args.points)
        values = throughput_curve(scheme, grid)
        best = int(values.argmax())
        print(
            line_chart(
                {args.scheme: list(zip(grid.tolist(), values.tolist()))},
                title=(
                    f"Th(p), N={args.n:g}, theta={args.beamwidth:g}dg "
                    f"(peak {values[best]:.4f} at p={grid[best]:.4f})"
                ),
                x_label="p (per-slot transmission probability)",
                y_label="throughput",
            )
        )
    elif args.command == "fidelity":
        from .slotsim import SlotModelConfig, SlotModelEngine

        print(
            f"Model-fidelity ladder (N={args.n:g}, theta={args.beamwidth:g}dg, "
            f"p={args.p:g}, {args.slots} slots)"
        )
        print("scheme      Th(formula)  Th(slot-sim)  Tfail(formula)  Tfail(measured)")
        for scheme_name in ("ORTS-OCTS", "DRTS-DCTS", "DRTS-OCTS"):
            params = PAPER_PARAMETERS.with_neighbors(args.n).with_beamwidth(
                math.radians(args.beamwidth)
            )
            engine = SlotModelEngine(
                SlotModelConfig(
                    params=params, scheme=scheme_name, p=args.p, seed=args.seed
                )
            )
            measured = engine.run(args.slots)
            analytical = SCHEME_FACTORIES[scheme_name](params)
            print(
                f"{scheme_name:10s}  {analytical.throughput(args.p):11.4f}  "
                f"{measured.throughput_per_node:12.4f}  "
                f"{analytical.t_fail(args.p):14.2f}  "
                f"{measured.mean_fail_duration:15.2f}"
            )
    elif args.command == "campaign-worker":
        from .experiments.dispatch import ShardRunner
        from .experiments.dispatch.queue import DEFAULT_LEASE_SECONDS

        runner = ShardRunner(
            args.store,
            shard_id=args.shard_id,
            telemetry=not args.no_telemetry,
            lease_seconds=(
                DEFAULT_LEASE_SECONDS
                if args.lease_seconds is None
                else args.lease_seconds
            ),
            poll_seconds=args.poll_seconds,
            attached=args.attach,
        )
        report = runner.run()
        if not args.no_telemetry:
            # run() returns only once the grid is complete, so this
            # worker folds the telemetry summary into the manifest on
            # its way out.  Workers exiting near-simultaneously are
            # last-writer-wins; any later merge (a resume, another
            # worker) recomputes the summary from the full JSONL.
            runner.store.merge_telemetry_summary()
        print(
            f"shard {report.shard}: {report.computed} computed, "
            f"{report.imported} imported, {report.skipped} skipped, "
            f"{report.steals} steals, {report.retries} retries "
            f"({report.cells_total} cells in grid)"
        )
    elif args.command == "campaign-watch":
        summary = watch_campaign_cli(args)
        if not summary.finished:
            return 1
    elif args.command == "profile":
        return _run_profile(args)
    elif args.command == "validate":
        params = PAPER_PARAMETERS.with_neighbors(args.n).with_beamwidth(
            math.radians(args.beamwidth)
        )
        scheme = SCHEME_FACTORIES[args.scheme](params)
        estimate = estimate_p_ws(
            scheme, args.p, random.Random(1), samples=args.samples
        )
        closed = scheme.p_ws(args.p)
        walk = simulate_node_chain(scheme, args.p, random.Random(2))
        formula = scheme.throughput(args.p)
        agree = estimate.within(closed)
        print(f"scheme={args.scheme} N={args.n:g} theta={args.beamwidth:g}dg p={args.p:g}")
        print(
            f"  P_ws: closed-form {closed:.6f}  monte-carlo "
            f"{estimate.mean:.6f} +- {estimate.std_error:.6f}  "
            f"[{'OK' if agree else 'DISAGREE'}]"
        )
        print(f"  Th:   formula {formula:.6f}  chain-walk {walk:.6f}")
        if not agree:
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
