"""Parameter sweeps over the analytical model.

These helpers produce exactly the series plotted in the paper's Fig. 5:
maximum achievable throughput versus antenna beamwidth (15deg..180deg in
15deg steps) for each of the three collision-avoidance schemes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from .drts_dcts import DrtsDcts
from .drts_octs import DrtsOcts
from .optimize import ThroughputOptimum, maximize_throughput
from .orts_octs import OrtsOcts
from .params import ProtocolParameters
from .schemes import CollisionAvoidanceScheme

__all__ = [
    "SweepPoint",
    "SweepSeries",
    "paper_beamwidths",
    "beamwidth_sweep",
    "fig5_series",
    "SCHEME_FACTORIES",
]

#: Constructors for the three schemes analysed in the paper, keyed by
#: the names used throughout the paper and this repository.
SCHEME_FACTORIES: dict[str, Callable[[ProtocolParameters], CollisionAvoidanceScheme]] = {
    "ORTS-OCTS": OrtsOcts,
    "DRTS-DCTS": DrtsDcts,
    "DRTS-OCTS": DrtsOcts,
}


@dataclass(frozen=True)
class SweepPoint:
    """One (beamwidth, optimal p, max throughput) sample."""

    beamwidth: float
    p_opt: float
    throughput: float


@dataclass(frozen=True)
class SweepSeries:
    """A named series of sweep points for one scheme."""

    scheme: str
    points: tuple[SweepPoint, ...]

    @property
    def beamwidths(self) -> tuple[float, ...]:
        return tuple(pt.beamwidth for pt in self.points)

    @property
    def throughputs(self) -> tuple[float, ...]:
        return tuple(pt.throughput for pt in self.points)


def paper_beamwidths() -> tuple[float, ...]:
    """The Fig. 5 sweep: 15deg to 180deg in 15deg increments, in radians."""
    return tuple(math.radians(15 * k) for k in range(1, 13))


def beamwidth_sweep(
    scheme_name: str,
    params: ProtocolParameters,
    beamwidths: Sequence[float] | None = None,
) -> SweepSeries:
    """Maximum throughput of one scheme across antenna beamwidths.

    Args:
        scheme_name: one of ``"ORTS-OCTS"``, ``"DRTS-DCTS"``,
            ``"DRTS-OCTS"``.
        params: protocol parameters; the ``beamwidth`` field is replaced
            by each sweep value in turn.
        beamwidths: beamwidths in radians; defaults to the paper's grid.

    Returns:
        A series of per-beamwidth optima.  For ORTS-OCTS the curve is
        flat by construction (the scheme ignores beamwidth) but is still
        evaluated pointwise for uniformity.
    """
    if scheme_name not in SCHEME_FACTORIES:
        raise KeyError(
            f"unknown scheme {scheme_name!r}; expected one of "
            f"{sorted(SCHEME_FACTORIES)}"
        )
    factory = SCHEME_FACTORIES[scheme_name]
    widths = tuple(beamwidths) if beamwidths is not None else paper_beamwidths()
    points = []
    for theta in widths:
        scheme = factory(params.with_beamwidth(theta))
        optimum: ThroughputOptimum = maximize_throughput(scheme)
        points.append(
            SweepPoint(beamwidth=theta, p_opt=optimum.p_opt, throughput=optimum.throughput)
        )
    return SweepSeries(scheme=scheme_name, points=tuple(points))


def fig5_series(
    params: ProtocolParameters,
    beamwidths: Sequence[float] | None = None,
) -> dict[str, SweepSeries]:
    """All three Fig. 5 curves for one parameter set."""
    return {
        name: beamwidth_sweep(name, params, beamwidths)
        for name in SCHEME_FACTORIES
    }
